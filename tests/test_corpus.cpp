/** @file Tests for the persistent corpus store: JSON/serialization
 * round trips, crash-tail recovery and corruption classification,
 * writer locking, checkpoint/resume bit-identity, and verdict-cache
 * deduplication. */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/campaign.hpp"
#include "core/triage.hpp"
#include "corpus/checkpoint.hpp"
#include "corpus/json.hpp"
#include "corpus/serialize.hpp"
#include "corpus/store.hpp"
#include "support/metrics.hpp"

namespace fs = std::filesystem;

namespace dce::corpus {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;
using core::BuildSpec;

BuildSpec
alphaO3()
{
    return {CompilerId::Alpha, OptLevel::O3, SIZE_MAX};
}

BuildSpec
betaO3()
{
    return {CompilerId::Beta, OptLevel::O3, SIZE_MAX};
}

/** Fresh scratch directory, removed on destruction. */
class TempDir {
  public:
    explicit TempDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (fs::temp_directory_path() /
                 ("dce_corpus_" + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter++)))
                    .string();
        fs::remove_all(path_);
    }
    ~TempDir() { fs::remove_all(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

//===------------------------------------------------------------------===//
// JSON
//===------------------------------------------------------------------===//

TEST(Json, RoundTripsWriterOutput)
{
    JsonWriter writer;
    writer.beginObject();
    writer.field("name", "line1\nline\"2\"\\end\x01");
    writer.field("count", uint64_t(18446744073709551615ull));
    writer.field("neg", int64_t(-42));
    writer.field("flag", true);
    writer.key("items");
    writer.beginArray();
    writer.value(uint64_t(1));
    writer.beginObject();
    writer.field("inner", "x");
    writer.endObject();
    writer.null();
    writer.endArray();
    writer.endObject();

    std::string error;
    std::optional<JsonValue> doc =
        JsonValue::parse(writer.str(), &error);
    ASSERT_TRUE(doc) << error;
    EXPECT_EQ(doc->getString("name"), "line1\nline\"2\"\\end\x01");
    EXPECT_EQ(doc->getU64("count"), 18446744073709551615ull);
    EXPECT_EQ(doc->get("neg")->asI64(), -42);
    EXPECT_TRUE(doc->getBool("flag"));
    const JsonValue *items = doc->get("items");
    ASSERT_TRUE(items && items->isArray());
    ASSERT_EQ(items->items.size(), 3u);
    EXPECT_EQ(items->items[0].asU64(), 1u);
    EXPECT_EQ(items->items[1].getString("inner"), "x");
    EXPECT_EQ(items->items[2].kind, JsonValue::Kind::Null);
}

TEST(Json, ParserRejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "12x", "\"open",
          "{\"a\":1}trailing", "[01e]"}) {
        EXPECT_FALSE(JsonValue::parse(bad)) << bad;
    }
}

TEST(Json, SealedLinesDetectEveryBitFlip)
{
    JsonWriter writer;
    writer.beginObject();
    writer.field("t", "record");
    writer.field("seed", uint64_t(12345));
    writer.endObject();
    std::string sealed = sealJsonLine(writer.take());
    ASSERT_TRUE(unsealJsonLine(sealed));

    for (size_t i = 0; i < sealed.size(); ++i) {
        std::string damaged = sealed;
        damaged[i] = char(damaged[i] ^ 0x20);
        EXPECT_FALSE(unsealJsonLine(damaged)) << "byte " << i;
    }
    EXPECT_FALSE(
        unsealJsonLine(sealed.substr(0, sealed.size() - 3)));
}

//===------------------------------------------------------------------===//
// Serialization
//===------------------------------------------------------------------===//

TEST(Serialize, ProgramRecordsRoundTripExactly)
{
    core::CampaignOptions options;
    options.computePrimary = true;
    options.collectRemarks = true;
    core::Campaign campaign =
        core::runCampaign(50, 8, {alphaO3(), betaO3()}, options);
    ASSERT_EQ(campaign.programs.size(), 8u);
    for (const core::ProgramRecord &record : campaign.programs) {
        std::string json = serializeRecord(record);
        std::optional<core::ProgramRecord> back =
            deserializeRecord(json);
        ASSERT_TRUE(back) << json;
        EXPECT_TRUE(*back == record) << "seed " << record.seed;
    }
    EXPECT_FALSE(deserializeRecord("{\"v\":99}"));
    EXPECT_FALSE(deserializeRecord("not json"));
}

TEST(Serialize, BuildSpecsAndPlansRoundTrip)
{
    CampaignPlan plan;
    plan.firstSeed = 77;
    plan.count = 21;
    plan.randomSeeds = true;
    plan.streamSeed = 0xdeadbeef;
    plan.chunkSize = 5;
    plan.builds = {alphaO3(),
                   {CompilerId::Alpha, OptLevel::O3, 2},
                   {CompilerId::Beta, OptLevel::Os, 0}};
    plan.collectRemarks = true;
    plan.generator.numGlobals = 7;
    plan.generator.unlikelyBranchBias = 80;
    plan.missedByBuild = 0;
    plan.referenceBuild = 2;
    plan.maxFindings = 9;

    std::string json = serializePlan(plan);
    std::optional<JsonValue> doc = JsonValue::parse(json);
    ASSERT_TRUE(doc);
    std::optional<CampaignPlan> back = readPlan(*doc);
    ASSERT_TRUE(back);
    EXPECT_EQ(serializePlan(*back), json);
    ASSERT_EQ(back->builds.size(), 3u);
    EXPECT_TRUE(back->builds[1] == plan.builds[1]);
    EXPECT_EQ(back->builds[2].commit, 0u);
    EXPECT_EQ(back->generator.numGlobals, 7u);
}

TEST(Serialize, VerdictsRoundTrip)
{
    core::CachedVerdict verdict;
    verdict.reducedSource = "int main() { return 0; }\n";
    verdict.signature = "fix@a3f9c21";
    verdict.fixed = true;
    verdict.reductionTests = 412;
    std::optional<core::CachedVerdict> back =
        deserializeVerdict(serializeVerdict(verdict));
    ASSERT_TRUE(back);
    EXPECT_EQ(back->reducedSource, verdict.reducedSource);
    EXPECT_EQ(back->signature, verdict.signature);
    EXPECT_EQ(back->fixed, verdict.fixed);
    EXPECT_EQ(back->reductionTests, verdict.reductionTests);
}

//===------------------------------------------------------------------===//
// Store basics
//===------------------------------------------------------------------===//

TEST(Corpus, StoreRoundTripsAcrossReopen)
{
    TempDir dir("roundtrip");
    support::MetricsRegistry registry;
    OpenOptions options;
    options.metrics = &registry;

    core::CampaignOptions campaign_options;
    campaign_options.computePrimary = true;
    core::Campaign campaign = core::runCampaign(
        10, 4, {alphaO3(), betaO3()}, campaign_options);

    std::string text = canonicalProgramText(10, {});
    std::string hash = programHash(text);
    core::CachedVerdict verdict;
    verdict.reducedSource = "int x;\n";
    verdict.signature = "sig-1";
    verdict.reductionTests = 5;

    {
        StoreError error;
        auto store = CorpusStore::open(dir.str(), &error, options);
        ASSERT_TRUE(store) << error.message;
        EXPECT_TRUE(store->putProgram(hash, text));
        for (size_t i = 0; i < campaign.programs.size(); ++i)
            store->putRecord(campaign.programs[i], i, i / 2, hash);
        store->putVerdict("fp-1", verdict);
        EXPECT_TRUE(store->flush());
    }

    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error, options);
    ASSERT_TRUE(store) << error.message;
    EXPECT_TRUE(store->hasProgram(hash));
    EXPECT_EQ(store->getProgram(hash).value_or(""), text);
    std::vector<StoredRecord> records = store->loadRecords(&error);
    ASSERT_EQ(records.size(), campaign.programs.size())
        << error.message;
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].slot, i);
        EXPECT_EQ(records[i].chunk, i / 2);
        EXPECT_EQ(records[i].programHash, hash);
        EXPECT_TRUE(records[i].record == campaign.programs[i]);
    }
    std::optional<core::CachedVerdict> got =
        store->getVerdict("fp-1");
    ASSERT_TRUE(got);
    EXPECT_EQ(got->signature, "sig-1");
    EXPECT_FALSE(store->getVerdict("fp-missing", &error));
    EXPECT_EQ(error.status, StoreStatus::NotFound);

    StoreStats stats = store->stats();
    EXPECT_EQ(stats.programs, 1u);
    EXPECT_EQ(stats.records, campaign.programs.size());
    EXPECT_EQ(stats.verdicts, 1u);
    EXPECT_EQ(stats.recoveredLines, 0u);
}

TEST(Corpus, DuplicateProgramsCountAsDedupHits)
{
    TempDir dir("dedup");
    support::MetricsRegistry registry;
    OpenOptions options;
    options.metrics = &registry;
    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error, options);
    ASSERT_TRUE(store) << error.message;

    EXPECT_TRUE(store->putProgram("h1", "int x;\n"));
    EXPECT_FALSE(store->putProgram("h1", "int x;\n"));
    EXPECT_FALSE(store->putProgram("h1", "int x;\n"));
    EXPECT_TRUE(store->putProgram("h2", "int y;\n"));
    EXPECT_EQ(registry.counterValue("corpus.dedup_hits"), 2u);
    EXPECT_EQ(store->stats().programs, 2u);
}

//===------------------------------------------------------------------===//
// Robustness: crash tails, corruption, locking, fresh stores
//===------------------------------------------------------------------===//

/** Populate a store with @p programs entries; returns its dir. */
void
populate(const std::string &dir, unsigned programs)
{
    StoreError error;
    auto store = CorpusStore::open(dir, &error);
    ASSERT_TRUE(store) << error.message;
    for (unsigned i = 0; i < programs; ++i) {
        std::string text =
            "int g" + std::to_string(i) + ";\n// payload body\n";
        store->putProgram("hash" + std::to_string(i), text);
    }
    ASSERT_TRUE(store->flush());
}

TEST(Corpus, TruncatedPayloadTailIsRecovered)
{
    TempDir dir("trunctail");
    populate(dir.str(), 3);

    // Chop the final payload bytes — the crash happened mid-append.
    std::string payload_path = dir.str() + "/payload.0.dat";
    uint64_t size = fs::file_size(payload_path);
    fs::resize_file(payload_path, size - 5);

    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    StoreStats stats = store->stats();
    EXPECT_EQ(stats.recoveredLines, 1u);
    EXPECT_EQ(stats.programs, 2u);
    EXPECT_TRUE(store->hasProgram("hash0"));
    EXPECT_TRUE(store->hasProgram("hash1"));
    EXPECT_FALSE(store->hasProgram("hash2"));
    // The store stays writable after recovery.
    EXPECT_TRUE(store->putProgram("hash3", "int z;\n"));
    EXPECT_TRUE(store->flush());
}

TEST(Corpus, UnterminatedIndexLineIsRecovered)
{
    TempDir dir("truncline");
    populate(dir.str(), 2);

    std::string index_path = dir.str() + "/index.0.jsonl";
    std::string index = readFile(index_path);
    // Re-truncate mid final line: no trailing newline, torn JSON.
    writeFile(index_path, index.substr(0, index.size() - 7));

    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    EXPECT_EQ(store->stats().recoveredLines, 1u);
    EXPECT_TRUE(store->hasProgram("hash0"));
    EXPECT_FALSE(store->hasProgram("hash1"));

    // New appends land after the truncation point, and a reopen sees
    // a clean index again.
    EXPECT_TRUE(store->putProgram("hash9", "int q;\n"));
    store.reset();
    store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    EXPECT_EQ(store->stats().programs, 2u);
    EXPECT_TRUE(store->hasProgram("hash9"));
    EXPECT_EQ(store->stats().recoveredLines, 0u);
}

TEST(Corpus, BitFlipBeforeTailIsClassifiedCorrupt)
{
    TempDir dir("bitflip");
    populate(dir.str(), 3);

    std::string index_path = dir.str() + "/index.0.jsonl";
    std::string index = readFile(index_path);
    index[10] = char(index[10] ^ 0x08); // damage the *first* line
    writeFile(index_path, index);

    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error);
    EXPECT_FALSE(store);
    EXPECT_EQ(error.status, StoreStatus::Corrupt);
    EXPECT_STREQ(storeStatusName(error.status), "corrupt");
}

TEST(Corpus, FlippedPayloadByteIsCaughtOnRead)
{
    TempDir dir("pcrc");
    populate(dir.str(), 1);

    std::string payload_path = dir.str() + "/payload.0.dat";
    std::string payload = readFile(payload_path);
    payload[2] = char(payload[2] ^ 0x01);
    writeFile(payload_path, payload);

    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    EXPECT_FALSE(store->getProgram("hash0", &error));
    EXPECT_EQ(error.status, StoreStatus::Corrupt);
}

TEST(Corpus, CorruptVerdictPayloadIsRepairedByRePut)
{
    TempDir dir("verdictrepair");
    core::CachedVerdict verdict;
    verdict.reducedSource = "int r;\n";
    verdict.signature = "sig-r";
    verdict.reductionTests = 7;
    {
        StoreError error;
        auto store = CorpusStore::open(dir.str(), &error);
        ASSERT_TRUE(store) << error.message;
        store->putVerdict("fp-r", verdict);
        ASSERT_TRUE(store->flush());
    }

    // Rot the verdict's payload on disk.
    std::string payload_path = dir.str() + "/payload.0.dat";
    std::string payload = readFile(payload_path);
    payload[1] = char(payload[1] ^ 0x04);
    writeFile(payload_path, payload);

    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    EXPECT_FALSE(store->getVerdict("fp-r", &error));
    EXPECT_EQ(error.status, StoreStatus::Corrupt);

    // Re-storing (what triage does after the cache miss forces a
    // re-reduction) replaces the damaged entry in place...
    store->putVerdict("fp-r", verdict);
    std::optional<core::CachedVerdict> got = store->getVerdict("fp-r");
    ASSERT_TRUE(got);
    EXPECT_EQ(got->signature, "sig-r");
    // ...unblocks compaction, which previously died on the dead
    // blob...
    ASSERT_TRUE(store->compact(&error)) << error.message;
    EXPECT_EQ(store->stats().verdicts, 1u);
    ASSERT_TRUE(store->flush());
    store.reset();

    // ...and the replacement wins after a reload too.
    store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    got = store->getVerdict("fp-r", &error);
    ASSERT_TRUE(got) << error.message;
    EXPECT_EQ(got->reducedSource, "int r;\n");
    EXPECT_EQ(got->reductionTests, 7u);
}

TEST(Corpus, LiveLockRefusesSecondWriterAndStaleLockIsStolen)
{
    TempDir dir("lock");
    populate(dir.str(), 1);

    // pid 1 is always alive: a concurrent writer holds the store.
    writeFile(dir.str() + "/LOCK", "1\n");
    StoreError error;
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error));
    EXPECT_EQ(error.status, StoreStatus::Locked);
    // The refused open must not disturb the live owner's lock: the
    // pid survives and a retry is refused all over again.
    EXPECT_EQ(readFile(dir.str() + "/LOCK"), "1\n");
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error));
    EXPECT_EQ(error.status, StoreStatus::Locked);

    // A lock left by a dead process is stale: fork a child that
    // exits immediately and use its (now unrecycled) pid.
    pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0)
        ::_exit(0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    writeFile(dir.str() + "/LOCK", std::to_string(child) + "\n");
    auto store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    EXPECT_TRUE(store->hasProgram("hash0"));
}

TEST(Corpus, FlockRefusesSecondWriterUntilFirstCloses)
{
    TempDir dir("flock");
    StoreError error;
    auto first = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(first) << error.message;

    // The flock, not the pid file, is the gate: a second open races
    // no check-then-write window and is refused while the first
    // writer holds the store — even from the same process.
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error));
    EXPECT_EQ(error.status, StoreStatus::Locked);

    first.reset();
    auto second = CorpusStore::open(dir.str(), &error);
    EXPECT_TRUE(second) << error.message;
}

TEST(Corpus, CrossProcessLockContentionNamesTheHolder)
{
    // Real two-process contention, the case the fleet exercises
    // constantly: a child process opens the store and holds it while
    // the parent tries. Two pipes sequence the handshake — no sleeps.
    TempDir dir("xproc");
    int ready[2], release[2];
    ASSERT_EQ(::pipe(ready), 0);
    ASSERT_EQ(::pipe(release), 0);
    pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        ::close(ready[0]);
        ::close(release[1]);
        StoreError child_error;
        auto held = CorpusStore::open(dir.str(), &child_error);
        char byte = held ? 'k' : 'f';
        (void)!::write(ready[1], &byte, 1);
        ::close(ready[1]);
        char go;
        (void)!::read(release[0], &go, 1); // hold until released
        held.reset(); // destructor blanks the pid + drops the flock
        ::_exit(byte == 'k' ? 0 : 1);
    }
    ::close(ready[1]);
    ::close(release[0]);
    char byte = 0;
    ASSERT_EQ(::read(ready[0], &byte, 1), 1);
    ASSERT_EQ(byte, 'k');

    // Contended open: classified Locked, and the message names the
    // live holder so an operator can see *who* has the store.
    StoreError error;
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error));
    EXPECT_EQ(error.status, StoreStatus::Locked);
    EXPECT_NE(error.message.find(std::to_string(child)),
              std::string::npos)
        << error.message;

    // Release the child; once it exits the handover is clean.
    char go = 'g';
    ASSERT_EQ(::write(release[1], &go, 1), 1);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    auto store = CorpusStore::open(dir.str(), &error);
    EXPECT_TRUE(store) << error.message;
    ::close(ready[0]);
    ::close(release[1]);
}

TEST(Corpus, FreshStoreResumeIsClassified)
{
    TempDir dir("freshresume");
    StoreError error;

    // No store at all.
    EXPECT_FALSE(resumeCampaign(dir.str() + "/missing", {}, &error));
    EXPECT_EQ(error.status, StoreStatus::NotFound);

    // A store that never checkpointed.
    populate(dir.str(), 1);
    EXPECT_FALSE(resumeCampaign(dir.str(), {}, &error));
    EXPECT_EQ(error.status, StoreStatus::NoCheckpoint);
}

TEST(Corpus, BadFormatVersionIsRefused)
{
    TempDir dir("badversion");
    populate(dir.str(), 1);
    writeFile(dir.str() + "/MANIFEST.json",
              "{\"version\":99,\"generation\":0}\n");
    StoreError error;
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error));
    EXPECT_EQ(error.status, StoreStatus::BadVersion);
}

//===------------------------------------------------------------------===//
// Compaction
//===------------------------------------------------------------------===//

TEST(Corpus, CompactionDropsDeadBytesAndPreservesContent)
{
    TempDir dir("compact");
    core::CampaignOptions campaign_options;
    campaign_options.computePrimary = true;
    core::Campaign campaign = core::runCampaign(
        30, 2, {alphaO3(), betaO3()}, campaign_options);

    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    store->putProgram("p0", "int a;\n");
    // Slot 0 is written three times; only the last survives compaction.
    store->putRecord(campaign.programs[0], 0, 0, "p0");
    store->putRecord(campaign.programs[0], 0, 0, "p0");
    store->putRecord(campaign.programs[1], 0, 0, "p0");
    core::CachedVerdict verdict;
    verdict.signature = "s";
    store->putVerdict("fp", verdict);

    uint64_t bytes_before = store->stats().bytes;
    ASSERT_TRUE(store->compact(&error)) << error.message;
    StoreStats stats = store->stats();
    EXPECT_EQ(stats.generation, 1u);
    EXPECT_LT(stats.bytes, bytes_before);
    EXPECT_FALSE(fs::exists(dir.str() + "/index.0.jsonl"));
    EXPECT_FALSE(fs::exists(dir.str() + "/payload.0.dat"));

    // Content survives the compaction and a reopen.
    std::vector<StoredRecord> records = store->loadRecords(&error);
    ASSERT_EQ(records.size(), 1u) << error.message;
    EXPECT_TRUE(records[0].record == campaign.programs[1]);
    store.reset();
    store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    EXPECT_EQ(store->stats().generation, 1u);
    EXPECT_EQ(store->getProgram("p0").value_or(""), "int a;\n");
    records = store->loadRecords(&error);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].record == campaign.programs[1]);
    ASSERT_TRUE(store->getVerdict("fp"));
    // The store stays writable in the new generation.
    EXPECT_TRUE(store->putProgram("p1", "int b;\n"));
    EXPECT_TRUE(store->flush());
}

//===------------------------------------------------------------------===//
// Checkpoint / resume
//===------------------------------------------------------------------===//

CampaignPlan
smallPlan()
{
    CampaignPlan plan;
    plan.count = 18;
    plan.chunkSize = 3;
    plan.randomSeeds = true;
    plan.streamSeed = 2024;
    plan.builds = {alphaO3(), betaO3()};
    plan.computePrimary = true;
    plan.collectRemarks = true;
    plan.missedByBuild = 0;
    plan.referenceBuild = 1;
    return plan;
}

TEST(Corpus, ResumeAfterKillIsBitIdentical)
{
    // Reference: one uninterrupted run.
    std::string reference;
    core::Campaign reference_campaign;
    {
        TempDir dir("ref");
        StoreError error;
        support::MetricsRegistry registry;
        OpenOptions open_options;
        open_options.metrics = &registry;
        auto store = CorpusStore::open(dir.str(), &error, open_options);
        ASSERT_TRUE(store) << error.message;
        CheckpointRunOptions run;
        run.metrics = &registry;
        run.checkpointEveryChunks = 2;
        std::optional<CheckpointedCampaign> result =
            runCheckpointed(*store, smallPlan(), run, &error);
        ASSERT_TRUE(result) << error.message;
        EXPECT_TRUE(result->completed);
        EXPECT_FALSE(result->resumed);
        EXPECT_EQ(result->chunksRun, 6u);
        reference = summaryText(*result);
        reference_campaign = std::move(result->campaign);
        EXPECT_FALSE(result->findings.empty() &&
                     reference.find("findings 0") == std::string::npos);
    }
    ASSERT_FALSE(reference.empty());

    // Kill at three points, resume at one and several threads: the
    // summary (records, findings, killer histograms, campaign.*
    // counters) must be byte-identical every time.
    for (uint64_t kill_after : {1u, 2u, 4u}) {
        for (unsigned threads : {1u, 3u}) {
            TempDir dir("kill");
            StoreError error;
            {
                support::MetricsRegistry registry;
                OpenOptions open_options;
                open_options.metrics = &registry;
                auto store =
                    CorpusStore::open(dir.str(), &error, open_options);
                ASSERT_TRUE(store) << error.message;
                CheckpointRunOptions run;
                run.metrics = &registry;
                run.checkpointEveryChunks = 1;
                run.haltAfterChunks = kill_after;
                run.threads = threads;
                std::optional<CheckpointedCampaign> result =
                    runCheckpointed(*store, smallPlan(), run, &error);
                ASSERT_TRUE(result) << error.message;
                EXPECT_FALSE(result->completed)
                    << "kill_after=" << kill_after
                    << " threads=" << threads
                    << " chunksRun=" << result->chunksRun;
            } // store closed: the "process" died here

            CheckpointRunOptions resume;
            resume.threads = threads;
            std::optional<CheckpointedCampaign> resumed =
                resumeCampaign(dir.str(), resume, &error);
            ASSERT_TRUE(resumed) << error.message;
            EXPECT_TRUE(resumed->completed);
            EXPECT_TRUE(resumed->resumed);
            EXPECT_GT(resumed->chunksLoaded, 0u);
            EXPECT_EQ(summaryText(*resumed), reference)
                << "kill_after=" << kill_after
                << " threads=" << threads;
            ASSERT_EQ(resumed->campaign.programs.size(),
                      reference_campaign.programs.size());
            for (size_t i = 0;
                 i < reference_campaign.programs.size(); ++i) {
                EXPECT_TRUE(resumed->campaign.programs[i] ==
                            reference_campaign.programs[i])
                    << "slot " << i;
            }
        }
    }
}

TEST(Corpus, ResumeWithDifferentPlanIsClassified)
{
    TempDir dir("planmismatch");
    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;

    CheckpointRunOptions run;
    run.checkpointEveryChunks = 1;
    run.haltAfterChunks = 1;
    ASSERT_TRUE(runCheckpointed(*store, smallPlan(), run, &error))
        << error.message;

    CampaignPlan other = smallPlan();
    other.count = 24;
    EXPECT_FALSE(runCheckpointed(*store, other, run, &error));
    EXPECT_EQ(error.status, StoreStatus::PlanMismatch);

    // The matching plan continues fine.
    std::optional<CheckpointedCampaign> result =
        runCheckpointed(*store, smallPlan(), {}, &error);
    ASSERT_TRUE(result) << error.message;
    EXPECT_TRUE(result->completed);
}

//===------------------------------------------------------------------===//
// Verdict-cache deduplication
//===------------------------------------------------------------------===//

std::vector<core::Finding>
duplicateHeavyFindings()
{
    core::CampaignOptions options;
    options.computePrimary = true;
    core::Campaign campaign =
        core::runCampaign(200, 12, {alphaO3(), betaO3()}, options);
    std::vector<core::Finding> findings = core::collectFindings(
        campaign, alphaO3(), betaO3(), /*max_findings=*/2);
    // Same root causes, many sightings — the duplicate-heavy corpus.
    std::vector<core::Finding> heavy;
    for (int round = 0; round < 3; ++round)
        heavy.insert(heavy.end(), findings.begin(), findings.end());
    return heavy;
}

void
expectSameReports(const core::TriageSummary &a,
                  const core::TriageSummary &b)
{
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (size_t i = 0; i < a.reports.size(); ++i) {
        EXPECT_EQ(a.reports[i].finding.seed,
                  b.reports[i].finding.seed) << i;
        EXPECT_EQ(a.reports[i].finding.marker,
                  b.reports[i].finding.marker) << i;
        EXPECT_EQ(a.reports[i].reducedSource,
                  b.reports[i].reducedSource) << i;
        EXPECT_EQ(a.reports[i].signature, b.reports[i].signature)
            << i;
        EXPECT_EQ(a.reports[i].reductionTests,
                  b.reports[i].reductionTests) << i;
        EXPECT_EQ(a.reports[i].confirmed, b.reports[i].confirmed)
            << i;
        EXPECT_EQ(a.reports[i].duplicate, b.reports[i].duplicate)
            << i;
        EXPECT_EQ(a.reports[i].fixed, b.reports[i].fixed) << i;
    }
}

TEST(Corpus, VerdictCacheCutsReductionWorkWithoutChangingReports)
{
    std::vector<core::Finding> findings = duplicateHeavyFindings();
    if (findings.empty())
        GTEST_SKIP() << "corpus produced no alpha-vs-beta findings";

    support::MetricsRegistry baseline_registry;
    core::TriageOptions baseline;
    baseline.maxTests = 300;
    baseline.metrics = &baseline_registry;
    core::TriageSummary baseline_summary =
        core::triageFindings(findings, baseline);

    support::MetricsRegistry cached_registry;
    MemoryVerdictCache cache;
    core::TriageOptions deduped = baseline;
    deduped.metrics = &cached_registry;
    deduped.verdictCache = &cache;
    core::TriageSummary deduped_summary =
        core::triageFindings(findings, deduped);

    // No finding is lost and every report field matches...
    expectSameReports(baseline_summary, deduped_summary);
    // ...while the reduction work strictly drops.
    EXPECT_LT(cached_registry.counterValue("reduce.tests"),
              baseline_registry.counterValue("reduce.tests"));
    EXPECT_GT(cached_registry.counterValue("reduce.findings_deduped"),
              0u);
    EXPECT_GT(cache.size(), 0u);
}

TEST(Corpus, StoreBackedVerdictsPersistAcrossRuns)
{
    std::vector<core::Finding> findings = duplicateHeavyFindings();
    if (findings.empty())
        GTEST_SKIP() << "corpus produced no alpha-vs-beta findings";

    TempDir dir("verdicts");
    core::TriageSummary first_summary;
    {
        StoreError error;
        auto store = CorpusStore::open(dir.str(), &error);
        ASSERT_TRUE(store) << error.message;
        StoreVerdictCache cache(*store);
        core::TriageOptions options;
        options.maxTests = 300;
        options.verdictCache = &cache;
        first_summary = core::triageFindings(findings, options);
        ASSERT_GT(store->stats().verdicts, 0u);
    }

    // A new process over the same store reduces nothing: every
    // verdict is replayed from disk, and the summary is unchanged.
    StoreError error;
    auto store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    StoreVerdictCache cache(*store);
    support::MetricsRegistry registry;
    core::TriageOptions options;
    options.maxTests = 300;
    options.verdictCache = &cache;
    options.metrics = &registry;
    core::TriageSummary second_summary =
        core::triageFindings(findings, options);
    expectSameReports(first_summary, second_summary);
    EXPECT_EQ(registry.counterValue("reduce.tests"), 0u);
    EXPECT_GT(registry.counterValue("reduce.verdict_cache_hits"), 0u);
}

} // namespace
} // namespace dce::corpus
