/** @file Tests for the speculative parallel reducer (ddmin-with-
 * complement + memoization) and the classified triage interestingness
 * predicate: sweep/restart policy cost bounds, predicate preservation,
 * idempotence, serial/parallel bit-identity, memo effectiveness,
 * rejection classification, and parallel batch triage determinism. */
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/triage.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "reduce/reducer.hpp"

namespace dce::reduce {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;

/** Parses and still textually calls DCEMarker0 — cheap enough to run
 * hundreds of times, strict enough that reduction has real structure
 * to preserve (the declaration must survive for the call to check). */
bool
parsesAndCallsMarker0(const std::string &candidate)
{
    if (candidate.find("DCEMarker0();") == std::string::npos)
        return false;
    DiagnosticEngine diags;
    return lang::parseAndCheck(candidate, diags) != nullptr;
}

std::string
declsFixture(unsigned decls)
{
    // `decls` removable lines plus two that must survive.
    std::string source;
    for (unsigned i = 0; i < decls; ++i)
        source += "int g" + std::to_string(i) + ";\n";
    source += "int main() { return g7; }\n";
    return source;
}

bool
keepsG7(const std::string &candidate)
{
    if (candidate.find("return g7;") == std::string::npos)
        return false;
    DiagnosticEngine diags;
    return lang::parseAndCheck(candidate, diags) != nullptr;
}

/** Dependency-chain predicate over declsFixture(63): every even-
 * numbered decl and main() must stay, and the odd decls are removable
 * only as a contiguous topmost group (g61 first, then g59, ...), the
 * shape of a use-def chain where only the last unreferenced line can
 * go. Exactly one line is removable per left-to-right sweep. */
bool
chainPredicate(const std::string &candidate)
{
    auto has = [&](int i) {
        return candidate.find("int g" + std::to_string(i) + ";") !=
               std::string::npos;
    };
    if (candidate.find("int main()") == std::string::npos)
        return false;
    for (int i = 0; i < 63; i += 2)
        if (!has(i))
            return false;
    bool lower_must_stay = false;
    for (int i = 61; i >= 1; i -= 2) {
        if (has(i))
            lower_must_stay = true; // gap below a kept odd decl
        else if (lower_must_stay)
            return false; // not a topmost contiguous removal
    }
    return true;
}

TEST(Reduce, TestsRunUpperBoundOnKnownInput)
{
    // Regression test for the seed sweep/restart bug: the seed
    // restarted the full halving cascade after *any* productive pass,
    // so on this chain input — one removable line per sweep — it paid
    // the whole cascade per removed line: 2728 predicate tests
    // (measured). The fixed sweep repeats only the size-1 sweep until
    // unproductive and decides the same reduction in 1713 canonical
    // tests.
    std::string source = declsFixture(63);
    ReduceResult result = reduceSource(source, chainPredicate);
    EXPECT_TRUE(chainPredicate(result.source));
    EXPECT_EQ(result.linesAfter, 33u) << result.source;
    EXPECT_LE(result.testsRun, 1800u);
}

TEST(Reduce, ParallelBitIdenticalAndIdempotentOnGeneratorSeeds)
{
    // The ISSUE 3 property triplet, over >= 20 generator programs:
    // (1) the reduced output still satisfies the predicate;
    // (2) reduction is idempotent (re-reducing changes nothing);
    // (3) 8-worker speculative reduction is bit-identical to serial.
    unsigned reduced_nontrivially = 0;
    for (uint64_t seed = 7000; seed < 7020; ++seed) {
        instrument::Instrumented prog = core::makeProgram(seed);
        std::string source = lang::printUnit(*prog.unit);
        if (!parsesAndCallsMarker0(source))
            continue; // marker 0 not present in this program's text

        ReduceOptions serial_options;
        serial_options.workers = 1;
        ReduceResult serial = ParallelReducer(serial_options)
                                  .reduce(source, parsesAndCallsMarker0);
        EXPECT_TRUE(parsesAndCallsMarker0(serial.source)) << seed;
        if (serial.linesAfter < serial.linesBefore)
            ++reduced_nontrivially;

        ReduceOptions parallel_options;
        parallel_options.workers = 8;
        ReduceResult parallel =
            ParallelReducer(parallel_options)
                .reduce(source, parsesAndCallsMarker0);
        EXPECT_EQ(parallel.source, serial.source) << seed;
        EXPECT_EQ(parallel.testsRun, serial.testsRun) << seed;
        EXPECT_EQ(parallel.linesAfter, serial.linesAfter) << seed;
        EXPECT_EQ(parallel.passes, serial.passes) << seed;

        ReduceResult again = ParallelReducer(serial_options)
                                 .reduce(serial.source,
                                         parsesAndCallsMarker0);
        EXPECT_EQ(again.source, serial.source) << seed;
        EXPECT_EQ(again.linesAfter, serial.linesAfter) << seed;
    }
    // The corpus must actually exercise the reducer.
    EXPECT_GE(reduced_nontrivially, 15u);
}

TEST(Reduce, MemoizationMakesFixpointPassFree)
{
    support::MetricsRegistry registry;
    ReduceOptions options;
    options.metrics = &registry;
    ReduceResult result = ParallelReducer(options).reduce(
        declsFixture(31), keepsG7);
    EXPECT_EQ(result.linesAfter, 2u);
    EXPECT_GE(result.passes, 2u); // final pass verifies the fixpoint

    // Canonical decisions >= real predicate invocations: the memo
    // answered the difference without re-running the predicate.
    uint64_t invocations = registry.counterValue("reduce.tests");
    uint64_t memo_hits = registry.counterValue("reduce.cache_hits");
    EXPECT_GT(memo_hits, 0u);
    EXPECT_LT(invocations, result.testsRun);
    EXPECT_GT(registry.histogram("reduce.wall_us").count(), 0u);
}

TEST(Reduce, BudgetBoundsCanonicalTests)
{
    ReduceOptions options;
    options.maxTests = 10;
    ReduceResult result =
        ParallelReducer(options).reduce(declsFixture(63), keepsG7);
    EXPECT_LE(result.testsRun, 10u);
    EXPECT_TRUE(keepsG7(result.source)); // partial but still valid
}

TEST(Reduce, UninterestingInputUnchangedWithOneTest)
{
    ReduceResult result = reduceSource(
        "int main() { return 0; }",
        [](const std::string &) { return false; });
    EXPECT_EQ(result.testsRun, 1u);
    EXPECT_EQ(result.passes, 0u);
    EXPECT_EQ(result.source, "int main() { return 0; }");
}

} // namespace
} // namespace dce::reduce

namespace dce::core {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;

BuildSpec
alphaO3()
{
    return {CompilerId::Alpha, OptLevel::O3, SIZE_MAX};
}

BuildSpec
betaO3()
{
    return {CompilerId::Beta, OptLevel::O3, SIZE_MAX};
}

TEST(Triage, InterestingnessClassifiesEveryRejection)
{
    support::MetricsRegistry registry;
    InterestingnessTest interesting(0, alphaO3(), betaO3(), &registry);
    auto reject_count = [&](RejectReason reason) {
        return registry.counterValue("reduce.reject",
                                     rejectReasonName(reason));
    };

    RejectReason why = RejectReason::ParseFail;
    EXPECT_FALSE(interesting.test("int main( {", &why));
    EXPECT_EQ(why, RejectReason::ParseFail);

    EXPECT_FALSE(
        interesting.test("int main() { return 0; }", &why));
    EXPECT_EQ(why, RejectReason::MarkerAbsent);

    // The interpreter hits its step budget: previously this was lumped
    // into plain "not interesting"; now it is diagnosable.
    EXPECT_FALSE(interesting.test(R"(
        void DCEMarker0(void);
        int x;
        int main() {
            while (1) { x = x + 1; }
            DCEMarker0();
            return 0;
        }
    )",
                                  &why));
    EXPECT_EQ(why, RejectReason::TrapTimeout);

    EXPECT_FALSE(interesting.test(R"(
        void DCEMarker0(void);
        int main() { DCEMarker0(); return 0; }
    )",
                                  &why));
    EXPECT_EQ(why, RejectReason::Executed);

    // Dead, but both builds eliminate it: no differential.
    EXPECT_FALSE(interesting.test(R"(
        void DCEMarker0(void);
        int main() {
            if (0) { DCEMarker0(); }
            return 0;
        }
    )",
                                  &why));
    EXPECT_EQ(why, RejectReason::NotDifferential);

    // Listing 4a's store-equals-init shape: alpha misses, beta
    // eliminates — interesting, and `why` is left untouched.
    RejectReason untouched = RejectReason::ParseFail;
    EXPECT_TRUE(interesting.test(R"(
        void DCEMarker0(void);
        static int a = 0;
        int x;
        int main() {
            if (a) { x = 5; DCEMarker0(); }
            a = 0;
            return 0;
        }
    )",
                                 &untouched));
    EXPECT_EQ(untouched, RejectReason::ParseFail);

    EXPECT_EQ(reject_count(RejectReason::ParseFail), 1u);
    EXPECT_EQ(reject_count(RejectReason::MarkerAbsent), 1u);
    EXPECT_EQ(reject_count(RejectReason::TrapTimeout), 1u);
    EXPECT_EQ(reject_count(RejectReason::Executed), 1u);
    EXPECT_EQ(reject_count(RejectReason::NotDifferential), 1u);
    // Pipelines: 1 for the not-differential probe (alpha eliminated
    // it, reference never ran) + 2 for the accepted candidate.
    EXPECT_EQ(registry.counterValue("reduce.compiles"), 3u);
}

TEST(Triage, RejectReasonNamesAreStable)
{
    EXPECT_STREQ(rejectReasonName(RejectReason::ParseFail),
                 "parse-fail");
    EXPECT_STREQ(rejectReasonName(RejectReason::MarkerAbsent),
                 "marker-absent");
    EXPECT_STREQ(rejectReasonName(RejectReason::TrapTimeout),
                 "trap-timeout");
    EXPECT_STREQ(rejectReasonName(RejectReason::Executed), "executed");
    EXPECT_STREQ(rejectReasonName(RejectReason::NotDifferential),
                 "not-differential");
}

TEST(Triage, ParallelBatchTriageMatchesSerial)
{
    CampaignOptions campaign_options;
    campaign_options.computePrimary = true;
    Campaign campaign =
        runCampaign(200, 12, {alphaO3(), betaO3()}, campaign_options);
    std::vector<Finding> findings = collectFindings(
        campaign, alphaO3(), betaO3(), /*max_findings=*/2);
    if (findings.empty())
        GTEST_SKIP() << "corpus produced no alpha-vs-beta findings";

    TriageOptions serial;
    serial.maxTests = 300;
    TriageOptions parallel;
    parallel.maxTests = 300;
    parallel.threads = 4;
    parallel.reduceWorkers = 2;

    TriageSummary serial_summary = triageFindings(findings, serial);
    TriageSummary parallel_summary =
        triageFindings(findings, parallel);
    ASSERT_EQ(parallel_summary.reports.size(),
              serial_summary.reports.size());
    for (size_t i = 0; i < serial_summary.reports.size(); ++i) {
        const Report &a = serial_summary.reports[i];
        const Report &b = parallel_summary.reports[i];
        EXPECT_EQ(b.reducedSource, a.reducedSource) << i;
        EXPECT_EQ(b.signature, a.signature) << i;
        EXPECT_EQ(b.reductionTests, a.reductionTests) << i;
        EXPECT_EQ(b.confirmed, a.confirmed) << i;
        EXPECT_EQ(b.duplicate, a.duplicate) << i;
        EXPECT_EQ(b.fixed, a.fixed) << i;
    }
}

} // namespace
} // namespace dce::core
