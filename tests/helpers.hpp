/**
 * @file
 * Shared test helpers: compile MiniC snippets to AST/IR, execute them,
 * and assert on the results with readable failure output.
 */
#pragma once

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/ir.hpp"
#include "lang/ast.hpp"

namespace dce::test {

/** Parse + sema; fails the current test (and returns null) on errors. */
std::unique_ptr<lang::TranslationUnit> parseOk(const std::string &source);

/** Parse + sema, expecting at least one error; returns the messages. */
std::string parseErrors(const std::string &source);

/** Parse + sema + lower + verify; fails the test on any problem. */
std::unique_ptr<ir::Module> lowerOk(const std::string &source);

/** Full pipeline: parse, lower, execute with default limits. */
interp::ExecResult runSource(const std::string &source);

} // namespace dce::test
