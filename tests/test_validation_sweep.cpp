/** @file The heavyweight correctness property: for randomly generated
 * programs, every compiler at every level must (a) produce verifier-
 * clean IR after each pass, (b) preserve observable behaviour (exit
 * value, external-call trace, final external-global memory), and (c)
 * never eliminate a marker that actually executes. This is the
 * translation-validation harness that keeps the whole 15-pass
 * optimizer honest against the interpreter. */
#include <gtest/gtest.h>

#include "compiler/compiler.hpp"
#include "gen/generator.hpp"
#include "instrument/instrument.hpp"
#include "interp/interpreter.hpp"
#include "ir/lowering.hpp"
#include "ir/printer.hpp"
#include "lang/printer.hpp"

namespace dce {
namespace {

using compiler::Compiler;
using compiler::CompilerId;
using compiler::OptLevel;

instrument::Instrumented
makeInstrumented(uint64_t seed)
{
    auto unit = gen::generateProgram(seed);
    return instrument::instrumentUnit(*unit);
}

class GeneratedValidation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedValidation, AllBuildsPreserveBehaviour)
{
    uint64_t seed = GetParam();
    instrument::Instrumented prog = makeInstrumented(seed);
    auto baseline_module = ir::lowerToIr(*prog.unit);
    interp::ExecResult expected = interp::execute(*baseline_module);
    if (expected.status != interp::ExecStatus::Ok)
        GTEST_SKIP() << "seed " << seed << " not executable";

    std::set<std::string> executed_markers;
    for (const std::string &name : expected.calledExternals) {
        if (instrument::markerIndex(name))
            executed_markers.insert(name);
    }

    for (CompilerId id : {CompilerId::Alpha, CompilerId::Beta}) {
        for (OptLevel level : compiler::allOptLevels()) {
            Compiler comp(id, level);
            compiler::Compilation result =
                comp.compile(*prog.unit, /*verify_each=*/true);
            ASSERT_TRUE(result.ok())
                << comp.describe() << " seed " << seed
                << " verifier failure:\n"
                << result.error();
            interp::ExecResult actual =
                interp::execute(result.module());
            ASSERT_TRUE(interp::observablyEqual(expected, actual))
                << comp.describe() << " miscompiled seed " << seed
                << ":\n"
                << interp::explainDifference(expected, actual)
                << "\nsource:\n"
                << lang::printUnit(*prog.unit);
            // Soundness: every executed marker must still be called in
            // the optimized module's behaviour (already implied by the
            // trace equality, but assert explicitly for clarity).
            for (const std::string &name : executed_markers) {
                EXPECT_TRUE(actual.calledExternals.count(name))
                    << comp.describe() << " dropped live marker "
                    << name << " (seed " << seed << ")";
            }
        }
    }
}

// 120 seeds x 2 compilers x 5 levels = 1200 full pipeline validations.
INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedValidation,
                         ::testing::Range<uint64_t>(7000, 7120));

} // namespace
} // namespace dce
