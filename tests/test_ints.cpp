/** @file Unit + property tests for MiniC integer semantics. */
#include <gtest/gtest.h>

#include "support/ints.hpp"
#include "support/rng.hpp"

namespace dce {
namespace {

TEST(Ints, WrapSigned8)
{
    EXPECT_EQ(wrapInt(127, 8, true), 127);
    EXPECT_EQ(wrapInt(128, 8, true), -128);
    EXPECT_EQ(wrapInt(255, 8, true), -1);
    EXPECT_EQ(wrapInt(256, 8, true), 0);
    EXPECT_EQ(wrapInt(-129, 8, true), 127);
}

TEST(Ints, WrapUnsigned8)
{
    EXPECT_EQ(wrapInt(-1, 8, false), 255);
    EXPECT_EQ(wrapInt(256, 8, false), 0);
    EXPECT_EQ(wrapInt(300, 8, false), 44);
}

TEST(Ints, Wrap64IsIdentity)
{
    EXPECT_EQ(wrapInt(INT64_MIN, 64, true), INT64_MIN);
    EXPECT_EQ(wrapInt(-1, 64, false), -1); // canonical form keeps bits
}

TEST(Ints, AddWrapsAtWidth)
{
    EXPECT_EQ(addInt(INT32_MAX, 1, 32, true), INT32_MIN);
    EXPECT_EQ(addInt(-1, 1, 32, false), 0);
}

TEST(Ints, SubWraps)
{
    EXPECT_EQ(subInt(INT32_MIN, 1, 32, true), INT32_MAX);
}

TEST(Ints, MulWraps)
{
    EXPECT_EQ(mulInt(1 << 20, 1 << 20, 32, true), 0);
    EXPECT_EQ(mulInt(3, 5, 32, true), 15);
}

TEST(Ints, SafeDivByZeroReturnsDividend)
{
    EXPECT_EQ(divInt(42, 0, 32, true), 42);
    EXPECT_EQ(divInt(-7, 0, 32, true), -7);
    EXPECT_EQ(remInt(42, 0, 32, true), 42);
}

TEST(Ints, SafeDivOverflowReturnsDividend)
{
    EXPECT_EQ(divInt(INT64_MIN, -1, 64, true), INT64_MIN);
    EXPECT_EQ(remInt(INT64_MIN, -1, 64, true), 0);
}

TEST(Ints, Div32MinByMinusOneWraps)
{
    // In 64-bit arithmetic INT32_MIN / -1 does not overflow; the result
    // wraps back to INT32_MIN at the 32-bit width.
    EXPECT_EQ(divInt(INT32_MIN, -1, 32, true), INT32_MIN);
}

TEST(Ints, UnsignedDivision)
{
    // -2 in canonical u32 form is 4294967294.
    int64_t a = wrapInt(-2, 32, false);
    EXPECT_EQ(divInt(a, 3, 32, false), 1431655764);
}

TEST(Ints, ShiftAmountsAreMasked)
{
    EXPECT_EQ(shlInt(1, 32, 32, true), 1);  // 32 & 31 == 0
    EXPECT_EQ(shlInt(1, 33, 32, true), 2);  // 33 & 31 == 1
    EXPECT_EQ(shlInt(1, -1, 32, true), INT32_MIN); // -1 & 31 == 31
}

TEST(Ints, ArithmeticVsLogicalShr)
{
    EXPECT_EQ(shrInt(-8, 1, 32, true), -4);
    EXPECT_EQ(shrInt(wrapInt(-8, 32, false), 1, 32, false), 2147483644);
}

TEST(Ints, ConvertNarrowThenWiden)
{
    // (char)300 == 44; sign-extending back keeps 44.
    int64_t as_char = convertInt(300, 32, true, 8, true);
    EXPECT_EQ(as_char, 44);
    EXPECT_EQ(convertInt(as_char, 8, true, 32, true), 44);
    // (char)200 == -56.
    EXPECT_EQ(convertInt(200, 32, true, 8, true), -56);
}

TEST(Ints, LtRespectsSignedness)
{
    EXPECT_TRUE(ltInt(-1, 0, true));
    EXPECT_FALSE(ltInt(-1, 0, false)); // canonical -1 is huge unsigned
}

/** Property sweep: canonical form is a fixed point of wrapInt, and
 * operations stay canonical. */
class IntsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntsProperty, OperationsPreserveCanonicalForm)
{
    unsigned bits = GetParam();
    for (int s = 0; s < 2; ++s) {
        bool is_signed = s == 1;
        Rng rng(1234 + bits + s);
        for (int i = 0; i < 500; ++i) {
            int64_t a = wrapInt(static_cast<int64_t>(rng.next()), bits,
                                is_signed);
            int64_t b = wrapInt(static_cast<int64_t>(rng.next()), bits,
                                is_signed);
            EXPECT_EQ(wrapInt(a, bits, is_signed), a);
            for (int64_t r :
                 {addInt(a, b, bits, is_signed),
                  subInt(a, b, bits, is_signed),
                  mulInt(a, b, bits, is_signed),
                  divInt(a, b, bits, is_signed),
                  remInt(a, b, bits, is_signed),
                  shlInt(a, b, bits, is_signed),
                  shrInt(a, b, bits, is_signed)}) {
                EXPECT_EQ(wrapInt(r, bits, is_signed), r)
                    << "non-canonical result at bits=" << bits
                    << " signed=" << is_signed << " a=" << a << " b=" << b;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, IntsProperty,
                         ::testing::Values(8u, 16u, 32u, 64u));

} // namespace
} // namespace dce
