/** @file Unit tests for the MiniC parser (structure + error recovery). */
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

namespace dce::lang {
namespace {

using dce::test::parseErrors;
using dce::test::parseOk;

TEST(Parser, GlobalVariableKinds)
{
    auto unit = parseOk(R"(
        int a;
        static int b = 3;
        char c[2];
        unsigned short d = 7;
        long e = 100;
        int *p;
        int **q;
    )");
    ASSERT_TRUE(unit);
    EXPECT_EQ(unit->globals.size(), 7u);
    EXPECT_EQ(unit->globals[1]->storage, Storage::StaticGlobal);
    EXPECT_TRUE(unit->globals[2]->type->isArray());
    EXPECT_EQ(unit->globals[2]->type->arraySize(), 2u);
    EXPECT_FALSE(unit->globals[3]->type->isSigned());
    EXPECT_EQ(unit->globals[3]->type->bits(), 16u);
    EXPECT_TRUE(unit->globals[5]->type->isPtr());
    EXPECT_TRUE(unit->globals[6]->type->element()->isPtr());
}

TEST(Parser, CommaSeparatedDeclaratorsWithMixedPointers)
{
    // Shape from the paper's Listing 9c.
    auto unit = parseOk(R"(
        int a, c, *f, **d = &f;
        int main(void) { return 0; }
    )");
    ASSERT_TRUE(unit);
    ASSERT_EQ(unit->globals.size(), 4u);
    EXPECT_TRUE(unit->globals[0]->type->isInt());
    EXPECT_TRUE(unit->globals[2]->type->isPtr());
    EXPECT_TRUE(unit->globals[3]->type->element()->isPtr());
    EXPECT_TRUE(unit->globals[3]->init != nullptr);
}

TEST(Parser, FunctionDeclarationAndDefinition)
{
    auto unit = parseOk(R"(
        void marker(void);
        static short helper(short f, short h) { return f; }
        int main() { return 0; }
    )");
    ASSERT_TRUE(unit);
    EXPECT_EQ(unit->functions.size(), 3u);
    EXPECT_FALSE(unit->functions[0]->isDefinition());
    EXPECT_TRUE(unit->functions[1]->isDefinition());
    EXPECT_TRUE(unit->functions[1]->isStatic);
    EXPECT_EQ(unit->functions[1]->params.size(), 2u);
}

TEST(Parser, StatementForms)
{
    auto unit = parseOk(R"(
        int a;
        void dead(void);
        int main() {
            int f = 0;
            for (; f <= 5; f++) { a += f; }
            while (a) { a--; }
            do { a++; } while (a < 3);
            if (a) { dead(); } else { a = 1; }
            switch (a) {
              case 1:
                a = 2;
                break;
              default:
                break;
            }
            return a;
        }
    )");
    ASSERT_TRUE(unit);
}

TEST(Parser, PrecedenceShapesTheTree)
{
    auto unit = parseOk("int x = 2 + 3 * 4;");
    ASSERT_TRUE(unit);
    const auto *add =
        dynamic_cast<const BinaryExpr *>(unit->globals[0]->init.get());
    ASSERT_TRUE(add);
    EXPECT_EQ(add->op, BinaryOp::Add);
    const auto *mul = dynamic_cast<const BinaryExpr *>(add->rhs.get());
    ASSERT_TRUE(mul);
    EXPECT_EQ(mul->op, BinaryOp::Mul);
}

TEST(Parser, AssignmentIsRightAssociative)
{
    auto unit = parseOk(R"(
        int a; int b;
        int main() { a = b = 3; return a; }
    )");
    ASSERT_TRUE(unit);
}

TEST(Parser, TernaryExpression)
{
    // Shape from the paper's Listing 8b.
    auto unit = parseOk(R"(
        static short c(short f, short h) {
            return h == 0 || (f && h == 1) ? f : f % h;
        }
        int main() { return c(1, 2); }
    )");
    ASSERT_TRUE(unit);
}

TEST(Parser, CastVersusParenthesizedExpr)
{
    auto unit = parseOk(R"(
        int main() {
            int a = 5;
            char b = (char)a;
            int c = (a) + 1;
            return b + c;
        }
    )");
    ASSERT_TRUE(unit);
}

TEST(Parser, AddressAndDereferenceChains)
{
    auto unit = parseOk(R"(
        char a;
        char b[2];
        int main() {
            char *d = &a;
            char *e = &b[1];
            if (d == e) { return 1; }
            return 0;
        }
    )");
    ASSERT_TRUE(unit);
}

TEST(Parser, SwitchArmMustEndWithBreak)
{
    std::string errors = parseErrors(R"(
        int main() {
            switch (1) {
              case 1:
                return 0;
              default:
                break;
            }
            return 1;
        }
    )");
    EXPECT_NE(errors.find("break"), std::string::npos);
}

TEST(Parser, MissingSemicolonIsAnError)
{
    parseErrors("int a = 3");
}

TEST(Parser, RecoversAfterBadTopLevelDecl)
{
    DiagnosticEngine diags;
    Parser parser("int a = ; int b = 2;", diags);
    auto unit = parser.parseTranslationUnit();
    EXPECT_TRUE(diags.hasErrors());
    // b should still have been parsed after recovery.
    ASSERT_TRUE(unit);
    EXPECT_TRUE(unit->findGlobal("b") != nullptr);
}

TEST(Parser, ForWithDeclarationInit)
{
    auto unit = parseOk(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) { s += i; }
            return s;
        }
    )");
    ASSERT_TRUE(unit);
}

TEST(Parser, ArrayInitializerList)
{
    auto unit = parseOk("static int b[2] = {0, 0};");
    ASSERT_TRUE(unit);
    EXPECT_EQ(unit->globals[0]->initList.size(), 2u);
}

TEST(Parser, FunctionScopeStaticRejected)
{
    parseErrors("int main() { static int x = 1; return x; }");
}

} // namespace
} // namespace dce::lang
