/** @file Backend tests: phi demotion, assembly structure, and the
 * marker-preservation contract the whole methodology relies on. */
#include <gtest/gtest.h>

#include "backend/codegen.hpp"
#include "compiler/compiler.hpp"
#include "helpers.hpp"
#include "interp/interpreter.hpp"
#include "ir/lowering.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace dce::backend {
namespace {

using compiler::Compiler;
using compiler::CompilerId;
using compiler::OptLevel;
using dce::test::lowerOk;
using dce::test::parseOk;

TEST(Backend, CalledSymbolsScannerFindsCalls)
{
    std::string assembly = "main:\n"
                           "\tpushq %rbp\n"
                           "\tcall helper0\n"
                           "\tmovq %rax, %r8\n"
                           "\tcall DCEMarker3\n"
                           "\tleave\n\tret\n";
    std::set<std::string> symbols = calledSymbols(assembly);
    EXPECT_EQ(symbols,
              (std::set<std::string>{"helper0", "DCEMarker3"}));
    EXPECT_TRUE(containsCall(assembly, "helper0"));
    EXPECT_FALSE(containsCall(assembly, "helper1"));
}

TEST(Backend, DemotePhisRemovesAllPhis)
{
    // Optimize to produce phis, then demote.
    auto unit = parseOk(R"(
        int a;
        int main() {
            int b;
            if (a) { b = 2; } else { b = 3; }
            return b;
        }
    )");
    ASSERT_TRUE(unit);
    Compiler comp(CompilerId::Beta, OptLevel::O2);
    auto module = comp.compile(*unit).takeModule();

    interp::ExecResult before = interp::execute(*module);
    demotePhis(*module);
    ir::VerifyResult verify = ir::verifyModule(*module);
    EXPECT_TRUE(verify.ok()) << verify.str();
    for (const auto &fn : module->functions()) {
        for (const auto &block : fn->blocks()) {
            for (const auto &instr : block->instrs())
                EXPECT_NE(instr->opcode(), ir::Opcode::Phi);
        }
    }
    // Demotion must preserve behaviour.
    interp::ExecResult after = interp::execute(*module);
    EXPECT_TRUE(interp::observablyEqual(before, after))
        << interp::explainDifference(before, after);
}

TEST(Backend, DemotePhisHandlesSwapPattern)
{
    // Classic parallel-copy hazard: two phis exchanging values.
    auto unit = parseOk(R"(
        int n = 5;
        int main() {
            int a = 1, b = 2;
            while (n) {
                int t = a;
                a = b;
                b = t;
                n--;
            }
            return a * 10 + b;
        }
    )");
    ASSERT_TRUE(unit);
    Compiler comp(CompilerId::Beta, OptLevel::O2);
    auto module = comp.compile(*unit).takeModule();
    interp::ExecResult before = interp::execute(*module);
    ASSERT_EQ(before.status, interp::ExecStatus::Ok);
    demotePhis(*module);
    interp::ExecResult after = interp::execute(*module);
    EXPECT_TRUE(interp::observablyEqual(before, after))
        << interp::explainDifference(before, after);
    EXPECT_EQ(after.exitValue, before.exitValue);
}

TEST(Backend, AssemblyHasExpectedStructure)
{
    auto module = lowerOk(R"(
        int g = 3;
        static char h[2];
        int main() { return g; }
    )");
    ASSERT_TRUE(module);
    std::string assembly = emitAssembly(*module);
    EXPECT_NE(assembly.find("\t.data"), std::string::npos);
    EXPECT_NE(assembly.find("g:"), std::string::npos);
    EXPECT_NE(assembly.find("\t.globl g"), std::string::npos);
    // Internal globals are not exported.
    EXPECT_EQ(assembly.find(".globl h"), std::string::npos);
    EXPECT_NE(assembly.find("main:"), std::string::npos);
    EXPECT_NE(assembly.find("\tret"), std::string::npos);
}

TEST(Backend, MarkerPreservationContract)
{
    // The load-bearing property: a call instruction in the final IR
    // appears in the assembly exactly once per call site, and a
    // removed call leaves no trace.
    auto unit = parseOk(R"(
        void DCEMarker0(void);
        void DCEMarker1(void);
        static int a = 1;
        int main() {
            if (a) { DCEMarker0(); }
            if (!a) { DCEMarker1(); }
            return 0;
        }
    )");
    ASSERT_TRUE(unit);
    Compiler comp(CompilerId::Beta, OptLevel::O3);
    std::string assembly = comp.compile(*unit).assembly();
    EXPECT_TRUE(containsCall(assembly, "DCEMarker0"));
    EXPECT_FALSE(containsCall(assembly, "DCEMarker1"));
}

TEST(Backend, DeadInternalFunctionsStillEmitWhenKept)
{
    // O0: nothing removes the uncalled static; its marker call must be
    // present in the assembly (that is why husk regressions matter).
    auto module = lowerOk(R"(
        void DCEMarker0(void);
        static void never(void) { DCEMarker0(); }
        int main() { return 0; }
    )");
    ASSERT_TRUE(module);
    std::string assembly = emitAssembly(*module);
    EXPECT_TRUE(containsCall(assembly, "DCEMarker0"));
    EXPECT_NE(assembly.find("never:"), std::string::npos);
}

} // namespace
} // namespace dce::backend
