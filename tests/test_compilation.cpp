/**
 * @file
 * Compilation-API tests (DESIGN.md §13): the IR-walk/assembly-grep
 * survival equivalence, artifact laziness (a plain campaign never
 * pays for codegen), error-as-value semantics, the shared-Compiler
 * thread-safety regression (the old `mutable lastError_` data race),
 * and the byte-identity of campaign records and triage summaries
 * across the two SurvivalSource paths.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "compiler/compiler.hpp"
#include "core/analysis.hpp"
#include "core/campaign.hpp"
#include "core/triage.hpp"
#include "helpers.hpp"
#include "ir/builder.hpp"
#include "ir/lowering.hpp"
#include "support/metrics.hpp"

namespace dce {
namespace {

using compiler::BuildObservers;
using compiler::Compilation;
using compiler::Compiler;
using compiler::CompilerId;
using compiler::OptLevel;
using test::parseOk;

/** An IR module the verifier rejects: main is i32 but returns void. */
std::unique_ptr<ir::Module>
invalidModule()
{
    auto module = std::make_unique<ir::Module>();
    ir::Function *main_fn = module->addFunction(
        "main", ir::IrType::i32(), /*internal=*/false);
    ir::BasicBlock *entry = main_fn->addBlock("entry");
    ir::IrBuilder builder(*module);
    builder.setInsertionBlock(entry);
    builder.retVoid();
    return module;
}

//===------------------------------------------------------------------===//
// Error-as-value
//===------------------------------------------------------------------===//

TEST(Compilation, ErrorIsPartOfTheValue)
{
    auto bad = invalidModule();
    Compiler comp(CompilerId::Beta, OptLevel::O2);
    Compilation result = comp.compileLowered(*bad,
                                             /*verify_each=*/true);
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.error().empty());
    // The module is still inspectable — failure diagnostics need it.
    EXPECT_NE(result.module().getFunction("main"), nullptr);
}

TEST(Compilation, DefaultConstructedIsEmpty)
{
    Compilation empty;
    EXPECT_FALSE(empty.ok());
    EXPECT_TRUE(empty.error().empty());
}

//===------------------------------------------------------------------===//
// Laziness + memoization
//===------------------------------------------------------------------===//

TEST(Compilation, AssemblyIsLazyMemoizedAndCounted)
{
    auto unit = parseOk(R"(
        void DCEMarker0(void);
        static int a = 1;
        int main() {
            if (a) { DCEMarker0(); }
            return 0;
        }
    )");
    ASSERT_TRUE(unit);
    support::MetricsRegistry registry;
    Compiler comp(CompilerId::Beta, OptLevel::O3);
    Compilation result = comp.compile(*unit, /*verify_each=*/false,
                                      BuildObservers{nullptr,
                                                     &registry});
    ASSERT_TRUE(result.ok());

    // Surviving markers come from the IR — no emission yet.
    EXPECT_EQ(result.survivingMarkers(), std::set<unsigned>{0});
    EXPECT_EQ(registry.counterValue("backend.emits"), 0u);

    // First assembly() forces exactly one emission; the second is the
    // memoized object.
    const std::string &first = result.assembly();
    EXPECT_EQ(registry.counterValue("backend.emits"), 1u);
    const std::string &second = result.assembly();
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(registry.counterValue("backend.emits"), 1u);
}

TEST(Compilation, SurvivalIsConsistentBeforeAndAfterEmission)
{
    // assembly() runs phi demotion (a module mutation), which must not
    // change the marker-call population: survivingMarkers() memoized
    // before emission equals a fresh IR walk afterwards.
    instrument::Instrumented prog = core::makeProgram(42);
    Compiler comp(CompilerId::Beta, OptLevel::O2);
    Compilation result = comp.compile(*prog.unit);
    ASSERT_TRUE(result.ok());
    std::set<unsigned> before = result.survivingMarkers();
    result.assembly();
    EXPECT_EQ(compiler::survivingMarkersInIr(result.module()), before);
}

//===------------------------------------------------------------------===//
// IR walk == assembly grep (the fast-path contract)
//===------------------------------------------------------------------===//

class IrVsAsmEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IrVsAsmEquivalence, SurvivingMarkersMatchAssemblyGrep)
{
    uint64_t seed = GetParam();
    instrument::Instrumented prog = core::makeProgram(seed);
    for (CompilerId id : {CompilerId::Alpha, CompilerId::Beta}) {
        for (OptLevel level : compiler::allOptLevels()) {
            Compiler comp(id, level);
            Compilation result = comp.compile(*prog.unit);
            ASSERT_TRUE(result.ok()) << comp.describe() << " seed "
                                     << seed << ": " << result.error();
            EXPECT_EQ(result.survivingMarkers(),
                      core::aliveMarkersInAsm(result.assembly()))
                << comp.describe() << " seed " << seed
                << ": IR walk and assembly grep disagree";
        }
    }
}

// 200 seeds x 2 compilers x 5 levels = 2000 IR-vs-asm comparisons.
INSTANTIATE_TEST_SUITE_P(Seeds, IrVsAsmEquivalence,
                         ::testing::Range<uint64_t>(8000, 8200));

//===------------------------------------------------------------------===//
// Campaign laziness + byte-identity across survival sources
//===------------------------------------------------------------------===//

TEST(Compilation, PlainCampaignNeverMaterializesAssembly)
{
    std::vector<core::BuildSpec> builds = {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
    // Campaign compilations attach no metrics observer, so emissions
    // land on the process-global registry; a plain (Ir-source)
    // campaign must not move it.
    support::Counter &emits =
        support::MetricsRegistry::global().counter("backend.emits");
    uint64_t before = emits.value();
    core::CampaignOptions options;
    options.threads = 2;
    core::Campaign campaign = core::runCampaign(1000, 16, builds,
                                                options);
    EXPECT_EQ(campaign.metrics.seedsDone, 16u);
    EXPECT_EQ(emits.value(), before)
        << "a plain campaign materialized assembly";

    // The assembly-grep path really does emit — the counter moves.
    options.survivalSource = core::SurvivalSource::Assembly;
    core::runCampaign(1000, 4, builds, options);
    EXPECT_GT(emits.value(), before);
}

TEST(Compilation, RecordsIdenticalAcrossSurvivalSourcesAndThreads)
{
    std::vector<core::BuildSpec> builds = {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
    std::vector<core::Campaign> runs;
    for (core::SurvivalSource source :
         {core::SurvivalSource::Ir, core::SurvivalSource::Assembly}) {
        for (unsigned threads : {1u, 8u}) {
            core::CampaignOptions options;
            options.survivalSource = source;
            options.threads = threads;
            options.computePrimary = true;
            options.collectRemarks = true;
            runs.push_back(
                core::runCampaign(500, 24, builds, options));
        }
    }
    for (size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[0].programs, runs[i].programs)
            << "records diverge between run 0 and run " << i;
    }
}

/** Byte-exact rendering of a summary, for cross-path comparison. */
std::string
renderSummary(const core::TriageSummary &summary)
{
    std::ostringstream out;
    for (const core::Report &report : summary.reports) {
        out << report.finding.seed << ':' << report.finding.marker
            << ':' << report.finding.missedBy.name() << ':'
            << report.finding.reference.name() << '\n'
            << report.signature << '\n'
            << report.confirmed << report.duplicate << report.fixed
            << ':' << report.reductionTests << '\n'
            << report.reducedSource << '\n';
    }
    return out.str();
}

TEST(Compilation, TriageSummariesIdenticalAcrossSurvivalSources)
{
    std::vector<core::BuildSpec> builds = {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
    core::CampaignOptions options;
    options.computePrimary = true;
    core::Campaign campaign = core::runCampaign(200, 12, builds,
                                                options);
    std::vector<core::Finding> findings = core::collectFindings(
        campaign, builds[0], builds[1], /*max_findings=*/4);
    if (findings.empty())
        GTEST_SKIP() << "corpus produced no alpha-vs-beta findings";

    core::TriageOptions ir_options;
    ir_options.survivalSource = core::SurvivalSource::Ir;
    core::TriageOptions asm_options;
    asm_options.survivalSource = core::SurvivalSource::Assembly;
    std::string from_ir =
        renderSummary(core::triageFindings(findings, ir_options));
    std::string from_asm =
        renderSummary(core::triageFindings(findings, asm_options));
    EXPECT_FALSE(from_ir.empty());
    EXPECT_EQ(from_ir, from_asm);
}

//===------------------------------------------------------------------===//
// Thread-safety regression (the old mutable lastError_ race)
//===------------------------------------------------------------------===//

TEST(Compilation, SharedConstCompilerIsRaceFree)
{
    // The redesign's TSan regression: 8 threads share one const
    // Compiler. Under the old API every compile wrote the Compiler's
    // mutable lastError_ — a data race even on success. Now errors are
    // part of each thread's Compilation value. Run one valid and one
    // verifier-failing compile per thread; every thread must see the
    // same (per-input) outcome.
    auto unit = parseOk(R"(
        void DCEMarker0(void);
        static int a = 0;
        int main() {
            if (a) { DCEMarker0(); }
            return 0;
        }
    )");
    ASSERT_TRUE(unit);
    auto lowered = ir::lowerToIr(*unit);
    auto bad = invalidModule();

    const Compiler comp(CompilerId::Beta, OptLevel::O2);
    const std::string expected_error =
        comp.compileLowered(*bad, /*verify_each=*/true).error();
    ASSERT_FALSE(expected_error.empty());

    constexpr unsigned kThreads = 8;
    std::vector<std::string> errors(kThreads);
    std::vector<int> ok_flags(kThreads, 0);
    {
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < kThreads; ++t) {
            workers.emplace_back([&, t] {
                Compilation good =
                    comp.compileLowered(*lowered,
                                        /*verify_each=*/true);
                ok_flags[t] = good.ok() ? 1 : 0;
                Compilation failed =
                    comp.compileLowered(*bad, /*verify_each=*/true);
                errors[t] = failed.error();
            });
        }
        for (std::thread &worker : workers)
            worker.join();
    }
    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(ok_flags[t], 1) << "thread " << t;
        EXPECT_EQ(errors[t], expected_error) << "thread " << t;
    }
}

} // namespace
} // namespace dce
