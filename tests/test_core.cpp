/** @file Tests for the core DCE-oracle framework: marker liveness,
 * ground truth, differential detection, primary-marker analysis
 * (Figure 2 / Listing 5), campaigns, reduction, bisection, triage. */
#include <gtest/gtest.h>

#include "bisect/bisect.hpp"
#include "core/campaign.hpp"
#include "core/triage.hpp"
#include "helpers.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "reduce/reducer.hpp"

namespace dce::core {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;
using dce::test::parseOk;
using instrument::instrumentSource;

TEST(Core, AliveMarkersInAsmParsesCalls)
{
    std::string assembly = "\tcall DCEMarker0\n"
                           "\tmovq %rax, %rcx\n"
                           "\tcall helper2\n"
                           "\tcall DCEMarker17\n";
    std::set<unsigned> alive = aliveMarkersInAsm(assembly);
    EXPECT_EQ(alive, (std::set<unsigned>{0, 17}));
}

TEST(Core, GroundTruthSeparatesDeadAndAlive)
{
    auto prog = instrumentSource(R"(
        int a = 1;
        int main() {
            if (a) { a = 2; } else { a = 3; }
            return a;
        }
    )");
    GroundTruth truth = groundTruth(prog);
    ASSERT_TRUE(truth.valid);
    EXPECT_EQ(truth.aliveMarkers.size(), 1u);
    EXPECT_EQ(truth.deadMarkers.size(), 1u);
}

TEST(Core, DifferentialDetectsStoredEqualsInitMiss)
{
    // Listing 4a shape: beta eliminates, alpha misses.
    auto prog = instrumentSource(R"(
        static int a = 0;
        int x;
        int main() {
            if (a) { x = 5; }
            a = 0;
            return 0;
        }
    )");
    GroundTruth truth = groundTruth(prog);
    ASSERT_TRUE(truth.valid);
    ASSERT_EQ(truth.deadMarkers.size(), 1u);

    compiler::Compiler alpha(CompilerId::Alpha, OptLevel::O3);
    compiler::Compiler beta(CompilerId::Beta, OptLevel::O3);
    std::set<unsigned> alpha_alive = aliveMarkers(*prog.unit, alpha);
    std::set<unsigned> beta_alive = aliveMarkers(*prog.unit, beta);

    EXPECT_EQ(missedMarkers(alpha_alive, truth).size(), 1u);
    EXPECT_TRUE(missedMarkers(beta_alive, truth).empty());
}

TEST(Core, MarkersInAliveBlocksAreNeverMissed)
{
    auto prog = instrumentSource(R"(
        int a = 1;
        int main() {
            if (a) { a = 2; }
            return a;
        }
    )");
    GroundTruth truth = groundTruth(prog);
    ASSERT_TRUE(truth.valid);
    for (CompilerId id : {CompilerId::Alpha, CompilerId::Beta}) {
        for (OptLevel level : compiler::allOptLevels()) {
            compiler::Compiler comp(id, level);
            std::set<unsigned> alive = aliveMarkers(*prog.unit, comp);
            // Truly alive markers must be in the assembly (soundness).
            for (unsigned m : truth.aliveMarkers)
                EXPECT_TRUE(alive.count(m)) << comp.describe();
        }
    }
}

TEST(Core, PrimaryAnalysisMatchesListing5)
{
    // Listing 5 / Figure 2: nested dead ifs. If a compiler misses both
    // the outer (B2) and inner (B3) blocks, only the outer is primary.
    auto prog = instrumentSource(R"(
        int x;
        static int a = 0;
        int main() {
            if (a) {
                x = 1;
                if (x == 1) { x = 2; }
            }
            a = 0;
            return 0;
        }
    )");
    GroundTruth truth = groundTruth(prog);
    ASSERT_TRUE(truth.valid);
    ASSERT_EQ(truth.deadMarkers.size(), 2u);

    // alpha misses both (flow-insensitive global analysis).
    compiler::Compiler alpha(CompilerId::Alpha, OptLevel::O3);
    std::set<unsigned> missed =
        missedMarkers(aliveMarkers(*prog.unit, alpha), truth);
    ASSERT_EQ(missed.size(), 2u);

    std::set<unsigned> primary =
        primaryMissedMarkers(prog, missed, truth);
    ASSERT_EQ(primary.size(), 1u);
    // The primary one is the outer marker, which was inserted into the
    // if-then of `if (a)` — the one the inner marker's walk reaches.
    unsigned outer = *primary.begin();
    EXPECT_TRUE(missed.count(outer));

    // If only the inner block were missed (outer detected), the inner
    // becomes primary: simulate by passing a singleton missed set.
    unsigned inner = 0;
    for (unsigned m : missed) {
        if (m != outer)
            inner = m;
    }
    std::set<unsigned> only_inner{inner};
    EXPECT_EQ(primaryMissedMarkers(prog, only_inner, truth),
              only_inner);
}

TEST(Core, CampaignAggregatesAcrossSeeds)
{
    std::vector<BuildSpec> builds = {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
    Campaign campaign = runCampaign(0, 10, builds);
    ASSERT_EQ(campaign.programs.size(), 10u);
    ASSERT_EQ(campaign.builds.size(), builds.size());
    EXPECT_GT(campaign.totalMarkers(), 0u);
    EXPECT_GT(campaign.totalDead(), 0u);
    // Dead markers should dominate (§4.1: ~90% on random programs).
    EXPECT_GT(campaign.totalDead(), campaign.totalAlive());
    // Compilers at O3 eliminate the large majority of dead markers.
    for (const BuildSpec &spec : builds) {
        std::optional<BuildId> build = campaign.findBuild(spec);
        ASSERT_TRUE(build.has_value()) << spec.name();
        EXPECT_LT(campaign.totalMissed(*build),
                  campaign.totalDead() / 2)
            << spec.name();
    }
}

TEST(Core, CampaignHandlesResolveByNameAndSpec)
{
    std::vector<BuildSpec> builds = {
        {CompilerId::Alpha, OptLevel::O2, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
    // BuildSpec::name() must match the (Compiler-constructing)
    // describe() it replaced.
    for (const BuildSpec &spec : builds)
        EXPECT_EQ(spec.name(), spec.make().describe());

    Campaign campaign = runCampaign(0, 6, builds);
    EXPECT_EQ(campaign.buildNames(),
              (std::vector<std::string>{builds[0].name(),
                                        builds[1].name()}));
    EXPECT_EQ(campaign.findBuild(builds[1].name()), BuildId{1});
    EXPECT_EQ(campaign.findBuild(builds[1]), BuildId{1});
    EXPECT_FALSE(campaign.findBuild("no-such-build").has_value());
    EXPECT_FALSE(campaign.idOf("no-such-build").valid());
    // An invalid handle is a safe argument to the totals.
    EXPECT_EQ(campaign.totalMissed(campaign.idOf("no-such-build")),
              0u);
    EXPECT_EQ(campaign.idOf(builds[0].name()), BuildId{0});
}

TEST(Core, CampaignPrimarySubset)
{
    std::vector<BuildSpec> builds = {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
    };
    CampaignOptions options;
    options.computePrimary = true;
    Campaign campaign = runCampaign(50, 8, builds, options);
    BuildId build{0};
    EXPECT_LE(campaign.totalPrimaryMissed(build),
              campaign.totalMissed(build));
    for (const ProgramRecord &record : campaign.programs) {
        if (!record.valid)
            continue;
        for (unsigned m : record.primaryFor(build))
            EXPECT_TRUE(record.missedFor(build).count(m));
    }
}

TEST(Reduce, ShrinksWhilePreservingInterestingness)
{
    std::string source;
    for (int i = 0; i < 30; ++i)
        source += "int g" + std::to_string(i) + ";\n";
    source += "int main() { return g7; }\n";

    // Interesting = parses and mentions g7 in main.
    auto interesting = [](const std::string &candidate) {
        DiagnosticEngine diags;
        auto unit = lang::parseAndCheck(candidate, diags);
        return unit != nullptr &&
               candidate.find("return g7;") != std::string::npos;
    };
    reduce::ReduceResult result =
        reduce::reduceSource(source, interesting);
    EXPECT_TRUE(interesting(result.source));
    EXPECT_LT(result.linesAfter, 5u) << result.source;
}

TEST(Reduce, UninterestingInputReturnedUnchanged)
{
    reduce::ReduceResult result = reduce::reduceSource(
        "int main() { return 0; }",
        [](const std::string &) { return false; });
    EXPECT_EQ(result.testsRun, 1u);
    EXPECT_EQ(result.source, "int main() { return 0; }");
}

TEST(Bisect, FindsTheOffendingCommit)
{
    // The VRP rem regression (beta commit c4b8aa016f3): at O3, the
    // Listing-8b essence stops being eliminated at exactly that commit.
    auto unit = parseOk(R"(
        void DCEMarker0(void);
        int x;
        int main() {
            int v = x;
            if (v == 7) {
                if (v % 3 == 0) { DCEMarker0(); }
            }
            return 0;
        }
    )");
    ASSERT_TRUE(unit);
    const compiler::CompilerSpec &spec =
        compiler::spec(CompilerId::Beta);
    bisect::BisectResult result = bisect::bisectRegression(
        CompilerId::Beta, OptLevel::O3, *unit, 0, 0, spec.headIndex());
    EXPECT_EQ(result.status, bisect::BisectStatus::Found);
    ASSERT_TRUE(result.valid);
    ASSERT_TRUE(result.commit != nullptr);
    EXPECT_EQ(result.commit->hash, "c4b8aa016f3");
    EXPECT_EQ(result.commit->component, "Value Constraint Analysis");
    EXPECT_TRUE(result.commit->knownRegression);
}

TEST(Bisect, RejectsBadEndpoints)
{
    auto unit = parseOk(R"(
        void DCEMarker0(void);
        int a = 1;
        int main() {
            if (a) { DCEMarker0(); }
            return 0;
        }
    )");
    ASSERT_TRUE(unit);
    // Marker is alive everywhere: "good" endpoint already misses.
    bisect::BisectResult result = bisect::bisectRegression(
        CompilerId::Beta, OptLevel::O3, *unit, 0, 0,
        compiler::spec(CompilerId::Beta).headIndex());
    EXPECT_FALSE(result.valid);
    EXPECT_EQ(result.status, bisect::BisectStatus::AlreadyBadAtGood);
    EXPECT_EQ(result.commit, nullptr);
}

TEST(Bisect, DistinguishesEndpointEdgeCases)
{
    // Trivially dead marker every build folds away: "bad" endpoint is
    // not actually bad.
    auto dead_unit = parseOk(R"(
        void DCEMarker0(void);
        int main() {
            if (0) { DCEMarker0(); }
            return 0;
        }
    )");
    ASSERT_TRUE(dead_unit);
    size_t head = compiler::spec(CompilerId::Beta).headIndex();
    bisect::BisectResult result = bisect::bisectRegression(
        CompilerId::Beta, OptLevel::O3, *dead_unit, 0, 0, head);
    EXPECT_FALSE(result.valid);
    EXPECT_EQ(result.status, bisect::BisectStatus::NotBadAtBad);

    // Degenerate ranges never touch a compiler at all.
    EXPECT_EQ(bisect::bisectRegression(CompilerId::Beta, OptLevel::O3,
                                       *dead_unit, 0, head, head)
                  .status,
              bisect::BisectStatus::EmptyRange);
    EXPECT_EQ(bisect::bisectRegression(CompilerId::Beta, OptLevel::O3,
                                       *dead_unit, 0, head, 0)
                  .status,
              bisect::BisectStatus::EmptyRange);
}

TEST(Triage, ClassifiesAndDeduplicates)
{
    // Two findings with the same root cause (alpha's flow-insensitive
    // global analysis) must deduplicate to one confirmed report.
    std::vector<BuildSpec> builds = {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
    CampaignOptions options;
    options.computePrimary = true;
    Campaign campaign = runCampaign(200, 12, builds, options);
    std::vector<Finding> findings = collectFindings(
        campaign, builds[0], builds[1], /*max_findings=*/4);
    if (findings.empty())
        GTEST_SKIP() << "corpus produced no alpha-vs-beta findings";

    TriageSummary summary = triageFindings(findings);
    EXPECT_EQ(summary.reports.size(), findings.size());
    unsigned reported = summary.reported(CompilerId::Alpha);
    unsigned confirmed =
        summary.count(CompilerId::Alpha, &Report::confirmed);
    unsigned duplicates =
        summary.count(CompilerId::Alpha, &Report::duplicate);
    EXPECT_EQ(reported, confirmed + duplicates);
    for (const Report &report : summary.reports) {
        EXPECT_FALSE(report.signature.empty());
        EXPECT_FALSE(report.reducedSource.empty());
        // The reduced case must be smaller or equal to the original.
        EXPECT_GT(report.reductionTests, 0u);
    }
}

} // namespace
} // namespace dce::core
