/** @file Unit tests for the MiniC lexer. */
#include <gtest/gtest.h>

#include "lang/lexer.hpp"

namespace dce::lang {
namespace {

std::vector<Token>
lex(const std::string &source)
{
    DiagnosticEngine diags;
    Lexer lexer(source, diags);
    std::vector<Token> tokens = lexer.lexAll();
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    return tokens;
}

TEST(Lexer, EmptyInputYieldsEof)
{
    auto tokens = lex("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_TRUE(tokens[0].is(TokKind::Eof));
}

TEST(Lexer, KeywordsAndIdentifiers)
{
    auto tokens = lex("int main while whileX _x1");
    ASSERT_EQ(tokens.size(), 6u);
    EXPECT_TRUE(tokens[0].is(TokKind::KwInt));
    EXPECT_TRUE(tokens[1].is(TokKind::Identifier));
    EXPECT_EQ(tokens[1].text, "main");
    EXPECT_TRUE(tokens[2].is(TokKind::KwWhile));
    EXPECT_TRUE(tokens[3].is(TokKind::Identifier));
    EXPECT_EQ(tokens[3].text, "whileX");
    EXPECT_EQ(tokens[4].text, "_x1");
}

TEST(Lexer, DecimalAndHexLiterals)
{
    auto tokens = lex("0 42 0x2A 0XfF 42u 42L");
    EXPECT_EQ(tokens[0].intValue, 0u);
    EXPECT_EQ(tokens[1].intValue, 42u);
    EXPECT_EQ(tokens[2].intValue, 42u);
    EXPECT_EQ(tokens[3].intValue, 255u);
    EXPECT_EQ(tokens[4].intValue, 42u); // suffix ignored
    EXPECT_EQ(tokens[5].intValue, 42u);
}

TEST(Lexer, MultiCharOperatorsAreMaximalMunch)
{
    auto tokens = lex("<<= << <= < >>= >> >= > == = ++ + += && &= & || |");
    std::vector<TokKind> expected = {
        TokKind::ShlAssign, TokKind::Shl, TokKind::Le, TokKind::Lt,
        TokKind::ShrAssign, TokKind::Shr, TokKind::Ge, TokKind::Gt,
        TokKind::EqEq, TokKind::Assign, TokKind::PlusPlus, TokKind::Plus,
        TokKind::PlusAssign, TokKind::AmpAmp, TokKind::AmpAssign,
        TokKind::Amp, TokKind::PipePipe, TokKind::Pipe, TokKind::Eof};
    ASSERT_EQ(tokens.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
}

TEST(Lexer, CommentsAreSkipped)
{
    auto tokens = lex("a // line comment\n b /* block\n comment */ c");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[2].text, "c");
}

TEST(Lexer, TracksLineAndColumn)
{
    auto tokens = lex("a\n  b");
    EXPECT_EQ(tokens[0].loc.line, 1u);
    EXPECT_EQ(tokens[0].loc.column, 1u);
    EXPECT_EQ(tokens[1].loc.line, 2u);
    EXPECT_EQ(tokens[1].loc.column, 3u);
}

TEST(Lexer, ReportsUnexpectedCharacter)
{
    DiagnosticEngine diags;
    Lexer lexer("a $ b", diags);
    auto tokens = lexer.lexAll();
    EXPECT_TRUE(diags.hasErrors());
    // The bad character is skipped; the rest still lexes.
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, ReportsUnterminatedBlockComment)
{
    DiagnosticEngine diags;
    Lexer lexer("a /* never closed", diags);
    lexer.lexAll();
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, OverflowingLiteralIsAnError)
{
    DiagnosticEngine diags;
    Lexer lexer("99999999999999999999999999", diags);
    lexer.lexAll();
    EXPECT_TRUE(diags.hasErrors());
}

} // namespace
} // namespace dce::lang
