/** @file Unit tests for semantic analysis: typing rules and rejection. */
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "lang/sema.hpp"

namespace dce::lang {
namespace {

using dce::test::parseErrors;
using dce::test::parseOk;

TEST(Sema, ResolvesVariablesThroughScopes)
{
    auto unit = parseOk(R"(
        int a = 1;
        int main() {
            int a = 2;
            { int a = 3; a = 4; }
            return a;
        }
    )");
    ASSERT_TRUE(unit);
}

TEST(Sema, UndeclaredVariableRejected)
{
    std::string errors = parseErrors("int main() { return nope; }");
    EXPECT_NE(errors.find("undeclared"), std::string::npos);
}

TEST(Sema, UndeclaredFunctionRejected)
{
    parseErrors("int main() { nope(); return 0; }");
}

TEST(Sema, CallArityChecked)
{
    parseErrors(R"(
        void f(int a);
        int main() { f(); return 0; }
    )");
}

TEST(Sema, UsualArithmeticConversions)
{
    auto unit = parseOk(R"(
        char c; short s; int i; long l; unsigned u;
        int main() {
            l = c + s;    // both promote to int, then convert to long
            i = c * c;
            u = u + i;    // unsigned wins at same width
            l = u + l;    // wider signed can represent unsigned int
            return 0;
        }
    )");
    ASSERT_TRUE(unit);
}

TEST(Sema, PointerComparisonsTyped)
{
    auto unit = parseOk(R"(
        char a; char b[2];
        int main() {
            char *d = &a;
            char *e = &b[1];
            if (d == e) { return 1; }
            if (d != 0) { return 2; }
            return 0;
        }
    )");
    ASSERT_TRUE(unit);
}

TEST(Sema, MismatchedPointerComparisonRejected)
{
    parseErrors(R"(
        char a; int b;
        int main() {
            char *p = &a;
            int *q = &b;
            if (p == q) { return 1; }
            return 0;
        }
    )");
}

TEST(Sema, AssignToRValueRejected)
{
    parseErrors("int main() { 1 = 2; return 0; }");
}

TEST(Sema, AddressOfRValueRejected)
{
    parseErrors("int main() { int a = 0; int *p = &(a + 1); return 0; }");
}

TEST(Sema, DerefNonPointerRejected)
{
    parseErrors("int main() { int a = 0; return *a; }");
}

TEST(Sema, NonConstGlobalInitializerRejected)
{
    parseErrors(R"(
        int a = 1;
        int b = a + 1;
    )");
}

TEST(Sema, ConstGlobalInitializerFoldsOperators)
{
    auto unit = parseOk("int a = (3 + 4) * 2 - -1;");
    ASSERT_TRUE(unit);
    EXPECT_EQ(evalConstInt(*unit->globals[0]->init), 15);
}

TEST(Sema, ConstEvalMatchesMiniCSafeMath)
{
    auto unit = parseOk(R"(
        int a = 7 / 0;
        int b = 7 % 0;
        int c = 1 << 33;
    )");
    ASSERT_TRUE(unit);
    EXPECT_EQ(evalConstInt(*unit->globals[0]->init), 7);
    EXPECT_EQ(evalConstInt(*unit->globals[1]->init), 7);
    EXPECT_EQ(evalConstInt(*unit->globals[2]->init), 2); // 33 & 31 == 1
}

TEST(Sema, ConstEvalShortCircuits)
{
    // Division by a non-constant would make the whole expression
    // non-constant, but && short-circuits before evaluating it.
    auto unit = parseOk("int a = 0 && (1 / 0); int b = 1 || 0;");
    ASSERT_TRUE(unit);
    EXPECT_EQ(evalConstInt(*unit->globals[0]->init), 0);
    EXPECT_EQ(evalConstInt(*unit->globals[1]->init), 1);
}

TEST(Sema, BreakOutsideLoopRejected)
{
    parseErrors("int main() { break; return 0; }");
}

TEST(Sema, ContinueOutsideLoopRejected)
{
    parseErrors("int main() { continue; return 0; }");
}

TEST(Sema, ReturnTypeChecked)
{
    parseErrors(R"(
        void f(void) { return 3; }
    )");
    parseErrors(R"(
        int g(void) { return; }
    )");
}

TEST(Sema, DuplicateGlobalRejected)
{
    parseErrors("int a; int a;");
}

TEST(Sema, DuplicateCaseValueRejected)
{
    parseErrors(R"(
        int main() {
            switch (1) {
              case 2: break;
              case 2: break;
            }
            return 0;
        }
    )");
}

TEST(Sema, ImplicitConversionInsertedOnAssignment)
{
    auto unit = parseOk(R"(
        char c;
        int main() { c = 1000; return c; }
    )");
    ASSERT_TRUE(unit);
}

TEST(Sema, ArrayDecayInConditions)
{
    auto unit = parseOk(R"(
        int arr[3];
        int main() { if (arr) { return 1; } return 0; }
    )");
    ASSERT_TRUE(unit);
}

TEST(Sema, ReRunningIsIdempotent)
{
    auto unit = parseOk(R"(
        int a = 3;
        int main() { return a + 1; }
    )");
    ASSERT_TRUE(unit);
    DiagnosticEngine diags;
    Sema sema(diags);
    sema.check(*unit);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    sema.check(*unit);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
}

TEST(Sema, CloneNeedsAndSurvivesResema)
{
    auto unit = parseOk(R"(
        int a = 3;
        int helper(int x) { return x * 2; }
        int main() { return helper(a); }
    )");
    ASSERT_TRUE(unit);
    auto clone = unit->clone();
    DiagnosticEngine diags;
    Sema sema(diags);
    sema.check(*clone);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
}

} // namespace
} // namespace dce::lang
