/** @file Tests for the parallel campaign execution engine: the thread
 * pool, module cloning (the lowering cache's workhorse), the
 * determinism contract (thread count never changes the records), and
 * the observer/metrics layer. */
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "backend/codegen.hpp"
#include "core/campaign.hpp"
#include "ir/clone.hpp"
#include "ir/lowering.hpp"
#include "ir/verifier.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace dce::core {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;

std::vector<BuildSpec>
twoBuilds()
{
    return {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
}

TEST(ThreadPool, ForChunksCoversRangeExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 7u}) {
        support::ThreadPool pool(threads);
        constexpr size_t kCount = 103;
        std::vector<std::atomic<int>> touched(kCount);
        pool.forChunks(kCount, 4, [&](size_t begin, size_t end) {
            ASSERT_LT(begin, end);
            ASSERT_LE(end, kCount);
            for (size_t i = begin; i < end; ++i)
                touched[i].fetch_add(1);
        });
        for (size_t i = 0; i < kCount; ++i)
            EXPECT_EQ(touched[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ForChunksHandlesEmptyAndTinyRanges)
{
    support::ThreadPool pool(4);
    int calls = 0;
    pool.forChunks(0, 8, [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls, 0);

    std::atomic<size_t> total{0};
    pool.forChunks(3, 100, [&](size_t begin, size_t end) {
        total += end - begin;
    });
    EXPECT_EQ(total.load(), 3u);
}

TEST(ThreadPool, PropagatesWorkerExceptions)
{
    support::ThreadPool pool(4);
    EXPECT_THROW(pool.forChunks(64, 1,
                                [&](size_t begin, size_t) {
                                    if (begin == 13)
                                        throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<size_t> total{0};
    pool.forChunks(10, 2, [&](size_t begin, size_t end) {
        total += end - begin;
    });
    EXPECT_EQ(total.load(), 10u);
}

TEST(ThreadPool, SubmitAndWaitRunsEverything)
{
    support::ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 20);
}

TEST(CloneModule, CloneIsIsomorphicAndIndependent)
{
    // Clone a real generated program's O0 lowering; the clone must
    // verify, emit identical assembly, and keep the original intact
    // when optimized.
    instrument::Instrumented prog = makeProgram(/*seed=*/42);
    auto lowered = ir::lowerToIr(*prog.unit);
    std::string original_asm = backend::emitAssembly(*lowered);

    auto clone = ir::cloneModule(*lowered);
    ir::VerifyResult verified = ir::verifyModule(*clone);
    EXPECT_TRUE(verified.ok()) << verified.str();
    EXPECT_EQ(backend::emitAssembly(*clone), original_asm);

    // Optimizing the clone must not touch the source module.
    compiler::Compiler beta(CompilerId::Beta, OptLevel::O3);
    beta.optimize(*clone);
    verified = ir::verifyModule(*clone);
    EXPECT_TRUE(verified.ok()) << verified.str();
    EXPECT_EQ(backend::emitAssembly(*lowered), original_asm);
}

TEST(CloneModule, LoweredPathMatchesUnitPath)
{
    // The lowering-cache compile path (clone + optimize) must report
    // the same alive markers as compiling from the AST.
    for (uint64_t seed : {7u, 42u, 99u}) {
        instrument::Instrumented prog = makeProgram(seed);
        auto lowered = ir::lowerToIr(*prog.unit);
        for (const BuildSpec &spec : twoBuilds()) {
            compiler::Compiler comp = spec.make();
            EXPECT_EQ(aliveMarkers(*lowered, comp),
                      aliveMarkers(*prog.unit, comp))
                << "seed " << seed << " build " << spec.name();
        }
    }
}

TEST(Engine, RecordsAreIdenticalAcrossThreadCounts)
{
    // The determinism contract: same seeds + builds => bit-identical
    // records, regardless of thread count or chunking.
    std::vector<BuildSpec> builds = twoBuilds();
    support::MetricsRegistry serial_registry, parallel_registry;
    CampaignOptions serial;
    serial.computePrimary = true;
    serial.collectRemarks = true; // kills are part of the contract too
    serial.threads = 1;
    serial.metrics = &serial_registry;

    CampaignOptions parallel = serial;
    parallel.threads = 8;
    parallel.chunkSize = 3; // deliberately awkward chunking
    parallel.metrics = &parallel_registry;

    Campaign one = runCampaign(0, 32, builds, serial);
    Campaign eight = runCampaign(0, 32, builds, parallel);

    ASSERT_EQ(one.programs.size(), eight.programs.size());
    for (size_t i = 0; i < one.programs.size(); ++i) {
        EXPECT_EQ(one.programs[i], eight.programs[i])
            << "seed " << one.programs[i].seed;
    }
    EXPECT_EQ(one.builds, eight.builds);
    // Count-style metrics are deterministic as well; only timings vary.
    for (const char *key :
         {"campaign.seeds", "campaign.cache_hits",
          "campaign.cache_misses"}) {
        EXPECT_EQ(serial_registry.counterValue(key),
                  parallel_registry.counterValue(key))
            << key;
    }
    EXPECT_EQ(serial_registry.counterTotal("campaign.invalid"),
              parallel_registry.counterTotal("campaign.invalid"));
    EXPECT_EQ(
        serial_registry.counterTotal("campaign.markers_eliminated"),
        parallel_registry.counterTotal("campaign.markers_eliminated"));
}

TEST(Engine, ObserverSeesMonotoneProgressAndFinalTotals)
{
    constexpr unsigned kSeeds = 24;
    std::vector<CampaignProgress> snapshots;
    std::mutex snapshots_mutex;

    support::MetricsRegistry registry;
    CampaignOptions options;
    options.threads = 4;
    options.chunkSize = 2;
    options.metrics = &registry;
    options.observer = [&](const CampaignProgress &progress) {
        std::lock_guard<std::mutex> lock(snapshots_mutex);
        snapshots.push_back(progress);
    };
    Campaign campaign = runCampaign(300, kSeeds, twoBuilds(), options);

    // One callback per seed, seedsDone strictly increasing to count.
    ASSERT_EQ(snapshots.size(), kSeeds);
    for (size_t i = 0; i < snapshots.size(); ++i) {
        EXPECT_EQ(snapshots[i].seedsDone, i + 1);
        EXPECT_EQ(snapshots[i].seedsTotal, kSeeds);
    }

    // Final snapshot agrees with the campaign's metrics registry and
    // with the records.
    const CampaignProgress &final_progress = snapshots.back();
    EXPECT_EQ(final_progress.seedsDone, campaign.metrics.seedsDone);
    EXPECT_EQ(final_progress.invalidPrograms,
              registry.counterTotal("campaign.invalid"));
    EXPECT_EQ(final_progress.cacheHits,
              registry.counterValue("campaign.cache_hits"));
    EXPECT_EQ(final_progress.cacheMisses,
              registry.counterValue("campaign.cache_misses"));
    uint64_t invalid_records = 0;
    for (const ProgramRecord &record : campaign.programs)
        invalid_records += record.valid ? 0 : 1;
    EXPECT_EQ(final_progress.invalidPrograms, invalid_records);
}

TEST(Engine, MetricsAccountForTheLoweringCache)
{
    constexpr unsigned kSeeds = 12;
    std::vector<BuildSpec> builds = twoBuilds();
    support::MetricsRegistry registry;
    CampaignOptions options;
    options.threads = 2;
    options.metrics = &registry;
    Campaign campaign = runCampaign(0, kSeeds, builds, options);

    // Exactly one lowering (miss) per seed; at least ground truth plus
    // one clone per build per valid seed on the hit side.
    uint64_t hits = registry.counterValue("campaign.cache_hits");
    uint64_t misses = registry.counterValue("campaign.cache_misses");
    EXPECT_EQ(misses, kSeeds);
    uint64_t valid_seeds = 0;
    for (const ProgramRecord &record : campaign.programs)
        valid_seeds += record.valid ? 1 : 0;
    EXPECT_GE(hits, kSeeds + valid_seeds * builds.size());
    EXPECT_GT(double(hits) / double(hits + misses), 0.5);
    EXPECT_EQ(registry.counterValue("campaign.seeds"), kSeeds);
    EXPECT_EQ(campaign.metrics.seedsDone, kSeeds);
    EXPECT_GT(campaign.metrics.wallSeconds, 0.0);

    // Every seed contributes one sample to the generate/ground-truth
    // histograms; compile is sampled per build, valid seeds only.
    EXPECT_EQ(registry.histogram("campaign.stage_us", "generate")
                  .count(),
              kSeeds);
    EXPECT_EQ(registry.histogram("campaign.stage_us", "ground_truth")
                  .count(),
              kSeeds);
    EXPECT_EQ(registry.histogram("campaign.stage_us", "compile")
                  .count(),
              valid_seeds * builds.size());

    // Marker-elimination counters exist per opt level and only count
    // what the records say was eliminated (trueDead ∖ missed).
    uint64_t eliminated = 0;
    for (const ProgramRecord &record : campaign.programs) {
        if (!record.valid)
            continue;
        for (size_t b = 0; b < builds.size(); ++b) {
            eliminated += record.trueDead.size() -
                          record.missedFor(BuildId{b}).size();
        }
    }
    EXPECT_EQ(
        registry.counterTotal("campaign.markers_eliminated"),
        eliminated);
}

} // namespace
} // namespace dce::core
