/** @file Tests for marker instrumentation. */
#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "helpers.hpp"
#include "instrument/instrument.hpp"
#include "interp/interpreter.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

namespace dce::instrument {
namespace {

using dce::test::parseOk;

TEST(Instrument, MarkerNamesRoundTrip)
{
    EXPECT_EQ(markerName(0), "DCEMarker0");
    EXPECT_EQ(markerName(17), "DCEMarker17");
    EXPECT_EQ(markerIndex("DCEMarker17"), 17u);
    EXPECT_EQ(markerIndex("DCEMarker"), std::nullopt);
    EXPECT_EQ(markerIndex("DCEMarkerX"), std::nullopt);
    EXPECT_EQ(markerIndex("printf"), std::nullopt);
}

TEST(Instrument, InsertsMarkersInAllConstructs)
{
    auto unit = parseOk(R"(
        int a;
        int main() {
            if (a) { a = 1; } else { a = 2; }
            for (int i = 0; i < 3; i++) { a += i; }
            while (a) { a--; }
            do { a++; } while (a < 0);
            switch (a) {
              case 1:
                a = 5;
                break;
              default:
                break;
            }
            return a;
        }
    )");
    ASSERT_TRUE(unit);
    Instrumented result = instrumentUnit(*unit);
    // if-then, if-else, 3 loop bodies, 2 switch arms = 7 markers.
    EXPECT_EQ(result.markerCount(), 7u);

    unsigned loops = 0, arms = 0;
    for (const MarkerInfo &marker : result.markers) {
        loops += marker.site == MarkerSite::LoopBody ? 1 : 0;
        arms += marker.site == MarkerSite::SwitchArm ? 1 : 0;
    }
    EXPECT_EQ(loops, 3u);
    EXPECT_EQ(arms, 2u);
}

TEST(Instrument, AfterConditionalReturnSite)
{
    auto unit = parseOk(R"(
        int a;
        int main() {
            if (a) { return 1; }
            a = 2;
            return a;
        }
    )");
    ASSERT_TRUE(unit);
    Instrumented result = instrumentUnit(*unit);
    bool found = false;
    for (const MarkerInfo &marker : result.markers) {
        found |= marker.site == MarkerSite::AfterConditionalReturn;
    }
    EXPECT_TRUE(found);
}

TEST(Instrument, WrapsNonBlockBodies)
{
    auto unit = parseOk(R"(
        int a;
        int main() {
            if (a) a = 1;
            return a;
        }
    )");
    ASSERT_TRUE(unit);
    Instrumented result = instrumentUnit(*unit);
    EXPECT_EQ(result.markerCount(), 1u);
    // The instrumented program still prints and reparses.
    std::string printed = lang::printUnit(*result.unit);
    DiagnosticEngine diags;
    EXPECT_TRUE(lang::parseAndCheck(printed, diags) != nullptr)
        << printed << diags.str();
}

TEST(Instrument, OriginalUnitUntouched)
{
    auto unit = parseOk(R"(
        int a;
        int main() { if (a) { a = 1; } return a; }
    )");
    ASSERT_TRUE(unit);
    std::string before = lang::printUnit(*unit);
    instrumentUnit(*unit);
    EXPECT_EQ(before, lang::printUnit(*unit));
}

TEST(Instrument, InstrumentationPreservesBehaviour)
{
    // Markers are opaque no-ops at runtime: the instrumented program's
    // exit value and global state must match the original's.
    for (uint64_t seed = 0; seed < 20; ++seed) {
        auto unit = gen::generateProgram(seed);
        auto plain_module = ir::lowerToIr(*unit);
        interp::ExecResult plain = interp::execute(*plain_module);

        Instrumented instrumented = instrumentUnit(*unit);
        auto instr_module = ir::lowerToIr(*instrumented.unit);
        interp::ExecResult traced = interp::execute(*instr_module);

        ASSERT_EQ(plain.status, traced.status) << "seed " << seed;
        EXPECT_EQ(plain.exitValue, traced.exitValue) << "seed " << seed;
        EXPECT_EQ(plain.finalGlobals, traced.finalGlobals)
            << "seed " << seed;
        // The traced run's call sequence, with markers filtered out,
        // must equal the original's.
        std::vector<std::string> non_markers;
        for (const std::string &name : traced.callTrace) {
            if (!markerIndex(name))
                non_markers.push_back(name);
        }
        EXPECT_EQ(plain.callTrace, non_markers) << "seed " << seed;
    }
}

TEST(Instrument, ExecutedMarkersAreWellFormed)
{
    auto instrumented = instrumentSource(R"(
        int a = 1;
        int main() {
            if (a) { a = 2; } else { a = 3; }
            return a;
        }
    )");
    auto module = ir::lowerToIr(*instrumented.unit);
    interp::ExecResult result = interp::execute(*module);
    ASSERT_EQ(result.status, interp::ExecStatus::Ok);
    // Only the then-branch marker runs.
    ASSERT_EQ(result.callTrace.size(), 1u);
    EXPECT_TRUE(markerIndex(result.callTrace[0]).has_value());
}

} // namespace
} // namespace dce::instrument
