/** @file Unit tests for the deterministic RNG. */
#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dce {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool diverged = false;
    for (int i = 0; i < 10 && !diverged; ++i)
        diverged = a.next() != b.next();
    EXPECT_TRUE(diverged);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(10), 10u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t value = rng.range(-3, 3);
        EXPECT_GE(value, -3);
        EXPECT_LE(value, 3);
        saw_lo |= value == -3;
        saw_hi |= value == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(rng.chance(100));
        EXPECT_FALSE(rng.chance(0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(30) ? 1 : 0;
    EXPECT_GT(hits, 2600);
    EXPECT_LT(hits, 3400);
}

TEST(Rng, PickWeightedSkipsZeroWeights)
{
    Rng rng(23);
    std::vector<unsigned> weights = {0, 5, 0, 1};
    for (int i = 0; i < 500; ++i) {
        size_t index = rng.pickWeighted(weights);
        EXPECT_TRUE(index == 1 || index == 3);
    }
}

TEST(Rng, PickWeightedRespectsWeights)
{
    Rng rng(29);
    std::vector<unsigned> weights = {90, 10};
    int first = 0;
    for (int i = 0; i < 10000; ++i)
        first += rng.pickWeighted(weights) == 0 ? 1 : 0;
    EXPECT_GT(first, 8500);
    EXPECT_LT(first, 9500);
}

TEST(Rng, RestoredStateReplaysExactSequence)
{
    // The checkpoint/resume contract: a generator restored from a
    // saved stream state replays the exact sequence the original
    // produces, across every drawing primitive.
    Rng original(1234);
    for (int i = 0; i < 37; ++i) // advance mid-stream
        original.next();
    uint64_t saved = original.state();

    std::vector<uint64_t> expected;
    std::vector<unsigned> weights = {3, 0, 7, 1};
    auto drawAll = [&weights](Rng &rng) {
        std::vector<uint64_t> out;
        for (int i = 0; i < 50; ++i) {
            out.push_back(rng.next());
            out.push_back(rng.below(97));
            out.push_back(static_cast<uint64_t>(rng.range(-10, 10)));
            out.push_back(rng.chance(40) ? 1 : 0);
            out.push_back(rng.pickWeighted(weights));
            out.push_back(rng.split().next());
        }
        return out;
    };
    expected = drawAll(original);

    Rng restored(0);
    restored.restore(saved);
    EXPECT_EQ(drawAll(restored), expected);
    // And the state after replay matches too, so a chain of
    // save/restore cycles stays lossless.
    EXPECT_EQ(restored.state(), original.state());
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(99);
    Rng child = a.split();
    // The child stream should differ from the parent's continuation.
    bool differs = false;
    for (int i = 0; i < 5 && !differs; ++i)
        differs = a.next() != child.next();
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace dce
