/** @file End-to-end interpreter tests: language semantics, marker
 * traces, limits, and the paper's example programs. */
#include <gtest/gtest.h>

#include "helpers.hpp"

#include "ir/lowering.hpp"
#include "lang/parser.hpp"

namespace dce::interp {
namespace {

using dce::test::runSource;

/** Shorthand: run and expect a clean exit with the given value. */
void
expectExit(const std::string &source, int64_t expected)
{
    ExecResult result = runSource(source);
    ASSERT_EQ(result.status, ExecStatus::Ok);
    EXPECT_EQ(result.exitValue, expected) << source;
}

TEST(Interp, ReturnsConstant)
{
    expectExit("int main() { return 42; }", 42);
}

TEST(Interp, ArithmeticAndPrecedence)
{
    expectExit("int main() { return 2 + 3 * 4 - 6 / 2; }", 11);
}

TEST(Interp, SafeDivisionByZero)
{
    expectExit("int a = 7; int b = 0; int main() { return a / b; }", 7);
    expectExit("int a = 9; int b = 0; int main() { return a % b; }", 9);
}

TEST(Interp, SignedOverflowWraps)
{
    expectExit(
        "int a = 2147483647; int main() { return a + 1 == -2147483647 - 1; }",
        1);
}

TEST(Interp, NarrowingAssignmentWraps)
{
    expectExit("char c; int main() { c = 300; return c; }", 44);
    expectExit("char c; int main() { c = 200; return c; }", -56);
}

TEST(Interp, UnsignedComparison)
{
    expectExit("unsigned u = 0; int main() { return u - 1 > 100; }", 1);
}

TEST(Interp, ShiftSemantics)
{
    expectExit("int main() { int a = 1; return a << 33; }", 2);
    expectExit("int main() { int a = -8; return a >> 1; }", -4);
}

TEST(Interp, GlobalsInitializeAndPersist)
{
    expectExit(R"(
        int a = 5;
        void bump(void) { a += 2; }
        int main() { bump(); bump(); return a; }
    )",
               9);
}

TEST(Interp, LocalsZeroInitialized)
{
    expectExit("int main() { int x; return x; }", 0);
}

TEST(Interp, LoopsAccumulate)
{
    expectExit(R"(
        int main() {
            int g = 0;
            for (int f = 0; f < 10; f++) { g += f; }
            return g;
        }
    )",
               45);
}

TEST(Interp, WhileAndDoWhile)
{
    expectExit(R"(
        int main() {
            int n = 5, s = 0;
            while (n) { s += n; n--; }
            do { s++; } while (0);
            return s;
        }
    )",
               16);
}

TEST(Interp, BreakAndContinue)
{
    expectExit(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i == 3) { continue; }
                if (i == 6) { break; }
                s += i;
            }
            return s;
        }
    )",
               0 + 1 + 2 + 4 + 5);
}

TEST(Interp, SwitchDispatch)
{
    expectExit(R"(
        int pick(int v) {
            int r = 0;
            switch (v) {
              case 1:
                r = 10;
                break;
              case 2:
                r = 20;
                break;
              default:
                r = 30;
                break;
            }
            return r;
        }
        int main() { return pick(1) + pick(2) + pick(9); }
    )",
               60);
}

TEST(Interp, ShortCircuitSkipsSideEffects)
{
    expectExit(R"(
        int calls = 0;
        int bump(void) { calls++; return 1; }
        int main() {
            int r = 0 && bump();
            r = r + (1 || bump());
            return calls * 10 + r;
        }
    )",
               1);
}

TEST(Interp, TernaryChoosesLazily)
{
    expectExit(R"(
        int calls = 0;
        int bump(void) { calls++; return 7; }
        int main() {
            int r = 1 ? 3 : bump();
            return calls * 10 + r;
        }
    )",
               3);
}

TEST(Interp, PointersReadAndWriteThrough)
{
    expectExit(R"(
        int c;
        int main() {
            int *g = &c;
            *g = 12;
            return c;
        }
    )",
               12);
}

TEST(Interp, PointerToPointer)
{
    expectExit(R"(
        int a = 3, *f, **d = &f;
        int main() {
            f = &a;
            **d = 9;
            return a;
        }
    )",
               9);
}

TEST(Interp, DistinctObjectsCompareUnequal)
{
    // The Listing-3 shape: &a == &b[1] must be false.
    expectExit(R"(
        char a;
        char b[2];
        int main() {
            char *c = &a;
            char *d = &b[1];
            return c == d;
        }
    )",
               0);
}

TEST(Interp, ArraysIndexAndAlias)
{
    expectExit(R"(
        int a[4] = {1, 2, 3, 4};
        int main() {
            int *p = &a[1];
            p[1] = 30; // writes a[2]
            return a[0] + a[2];
        }
    )",
               31);
}

TEST(Interp, PointerGlobalInitializer)
{
    expectExit(R"(
        static int a[2];
        static int *c = &a[1];
        int main() {
            *c = 5;
            return a[1];
        }
    )",
               5);
}

TEST(Interp, OutOfBoundsIsDefined)
{
    expectExit(R"(
        int a[2] = {1, 2};
        int main() {
            int i = 5;
            a[i] = 99;      // dropped
            return a[i];    // 0
        }
    )",
               0);
}

TEST(Interp, MarkerCallsAreTraced)
{
    ExecResult result = runSource(R"(
        void DCEMarker0(void);
        void DCEMarker1(void);
        int a = 1;
        int main() {
            if (a) { DCEMarker0(); }
            if (!a) { DCEMarker1(); }
            return 0;
        }
    )");
    ASSERT_EQ(result.status, ExecStatus::Ok);
    EXPECT_EQ(result.calledExternals.count("DCEMarker0"), 1u);
    EXPECT_EQ(result.calledExternals.count("DCEMarker1"), 0u);
    ASSERT_EQ(result.callTrace.size(), 1u);
    EXPECT_EQ(result.callTrace[0], "DCEMarker0");
}

TEST(Interp, TraceKeepsCallOrderAndMultiplicity)
{
    ExecResult result = runSource(R"(
        void M(void);
        int main() {
            for (int i = 0; i < 3; i++) { M(); }
            return 0;
        }
    )");
    ASSERT_EQ(result.status, ExecStatus::Ok);
    EXPECT_EQ(result.callTrace.size(), 3u);
}

TEST(Interp, InfiniteLoopTimesOut)
{
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck("int main() { while (1) { } return 0; }",
                                    diags);
    ASSERT_TRUE(unit != nullptr);
    auto module = ir::lowerToIr(*unit);
    ExecLimits limits;
    limits.maxSteps = 10000;
    ExecResult result = execute(*module, "main", limits);
    EXPECT_EQ(result.status, ExecStatus::Timeout);
}

TEST(Interp, RunawayRecursionTraps)
{
    ExecResult result = runSource(R"(
        int f(int n) { return f(n + 1); }
        int main() { return f(0); }
    )");
    EXPECT_TRUE(result.status == ExecStatus::Trap ||
                result.status == ExecStatus::Timeout);
}

TEST(Interp, FinalGlobalsCaptureExternalsOnly)
{
    ExecResult result = runSource(R"(
        int visible = 1;
        static int hidden = 2;
        int main() { visible = 10; hidden = 20; return 0; }
    )");
    ASSERT_EQ(result.status, ExecStatus::Ok);
    ASSERT_EQ(result.finalGlobals.count("visible"), 1u);
    EXPECT_EQ(result.finalGlobals.count("hidden"), 0u);
    EXPECT_EQ(result.finalGlobals.at("visible")[0].i, 10);
}

TEST(Interp, PaperListing1ComputesCorrectly)
{
    // Listing 1a without the printf; both ifs are dead.
    ExecResult result = runSource(R"(
        void DCECheck0(void);
        void DCECheck1(void);
        void DCECheck2(void);
        char a;
        char b[2];
        static int c = 0;
        int main() {
            char *d = &a;
            char *e = &b[1];
            if (d == e) {
                DCECheck0();
                int f = 0;
                int g = 0;
                for (; f < 10; f++) {
                    DCECheck1();
                    g += f;
                }
            }
            if (c) {
                DCECheck2();
                b[0] = 1;
                b[1] = 1;
            }
            c = 0;
            return 0;
        }
    )");
    ASSERT_EQ(result.status, ExecStatus::Ok);
    EXPECT_TRUE(result.callTrace.empty());
    EXPECT_EQ(result.exitValue, 0);
}

TEST(Interp, PaperListing8bComputesCorrectly)
{
    ExecResult result = runSource(R"(
        void dead(void);
        static long a = 78240;
        static int b, d;
        static short e;
        static short c(short f, short h) {
            return h == 0 || (f && h == 1) ? f : f % h;
        }
        int main() {
            short g = a;
            for (b = 0; b < 1; b++) {
                e = a;
                d = c((e == a) ^ g, a);
            }
            if (d) {
                dead();
                for (; a; a++) { }
            }
            return 0;
        }
    )");
    ASSERT_EQ(result.status, ExecStatus::Ok);
    EXPECT_TRUE(result.callTrace.empty()) << "dead() must not execute";
}

TEST(Interp, ObservablyEqualComparesTraces)
{
    ExecResult a = runSource(R"(
        void M(void);
        int main() { M(); return 1; }
    )");
    ExecResult b = runSource(R"(
        void M(void);
        int main() { M(); return 1; }
    )");
    ExecResult c = runSource(R"(
        void M(void);
        int main() { M(); M(); return 1; }
    )");
    EXPECT_TRUE(observablyEqual(a, b));
    EXPECT_FALSE(observablyEqual(a, c));
    EXPECT_FALSE(explainDifference(a, c).empty());
}

} // namespace
} // namespace dce::interp
