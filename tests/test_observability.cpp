/** @file Tests for the observability layer (DESIGN.md §9): remark
 * attribution of marker eliminations, the Chrome-trace tracer, and the
 * metrics registry — plus the end-to-end wiring of all three through
 * the campaign engine. */
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/triage.hpp"
#include "ir/builder.hpp"
#include "ir/ir.hpp"
#include "opt/pass.hpp"
#include "support/metrics.hpp"
#include "support/remarks.hpp"
#include "support/trace.hpp"

//===------------------------------------------------------------------===//
// Allocation counting (for the disabled-tracer zero-allocation test)
//===------------------------------------------------------------------===//

static std::atomic<uint64_t> g_heap_allocations{0};

// Replaceable global allocation functions that count every scalar and
// array new in the test binary. Deallocation is untouched malloc/free.
// GCC can't see that the matching operator new is malloc-based, hence
// the suppressed mismatch warning.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void *
operator new(std::size_t size)
{
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *ptr = std::malloc(size ? size : 1))
        return ptr;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}
#pragma GCC diagnostic pop

namespace dce {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;

//===------------------------------------------------------------------===//
// A minimal JSON syntax checker (no external deps) for schema tests
//===------------------------------------------------------------------===//

class JsonChecker {
public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return true;
        do {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            if (!value())
                return false;
            skipWs();
        } while (consume(','));
        return consume('}');
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return true;
        do {
            skipWs();
            if (!value())
                return false;
            skipWs();
        } while (consume(','));
        return consume(']');
    }

    bool
    string()
    {
        if (!consume('"'))
            return false;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (static_cast<unsigned char>(text_[pos_]) < 0x20)
                return false; // control chars must be escaped
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                if (std::string_view("\"\\/bfnrtu").find(
                        text_[pos_]) == std::string_view::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return consume('"');
    }

    bool
    number()
    {
        size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        std::string_view view(word);
        if (text_.substr(pos_, view.size()) != view)
            return false;
        pos_ += view.size();
        return true;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
};

//===------------------------------------------------------------------===//
// Remark attribution
//===------------------------------------------------------------------===//

TEST(Remarks, SimplifyCfgKillGetsAttributedByTheCensus)
{
    // Hand-built module: entry cond-branches on constant 0 into a
    // block whose only side effect is a marker call. SimplifyCfg folds
    // the branch and deletes the block; the PassManager census must
    // attribute the marker's disappearance to simplifycfg.
    ir::Module module;
    ir::Function *marker =
        module.addFunction("DCEMarker0", ir::IrType::voidTy(),
                           /*internal=*/false); // declaration
    ir::Function *main_fn =
        module.addFunction("main", ir::IrType::i32(),
                           /*internal=*/false);
    ir::BasicBlock *entry = main_fn->addBlock("entry");
    ir::BasicBlock *dead = main_fn->addBlock("dead");
    ir::BasicBlock *exit = main_fn->addBlock("exit");

    ir::IrBuilder builder(module);
    builder.setInsertionBlock(entry);
    builder.condBr(module.i32Const(0), dead, exit);
    builder.setInsertionBlock(dead);
    builder.call(marker, {});
    builder.br(exit);
    builder.setInsertionBlock(exit);
    builder.ret(module.i32Const(0));

    support::RemarkCollector remarks;
    support::MetricsRegistry registry;
    opt::PassManager pm{opt::PassConfig{}};
    pm.add(opt::createSimplifyCfgPass());
    pm.setRemarks(&remarks);
    pm.setMetrics(&registry);
    EXPECT_TRUE(pm.run(module, /*verify_each=*/true))
        << pm.lastError();

    // Exactly one authoritative MarkerEliminated remark for marker 0,
    // naming the killing pass and its pipeline position.
    const support::Remark *killer = remarks.killerOf(0);
    ASSERT_NE(killer, nullptr);
    EXPECT_EQ(killer->pass, "simplifycfg");
    EXPECT_EQ(killer->passIndex, 0u);
    unsigned authoritative = 0;
    bool saw_detail = false;
    for (const support::Remark &remark : remarks.remarks()) {
        if (remark.kind == support::RemarkKind::MarkerEliminated) {
            ++authoritative;
            EXPECT_EQ(remark.marker, 0u);
        }
        if (remark.kind == support::RemarkKind::MarkerCallRemoved)
            saw_detail = true;
    }
    EXPECT_EQ(authoritative, 1u);
    // The pass's own deletion site reported the unreachable call too.
    EXPECT_TRUE(saw_detail);

    auto histogram = remarks.killerHistogram();
    ASSERT_EQ(histogram.size(), 1u);
    EXPECT_EQ(histogram["simplifycfg"], 1u);

    // The per-pass instruction-delta counter saw the shrink.
    EXPECT_GT(
        registry.counterValue("pass.instrs_removed", "simplifycfg"),
        0u);
}

TEST(Remarks, CampaignAttributesEveryEliminatedMarkerExactlyOnce)
{
    support::MetricsRegistry registry;
    std::vector<core::BuildSpec> builds = {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
    core::CampaignOptions options;
    options.collectRemarks = true;
    options.threads = 2;
    options.metrics = &registry;
    core::Campaign campaign =
        core::runCampaign(1000, 20, builds, options);

    uint64_t attributed_total = 0;
    for (const core::ProgramRecord &record : campaign.programs) {
        if (!record.valid)
            continue;
        ASSERT_EQ(record.kills.size(), builds.size());
        for (size_t b = 0; b < builds.size(); ++b) {
            core::BuildId build{b};
            std::set<unsigned> eliminated = core::setMinus(
                record.trueDead, record.missedFor(build));
            std::set<unsigned> attributed;
            for (const core::MarkerKill &kill :
                 record.killsFor(build)) {
                // Exactly one kill per eliminated marker, never for a
                // missed or alive one, always naming a pass.
                EXPECT_TRUE(attributed.insert(kill.marker).second)
                    << "duplicate attribution for marker "
                    << kill.marker;
                EXPECT_TRUE(eliminated.count(kill.marker));
                EXPECT_FALSE(kill.pass.empty());
            }
            EXPECT_EQ(attributed.size(), eliminated.size())
                << "seed " << record.seed << " build "
                << builds[b].name();
            attributed_total += attributed.size();
        }
    }
    ASSERT_GT(attributed_total, 0u);

    // The registry's elimination counters agree with the records.
    EXPECT_EQ(
        registry.counterTotal("campaign.markers_eliminated"),
        attributed_total);

    // And triage can fold the kills into a per-pass histogram.
    core::KillerHistogram histogram =
        core::killerHistogram(campaign, core::BuildId{0});
    ASSERT_FALSE(histogram.empty());
    uint64_t by_pass_total = 0;
    for (const auto &[pass, count] : histogram.byPass) {
        EXPECT_FALSE(pass.empty());
        by_pass_total += count;
    }
    EXPECT_EQ(by_pass_total, histogram.totalEliminated);
}

//===------------------------------------------------------------------===//
// Tracing
//===------------------------------------------------------------------===//

TEST(Trace, EmitsWellFormedChromeTraceJson)
{
    support::Tracer tracer;
    tracer.setEnabled(true);
    {
        support::TraceSpan outer("outer \"quoted\"\\slash", "cat\n",
                                 tracer);
        outer.setArg("seed", 7);
        support::TraceSpan inner("inner", "cat", tracer);
        EXPECT_TRUE(inner.active());
    }
    ASSERT_EQ(tracer.events().size(), 2u);

    std::string json = tracer.toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"seed\":7}"), std::string::npos);
    // The quote and backslash in the span name were escaped.
    EXPECT_NE(json.find("outer \\\"quoted\\\"\\\\slash"),
              std::string::npos);

    // Inner closed before outer, within outer's window.
    std::vector<support::Tracer::Event> events = tracer.events();
    const support::Tracer::Event &inner_event = events[0];
    const support::Tracer::Event &outer_event = events[1];
    EXPECT_EQ(inner_event.name, "inner");
    EXPECT_GE(inner_event.startUs, outer_event.startUs);
    EXPECT_EQ(outer_event.arg, 7u);
    EXPECT_EQ(outer_event.argName, "seed");
}

TEST(Trace, CampaignEmitsSpansForEveryPipelineStage)
{
    support::Tracer &tracer = support::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    support::MetricsRegistry registry;
    core::CampaignOptions options;
    options.threads = 2;
    options.metrics = &registry;
    core::Campaign campaign = core::runCampaign(
        1000, 4, {{CompilerId::Beta, OptLevel::O3, SIZE_MAX}},
        options);
    tracer.setEnabled(false);
    std::vector<support::Tracer::Event> events = tracer.events();
    std::string json = tracer.toJson();
    tracer.clear();

    EXPECT_EQ(campaign.metrics.seedsDone, 4u);
    std::set<std::string> names;
    for (const support::Tracer::Event &event : events)
        names.insert(event.name);
    // One span per layer: campaign chunking, per-seed stages, and the
    // optimizer (plus its individual passes). No "codegen" span: a
    // plain campaign reads surviving markers from the IR and never
    // materializes assembly.
    for (const char *expected :
         {"campaign", "chunk", "seed", "generate", "instrument",
          "lower", "execute", "optimize", "mem2reg",
          "simplifycfg"}) {
        EXPECT_TRUE(names.count(expected))
            << "no span named " << expected;
    }
    EXPECT_FALSE(names.count("codegen"))
        << "campaign materialized assembly on the plain path";
    EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(Trace, DisabledSpanDoesNoWork)
{
    support::Tracer tracer; // disabled is the default state
    unsigned active_spans = 0;
    uint64_t before = g_heap_allocations.load();
    for (int i = 0; i < 100; ++i) {
        support::TraceSpan span("hot-path", "test", tracer);
        span.setArg("iteration", static_cast<uint64_t>(i));
        active_spans += span.active() ? 1 : 0;
    }
    uint64_t after = g_heap_allocations.load();
    // The guard must not touch the heap when tracing is off — it is
    // constructed on the engine's per-seed/per-pass hot path.
    EXPECT_EQ(after, before);
    EXPECT_EQ(active_spans, 0u);
    EXPECT_TRUE(tracer.events().empty());
}

//===------------------------------------------------------------------===//
// Metrics registry
//===------------------------------------------------------------------===//

TEST(Metrics, ConcurrentUpdatesKeepExactTotals)
{
    support::MetricsRegistry registry;
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kIters = 20000;
    support::Counter &shared = registry.counter("test.shared");
    support::Histogram &histogram = registry.histogram("test.hist");

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&registry, &shared, &histogram, t] {
            // Get-or-create races with the other workers; the labeled
            // reference must be the same instrument for the same key.
            support::Counter &labeled = registry.counter(
                "test.labeled", t % 2 ? "odd" : "even");
            for (uint64_t i = 0; i < kIters; ++i) {
                shared.add();
                labeled.add();
                histogram.observe(i);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    EXPECT_EQ(shared.value(), kThreads * kIters);
    EXPECT_EQ(registry.counterTotal("test.labeled"),
              kThreads * kIters);
    EXPECT_EQ(registry.counterValue("test.labeled", "even"),
              kThreads / 2 * kIters);
    EXPECT_EQ(registry.counterValue("test.labeled", "odd"),
              kThreads / 2 * kIters);
    EXPECT_EQ(histogram.count(), kThreads * kIters);
    EXPECT_EQ(histogram.sum(),
              kThreads * (kIters * (kIters - 1) / 2));

    std::string text = registry.dumpText();
    EXPECT_NE(text.find("test.labeled{even}"), std::string::npos);
    EXPECT_NE(text.find("test.shared"), std::string::npos);
    EXPECT_TRUE(JsonChecker(registry.dumpJson()).valid())
        << registry.dumpJson();

    registry.reset();
    EXPECT_EQ(shared.value(), 0u); // references survive reset
    EXPECT_EQ(histogram.count(), 0u);
}

TEST(Metrics, HistogramBucketsByBitWidth)
{
    EXPECT_EQ(support::Histogram::bucketOf(0), 0u);
    EXPECT_EQ(support::Histogram::bucketOf(1), 1u);
    EXPECT_EQ(support::Histogram::bucketOf(2), 2u);
    EXPECT_EQ(support::Histogram::bucketOf(3), 2u);
    EXPECT_EQ(support::Histogram::bucketOf(1024), 11u);
    support::Histogram histogram;
    histogram.observe(0);
    histogram.observe(5);
    histogram.observe(5);
    EXPECT_EQ(histogram.bucket(0), 1u);
    EXPECT_EQ(histogram.bucket(3), 2u);
    EXPECT_DOUBLE_EQ(histogram.mean(), 10.0 / 3.0);
}

TEST(Metrics, InvalidSeedsAreClassifiedByReason)
{
    support::MetricsRegistry registry;
    core::CampaignOptions options;
    options.metrics = &registry;
    core::Campaign campaign = core::runCampaign(
        0, 60, {{CompilerId::Alpha, OptLevel::O1, SIZE_MAX}},
        options);

    uint64_t invalid_records = 0;
    for (const core::ProgramRecord &record : campaign.programs) {
        if (record.valid) {
            EXPECT_EQ(record.invalidReason,
                      core::InvalidReason::None);
        } else {
            ++invalid_records;
            EXPECT_NE(record.invalidReason,
                      core::InvalidReason::None);
        }
    }
    EXPECT_EQ(registry.counterTotal("campaign.invalid"),
              invalid_records);
    // Every invalid seed lands in exactly one labeled reason bucket.
    uint64_t by_reason = 0;
    for (core::InvalidReason reason :
         {core::InvalidReason::Timeout, core::InvalidReason::Trap,
          core::InvalidReason::NoEntry,
          core::InvalidReason::VerifierReject}) {
        by_reason += registry.counterValue(
            "campaign.invalid", core::invalidReasonName(reason));
    }
    EXPECT_EQ(by_reason, invalid_records);
    EXPECT_EQ(registry.counterValue("campaign.seeds"), 60u);
}

} // namespace
} // namespace dce
