/** @file Tests for the metamorphic-testing subsystem (DESIGN.md §16):
 * the semantics-preserving transform property (every variant of every
 * corpus program re-parses Sema-clean and behaves identically), the
 * positive control (a handicapped pass pipeline regresses on a crafted
 * pair the stock pipeline handles), the count-based oracle's
 * determinism across thread counts and kill + resume, summary
 * persistence, the campaign-report section, the /equiv ops endpoint,
 * and the triage bridge for variant-sourced findings. */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "compiler/compiler.hpp"
#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "equiv/engine.hpp"
#include "equiv/transforms.hpp"
#include "gen/canon.hpp"
#include "gen/generator.hpp"
#include "interp/interpreter.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "opt/pass.hpp"
#include "report/event_log.hpp"
#include "report/report.hpp"
#include "serve/ops_server.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace fs = std::filesystem;

namespace dce::equiv {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;
using core::BuildSpec;

/** Fresh scratch directory, removed on destruction. */
class TempDir {
  public:
    explicit TempDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (fs::temp_directory_path() /
                 ("dce_equiv_" + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter++)))
                    .string();
        fs::remove_all(path_);
    }
    ~TempDir() { fs::remove_all(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
}

corpus::CampaignPlan
smallPlan()
{
    corpus::CampaignPlan plan;
    plan.count = 12;
    plan.chunkSize = 3;
    plan.randomSeeds = true;
    plan.streamSeed = 1609;
    plan.builds = {{CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
                   {CompilerId::Beta, OptLevel::O3, SIZE_MAX}};
    plan.computePrimary = true;
    plan.missedByBuild = 0;
    plan.referenceBuild = 1;
    return plan;
}

EquivOptions
smallEquivOptions()
{
    EquivOptions options;
    options.variantsPerProgram = 2;
    options.maxChainLength = 2;
    options.seed = 77;
    return options;
}

// The crafted positive-control pair: `g` is a non-static global, so
// every configuration treats its load as opaque and the else arm's
// marker is missed on both sides. In the base the second branch tests
// `0 == 3` — constant-folded dead by everything. The variant routes
// the phi `t` into the comparison: only jump threading can prove
// t ∈ {1, 4} excludes 3, so a pipeline with jumpThreading disabled
// misses one *more* truly-dead marker on the variant than on the base.
const char kControlBase[] = "int g = 1;\n"
                            "int main(void) {\n"
                            "  int t;\n"
                            "  if (g) { t = 1; } else { t = 4; }\n"
                            "  if (0 == 3) { return 5; }\n"
                            "  return 0;\n"
                            "}\n";

const char kControlVariant[] = "int g = 1;\n"
                               "int main(void) {\n"
                               "  int t;\n"
                               "  if (g) { t = 1; } else { t = 4; }\n"
                               "  if (t == 3) { return 5; }\n"
                               "  return 0;\n"
                               "}\n";

//===------------------------------------------------------------------===//
// Transforms: the metamorphic property
//===------------------------------------------------------------------===//

// Every transform, applied at a random site of every corpus program,
// must produce a unit that (a) pretty-prints to Sema-clean source and
// (b) behaves observably identically under the interpreter. This is
// the soundness property the oracle leans on; the engine re-checks it
// per variant, but a transform that often fails equivalence would
// silently gut the subsystem's coverage.
TEST(EquivTransforms, EveryTransformPreservesBehaviorOnCorpus)
{
    constexpr uint64_t kSeeds = 200;
    std::map<TransformKind, uint64_t> applied;
    uint64_t checked = 0;

    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        std::unique_ptr<lang::TranslationUnit> base =
            gen::generateProgram(seed);
        ASSERT_TRUE(base) << "seed " << seed;
        const std::string base_text = lang::printUnit(*base);
        std::unique_ptr<ir::Module> base_lowered = ir::lowerToIr(*base);
        interp::ExecResult base_behavior =
            interp::execute(*base_lowered);
        ASSERT_TRUE(base_behavior.ok()) << "seed " << seed;

        for (TransformKind kind : allTransforms()) {
            // Fresh sema-checked copy per transform: applyTransform
            // edits in place and invalidates annotations.
            DiagnosticEngine diags;
            std::unique_ptr<lang::TranslationUnit> unit =
                lang::parseAndCheck(base_text, diags);
            ASSERT_TRUE(unit) << "seed " << seed;

            Rng rng(seed * 1031 + static_cast<uint64_t>(kind));
            if (!applyTransform(*unit, kind, rng))
                continue; // no site for this kind — not a failure
            ++applied[kind];

            const std::string variant_text = lang::printUnit(*unit);
            DiagnosticEngine vdiags;
            std::unique_ptr<lang::TranslationUnit> reparsed =
                lang::parseAndCheck(variant_text, vdiags);
            ASSERT_TRUE(reparsed)
                << "seed " << seed << " " << transformKindName(kind)
                << " variant no longer sema-checks:\n"
                << variant_text;

            std::unique_ptr<ir::Module> lowered =
                ir::lowerToIr(*reparsed);
            interp::ExecResult behavior = interp::execute(*lowered);
            ASSERT_TRUE(
                interp::observablyEqual(base_behavior, behavior))
                << "seed " << seed << " " << transformKindName(kind)
                << ": " << interp::explainDifference(base_behavior,
                                                     behavior)
                << "\n"
                << variant_text;
            ++checked;
        }
    }

    // The corpus must actually exercise every transform; a kind that
    // never finds a site is a dead transform, not a passing one.
    for (TransformKind kind : allTransforms())
        EXPECT_GE(applied[kind], 1u) << transformKindName(kind);
    EXPECT_GE(checked, kSeeds) << "too few variants exercised";
}

TEST(EquivTransforms, DeriveVariantIsDeterministic)
{
    std::unique_ptr<lang::TranslationUnit> base =
        gen::generateProgram(42);
    ASSERT_TRUE(base);

    std::vector<TransformKind> chain_a, chain_b;
    std::unique_ptr<lang::TranslationUnit> a =
        deriveVariant(*base, 9001, 3, &chain_a);
    std::unique_ptr<lang::TranslationUnit> b =
        deriveVariant(*base, 9001, 3, &chain_b);
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    EXPECT_EQ(chain_a, chain_b);
    EXPECT_EQ(lang::printUnit(*a), lang::printUnit(*b));

    // A different stream seed is allowed to coincide, but across a
    // handful of seeds at least one distinct variant must appear.
    bool distinct = false;
    for (uint64_t seed = 1; seed <= 8 && !distinct; ++seed) {
        std::vector<TransformKind> chain;
        std::unique_ptr<lang::TranslationUnit> other =
            deriveVariant(*base, seed, 3, &chain);
        distinct = other &&
                   lang::printUnit(*other) != lang::printUnit(*a);
    }
    EXPECT_TRUE(distinct);
}

TEST(EquivTransforms, TransformKindNamesRoundTrip)
{
    for (TransformKind kind : allTransforms()) {
        std::optional<TransformKind> back =
            transformKindFromName(transformKindName(kind));
        ASSERT_TRUE(back.has_value()) << transformKindName(kind);
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(transformKindFromName("no-such-transform"));
}

// Canonicalization is a projection: stripping a canonical text and
// re-canonicalizing it must reproduce the same bytes and hash. The
// engine's stale filter and the store's dedup both assume this.
TEST(EquivTransforms, CanonicalizeIsIdempotent)
{
    for (uint64_t seed : {3u, 17u, 90u}) {
        std::unique_ptr<lang::TranslationUnit> unit =
            gen::generateProgram(seed);
        ASSERT_TRUE(unit);
        gen::Canonical first = gen::canonicalize(*unit);
        std::unique_ptr<lang::TranslationUnit> stripped =
            gen::parseStripped(first.text);
        ASSERT_TRUE(stripped);
        gen::Canonical second = gen::canonicalize(*stripped);
        EXPECT_EQ(first.text, second.text);
        EXPECT_EQ(first.hash, second.hash);
    }
}

//===------------------------------------------------------------------===//
// The positive control
//===------------------------------------------------------------------===//

// A regression the oracle must catch: with jump threading disabled the
// pipeline cannot prove `t == 3` false after the phi of {1, 4}, so the
// crafted variant misses one more truly-dead marker than its base.
// The stock pipeline threads the comparison and stays clean — the same
// pair, no finding. This is the end-to-end proof the subsystem detects
// what it claims to detect.
TEST(EquivEngine, PositiveControlCatchesHandicappedPipeline)
{
    opt::PassConfig stock;
    PairOutcome clean = checkEquivPair(kControlBase, kControlVariant,
                                       stock, OptLevel::O2);
    ASSERT_TRUE(clean.valid);
    ASSERT_TRUE(clean.equivalent);
    EXPECT_EQ(clean.missedBase.size(), clean.missedVariant.size());
    EXPECT_FALSE(clean.findingMarker.has_value())
        << "stock pipeline must not regress on the control pair";

    opt::PassConfig handicapped;
    handicapped.jumpThreading = false;
    PairOutcome weak = checkEquivPair(kControlBase, kControlVariant,
                                      handicapped, OptLevel::O2);
    ASSERT_TRUE(weak.valid);
    ASSERT_TRUE(weak.equivalent);
    EXPECT_GT(weak.missedVariant.size(), weak.missedBase.size());
    ASSERT_TRUE(weak.findingMarker.has_value())
        << "handicapped pipeline must regress on the control pair";
    // The witness is the then-arm marker of the `t == 3` branch — the
    // site kind whose missed count grew.
    EXPECT_EQ(*weak.findingMarker, 2u);
}

TEST(EquivEngine, PairProbeRejectsInvalidAndInequivalentSources)
{
    opt::PassConfig stock;
    PairOutcome broken = checkEquivPair(
        "int main(void) { return undeclared; }", kControlVariant,
        stock, OptLevel::O2);
    EXPECT_FALSE(broken.valid);

    PairOutcome different = checkEquivPair(
        "int main(void) { return 1; }",
        "int main(void) { return 2; }", stock, OptLevel::O2);
    ASSERT_TRUE(different.valid);
    EXPECT_FALSE(different.equivalent);
    EXPECT_FALSE(different.findingMarker.has_value());
}

//===------------------------------------------------------------------===//
// The engine: determinism and persistence
//===------------------------------------------------------------------===//

TEST(EquivEngine, AnalysisRequiresCheckpoint)
{
    TempDir dir("nockpt");
    corpus::StoreError error;
    auto store = corpus::CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    EXPECT_FALSE(runEquivAnalysis(*store, smallEquivOptions()));
}

TEST(EquivEngine, SummaryByteIdenticalAcrossThreadCounts)
{
    TempDir dir("threads");
    corpus::StoreError error;
    auto store = corpus::CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    {
        corpus::CheckpointRunOptions options;
        options.threads = 2;
        support::MetricsRegistry campaign_registry;
        options.metrics = &campaign_registry;
        auto result = corpus::runCheckpointed(*store, smallPlan(),
                                              options, &error);
        ASSERT_TRUE(result) << error.message;
        ASSERT_TRUE(result->completed);
    }

    std::string serial_summary, serial_events, serial_metrics;
    {
        support::MetricsRegistry registry;
        report::EventLog log(&registry);
        EquivOptions options = smallEquivOptions();
        options.threads = 1;
        options.metrics = &registry;
        options.events = &log;
        std::optional<EquivSummary> summary =
            runEquivAnalysis(*store, options);
        ASSERT_TRUE(summary);
        EXPECT_GT(summary->programs, 0u);
        EXPECT_GT(summary->variants, 0u);
        serial_summary = serializeEquivSummary(*summary);
        serial_events = log.toJsonl();
        serial_metrics = registry.expose();
    }
    ASSERT_FALSE(serial_summary.empty());
    ASSERT_FALSE(serial_events.empty());

    for (unsigned threads : {4u, 8u}) {
        support::MetricsRegistry registry;
        report::EventLog log(&registry);
        EquivOptions options = smallEquivOptions();
        options.threads = threads;
        options.metrics = &registry;
        options.events = &log;
        std::optional<EquivSummary> summary =
            runEquivAnalysis(*store, options);
        ASSERT_TRUE(summary);
        EXPECT_EQ(serializeEquivSummary(*summary), serial_summary)
            << "summary diverged at " << threads << " threads";
        EXPECT_EQ(log.toJsonl(), serial_events)
            << "events diverged at " << threads << " threads";
        EXPECT_EQ(registry.expose(), serial_metrics)
            << "metrics diverged at " << threads << " threads";
    }
}

// The summary is a pure function of (checkpointed store, options), so
// a campaign killed mid-run and resumed to completion must yield the
// same equiv bytes as an uninterrupted one.
TEST(EquivEngine, SummaryByteIdenticalAfterKillAndResume)
{
    auto summarize = [](corpus::CorpusStore &store) {
        EquivOptions options = smallEquivOptions();
        options.threads = 2;
        support::MetricsRegistry registry;
        options.metrics = &registry;
        std::optional<EquivSummary> summary =
            runEquivAnalysis(store, options);
        EXPECT_TRUE(summary);
        return summary ? serializeEquivSummary(*summary)
                       : std::string();
    };

    corpus::StoreError error;
    std::string full_bytes;
    {
        TempDir dir("full");
        auto store = corpus::CorpusStore::open(dir.str(), &error);
        ASSERT_TRUE(store) << error.message;
        corpus::CheckpointRunOptions options;
        options.threads = 2;
        auto result = corpus::runCheckpointed(*store, smallPlan(),
                                              options, &error);
        ASSERT_TRUE(result) << error.message;
        ASSERT_TRUE(result->completed);
        full_bytes = summarize(*store);
    }
    ASSERT_FALSE(full_bytes.empty());

    TempDir dir("resume");
    auto store = corpus::CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    corpus::CheckpointRunOptions halted;
    halted.threads = 2;
    halted.checkpointEveryChunks = 1;
    halted.haltAfterChunks = 2;
    auto first = corpus::runCheckpointed(*store, smallPlan(), halted,
                                         &error);
    ASSERT_TRUE(first) << error.message;
    ASSERT_FALSE(first->completed);
    corpus::CheckpointRunOptions resume;
    resume.threads = 2;
    auto second = corpus::runCheckpointed(*store, smallPlan(), resume,
                                          &error);
    ASSERT_TRUE(second) << error.message;
    ASSERT_TRUE(second->completed);
    EXPECT_EQ(summarize(*store), full_bytes);
}

TEST(EquivEngine, SummarySerializationRoundTripsAndDetectsDamage)
{
    EquivSummary summary;
    summary.variantsPerProgram = 3;
    summary.seed = 123;
    summary.programs = 7;
    summary.variants = 19;
    summary.rejects["no-edit"] = 2;
    summary.rejects["not-equivalent"] = 1;

    EquivFinding finding;
    finding.slot = 4;
    finding.seed = 9999;
    finding.baseHash = "aaaa";
    finding.variantHash = "bbbb";
    finding.variantIndex = 1;
    finding.chain = {TransformKind::LoopRotate,
                     TransformKind::ConstantReexpr};
    finding.spec = {CompilerId::Alpha, OptLevel::O2, SIZE_MAX};
    finding.build = finding.spec.name();
    finding.buildIndex = 0;
    finding.marker = 5;
    finding.missedBase = 1;
    finding.missedVariant = 2;
    finding.variantText = "int main(void) { return 0; }\n";
    finding.signature = "sig";
    finding.confirmed = true;
    finding.reductionTests = 41;
    summary.findings.push_back(finding);

    EquivOutlier outlier;
    outlier.slot = 6;
    outlier.baseHash = "cccc";
    outlier.variantHash = "dddd";
    outlier.variantIndex = 0;
    outlier.chain = {TransformKind::StmtCommute};
    outlier.build = "beta-O3";
    outlier.baseInstrs = 40;
    outlier.variantInstrs = 55;
    summary.outliers.push_back(outlier);

    const std::string line = serializeEquivSummary(summary);
    std::optional<EquivSummary> back = readEquivSummary(line);
    ASSERT_TRUE(back);
    EXPECT_EQ(serializeEquivSummary(*back), line);
    EXPECT_EQ(back->rejected(), 3u);
    ASSERT_EQ(back->findings.size(), 1u);
    EXPECT_EQ(back->findings[0].chain, finding.chain);
    EXPECT_EQ(back->findings[0].spec, finding.spec);
    EXPECT_EQ(back->findings[0].variantText, finding.variantText);
    EXPECT_TRUE(back->findings[0].confirmed);
    ASSERT_EQ(back->outliers.size(), 1u);
    EXPECT_EQ(back->outliers[0].variantInstrs, 55u);

    // Any flipped payload byte must fail the seal, not half-parse.
    std::string damaged = line;
    damaged[line.size() / 2] ^= 0x20;
    EXPECT_FALSE(readEquivSummary(damaged));
    EXPECT_FALSE(readEquivSummary("not json"));

    const std::string text = equivSummaryText(summary);
    EXPECT_NE(text.find("== metamorphic =="), std::string::npos);
    EXPECT_NE(text.find("findings"), std::string::npos);
}

TEST(EquivEngine, StorePersistsEquivState)
{
    TempDir dir("state");
    corpus::StoreError error;
    EquivSummary summary;
    summary.variantsPerProgram = 2;
    summary.seed = 5;
    summary.programs = 1;
    const std::string line = serializeEquivSummary(summary);
    {
        auto store = corpus::CorpusStore::open(dir.str(), &error);
        ASSERT_TRUE(store) << error.message;
        EXPECT_FALSE(store->hasEquivState());
        EXPECT_FALSE(store->readEquivState());

        ASSERT_TRUE(store->writeEquivState(line, &error))
            << error.message;
        ASSERT_TRUE(store->hasEquivState());
        std::optional<std::string> read = store->readEquivState();
        ASSERT_TRUE(read);
        EXPECT_EQ(*read, line);
    }

    // Reopen (the live lock released): the state is on disk, not in
    // memory.
    auto reopened = corpus::CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(reopened) << error.message;
    std::optional<std::string> again = reopened->readEquivState();
    ASSERT_TRUE(again);
    EXPECT_EQ(*again, line);
}

//===------------------------------------------------------------------===//
// Report + ops-server integration
//===------------------------------------------------------------------===//

TEST(EquivReport, CampaignReportRendersMetamorphicSection)
{
    TempDir dir("report");
    TempDir report_dir("reportout");
    corpus::StoreError error;
    auto store = corpus::CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    {
        corpus::CheckpointRunOptions options;
        options.threads = 2;
        auto result = corpus::runCheckpointed(*store, smallPlan(),
                                              options, &error);
        ASSERT_TRUE(result) << error.message;
        ASSERT_TRUE(result->completed);
    }

    // No equiv state yet: the report must not grow the section.
    report::CampaignReportOptions options;
    options.dossiers = false;
    ASSERT_TRUE(report::writeCampaignReport(*store, report_dir.str(),
                                            options, &error))
        << error.message;
    std::string without =
        readFile(report_dir.str() + "/report.md");
    ASSERT_FALSE(without.empty());
    EXPECT_EQ(without.find("## Metamorphic testing"),
              std::string::npos);

    std::optional<EquivSummary> summary =
        runEquivAnalysis(*store, smallEquivOptions());
    ASSERT_TRUE(summary);
    ASSERT_TRUE(store->writeEquivState(
        serializeEquivSummary(*summary), &error))
        << error.message;

    ASSERT_TRUE(report::writeCampaignReport(*store, report_dir.str(),
                                            options, &error))
        << error.message;
    std::string with = readFile(report_dir.str() + "/report.md");
    EXPECT_NE(with.find("## Metamorphic testing"), std::string::npos);
    EXPECT_NE(with.find("programs analysed"), std::string::npos);
    EXPECT_NE(with.find("variants per program"), std::string::npos);
}

TEST(EquivServe, EquivEndpointServesSealedStateOr404)
{
    TempDir dir("serve");
    corpus::StoreError error;
    auto store = corpus::CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;

    support::MetricsRegistry registry;
    serve::OpsServerOptions options;
    options.metrics = &registry;
    options.store = store.get();
    serve::OpsServer server(options);

    serve::HttpRequest request;
    request.method = "GET";
    request.path = "/equiv";
    serve::HttpResponse missing = server.handle(request);
    EXPECT_EQ(missing.status, 404);

    EquivSummary summary;
    summary.variantsPerProgram = 2;
    summary.seed = 11;
    summary.programs = 3;
    summary.variants = 5;
    const std::string line = serializeEquivSummary(summary);
    ASSERT_TRUE(store->writeEquivState(line, &error)) << error.message;

    serve::HttpResponse ok = server.handle(request);
    EXPECT_EQ(ok.status, 200);
    EXPECT_EQ(ok.body, line + "\n");
    EXPECT_NE(ok.contentType.find("application/json"),
              std::string::npos);

    // No store attached: the endpoint 404s instead of crashing.
    serve::OpsServerOptions bare;
    bare.metrics = &registry;
    serve::OpsServer bare_server(bare);
    EXPECT_EQ(bare_server.handle(request).status, 404);
}

//===------------------------------------------------------------------===//
// Triage bridge
//===------------------------------------------------------------------===//

// A variant-sourced finding flows through the real reduce + signature
// pipeline: TriageOptions::sourceFor supplies the variant text (no
// seed regenerates it), and reference == missedBy makes the
// reference-eliminates probe vacuous instead of contradictory.
TEST(EquivTriage, TriageConfirmsVariantSourcedFinding)
{
    // `g` is opaque (non-static global), so the else arm is truly
    // dead at runtime yet survives every pipeline: a stable
    // missed-optimization to hang a variant finding on.
    const std::string source =
        "int g = 1;\n"
        "int main(void) {\n"
        "  if (g) { return 1; } else { return 2; }\n"
        "}\n";
    opt::PassConfig stock;
    PairOutcome probe =
        checkEquivPair(source, source, stock, OptLevel::O2);
    ASSERT_TRUE(probe.valid);
    ASSERT_EQ(probe.missedBase.size(), 1u);
    const unsigned marker = *probe.missedBase.begin();

    DiagnosticEngine diags;
    std::unique_ptr<lang::TranslationUnit> unit =
        lang::parseAndCheck(source, diags);
    ASSERT_TRUE(unit);
    gen::Canonical canon = gen::canonicalize(*unit);

    EquivSummary summary;
    summary.variantsPerProgram = 1;
    summary.seed = 1;
    summary.programs = 1;
    summary.variants = 1;
    EquivFinding finding;
    finding.slot = 0;
    finding.seed = 424242; // regenerates nothing relevant: sourceFor wins
    finding.baseHash = "base";
    finding.variantHash = canon.hash;
    finding.variantIndex = 0;
    finding.chain = {TransformKind::BranchSwap};
    finding.spec = {CompilerId::Alpha, OptLevel::O2, SIZE_MAX};
    finding.build = finding.spec.name();
    finding.marker = marker;
    finding.missedBase = 0;
    finding.missedVariant = 1;
    finding.variantText = canon.text;
    summary.findings.push_back(std::move(finding));

    std::vector<core::Finding> bridged = toTriageFindings(summary);
    ASSERT_EQ(bridged.size(), 1u);
    EXPECT_EQ(bridged[0].marker, marker);
    EXPECT_EQ(bridged[0].missedBy, summary.findings[0].spec);
    EXPECT_EQ(bridged[0].reference, summary.findings[0].spec);

    support::MetricsRegistry registry;
    core::TriageOptions options;
    options.threads = 1;
    options.maxTests = 300;
    options.metrics = &registry;
    core::TriageSummary triaged =
        triageEquivFindings(summary, options);
    EXPECT_EQ(triaged.reports.size(), 1u);
    EXPECT_TRUE(summary.findings[0].confirmed);
    EXPECT_FALSE(summary.findings[0].signature.empty());
    EXPECT_GT(summary.findings[0].reductionTests, 0u);
    EXPECT_FALSE(summary.findings[0].fixed);
}

} // namespace
} // namespace dce::equiv
