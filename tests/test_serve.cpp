/** @file Tests for the live ops server (DESIGN.md §14): the embedded
 * HTTP transport's parsing/limits/concurrency/graceful-drain behavior
 * over real loopback sockets, and the OpsServer endpoints' contracts —
 * /metrics equals the registry exposition, /progress agrees with the
 * campaign.progress counters, /readyz follows the watchdog latch, and
 * /report serves byte-identical output to writeCampaignReport. */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "corpus/checkpoint.hpp"
#include "corpus/json.hpp"
#include "corpus/store.hpp"
#include "report/dossier.hpp"
#include "report/event_log.hpp"
#include "report/report.hpp"
#include "report/watchdog.hpp"
#include "serve/http.hpp"
#include "serve/ops_server.hpp"
#include "support/metrics.hpp"

namespace fs = std::filesystem;

namespace dce::serve {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;
using core::BuildSpec;

/** Fresh scratch directory, removed on destruction. */
class TempDir {
  public:
    explicit TempDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (fs::temp_directory_path() /
                 ("dce_serve_" + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter++)))
                    .string();
        fs::remove_all(path_);
    }
    ~TempDir() { fs::remove_all(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
}

corpus::CampaignPlan
smallPlan()
{
    corpus::CampaignPlan plan;
    plan.count = 18;
    plan.chunkSize = 3;
    plan.randomSeeds = true;
    plan.streamSeed = 2024;
    plan.builds = {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
    plan.computePrimary = true;
    plan.collectRemarks = true;
    plan.missedByBuild = 0;
    plan.referenceBuild = 1;
    return plan;
}

/** Send @p raw over a fresh loopback connection and return the whole
 * close-delimited response (status line + headers + body). */
std::string
rawRequest(uint16_t port, const std::string &raw)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    size_t sent = 0;
    while (sent < raw.size()) {
        ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break; // server may answer (and close) before we finish
        sent += size_t(n);
    }
    std::string response;
    char buffer[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
        if (n <= 0)
            break;
        response.append(buffer, size_t(n));
    }
    ::close(fd);
    return response;
}

std::string
httpGet(uint16_t port, const std::string &target)
{
    return rawRequest(port, "GET " + target +
                                " HTTP/1.1\r\nHost: l\r\n\r\n");
}

/** The body of a close-delimited response. */
std::string
bodyOf(const std::string &response)
{
    size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? std::string()
                                      : response.substr(split + 4);
}

int
statusOf(const std::string &response)
{
    // "HTTP/1.1 NNN ..."
    if (response.size() < 12)
        return -1;
    return std::atoi(response.c_str() + 9);
}

//===------------------------------------------------------------------===//
// HTTP transport
//===------------------------------------------------------------------===//

TEST(ServeHttp, ParsesAndRoutesRequests)
{
    support::MetricsRegistry registry;
    HttpServerOptions options;
    options.metrics = &registry;
    HttpServer server(
        [](const HttpRequest &request) {
            HttpResponse response;
            response.body = request.method + " " + request.path +
                            " q=" + request.query + " name=" +
                            request.queryParam("name").value_or("-");
            return response;
        },
        options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_NE(server.port(), 0);

    // Path and query reach the handler percent-decoded / split.
    std::string ok =
        httpGet(server.port(), "/echo%20path?name=a%2Fb&x=1");
    EXPECT_EQ(statusOf(ok), 200);
    EXPECT_EQ(bodyOf(ok), "GET /echo path q=name=a%2Fb&x=1 name=a/b");
    EXPECT_NE(ok.find("Content-Length: "), std::string::npos);
    EXPECT_NE(ok.find("Connection: close"), std::string::npos);

    // Non-GET methods get a precise 405 + Allow, not dispatched.
    std::string post = rawRequest(
        server.port(), "POST /echo HTTP/1.1\r\nHost: l\r\n\r\n");
    EXPECT_EQ(statusOf(post), 405);
    EXPECT_NE(post.find("Allow: GET"), std::string::npos);

    // A garbage request line is a 400, not a crash.
    std::string garbage =
        rawRequest(server.port(), "NONSENSE\r\n\r\n");
    EXPECT_EQ(statusOf(garbage), 400);

    // Malformed percent-escapes are rejected.
    std::string bad_escape = httpGet(server.port(), "/bad%2");
    EXPECT_EQ(statusOf(bad_escape), 400);

    EXPECT_EQ(server.requestsServed(), 4u);
    EXPECT_EQ(registry.counterValue("serve.requests"), 4u);
    EXPECT_EQ(registry.counterValue("serve.responses", "200"), 1u);
    EXPECT_EQ(registry.counterValue("serve.responses", "400"), 2u);
    EXPECT_EQ(registry.counterValue("serve.responses", "405"), 1u);
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(ServeHttp, OversizedRequestsAreBounded)
{
    support::MetricsRegistry registry;
    HttpServerOptions options;
    options.metrics = &registry;
    options.maxRequestBytes = 256;
    HttpServer server(
        [](const HttpRequest &) {
            return HttpResponse::text(200, "ok");
        },
        options);
    ASSERT_TRUE(server.start());

    // The cap trips before the request line ends: 414.
    std::string long_line = "GET /" + std::string(300, 'a');
    EXPECT_EQ(statusOf(rawRequest(server.port(), long_line)), 414);

    // The cap trips after the request line, inside the headers: 400.
    std::string long_headers = "GET / HTTP/1.1\r\nX-Pad: " +
                               std::string(300, 'b') + "\r\n";
    EXPECT_EQ(statusOf(rawRequest(server.port(), long_headers)), 400);

    // A request under the cap still works.
    EXPECT_EQ(statusOf(httpGet(server.port(), "/")), 200);
}

TEST(ServeHttp, ConcurrentGetsFromManyThreads)
{
    std::atomic<uint64_t> handled{0};
    support::MetricsRegistry registry;
    HttpServerOptions options;
    options.metrics = &registry;
    options.handlerThreads = 4;
    HttpServer server(
        [&](const HttpRequest &request) {
            handled.fetch_add(1);
            return HttpResponse::text(200, "hello " + request.path);
        },
        options);
    ASSERT_TRUE(server.start());

    constexpr unsigned kClients = 8;
    constexpr unsigned kRequestsPerClient = 16;
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (unsigned i = 0; i < kRequestsPerClient; ++i) {
                std::string path =
                    "/c" + std::to_string(c) + "/" + std::to_string(i);
                std::string response =
                    httpGet(server.port(), path);
                if (statusOf(response) != 200 ||
                    bodyOf(response) != "hello " + path)
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread &client : clients)
        client.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(handled.load(), kClients * kRequestsPerClient);
    EXPECT_EQ(server.requestsServed(),
              kClients * kRequestsPerClient);
}

TEST(ServeHttp, GracefulShutdownAnswersInFlightRequests)
{
    std::atomic<bool> entered{false};
    HttpServer server([&](const HttpRequest &) {
        entered.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        return HttpResponse::text(200, "slow but served");
    });
    ASSERT_TRUE(server.start());

    std::string response;
    std::thread client([&] {
        response = httpGet(server.port(), "/slow");
    });
    // Wait until the handler is actually running, then stop: the
    // drain contract says the in-flight request still completes.
    while (!entered.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.stop();
    client.join();

    EXPECT_EQ(statusOf(response), 200);
    EXPECT_EQ(bodyOf(response), "slow but served");
    EXPECT_FALSE(server.running());
}

//===------------------------------------------------------------------===//
// Ops endpoints
//===------------------------------------------------------------------===//

TEST(ServeOps, MetricsEndpointExposesRegistryVerbatim)
{
    support::MetricsRegistry registry;
    registry.counter("campaign.invalid", "timeout").add(3);
    registry.histogram("campaign.stage_us", "compile").observe(100);

    OpsServerOptions options;
    options.metrics = &registry;
    OpsServer ops(options);

    HttpRequest request;
    request.path = "/metrics";
    HttpResponse response = ops.handle(request);
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.contentType, support::kPrometheusContentType);
    EXPECT_EQ(response.body, registry.expose());

    request.path = "/healthz";
    EXPECT_EQ(ops.handle(request).status, 200);
    request.path = "/nope";
    EXPECT_EQ(ops.handle(request).status, 404);
    // Remote shutdown is opt-in; the route does not exist otherwise.
    request.path = "/quitquitquit";
    EXPECT_EQ(ops.handle(request).status, 404);
    EXPECT_FALSE(ops.shutdownRequested());
    // Endpoints with no subsystem attached are 404s, not crashes.
    request.path = "/progress";
    EXPECT_EQ(ops.handle(request).status, 404);
    request.path = "/report";
    EXPECT_EQ(ops.handle(request).status, 404);
    request.path = "/events";
    EXPECT_EQ(ops.handle(request).status, 404);
}

TEST(ServeOps, QuitEndpointRequestsShutdownWhenEnabled)
{
    OpsServerOptions options;
    support::MetricsRegistry registry;
    options.metrics = &registry;
    options.allowRemoteShutdown = true;
    OpsServer ops(options);

    EXPECT_FALSE(ops.waitForShutdownRequest(1));
    HttpRequest request;
    request.path = "/quitquitquit";
    EXPECT_EQ(ops.handle(request).status, 200);
    EXPECT_TRUE(ops.shutdownRequested());
    EXPECT_TRUE(ops.waitForShutdownRequest(1));
}

TEST(ServeOps, ProgressAgreesWithMetricsMidRun)
{
    TempDir dir("progress");
    support::MetricsRegistry registry;
    corpus::OpenOptions open_options;
    open_options.metrics = &registry;
    corpus::StoreError error;
    auto store =
        corpus::CorpusStore::open(dir.str(), &error, open_options);
    ASSERT_TRUE(store) << error.message;

    // Halt mid-campaign: 4 of 6 chunks committed, 2 checkpoints — the
    // state a live scrape would see between checkpoints.
    corpus::CampaignStatusBoard board;
    corpus::CheckpointRunOptions run;
    run.metrics = &registry;
    run.status = &board;
    run.checkpointEveryChunks = 2;
    run.haltAfterChunks = 4;
    auto result =
        corpus::runCheckpointed(*store, smallPlan(), run, &error);
    ASSERT_TRUE(result) << error.message;
    ASSERT_FALSE(result->completed);

    OpsServerOptions options;
    options.metrics = &registry;
    options.status = &board;
    OpsServer ops(options);
    HttpRequest request;
    request.path = "/progress";
    HttpResponse response = ops.handle(request);
    ASSERT_EQ(response.status, 200);
    std::optional<corpus::JsonValue> progress =
        corpus::JsonValue::parse(response.body);
    ASSERT_TRUE(progress);

    // The board and the campaign.progress gauges are published at the
    // same checkpoint commit, so /progress and /metrics must agree.
    EXPECT_EQ(progress->getU64("completed_chunks"),
              registry.counterValue("campaign.progress",
                                    "completed_chunks"));
    EXPECT_EQ(progress->getU64("watermark"),
              registry.counterValue("campaign.progress", "watermark"));
    EXPECT_EQ(progress->getU64("seeds_committed"),
              registry.counterValue("campaign.progress",
                                    "seeds_committed"));
    EXPECT_EQ(progress->getU64("findings"),
              registry.counterValue("campaign.progress", "findings"));
    EXPECT_EQ(progress->getU64("completed_chunks"), 4u);
    EXPECT_EQ(progress->getU64("seeds_committed"), 12u);
    EXPECT_EQ(progress->getU64("chunks_total"), 6u);
    EXPECT_EQ(progress->getU64("seeds_total"), 18u);
    EXPECT_EQ(progress->getU64("checkpoints"), 2u);
    EXPECT_FALSE(progress->getBool("active"));
    EXPECT_FALSE(progress->getBool("complete"));

    // The gauges survive the checkpoint round-trip: a resume restores
    // them and drives them to their (deterministic) final values.
    corpus::CheckpointRunOptions resume;
    support::MetricsRegistry resumed_registry;
    resume.metrics = &resumed_registry;
    resume.status = &board;
    auto finished =
        corpus::runCheckpointed(*store, smallPlan(), resume, &error);
    ASSERT_TRUE(finished) << error.message;
    ASSERT_TRUE(finished->completed);
    EXPECT_EQ(resumed_registry.counterValue("campaign.progress",
                                            "completed_chunks"),
              6u);
    EXPECT_EQ(resumed_registry.counterValue("campaign.progress",
                                            "watermark"),
              6u);
    EXPECT_EQ(resumed_registry.counterValue("campaign.progress",
                                            "seeds_committed"),
              18u);
    response = ops.handle(request);
    progress = corpus::JsonValue::parse(response.body);
    ASSERT_TRUE(progress);
    EXPECT_TRUE(progress->getBool("complete"));
    EXPECT_EQ(progress->getU64("completed_chunks"), 6u);
}

TEST(ServeOps, ReadyzFollowsWatchdogStallAndRecovery)
{
    uint64_t fake_now = 0;
    support::MetricsRegistry registry;
    report::EventLog log(&registry);
    report::WatchdogOptions watchdog_options;
    watchdog_options.stallThresholdUs = 1000;
    watchdog_options.events = &log;
    watchdog_options.registry = &registry;
    watchdog_options.clock = [&] { return fake_now; };
    report::Watchdog watchdog(watchdog_options);
    core::CampaignObserver observer = watchdog.wrap({});

    OpsServerOptions options;
    options.metrics = &registry;
    options.watchdog = &watchdog;
    OpsServer ops(options);
    HttpRequest request;
    request.path = "/readyz";

    EXPECT_EQ(ops.handle(request).status, 200);

    // Stall: the latch fires and /readyz flips to 503.
    fake_now = 2000;
    EXPECT_TRUE(watchdog.poll());
    EXPECT_EQ(ops.handle(request).status, 503);

    // Progress re-arms the watchdog and /readyz recovers to 200.
    core::CampaignProgress progress;
    progress.seedsDone = 5;
    progress.seedsTotal = 10;
    observer(progress);
    EXPECT_EQ(ops.handle(request).status, 200);

    // Both transitions are on the record, in the ops phase.
    std::vector<support::Event> events = log.sorted();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type(), "watchdog_stall");
    EXPECT_EQ(events[1].type(), "watchdog_recovered");
    EXPECT_EQ(events[0].key().phase, support::kPhaseOps);
    EXPECT_EQ(events[1].key().phase, support::kPhaseOps);
}

/** One completed small campaign in a store, with server attached. */
struct ServedCampaign {
    explicit ServedCampaign(const std::string &dir)
    {
        corpus::OpenOptions open_options;
        open_options.metrics = &registry;
        corpus::StoreError error;
        store = corpus::CorpusStore::open(dir, &error, open_options);
        EXPECT_TRUE(store) << error.message;
        corpus::CheckpointRunOptions run;
        run.metrics = &registry;
        run.events = &log;
        run.status = &board;
        auto result =
            corpus::runCheckpointed(*store, smallPlan(), run, &error);
        EXPECT_TRUE(result) << error.message;
        findings = result ? result->findings.size() : 0;

        OpsServerOptions options;
        options.metrics = &registry;
        options.store = store.get();
        options.events = &log;
        options.status = &board;
        ops = std::make_unique<OpsServer>(options);
    }

    HttpResponse
    get(const std::string &path, const std::string &query = {})
    {
        HttpRequest request;
        request.path = path;
        request.query = query;
        return ops->handle(request);
    }

    support::MetricsRegistry registry;
    report::EventLog log{&registry};
    corpus::CampaignStatusBoard board;
    std::unique_ptr<corpus::CorpusStore> store;
    std::unique_ptr<OpsServer> ops;
    size_t findings = 0;
};

TEST(ServeOps, ReportEndpointMatchesOnDiskReport)
{
    TempDir dir("report");
    TempDir out("report_out");
    ServedCampaign served(dir.str());

    report::CampaignReportOptions report_options;
    report_options.html = true;
    report_options.dossiers = false;
    corpus::StoreError error;
    ASSERT_TRUE(report::writeCampaignReport(
        *served.store, out.str(), report_options, &error))
        << error.message;

    // Byte-for-byte: the live endpoints render through exactly the
    // writeCampaignReport code paths.
    HttpResponse markdown = served.get("/report");
    ASSERT_EQ(markdown.status, 200);
    EXPECT_EQ(markdown.contentType, "text/markdown; charset=utf-8");
    EXPECT_EQ(markdown.body, readFile(out.str() + "/report.md"));

    HttpResponse html = served.get("/report.html");
    ASSERT_EQ(html.status, 200);
    EXPECT_EQ(html.contentType, "text/html; charset=utf-8");
    EXPECT_EQ(html.body, readFile(out.str() + "/report.html"));
}

TEST(ServeOps, DossierAndEventsEndpoints)
{
    TempDir dir("dossier");
    ServedCampaign served(dir.str());
    ASSERT_GT(served.findings, 0u)
        << "smallPlan must produce findings for this test";

    HttpResponse index = served.get("/dossiers");
    ASSERT_EQ(index.status, 200);
    std::optional<corpus::JsonValue> parsed =
        corpus::JsonValue::parse(index.body);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->getU64("findings"), served.findings);
    const corpus::JsonValue *dossiers = parsed->get("dossiers");
    ASSERT_TRUE(dossiers && dossiers->isArray());
    ASSERT_EQ(dossiers->items.size(), served.findings);

    std::string fingerprint =
        dossiers->items[0].getString("fingerprint");
    ASSERT_FALSE(fingerprint.empty());

    // The served dossier equals the library render, both formats.
    corpus::StoreError error;
    std::optional<report::Dossier> dossier = report::buildDossier(
        *served.store, &served.log, fingerprint, &error);
    ASSERT_TRUE(dossier) << error.message;
    HttpResponse as_json =
        served.get("/dossier/" + fingerprint, "format=json");
    ASSERT_EQ(as_json.status, 200);
    EXPECT_EQ(as_json.body, report::dossierJson(*dossier));
    HttpResponse as_md =
        served.get("/dossier/" + fingerprint, "format=md");
    ASSERT_EQ(as_md.status, 200);
    EXPECT_EQ(as_md.body, report::dossierMarkdown(*dossier));
    EXPECT_EQ(
        served.get("/dossier/" + fingerprint, "format=pdf").status,
        400);
    EXPECT_EQ(served
                  .get("/dossier/prog:ffff|markers:1|by:a|ref:b",
                       "format=json")
                  .status,
              404);

    // /events pages over emission order with a stable cursor.
    size_t total = served.log.size();
    ASSERT_GT(total, 0u);
    HttpResponse events = served.get("/events", "since=0&limit=5");
    ASSERT_EQ(events.status, 200);
    std::optional<corpus::JsonValue> page =
        corpus::JsonValue::parse(events.body);
    ASSERT_TRUE(page);
    EXPECT_EQ(page->getU64("total"), total);
    EXPECT_EQ(page->getU64("next"), 5u);
    const corpus::JsonValue *items = page->get("events");
    ASSERT_TRUE(items && items->isArray());
    EXPECT_EQ(items->items.size(), 5u);

    // Resume from the cursor: pages chain without gaps.
    HttpResponse rest = served.get("/events", "since=5");
    std::optional<corpus::JsonValue> rest_page =
        corpus::JsonValue::parse(rest.body);
    ASSERT_TRUE(rest_page);
    const corpus::JsonValue *rest_items = rest_page->get("events");
    ASSERT_TRUE(rest_items && rest_items->isArray());
    EXPECT_EQ(rest_items->items.size(),
              std::min<size_t>(total - 5, 256));
    EXPECT_EQ(rest_page->getU64("next"),
              5 + rest_items->items.size());

    // A cursor at (or past) the end is an empty page, not an error.
    HttpResponse beyond = served.get(
        "/events", "since=" + std::to_string(total + 10));
    std::optional<corpus::JsonValue> beyond_page =
        corpus::JsonValue::parse(beyond.body);
    ASSERT_TRUE(beyond_page);
    EXPECT_TRUE(beyond_page->get("events")->items.empty());

    // Malformed cursors are rejected.
    EXPECT_EQ(served.get("/events", "since=banana").status, 400);
    EXPECT_EQ(served.get("/events", "limit=0").status, 400);
}

TEST(ServeHttp, RequestReadSurvivesSignalsMidRequest)
{
    // Regression: the recv() loop used to treat EINTR as a closed
    // connection while the send path retried it — so a SIGCHLD-heavy
    // process (a fleet coordinator reaping workers) dropped requests
    // that arrived while a signal landed. Install a handler WITHOUT
    // SA_RESTART and pound the reading thread with signals while the
    // request trickles in.
    struct sigaction action = {};
    action.sa_handler = [](int) {};
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // deliberately no SA_RESTART
    struct sigaction previous = {};
    ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::string head;
    bool line_complete = false;
    std::atomic<bool> done{false};
    std::thread reader([&] {
        bool complete =
            readRequestHead(fds[0], 8 * 1024, head, line_complete);
        EXPECT_TRUE(complete);
        done.store(true);
    });
    pthread_t reader_handle = reader.native_handle();

    const std::string request = "GET /healthz HTTP/1.1\r\n\r\n";
    for (size_t i = 0; i < request.size(); ++i) {
        // A burst of signals between every byte: each one interrupts
        // the blocked recv() with EINTR.
        for (int burst = 0; burst < 8; ++burst) {
            ::pthread_kill(reader_handle, SIGUSR1);
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
        ASSERT_EQ(::send(fds[1], request.data() + i, 1, 0), 1);
    }
    reader.join();
    EXPECT_TRUE(done.load());
    EXPECT_TRUE(line_complete);
    EXPECT_EQ(head, request);

    ::close(fds[0]);
    ::close(fds[1]);
    ::sigaction(SIGUSR1, &previous, nullptr);
}

TEST(ServeOps, ProgressEtaIsNullUntilRateExistsAndZeroWhenDone)
{
    // "ETA unknown" and "ETA zero" are different answers. A campaign
    // with committed work remaining but no committed pipeline time
    // yet has no rate to extrapolate: eta_seconds must be null, not
    // 0.0 (which would read as "finished" to a dashboard).
    corpus::CampaignStatusBoard board;
    corpus::CampaignStatusBoard::Snapshot snap;
    snap.active = true;
    snap.seedsTotal = 100;
    snap.seedsCommitted = 0;
    snap.stageUs = 0;
    board.publish(snap);

    OpsServerOptions options;
    options.status = &board;
    OpsServer ops(options);
    HttpRequest request;
    request.method = "GET";
    request.path = "/progress";
    HttpResponse response = ops.handle(request);
    ASSERT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"eta_seconds\":null"),
              std::string::npos)
        << response.body;

    // With committed rate, the ETA is a number again.
    snap.seedsCommitted = 50;
    snap.stageUs = 1'000'000;
    board.publish(snap);
    response = ops.handle(request);
    EXPECT_EQ(response.body.find("\"eta_seconds\":null"),
              std::string::npos)
        << response.body;

    // And nothing-remaining is a true zero, not null.
    snap.seedsCommitted = 100;
    board.publish(snap);
    response = ops.handle(request);
    EXPECT_NE(response.body.find("\"eta_seconds\":\"0.000\""),
              std::string::npos)
        << response.body;
}

/** Deterministic FleetOpsSource stub for endpoint-contract tests. */
class StubFleetSource final : public FleetOpsSource {
  public:
    corpus::CampaignStatusBoard::Snapshot
    progress() const override
    {
        corpus::CampaignStatusBoard::Snapshot snap;
        snap.active = true;
        snap.seedsTotal = 40;
        snap.seedsCommitted = 10;
        snap.chunksTotal = 8;
        snap.completedChunks = 2;
        snap.watermark = 2;
        snap.stageUs = 2'000'000;
        return snap;
    }

    void
    mergeWorkerMetrics(support::MetricsRegistry &into) const override
    {
        // Two "workers" worth of dumps.
        into.counter("campaign.seeds_done").add(6);
        into.counter("campaign.seeds_done").add(4);
        into.histogram("campaign.stage_us", "compile").observe(123);
    }

    std::string
    fleetJson() const override
    {
        return "{\"workers_spawned\":2}";
    }
};

TEST(ServeOps, FleetModeAggregatesProgressMetricsAndFleet)
{
    StubFleetSource fleet;
    support::MetricsRegistry registry;
    registry.counter("serve.requests").add(3); // coordinator-local

    OpsServerOptions options;
    options.metrics = &registry;
    options.fleet = &fleet;
    OpsServer ops(options);

    HttpRequest request;
    request.method = "GET";

    // /progress falls through to the fleet snapshot when no local
    // status board is attached.
    request.path = "/progress";
    HttpResponse progress = ops.handle(request);
    ASSERT_EQ(progress.status, 200);
    std::optional<corpus::JsonValue> doc =
        corpus::JsonValue::parse(progress.body);
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->getU64("seeds_total"), 40u);
    EXPECT_EQ(doc->getU64("seeds_committed"), 10u);
    EXPECT_EQ(doc->getU64("completed_chunks"), 2u);

    // /metrics merges the coordinator's own registry with every
    // worker dump — and the scrape is non-destructive (a second
    // scrape sees identical, not doubled, numbers).
    request.path = "/metrics";
    HttpResponse metrics = ops.handle(request);
    ASSERT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("campaign_seeds_done 10"),
              std::string::npos)
        << metrics.body;
    EXPECT_NE(metrics.body.find("serve_requests 3"),
              std::string::npos);
    HttpResponse again = ops.handle(request);
    EXPECT_EQ(metrics.body, again.body);

    // /fleet serves the source's JSON verbatim (plus newline).
    request.path = "/fleet";
    HttpResponse fleet_response = ops.handle(request);
    ASSERT_EQ(fleet_response.status, 200);
    EXPECT_EQ(fleet_response.body, "{\"workers_spawned\":2}\n");

    // Without a fleet, /fleet is a 404 like the other unattached
    // endpoints.
    OpsServerOptions bare;
    OpsServer bare_ops(bare);
    EXPECT_EQ(bare_ops.handle(request).status, 404);
}

} // namespace
} // namespace dce::serve
