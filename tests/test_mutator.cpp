/**
 * @file
 * Mutation-based generation tests: marker stripping, determinism,
 * validity of mutants, the stale filter, the from-scratch fallback,
 * campaign integration (records identical for every thread count), and
 * pool seeding from a corpus store.
 */
#include <gtest/gtest.h>

#include <filesystem>

#include <unistd.h>

#include "core/campaign.hpp"
#include "corpus/serialize.hpp"
#include "corpus/store.hpp"
#include "gen/mutator.hpp"
#include "helpers.hpp"
#include "instrument/instrument.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "support/hash.hpp"

namespace dce {
namespace {

using gen::Mutator;
using gen::MutatorConfig;

/** The store's content-address input for @p seed. */
std::string
canonicalText(uint64_t seed)
{
    return corpus::canonicalProgramText(seed, {});
}

TEST(Mutator, StripMarkersRemovesCallsAndDeclarations)
{
    std::string text = canonicalText(3);
    ASSERT_NE(text.find("DCEMarker"), std::string::npos);
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(text, diags);
    ASSERT_TRUE(unit);
    gen::stripMarkers(*unit);
    std::string stripped = lang::printUnit(*unit);
    EXPECT_EQ(stripped.find("DCEMarker"), std::string::npos)
        << stripped;
    // The stripped program still parses and checks.
    DiagnosticEngine diags2;
    EXPECT_TRUE(lang::parseAndCheck(stripped, diags2));
}

TEST(Mutator, StripThenInstrumentRoundTripsCanonically)
{
    // Stripping an instrumented program and re-instrumenting must give
    // back the identical canonical text — that is what makes the stale
    // filter sound (an edit-free round trip hashes into the pool).
    std::string text = canonicalText(5);
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(text, diags);
    ASSERT_TRUE(unit);
    gen::stripMarkers(*unit);
    instrument::Instrumented again = instrument::instrumentUnit(*unit);
    EXPECT_EQ(lang::printUnit(*again.unit), text);
}

TEST(Mutator, PoolRejectsDuplicatesAndGarbage)
{
    Mutator mutator;
    EXPECT_TRUE(mutator.addToPool(canonicalText(1)));
    EXPECT_FALSE(mutator.addToPool(canonicalText(1))); // duplicate
    EXPECT_FALSE(mutator.addToPool("int main( {")); // parse failure
    EXPECT_EQ(mutator.poolSize(), 1u);
}

TEST(Mutator, MutantsAreDeterministicValidAndFresh)
{
    Mutator mutator;
    for (uint64_t seed = 0; seed < 6; ++seed)
        ASSERT_TRUE(mutator.addToPool(canonicalText(seed)));

    std::unordered_set<std::string> pool_hashes;
    for (uint64_t seed = 0; seed < 6; ++seed)
        pool_hashes.insert(support::fnv1a64Hex(canonicalText(seed)));

    unsigned mutated = 0;
    for (uint64_t seed = 100; seed < 140; ++seed) {
        instrument::Instrumented a = mutator.makeProgram(seed);
        instrument::Instrumented b = mutator.makeProgram(seed);
        ASSERT_TRUE(a.unit);
        std::string canonical_a = lang::printUnit(*a.unit);
        // Determinism: same pool + same seed = same program.
        EXPECT_EQ(canonical_a, lang::printUnit(*b.unit));
        // Stale filter: never a program the pool already holds.
        EXPECT_FALSE(
            pool_hashes.count(support::fnv1a64Hex(canonical_a)));
        // Validity: the canonical text round-trips through sema.
        DiagnosticEngine diags;
        EXPECT_TRUE(lang::parseAndCheck(canonical_a, diags));
        if (mutator.mutate(seed))
            ++mutated;
    }
    // The gate may bounce some seeds to the fallback generator, but
    // mutation must succeed for a healthy share of them.
    EXPECT_GE(mutated, 20u);
}

TEST(Mutator, EmptyPoolFallsBackToGenerator)
{
    Mutator mutator;
    support::MetricsRegistry registry;
    MutatorConfig config;
    config.metrics = &registry;
    Mutator counted(config);
    instrument::Instrumented prog = counted.makeProgram(7);
    ASSERT_TRUE(prog.unit);
    // Identical to the from-scratch program for the same seed.
    EXPECT_EQ(lang::printUnit(*prog.unit), canonicalText(7));
    EXPECT_EQ(registry.counterValue("gen.mutation_fallback"), 1u);
    EXPECT_EQ(mutator.mutate(7), nullptr);
}

TEST(Mutator, CampaignWithMutatorIsDeterministicAcrossThreads)
{
    Mutator mutator;
    for (uint64_t seed = 0; seed < 4; ++seed)
        ASSERT_TRUE(mutator.addToPool(canonicalText(seed)));

    std::vector<core::BuildSpec> builds = {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3,
         SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3,
         SIZE_MAX},
    };
    core::CampaignOptions serial;
    serial.mutator = &mutator;
    serial.threads = 1;
    core::Campaign one = core::runCampaign(9000, 24, builds, serial);

    core::CampaignOptions parallel = serial;
    parallel.threads = 4;
    core::Campaign four = core::runCampaign(9000, 24, builds,
                                            parallel);
    EXPECT_EQ(one.programs, four.programs);

    // Mutation mode really is a different corpus than from-scratch
    // generation over the same seed range.
    core::Campaign scratch = core::runCampaign(9000, 24, builds, {});
    EXPECT_NE(one.programs, scratch.programs);
}

TEST(Mutator, SeedsPoolFromCorpusStore)
{
    std::string dir = "/tmp/dce_test_mutator_pool_" +
                      std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    {
        auto store = corpus::CorpusStore::open(dir);
        ASSERT_TRUE(store);
        for (uint64_t seed = 0; seed < 5; ++seed) {
            std::string text = canonicalText(seed);
            store->putProgram(corpus::programHash(text), text);
        }
        // A duplicate sighting must not double-pool.
        std::string text = canonicalText(0);
        store->putProgram(corpus::programHash(text), text);

        EXPECT_EQ(store->programHashes().size(), 5u);
        Mutator mutator;
        EXPECT_EQ(corpus::seedMutatorPool(*store, mutator), 5u);
        EXPECT_EQ(mutator.poolSize(), 5u);

        instrument::Instrumented prog = mutator.makeProgram(123);
        ASSERT_TRUE(prog.unit);
        EXPECT_FALSE(store->hasProgram(corpus::programHash(
            lang::printUnit(*prog.unit))));
    }
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace dce
