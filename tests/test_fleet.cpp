/** @file Tests for the multi-process campaign fleet: lease table
 * claim/steal/fencing semantics, merged-output byte-identity against
 * a single-process run across worker counts and mid-lease crashes,
 * plan pinning of a fleet directory, and the metrics dump transport.
 *
 * Coordinator tests fork real worker processes; each gtest TEST runs
 * in its own process (gtest_discover_tests), and the in-process
 * worker path uses ThreadPool(1), which runs inline — so the forked
 * children never touch inherited threads. */
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/fleet.hpp"
#include "fleet/lease.hpp"
#include "fleet/merge.hpp"
#include "fleet/metrics_io.hpp"
#include "report/report.hpp"

namespace fs = std::filesystem;

namespace dce::fleet {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;
using core::BuildSpec;

class TempDir {
  public:
    explicit TempDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (fs::temp_directory_path() /
                 ("dce_fleet_" + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter++)))
                    .string();
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

corpus::CampaignPlan
fleetPlan()
{
    corpus::CampaignPlan plan;
    plan.count = 18;
    plan.chunkSize = 3;
    plan.randomSeeds = true;
    plan.streamSeed = 2024;
    plan.builds = {{CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
                   {CompilerId::Beta, OptLevel::O3, SIZE_MAX}};
    plan.computePrimary = true;
    plan.collectRemarks = true;
    plan.missedByBuild = 0;
    plan.referenceBuild = 1;
    return plan;
}

/** Reference single-process run: summary + report markdown. */
void
runReference(const std::string &dir, std::string &summary,
             std::string &report)
{
    corpus::StoreError error;
    support::MetricsRegistry registry;
    corpus::OpenOptions open_options;
    open_options.metrics = &registry;
    auto store = corpus::CorpusStore::open(dir, &error, open_options);
    ASSERT_TRUE(store) << error.message;
    corpus::CheckpointRunOptions run;
    run.metrics = &registry;
    run.checkpointEveryChunks = 2;
    std::optional<corpus::CheckpointedCampaign> result =
        corpus::runCheckpointed(*store, fleetPlan(), run, &error);
    ASSERT_TRUE(result) << error.message;
    ASSERT_TRUE(result->completed);
    summary = corpus::summaryText(*result);
    std::optional<report::CampaignReportData> data =
        report::collectReportData(*store, &error);
    ASSERT_TRUE(data) << error.message;
    report = report::renderCampaignReportMarkdown(*data);
}

std::string
renderMergedReport(const std::string &merged_dir)
{
    corpus::StoreError error;
    support::MetricsRegistry registry;
    corpus::OpenOptions open_options;
    open_options.createIfMissing = false;
    open_options.metrics = &registry;
    auto store =
        corpus::CorpusStore::open(merged_dir, &error, open_options);
    EXPECT_TRUE(store) << error.message;
    if (!store)
        return "";
    std::optional<report::CampaignReportData> data =
        report::collectReportData(*store, &error);
    EXPECT_TRUE(data) << error.message;
    if (!data)
        return "";
    return report::renderCampaignReportMarkdown(*data);
}

//===------------------------------------------------------------------===//
// Lease table semantics
//===------------------------------------------------------------------===//

TEST(Fleet, LeaseTableClaimsInOrderAndCompletes)
{
    TempDir dir("lease");
    corpus::StoreError error;
    ASSERT_TRUE(LeaseTable::init(dir.str(), 6, 2, &error))
        << error.message;
    LeaseTable table(dir.str());

    std::optional<std::vector<Lease>> leases = table.list(&error);
    ASSERT_TRUE(leases) << error.message;
    ASSERT_EQ(leases->size(), 3u);
    EXPECT_EQ((*leases)[2].beginChunk, 4u);
    EXPECT_EQ((*leases)[2].endChunk, 6u);

    std::optional<Lease> first =
        table.claim(::getpid(), "worker.0", 0, 0, &error);
    ASSERT_TRUE(first) << error.message;
    EXPECT_EQ(first->index, 0u);
    EXPECT_EQ(first->epoch, 1u);

    // A second claimant skips our live claim and gets the next lease.
    std::optional<Lease> second =
        table.claim(::getpid(), "worker.1", 0, 0, &error);
    ASSERT_TRUE(second) << error.message;
    EXPECT_EQ(second->index, 1u);

    first->counters.emplace_back("campaign.seeds_done", 6);
    first->stageUs = 123;
    first->findings.push_back({0, 2, 99, 1});
    bool stolen = true;
    ASSERT_TRUE(table.complete(*first, &stolen, &error))
        << error.message;
    EXPECT_FALSE(stolen);

    leases = table.list(&error);
    ASSERT_TRUE(leases) << error.message;
    EXPECT_EQ((*leases)[0].state, LeaseState::Done);
    ASSERT_EQ((*leases)[0].counters.size(), 1u);
    EXPECT_EQ((*leases)[0].counters[0].second, 6u);
    EXPECT_EQ((*leases)[0].stageUs, 123u);
    ASSERT_EQ((*leases)[0].findings.size(), 1u);
    EXPECT_EQ((*leases)[0].findings[0].seed, 99u);
}

TEST(Fleet, DeadOwnerLeaseIsStolenAndStaleCompletionFenced)
{
    TempDir dir("fence");
    corpus::StoreError error;
    ASSERT_TRUE(LeaseTable::init(dir.str(), 2, 2, &error));
    LeaseTable table(dir.str());

    // A child that exits immediately gives us a genuinely dead pid.
    pid_t dead = ::fork();
    ASSERT_GE(dead, 0);
    if (dead == 0)
        ::_exit(0);
    ASSERT_EQ(::waitpid(dead, nullptr, 0), dead);

    std::optional<Lease> stale =
        table.claim(int64_t(dead), "worker.dead", 0, 0, &error);
    ASSERT_TRUE(stale) << error.message;
    EXPECT_EQ(stale->epoch, 1u);

    // The dead owner's lease is immediately claimable; the steal
    // bumps the epoch.
    std::optional<Lease> stolen_lease =
        table.claim(::getpid(), "worker.live", 0, 0, &error);
    ASSERT_TRUE(stolen_lease) << error.message;
    EXPECT_EQ(stolen_lease->index, stale->index);
    EXPECT_EQ(stolen_lease->epoch, 2u);

    // The original owner's completion arrives late: fenced out,
    // payload discarded, not an error.
    bool stolen = false;
    ASSERT_TRUE(table.complete(*stale, &stolen, &error))
        << error.message;
    EXPECT_TRUE(stolen);
    std::optional<std::vector<Lease>> leases = table.list(&error);
    ASSERT_TRUE(leases);
    EXPECT_EQ((*leases)[0].state, LeaseState::Claimed);

    // The thief's completion (current epoch) lands.
    ASSERT_TRUE(table.complete(*stolen_lease, &stolen, &error));
    EXPECT_FALSE(stolen);
    leases = table.list(&error);
    ASSERT_TRUE(leases);
    EXPECT_EQ((*leases)[0].state, LeaseState::Done);
}

TEST(Fleet, ReclaimOwnedByReturnsOnlyThatPidsLeases)
{
    // Owners must look *alive* to pidAlive() or the next claim would
    // simply steal their lease: pid 1 (init — kill() yields EPERM,
    // which counts as alive) plays the crashed-but-unreaped worker,
    // our own pid plays the healthy one.
    TempDir dir("reclaim");
    corpus::StoreError error;
    ASSERT_TRUE(LeaseTable::init(dir.str(), 4, 1, &error));
    LeaseTable table(dir.str());
    ASSERT_TRUE(table.claim(1, "worker.a", 0, 0, &error));
    ASSERT_TRUE(table.claim(1, "worker.a", 0, 0, &error));
    ASSERT_TRUE(table.claim(::getpid(), "worker.b", 0, 0, &error));

    std::optional<size_t> reclaimed =
        table.reclaimOwnedBy(1, &error);
    ASSERT_TRUE(reclaimed) << error.message;
    EXPECT_EQ(*reclaimed, 2u);
    std::optional<std::vector<Lease>> leases = table.list(&error);
    ASSERT_TRUE(leases);
    EXPECT_EQ((*leases)[0].state, LeaseState::Available);
    EXPECT_EQ((*leases)[1].state, LeaseState::Available);
    EXPECT_EQ((*leases)[2].state, LeaseState::Claimed);
    // Epochs survive the reclaim, so the old owner stays fenced.
    EXPECT_EQ((*leases)[0].epoch, 1u);
}

//===------------------------------------------------------------------===//
// Metrics dump transport
//===------------------------------------------------------------------===//

TEST(Fleet, RegistryDumpRoundTripsExactly)
{
    support::MetricsRegistry source;
    source.counter("campaign.seeds_done").add(42);
    source.counter("corpus.records").add(7);
    source.histogram("campaign.stage_us", "compile").observe(100);
    source.histogram("campaign.stage_us", "compile").observe(3000);

    std::string dump = encodeRegistryDump(source.counters(),
                                          source.histograms());
    support::MetricsRegistry target;
    ASSERT_TRUE(absorbRegistryDump(dump, target));
    // Absorbing a second worker's identical dump doubles everything.
    ASSERT_TRUE(absorbRegistryDump(dump, target));
    EXPECT_EQ(target.counterValue("campaign.seeds_done"), 84u);
    EXPECT_EQ(target.counterValue("corpus.records"), 14u);
    EXPECT_EQ(
        target.histogram("campaign.stage_us", "compile").count(), 4u);
    EXPECT_EQ(target.histogram("campaign.stage_us", "compile").sum(),
              6200u);

    EXPECT_FALSE(absorbRegistryDump("{\"counters\":[]}", target));
}

//===------------------------------------------------------------------===//
// Fleet end-to-end byte-identity
//===------------------------------------------------------------------===//

TEST(Fleet, MergedOutputMatchesSingleProcessAcrossWorkerCounts)
{
    TempDir ref("ref");
    std::string reference_summary, reference_report;
    runReference(ref.str(), reference_summary, reference_report);
    ASSERT_FALSE(reference_summary.empty());

    for (unsigned workers : {1u, 2u, 4u}) {
        TempDir dir("fleet");
        FleetOptions options;
        options.workers = workers;
        options.leaseChunks = 1;
        options.workerCheckpointEveryChunks = 1;
        corpus::StoreError error;
        FleetCoordinator coordinator(dir.str(), fleetPlan(), options);
        std::optional<FleetResult> result =
            coordinator.run(&error);
        ASSERT_TRUE(result) << error.message;
        EXPECT_EQ(result->workersSpawned, workers);
        EXPECT_EQ(result->workersCrashed, 0u);
        EXPECT_TRUE(result->merged.completed);
        EXPECT_EQ(corpus::summaryText(result->merged),
                  reference_summary)
            << "workers=" << workers;
        EXPECT_EQ(renderMergedReport(result->mergedStoreDir),
                  reference_report)
            << "workers=" << workers;
    }
}

TEST(Fleet, CrashedWorkerIsReclaimedAndMergeIsUnchanged)
{
    TempDir ref("ref");
    std::string reference_summary, reference_report;
    runReference(ref.str(), reference_summary, reference_report);

    // Crash the first worker one chunk into its first lease — the
    // worst case: a claimed lease with durable-but-incomplete store
    // state. The lease must return to the pool, a fresh-store
    // replacement must finish it, and the merge must not change.
    for (uint64_t crash_after : {1u, 2u}) {
        TempDir dir("crash");
        FleetOptions options;
        options.workers = 2;
        options.leaseChunks = 2;
        options.workerCheckpointEveryChunks = 1;
        options.crashFirstWorkerAfterChunks = crash_after;
        corpus::StoreError error;
        FleetCoordinator coordinator(dir.str(), fleetPlan(), options);
        std::optional<FleetResult> result =
            coordinator.run(&error);
        ASSERT_TRUE(result) << error.message;
        EXPECT_EQ(result->workersCrashed, 1u);
        EXPECT_GE(result->leasesReclaimed, 1u);
        EXPECT_EQ(result->workersSpawned, 3u); // 2 + 1 respawn
        EXPECT_EQ(corpus::summaryText(result->merged),
                  reference_summary)
            << "crash_after=" << crash_after;
        EXPECT_EQ(renderMergedReport(result->mergedStoreDir),
                  reference_report)
            << "crash_after=" << crash_after;
    }
}

TEST(Fleet, FleetDirPinsItsPlan)
{
    TempDir dir("pin");
    FleetOptions options;
    options.workers = 1;
    corpus::StoreError error;
    {
        FleetCoordinator coordinator(dir.str(), fleetPlan(), options);
        ASSERT_TRUE(coordinator.run(&error)) << error.message;
    }
    corpus::CampaignPlan other = fleetPlan();
    other.streamSeed += 1;
    FleetCoordinator mismatched(dir.str(), other, options);
    EXPECT_FALSE(mismatched.run(&error));
    EXPECT_EQ(error.status, corpus::StoreStatus::PlanMismatch);
}

TEST(Fleet, MergeRefusesAnIncompleteFleet)
{
    TempDir dir("incomplete");
    corpus::StoreError error;
    FleetConfig config;
    config.plan = fleetPlan();
    config.leaseChunks = 3;
    ASSERT_TRUE(writeFleetConfig(dir.str(), config, &error));
    ASSERT_TRUE(LeaseTable::init(dir.str(), config.numChunks(),
                                 config.leaseChunks, &error));
    EXPECT_FALSE(mergeFleet(dir.str(), &error));
    EXPECT_EQ(error.status, corpus::StoreStatus::IoError);
    EXPECT_NE(error.message.find("lease 0"), std::string::npos);
}

} // namespace
} // namespace dce::fleet
