/** @file Tests for the fleet-wide observability layer (DESIGN.md §17):
 * histogram percentile estimation and merge/absorb edge cases, the
 * lock-free time-series ring + sampler, EWMA throughput anomaly
 * detection (and its /readyz wiring), the /timeseries and /dashboard
 * endpoints, cross-process trace merging, and a traced fleet's
 * byte-identity with the single-process reference run. */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "corpus/checkpoint.hpp"
#include "corpus/json.hpp"
#include "corpus/store.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/trace_merge.hpp"
#include "report/anomaly.hpp"
#include "report/event_log.hpp"
#include "report/report.hpp"
#include "serve/ops_server.hpp"
#include "support/metrics.hpp"
#include "support/timeseries.hpp"
#include "support/trace.hpp"

namespace fs = std::filesystem;

namespace dce {
namespace {

using support::Histogram;
using support::MetricsRegistry;
using support::TimeSample;
using support::TimeSeries;
using support::TimeSeriesSampler;
using support::TimeSeriesSamplerOptions;

/** Fresh scratch directory, removed on destruction. */
class TempDir {
  public:
    explicit TempDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (fs::temp_directory_path() /
                 ("dce_observe_" + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter++)))
                    .string();
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

corpus::CampaignPlan
smallPlan()
{
    corpus::CampaignPlan plan;
    plan.count = 18;
    plan.chunkSize = 3;
    plan.randomSeeds = true;
    plan.streamSeed = 2024;
    plan.builds = {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3,
         SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3,
         SIZE_MAX},
    };
    plan.computePrimary = true;
    plan.collectRemarks = true;
    plan.missedByBuild = 0;
    plan.referenceBuild = 1;
    return plan;
}

//===------------------------------------------------------------------===//
// Histogram percentiles + saturation
//===------------------------------------------------------------------===//

TEST(ObserveHistogram, BucketOfSaturatesInsteadOfOverflowing)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf((uint64_t(1) << 62) - 1), 62u);
    // Values at/above 2^63 used to index one past the bucket array;
    // they must land in the top bucket instead.
    EXPECT_EQ(Histogram::bucketOf(uint64_t(1) << 62), 63u);
    EXPECT_EQ(Histogram::bucketOf(uint64_t(1) << 63), 63u);
    EXPECT_EQ(Histogram::bucketOf(~uint64_t{0}), 63u);

    Histogram histogram;
    histogram.observe(~uint64_t{0});
    EXPECT_EQ(histogram.bucket(63), 1u);
    EXPECT_EQ(histogram.count(), 1u);
}

TEST(ObserveHistogram, PercentileExactAtBucketBoundaries)
{
    Histogram histogram;
    EXPECT_EQ(histogram.percentileEstimate(0.5), 0.0); // empty

    // All-zero samples: bucket 0 is exactly the value 0.
    for (int i = 0; i < 10; ++i)
        histogram.observe(0);
    EXPECT_EQ(histogram.percentileEstimate(0.5), 0.0);
    EXPECT_EQ(histogram.percentileEstimate(0.99), 0.0);

    // A single-value bucket ([1,1]) is exact at every quantile.
    Histogram ones;
    for (int i = 0; i < 100; ++i)
        ones.observe(1);
    EXPECT_EQ(ones.percentileEstimate(0.01), 1.0);
    EXPECT_EQ(ones.percentileEstimate(0.5), 1.0);
    EXPECT_EQ(ones.percentileEstimate(1.0), 1.0);

    // One sample: every quantile is that sample's bucket floor, which
    // for a power of two is the sample itself.
    Histogram single;
    single.observe(16);
    EXPECT_EQ(single.percentileEstimate(0.0), 16.0);
    EXPECT_EQ(single.percentileEstimate(0.5), 16.0);
    EXPECT_EQ(single.percentileEstimate(1.0), 16.0);
}

TEST(ObserveHistogram, PercentileInterpolatesWithinBuckets)
{
    // 50 fast samples (1µs) + 50 slow (1000µs, bucket [512,1023]).
    Histogram histogram;
    for (int i = 0; i < 50; ++i)
        histogram.observe(1);
    for (int i = 0; i < 50; ++i)
        histogram.observe(1000);

    EXPECT_EQ(histogram.percentileEstimate(0.5), 1.0);
    // Rank 51 is the first slow sample: exactly the bucket floor.
    EXPECT_EQ(histogram.percentileEstimate(0.51), 512.0);
    double p90 = histogram.percentileEstimate(0.9);
    EXPECT_GE(p90, 512.0);
    EXPECT_LE(p90, 1023.0);
    double p99 = histogram.percentileEstimate(0.99);
    EXPECT_GT(p99, p90);
    EXPECT_LE(p99, 1023.0);

    // The snapshot-based form sees the same state, same answer.
    MetricsRegistry registry;
    registry.histogram("campaign.stage_us", "compile")
        .merge(histogram);
    auto hists = registry.histograms();
    ASSERT_EQ(hists.size(), 1u);
    EXPECT_EQ(Histogram::percentileFromBuckets(
                  hists[0].second.buckets, hists[0].second.count, 0.9),
              p90);
}

TEST(ObserveHistogram, MergeAndAbsorbEdgeCases)
{
    // Empty into empty: still empty, and expose() stays consistent.
    Histogram a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.sum(), 0u);

    // Saturated top bucket survives a merge and an absorb.
    Histogram top;
    top.observe(~uint64_t{0});
    top.observe(uint64_t(1) << 63);
    a.merge(top);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.bucket(63), 2u);

    MetricsRegistry registry;
    Histogram &target = registry.histogram("campaign.stage_us", "io");
    std::array<uint64_t, Histogram::kBuckets> buckets{};
    buckets[0] = 1;  // one zero-valued sample
    buckets[63] = 2; // two saturated samples
    target.absorb(3, 12345, buckets);
    target.absorb(0, 0, std::array<uint64_t, Histogram::kBuckets>{});
    EXPECT_EQ(target.count(), 3u);
    EXPECT_EQ(target.sum(), 12345u);
    EXPECT_EQ(target.bucket(63), 2u);

    // Exposition invariant after absorb: the cumulative +Inf bucket
    // equals _count, and _sum matches, even with a saturated top.
    std::string exposed = registry.expose();
    EXPECT_NE(exposed.find("campaign_stage_us_bucket{label=\"io\","
                           "le=\"+Inf\"} 3"),
              std::string::npos)
        << exposed;
    EXPECT_NE(exposed.find("campaign_stage_us_sum{label=\"io\"} 12345"),
              std::string::npos)
        << exposed;
    EXPECT_NE(
        exposed.find("campaign_stage_us_count{label=\"io\"} 3"),
        std::string::npos)
        << exposed;
}

//===------------------------------------------------------------------===//
// Time-series ring
//===------------------------------------------------------------------===//

TimeSample
makeSample(uint64_t seeds)
{
    TimeSample sample;
    sample.wallMs = 1000 + seeds;
    sample.seeds = seeds;
    sample.findings = seeds / 2;
    sample.seedsPerSec = double(seeds) * 0.5;
    sample.cacheHitRate = 0.25;
    sample.stageP99Us = {1.0, 2.0, 3.0, 4.0};
    sample.serveP99Us = 9.5;
    return sample;
}

TEST(ObserveTimeSeries, AppendReadRoundTripAndCursor)
{
    TimeSeries series(4);
    EXPECT_EQ(series.next(), 0u);
    EXPECT_TRUE(series.read(0).empty());

    for (uint64_t i = 0; i < 3; ++i)
        series.append(makeSample(i * 10));
    EXPECT_EQ(series.next(), 3u);

    std::vector<TimeSample> all = series.read(0);
    ASSERT_EQ(all.size(), 3u);
    for (uint64_t i = 0; i < 3; ++i) {
        EXPECT_EQ(all[i].seq, i);
        EXPECT_EQ(all[i].seeds, i * 10);
        EXPECT_EQ(all[i].findings, i * 10 / 2);
        EXPECT_DOUBLE_EQ(all[i].seedsPerSec, double(i * 10) * 0.5);
        EXPECT_DOUBLE_EQ(all[i].cacheHitRate, 0.25);
        EXPECT_DOUBLE_EQ(all[i].stageP99Us[3], 4.0);
        EXPECT_DOUBLE_EQ(all[i].serveP99Us, 9.5);
    }

    // The since cursor pages incrementally, like /events.
    std::vector<TimeSample> tail = series.read(2);
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail[0].seq, 2u);
    EXPECT_TRUE(series.read(3).empty());
    EXPECT_TRUE(series.read(100).empty());
}

TEST(ObserveTimeSeries, WraparoundKeepsNewestCapacitySamples)
{
    TimeSeries series(4);
    for (uint64_t i = 0; i < 10; ++i)
        series.append(makeSample(i));
    EXPECT_EQ(series.next(), 10u);
    std::vector<TimeSample> kept = series.read(0);
    ASSERT_EQ(kept.size(), 4u);
    for (size_t i = 0; i < kept.size(); ++i) {
        EXPECT_EQ(kept[i].seq, 6 + i);
        EXPECT_EQ(kept[i].seeds, 6 + i);
    }
}

TEST(ObserveTimeSeries, ConcurrentReadersNeverSeeTornSamples)
{
    // Readers hammer the ring while the writer laps it. Every sample a
    // reader returns must be internally consistent (fields derived
    // from seeds agree), and seqs must be strictly increasing within
    // one read. Run under TSan for the memory-order claim.
    TimeSeries series(8);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> torn{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            while (!stop.load()) {
                std::vector<TimeSample> got = series.read(0);
                uint64_t last_seq = 0;
                bool have_last = false;
                for (const TimeSample &sample : got) {
                    if (have_last && sample.seq <= last_seq)
                        torn.fetch_add(1);
                    have_last = true;
                    last_seq = sample.seq;
                    if (sample.wallMs != 1000 + sample.seeds ||
                        sample.findings != sample.seeds / 2)
                        torn.fetch_add(1);
                }
            }
        });
    }
    for (uint64_t i = 0; i < 20000; ++i)
        series.append(makeSample(i));
    stop.store(true);
    for (std::thread &reader : readers)
        reader.join();
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(series.next(), 20000u);
}

TEST(ObserveTimeSeries, JsonShapeAndQuotedDecimals)
{
    TimeSeries series(8);
    series.append(makeSample(40));
    series.append(makeSample(60));

    std::string json = support::timeSeriesJson(series, 0);
    std::optional<corpus::JsonValue> doc =
        corpus::JsonValue::parse(json);
    ASSERT_TRUE(doc) << json;
    EXPECT_EQ(doc->getU64("capacity"), 8u);
    EXPECT_EQ(doc->getU64("next"), 2u);
    const corpus::JsonValue *points = doc->get("points");
    ASSERT_TRUE(points && points->isArray());
    ASSERT_EQ(points->items.size(), 2u);
    const corpus::JsonValue &first = points->items[0];
    EXPECT_EQ(first.getU64("seq"), 0u);
    EXPECT_EQ(first.getU64("seeds"), 40u);
    // Decimals ride as quoted "%.3f" strings, the repo's JSON rule.
    EXPECT_EQ(first.getString("seeds_per_sec"), "20.000");
    EXPECT_EQ(first.getString("cache_hit_rate"), "0.250");
    const corpus::JsonValue *stages = first.get("stage_p99_us");
    ASSERT_TRUE(stages && stages->isObject());
    EXPECT_EQ(stages->getString("generate"), "1.000");
    EXPECT_EQ(stages->getString("primary"), "4.000");

    // since=1 returns only the newer point.
    std::optional<corpus::JsonValue> tail =
        corpus::JsonValue::parse(support::timeSeriesJson(series, 1));
    ASSERT_TRUE(tail);
    EXPECT_EQ(tail->get("points")->items.size(), 1u);
}

TEST(ObserveTimeSeries, SamplerDerivesRatesFromRegistry)
{
    MetricsRegistry registry;
    registry.counter("campaign.seeds").add(100);
    registry.counter("campaign.progress", "findings").add(7);
    registry.counter("campaign.cache_hits").add(30);
    registry.counter("campaign.cache_misses").add(10);
    // Single samples at bucket floors so the p99 estimate is exact.
    registry.histogram("campaign.stage_us", "compile").observe(64);
    registry.histogram("serve.request_us").observe(256);

    uint64_t fake_ms = 10'000;
    TimeSeries series(16);
    TimeSeriesSamplerOptions options;
    options.registry = &registry;
    options.clock = [&] { return fake_ms; };
    TimeSeriesSampler sampler(series, options);

    TimeSample first = sampler.sampleOnce();
    EXPECT_EQ(first.seeds, 100u);
    EXPECT_EQ(first.findings, 7u);
    EXPECT_DOUBLE_EQ(first.seedsPerSec, 0.0); // no previous sample
    EXPECT_DOUBLE_EQ(first.cacheHitRate, 0.75);
    EXPECT_EQ(first.stageP99Us[2], 64.0); // compile, power of two
    EXPECT_EQ(first.serveP99Us, 256.0);

    // 50 more seeds over 2 seconds: 25 seeds/s.
    registry.counter("campaign.seeds").add(50);
    fake_ms += 2000;
    TimeSample second = sampler.sampleOnce();
    EXPECT_DOUBLE_EQ(second.seedsPerSec, 25.0);
    ASSERT_EQ(series.next(), 2u);
    std::vector<TimeSample> published = series.read(1);
    ASSERT_EQ(published.size(), 1u);
    EXPECT_EQ(published[0].seq, 1u);
    EXPECT_EQ(published[0].seeds, 150u);
}

TEST(ObserveTimeSeries, SamplerAugmentFoldsFleetState)
{
    // The coordinator's registry has no campaign.* counters; the
    // augment hook (worker dumps + board findings in production)
    // must be what the sample reflects — without mutating the base.
    MetricsRegistry registry;
    registry.counter("fleet.workers_spawned").add(3);

    TimeSeries series(4);
    TimeSeriesSamplerOptions options;
    options.registry = &registry;
    options.clock = [] { return uint64_t(5000); };
    options.augment = [](MetricsRegistry &scratch) {
        scratch.counter("campaign.seeds").add(42);
        scratch.counter("campaign.progress", "findings").add(4);
    };
    TimeSeriesSampler sampler(series, options);
    TimeSample sample = sampler.sampleOnce();
    EXPECT_EQ(sample.seeds, 42u);
    EXPECT_EQ(sample.findings, 4u);
    EXPECT_EQ(registry.counterValue("campaign.seeds"), 0u);
}

//===------------------------------------------------------------------===//
// Throughput anomaly detection
//===------------------------------------------------------------------===//

TEST(ObserveThroughput, DegradeAndRecoverWithInjectedClock)
{
    uint64_t fake_us = 0;
    MetricsRegistry registry;
    report::EventLog log(&registry);
    report::ThroughputMonitorOptions options;
    options.alpha = 0.5;
    options.degradeRatio = 0.5;
    options.recoverRatio = 0.8;
    options.warmupSamples = 3;
    options.events = &log;
    options.registry = &registry;
    options.clock = [&] { return fake_us; };
    report::ThroughputMonitor monitor(options);

    // Warmup: 100 units/s, steady. No transitions may fire.
    uint64_t units = 0;
    for (int i = 0; i < 6; ++i) {
        fake_us += 1'000'000;
        units += 100;
        EXPECT_FALSE(monitor.observe(units));
    }
    EXPECT_FALSE(monitor.degraded());
    EXPECT_NEAR(monitor.baselineRate(), 100.0, 1e-9);

    // Collapse to 10 units/s: below 0.5×baseline, the latch fires.
    fake_us += 1'000'000;
    units += 10;
    EXPECT_TRUE(monitor.observe(units));
    EXPECT_TRUE(monitor.degraded());
    EXPECT_EQ(monitor.degradationsFired(), 1u);
    EXPECT_EQ(registry.counterValue("report.throughput_degraded"), 1u);

    // Still slow: no second fire (latched), baseline frozen at 100.
    fake_us += 1'000'000;
    units += 10;
    EXPECT_FALSE(monitor.observe(units));
    EXPECT_TRUE(monitor.degraded());
    EXPECT_NEAR(monitor.baselineRate(), 100.0, 1e-9);

    // Back to 90 units/s ≥ 0.8×baseline: recovery fires.
    fake_us += 1'000'000;
    units += 90;
    EXPECT_TRUE(monitor.observe(units));
    EXPECT_FALSE(monitor.degraded());
    EXPECT_EQ(registry.counterValue("report.throughput_recovered"),
              1u);

    // Both transitions are ops-phase events with disjoint minors from
    // the watchdog's stall events.
    std::vector<support::Event> events = log.sorted();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type(), "throughput_degraded");
    EXPECT_EQ(events[1].type(), "throughput_recovered");
    EXPECT_EQ(events[0].key().phase, support::kPhaseOps);
    EXPECT_EQ(events[0].key().minor, 2u);
    EXPECT_EQ(events[1].key().minor, 3u);
    EXPECT_EQ(events[0].getNum("degradation"), 1u);
}

TEST(ObserveThroughput, MinBaselineRateKeepsIdleRunsArmed)
{
    uint64_t fake_us = 0;
    report::ThroughputMonitorOptions options;
    MetricsRegistry registry;
    options.registry = &registry;
    options.warmupSamples = 2;
    options.minBaselineRate = 50.0;
    options.clock = [&] { return fake_us; };
    report::ThroughputMonitor monitor(options);

    // A 10-units/s trickle never arms: dropping to zero is not an
    // anomaly for a near-idle campaign.
    uint64_t units = 0;
    for (int i = 0; i < 5; ++i) {
        fake_us += 1'000'000;
        units += 10;
        EXPECT_FALSE(monitor.observe(units));
    }
    fake_us += 1'000'000;
    EXPECT_FALSE(monitor.observe(units)); // rate 0
    EXPECT_FALSE(monitor.degraded());
}

TEST(ObserveThroughput, ReadyzFollowsDegradeAndRecovery)
{
    uint64_t fake_us = 0;
    MetricsRegistry registry;
    report::ThroughputMonitorOptions monitor_options;
    monitor_options.registry = &registry;
    monitor_options.warmupSamples = 2;
    monitor_options.clock = [&] { return fake_us; };
    report::ThroughputMonitor monitor(monitor_options);

    serve::OpsServerOptions options;
    options.metrics = &registry;
    options.throughput = &monitor;
    serve::OpsServer ops(options);
    serve::HttpRequest request;
    request.path = "/readyz";

    EXPECT_EQ(ops.handle(request).status, 200);

    uint64_t units = 0;
    for (int i = 0; i < 4; ++i) {
        fake_us += 1'000'000;
        units += 100;
        monitor.observe(units);
    }
    EXPECT_EQ(ops.handle(request).status, 200);

    fake_us += 1'000'000;
    units += 5; // collapse
    monitor.observe(units);
    serve::HttpResponse degraded = ops.handle(request);
    EXPECT_EQ(degraded.status, 503);
    EXPECT_NE(degraded.body.find("throughput"), std::string::npos);

    fake_us += 1'000'000;
    units += 100; // recovery
    monitor.observe(units);
    EXPECT_EQ(ops.handle(request).status, 200);
}

//===------------------------------------------------------------------===//
// /timeseries + /dashboard endpoints
//===------------------------------------------------------------------===//

TEST(ObserveServe, TimeseriesEndpointPagesWithCursor)
{
    TimeSeries series(8);
    series.append(makeSample(10));
    series.append(makeSample(20));

    MetricsRegistry registry;
    serve::OpsServerOptions options;
    options.metrics = &registry;
    options.timeseries = &series;
    serve::OpsServer ops(options);

    serve::HttpRequest request;
    request.path = "/timeseries";
    serve::HttpResponse response = ops.handle(request);
    ASSERT_EQ(response.status, 200);
    std::optional<corpus::JsonValue> doc =
        corpus::JsonValue::parse(response.body);
    ASSERT_TRUE(doc) << response.body;
    EXPECT_EQ(doc->getU64("next"), 2u);
    EXPECT_EQ(doc->get("points")->items.size(), 2u);

    // Incremental fetch from the returned cursor: empty, then new
    // points only — the monotone-cursor contract the dashboard uses.
    request.query = "since=2";
    doc = corpus::JsonValue::parse(ops.handle(request).body);
    ASSERT_TRUE(doc);
    EXPECT_TRUE(doc->get("points")->items.empty());
    series.append(makeSample(30));
    doc = corpus::JsonValue::parse(ops.handle(request).body);
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->getU64("next"), 3u);
    ASSERT_EQ(doc->get("points")->items.size(), 1u);
    EXPECT_EQ(doc->get("points")->items[0].getU64("seq"), 2u);

    // Garbage cursors are rejected; a missing series is a 404.
    request.query = "since=banana";
    EXPECT_EQ(ops.handle(request).status, 400);
    serve::OpsServerOptions bare;
    serve::OpsServer bare_ops(bare);
    request.query.clear();
    EXPECT_EQ(bare_ops.handle(request).status, 404);
}

TEST(ObserveServe, DashboardServesSelfContainedHtml)
{
    serve::OpsServerOptions options;
    MetricsRegistry registry;
    options.metrics = &registry;
    serve::OpsServer ops(options);

    serve::HttpRequest request;
    request.path = "/dashboard";
    serve::HttpResponse response = ops.handle(request);
    ASSERT_EQ(response.status, 200);
    EXPECT_EQ(response.contentType, "text/html; charset=utf-8");
    // Self-contained: it polls the JSON endpoints, no external assets.
    EXPECT_NE(response.body.find("/timeseries"), std::string::npos);
    EXPECT_NE(response.body.find("/progress"), std::string::npos);
    EXPECT_EQ(response.body.find("http://"), std::string::npos);
    EXPECT_EQ(response.body.find("https://"), std::string::npos);
}

TEST(ObserveServe, ProgressCarriesLatencyPercentiles)
{
    MetricsRegistry registry;
    registry.histogram("campaign.stage_us", "compile").observe(64);
    registry.histogram("serve.request_us").observe(128);

    corpus::CampaignStatusBoard board;
    corpus::CampaignStatusBoard::Snapshot snap;
    snap.active = true;
    snap.seedsTotal = 10;
    board.publish(snap);

    serve::OpsServerOptions options;
    options.metrics = &registry;
    options.status = &board;
    serve::OpsServer ops(options);
    serve::HttpRequest request;
    request.path = "/progress";
    serve::HttpResponse response = ops.handle(request);
    ASSERT_EQ(response.status, 200);
    std::optional<corpus::JsonValue> doc =
        corpus::JsonValue::parse(response.body);
    ASSERT_TRUE(doc) << response.body;
    const corpus::JsonValue *latency = doc->get("latency");
    ASSERT_TRUE(latency && latency->isObject()) << response.body;
    const corpus::JsonValue *stages = latency->get("stage_us");
    ASSERT_TRUE(stages && stages->isObject());
    const corpus::JsonValue *compile = stages->get("compile");
    ASSERT_TRUE(compile && compile->isObject());
    EXPECT_EQ(compile->getU64("count"), 1u);
    EXPECT_EQ(compile->getString("p99"), "64.000");
    const corpus::JsonValue *serve_us = latency->get("serve_request_us");
    ASSERT_TRUE(serve_us && serve_us->isObject());
    EXPECT_EQ(serve_us->getU64("count"), 1u);
}

//===------------------------------------------------------------------===//
// Report latency section
//===------------------------------------------------------------------===//

TEST(ObserveReport, LatencySectionIsOptInAndRendersPercentiles)
{
    MetricsRegistry registry;
    // Single samples at bucket floors: every percentile is exact.
    registry.histogram("campaign.stage_us", "compile").observe(64);
    registry.histogram("campaign.stage_us", "generate").observe(4);
    registry.histogram("not_a_stage").observe(1);

    std::vector<report::CampaignReportData::StageLatency> latency =
        report::collectStageLatency(registry);
    ASSERT_EQ(latency.size(), 2u);
    EXPECT_EQ(latency[0].stage, "compile");
    EXPECT_EQ(latency[0].count, 1u);
    EXPECT_EQ(latency[0].p99Us, 64.0);
    EXPECT_EQ(latency[1].stage, "generate");
    EXPECT_EQ(latency[1].p50Us, 4.0);

    report::CampaignReportData data;
    std::string without =
        report::renderCampaignReportMarkdown(data);
    EXPECT_EQ(without.find("Pipeline latency"), std::string::npos);

    data.latency = latency;
    std::string with = report::renderCampaignReportMarkdown(data);
    EXPECT_NE(with.find("## Pipeline latency"), std::string::npos);
    EXPECT_NE(
        with.find("| compile | 1 | 64.0 | 64.0 | 64.0 | 64.0 |"),
        std::string::npos)
        << with;
}

//===------------------------------------------------------------------===//
// Cross-process trace merge
//===------------------------------------------------------------------===//

/** Write one synthetic per-process trace under traces/. */
void
writeTrace(const std::string &fleet_dir, const std::string &file,
           uint64_t pid, const std::string &process,
           const std::string &span)
{
    support::Tracer tracer;
    tracer.setEnabled(true);
    tracer.setProcess(pid, process);
    {
        support::TraceSpan guard(span, "fleet", tracer);
    }
    fs::create_directories(fleet::tracesDir(fleet_dir));
    ASSERT_TRUE(fleet::writeFileAtomic(
        fleet::tracesDir(fleet_dir) + "/" + file, tracer.toJson()));
}

TEST(ObserveTraceMerge, RemapsPidsDeterministically)
{
    TempDir dir("trace_merge");
    writeTrace(dir.str(), "worker.1.trace.json", 4242,
               "fleet-worker worker.1", "lease");
    writeTrace(dir.str(), "coordinator.trace.json", 9999,
               "fleet-coordinator", "supervise");
    // A truncated file (SIGKILLed worker) is skipped, not fatal.
    ASSERT_TRUE(fleet::writeFileAtomic(
        fleet::tracesDir(dir.str()) + "/worker.2.trace.json",
        "{\"traceEvents\":[{\"na"));

    std::string out = fleet::mergedTracePath(dir.str());
    corpus::StoreError error;
    std::optional<fleet::TraceMergeResult> result =
        fleet::mergeTraces(dir.str(), out, &error);
    ASSERT_TRUE(result) << error.message;
    EXPECT_EQ(result->files, 2u);
    EXPECT_EQ(result->events, 2u); // one span per parsed file

    std::optional<std::string> merged = fleet::readFile(out);
    ASSERT_TRUE(merged);
    std::optional<corpus::JsonValue> doc =
        corpus::JsonValue::parse(*merged);
    ASSERT_TRUE(doc) << *merged;
    const corpus::JsonValue *events = doc->get("traceEvents");
    ASSERT_TRUE(events && events->isArray());

    // Lexical filename order fixes the track mapping:
    // coordinator.trace.json -> merged pid 1, worker.1 -> pid 2.
    uint64_t coordinator_pid = 0, worker_pid = 0;
    bool coordinator_labeled = false, worker_labeled = false;
    for (const corpus::JsonValue &event : events->items) {
        if (event.getString("name") != "process_name")
            continue;
        const corpus::JsonValue *args = event.get("args");
        ASSERT_TRUE(args);
        std::string label = args->getString("name");
        if (label.rfind("fleet-coordinator", 0) == 0) {
            coordinator_pid = event.getU64("pid");
            // The real pid stays visible on the track label.
            coordinator_labeled =
                label.find("[pid 9999]") != std::string::npos;
        } else if (label.rfind("fleet-worker", 0) == 0) {
            worker_pid = event.getU64("pid");
            worker_labeled =
                label.find("[pid 4242]") != std::string::npos;
        }
    }
    EXPECT_EQ(coordinator_pid, 1u);
    EXPECT_EQ(worker_pid, 2u);
    EXPECT_TRUE(coordinator_labeled);
    EXPECT_TRUE(worker_labeled);

    // Re-merging the same inputs yields identical bytes (CI diffs the
    // coordinator's merge against `longrun trace-merge`).
    std::string out2 = dir.str() + "/again.json";
    ASSERT_TRUE(fleet::mergeTraces(dir.str(), out2, &error))
        << error.message;
    EXPECT_EQ(*fleet::readFile(out), *fleet::readFile(out2));
}

TEST(ObserveTraceMerge, MissingOrUnparseableInputsAreClassified)
{
    TempDir dir("trace_merge_err");
    corpus::StoreError error;
    // No traces/ directory at all.
    EXPECT_FALSE(fleet::mergeTraces(
        dir.str(), dir.str() + "/out.json", &error));
    EXPECT_EQ(error.status, corpus::StoreStatus::NotFound);

    // A traces/ directory with only corrupt files: Corrupt, and no
    // output is written.
    fs::create_directories(fleet::tracesDir(dir.str()));
    ASSERT_TRUE(fleet::writeFileAtomic(
        fleet::tracesDir(dir.str()) + "/bad.trace.json", "not json"));
    EXPECT_FALSE(fleet::mergeTraces(
        dir.str(), dir.str() + "/out.json", &error));
    EXPECT_EQ(error.status, corpus::StoreStatus::Corrupt);
    EXPECT_FALSE(fs::exists(dir.str() + "/out.json"));
}

//===------------------------------------------------------------------===//
// Traced fleet end to end
//===------------------------------------------------------------------===//

TEST(ObserveFleet, TracedFleetMergesTimelineAndStaysByteIdentical)
{
    // Reference: the same plan, single process, no tracing.
    TempDir reference_dir("ref");
    corpus::StoreError error;
    auto reference_store =
        corpus::CorpusStore::open(reference_dir.str(), &error);
    ASSERT_TRUE(reference_store) << error.message;
    auto reference = corpus::runCheckpointed(
        *reference_store, smallPlan(), {}, &error);
    ASSERT_TRUE(reference) << error.message;

    TempDir fleet_dir("traced_fleet");
    fleet::FleetOptions options;
    options.workers = 2;
    options.trace = true;
    options.snapshotIntervalMs = 50;
    fleet::FleetCoordinator coordinator(fleet_dir.str(), smallPlan(),
                                        options);
    std::optional<fleet::FleetResult> result =
        coordinator.run(&error);

    // The coordinator enabled the process-global tracer; restore it
    // before any assertion can bail out of the test early.
    support::Tracer::global().setEnabled(false);
    support::Tracer::global().clear();
    support::Tracer::global().setProcess(1, "dce-campaign");

    ASSERT_TRUE(result) << error.message;
    EXPECT_TRUE(result->merged.completed);

    // One merged Perfetto timeline covering every process: both
    // workers and the coordinator parsed into it.
    EXPECT_EQ(result->mergedTracePath,
              fleet::mergedTracePath(fleet_dir.str()));
    EXPECT_EQ(result->traceFiles, 3u);
    std::optional<std::string> merged_trace =
        fleet::readFile(result->mergedTracePath);
    ASSERT_TRUE(merged_trace);
    std::optional<corpus::JsonValue> trace_doc =
        corpus::JsonValue::parse(*merged_trace);
    ASSERT_TRUE(trace_doc);
    ASSERT_TRUE(trace_doc->get("traceEvents"));
    EXPECT_TRUE(
        fs::exists(fleet::coordinatorTracePath(fleet_dir.str())));

    // Every worker ran a SnapshotWriter on the configured cadence.
    bool worker_snapshots = false;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(fleet_dir.str()))
        if (entry.is_directory() &&
            fs::exists(entry.path() / "metrics.jsonl"))
            worker_snapshots = true;
    EXPECT_TRUE(worker_snapshots);

    // Observability must not perturb the determinism boundary: the
    // merged store's summary is byte-identical to the reference.
    EXPECT_EQ(corpus::summaryText(result->merged),
              corpus::summaryText(*reference));
}

} // namespace
} // namespace dce
