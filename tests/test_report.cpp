/** @file Tests for the report subsystem (DESIGN.md §12): structured
 * event log determinism, JSON escaping shared with the tracer,
 * Prometheus exposition stability, metrics snapshots, provenance
 * dossiers, the campaign report generator's kill/resume byte-identity,
 * and the stall watchdog's single-fire semantics. */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <unistd.h>

#include "corpus/checkpoint.hpp"
#include "corpus/json.hpp"
#include "corpus/store.hpp"
#include "report/dossier.hpp"
#include "report/event_log.hpp"
#include "report/report.hpp"
#include "report/snapshot.hpp"
#include "report/watchdog.hpp"
#include "support/json.hpp"

namespace fs = std::filesystem;

namespace dce::report {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;
using core::BuildSpec;

BuildSpec
alphaO3()
{
    return {CompilerId::Alpha, OptLevel::O3, SIZE_MAX};
}

BuildSpec
betaO3()
{
    return {CompilerId::Beta, OptLevel::O3, SIZE_MAX};
}

/** Fresh scratch directory, removed on destruction. */
class TempDir {
  public:
    explicit TempDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (fs::temp_directory_path() /
                 ("dce_report_" + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter++)))
                    .string();
        fs::remove_all(path_);
    }
    ~TempDir() { fs::remove_all(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
}

corpus::CampaignPlan
smallPlan()
{
    corpus::CampaignPlan plan;
    plan.count = 18;
    plan.chunkSize = 3;
    plan.randomSeeds = true;
    plan.streamSeed = 2024;
    plan.builds = {alphaO3(), betaO3()};
    plan.computePrimary = true;
    plan.collectRemarks = true;
    plan.missedByBuild = 0;
    plan.referenceBuild = 1;
    return plan;
}

//===------------------------------------------------------------------===//
// Event log
//===------------------------------------------------------------------===//

TEST(ReportEventLog, SerializesTypedEventsInKeyOrder)
{
    support::MetricsRegistry registry;
    EventLog log(&registry);

    // Emit out of key order, from one thread: serialization must sort.
    support::Event late("chunk_committed",
                        {support::kPhaseChunk, 2,
                         support::kChunkCommitMinor});
    late.num("chunk", 2);
    log.emit(std::move(late));
    support::Event start("campaign_started",
                         {support::kPhaseCampaign, 0, 0});
    start.num("seeds", 6).str("builds", "alpha-O3,beta-O3");
    log.emit(std::move(start));
    support::Event find("finding_discovered",
                        {support::kPhaseChunk, 2, 1});
    find.num("marker", 7).str("fingerprint", "prog:x|markers:7");
    log.emit(std::move(find));

    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(registry.counterValue("report.events"), 3u);

    std::string jsonl = log.toJsonl();
    std::vector<std::string> lines;
    size_t begin = 0;
    while (begin < jsonl.size()) {
        size_t end = jsonl.find('\n', begin);
        ASSERT_NE(end, std::string::npos);
        lines.push_back(jsonl.substr(begin, end - begin));
        begin = end + 1;
    }
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("\"event\":\"campaign_started\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"event\":\"finding_discovered\""),
              std::string::npos);
    EXPECT_NE(lines[2].find("\"event\":\"chunk_committed\""),
              std::string::npos);

    // Every line parses with the corpus JSON parser.
    for (const std::string &line : lines) {
        std::string error;
        EXPECT_TRUE(corpus::JsonValue::parse(line, &error)) << error;
    }
}

TEST(ReportEventLog, WriteIsAtomicAndRepeatable)
{
    TempDir dir("evlog");
    fs::create_directories(dir.str());
    std::string path = dir.str() + "/events.jsonl";

    support::MetricsRegistry registry;
    EventLog log(&registry);
    support::Event event("campaign_started",
                         {support::kPhaseCampaign, 0, 0});
    event.num("seeds", 1);
    log.emit(std::move(event));

    ASSERT_TRUE(log.write(path));
    std::string first = readFile(path);
    ASSERT_TRUE(log.write(path)); // full rewrite, same bytes
    EXPECT_EQ(readFile(path), first);
    EXPECT_EQ(first, log.toJsonl());
}

TEST(ReportEventLog, ByteIdenticalAcrossThreadCounts)
{
    std::string serial_log;
    {
        TempDir dir("serial");
        corpus::StoreError error;
        auto store = corpus::CorpusStore::open(dir.str(), &error);
        ASSERT_TRUE(store) << error.message;
        support::MetricsRegistry registry;
        EventLog log(&registry);
        corpus::CheckpointRunOptions options;
        options.threads = 1;
        options.checkpointEveryChunks = 2;
        options.metrics = &registry;
        options.events = &log;
        auto result = corpus::runCheckpointed(*store, smallPlan(),
                                              options, &error);
        ASSERT_TRUE(result) << error.message;
        ASSERT_TRUE(result->completed);
        serial_log = log.toJsonl();
    }
    ASSERT_FALSE(serial_log.empty());

    for (unsigned threads : {4u, 8u}) {
        TempDir dir("mt");
        corpus::StoreError error;
        auto store = corpus::CorpusStore::open(dir.str(), &error);
        ASSERT_TRUE(store) << error.message;
        support::MetricsRegistry registry;
        EventLog log(&registry);
        corpus::CheckpointRunOptions options;
        options.threads = threads;
        options.checkpointEveryChunks = 2;
        options.metrics = &registry;
        options.events = &log;
        auto result = corpus::runCheckpointed(*store, smallPlan(),
                                              options, &error);
        ASSERT_TRUE(result) << error.message;
        ASSERT_TRUE(result->completed);
        EXPECT_EQ(log.toJsonl(), serial_log)
            << "event log diverged at " << threads << " threads";
    }
}

//===------------------------------------------------------------------===//
// Shared JSON escaping (support/json, used by tracer + events)
//===------------------------------------------------------------------===//

TEST(ReportEscaping, ControlTabNewlineAndNonAsciiSurvive)
{
    const std::string nasty =
        "line1\nline2\ttab \"quoted\" back\\slash\r\b\f\x01\x1f "
        "caf\xc3\xa9 \xe6\xbc\xa2";
    std::string json = "{\"v\":\"" + support::jsonEscaped(nasty) +
                       "\"}";
    std::string error;
    std::optional<corpus::JsonValue> doc =
        corpus::JsonValue::parse(json, &error);
    ASSERT_TRUE(doc) << error << " in " << json;
    EXPECT_EQ(doc->getString("v"), nasty);

    // The same escaper backs trace span serialization and event
    // fields: a field with every escape class round-trips too.
    support::Event event("probe", {support::kPhaseOps, 0, 0});
    event.str("payload", nasty);
    std::string line;
    event.appendJson(line);
    doc = corpus::JsonValue::parse(line, &error);
    ASSERT_TRUE(doc) << error << " in " << line;
    EXPECT_EQ(doc->getString("payload"), nasty);
}

//===------------------------------------------------------------------===//
// Prometheus exposition
//===------------------------------------------------------------------===//

TEST(ReportExposition, ExposeIsInsertionOrderIndependent)
{
    support::MetricsRegistry a;
    a.counter("campaign.seeds").add(18);
    a.counter("campaign.invalid", "trap").add(2);
    a.counter("campaign.invalid", "timeout").add(1);
    a.histogram("corpus.checkpoint_us").observe(100);
    a.histogram("campaign.stage_us", "generate").observe(7);

    support::MetricsRegistry b;
    b.histogram("campaign.stage_us", "generate").observe(7);
    b.counter("campaign.invalid", "timeout").add(1);
    b.histogram("corpus.checkpoint_us").observe(100);
    b.counter("campaign.invalid", "trap").add(2);
    b.counter("campaign.seeds").add(18);

    EXPECT_EQ(a.expose(), b.expose());

    std::string text = a.expose();
    EXPECT_NE(text.find("# TYPE campaign_seeds counter\n"
                        "campaign_seeds 18\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("campaign_invalid{label=\"timeout\"} 1\n"
                  "campaign_invalid{label=\"trap\"} 2\n"),
        std::string::npos);
    // One TYPE line per metric name, not per series.
    size_t first = text.find("# TYPE campaign_invalid");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("# TYPE campaign_invalid", first + 1),
              std::string::npos);
}

TEST(ReportExposition, HostileLabelValuesAreEscapedPerSpec)
{
    // Exposition-format conformance (text format 0.0.4): label values
    // must escape backslash, double-quote, and newline — and nothing
    // else — as \\, \", and \n. A scraper fed an unescaped quote or a
    // raw newline tears the whole scrape, so this is a regression
    // fence for /metrics.
    support::MetricsRegistry registry;
    registry.counter("serve.responses", "a\\b\"c\nd").add(1);
    registry.histogram("campaign.stage_us", "tab\there").observe(4);

    std::string text = registry.expose();
    EXPECT_NE(
        text.find("serve_responses{label=\"a\\\\b\\\"c\\nd\"} 1\n"),
        std::string::npos);
    // No raw newline may survive inside a label value: a torn line
    // would start mid-value, so every line must open like a comment
    // or a metric name.
    size_t begin = 0;
    while (begin < text.size()) {
        size_t end = text.find('\n', begin);
        ASSERT_NE(end, std::string::npos) << "unterminated line";
        std::string line = text.substr(begin, end - begin);
        if (!line.empty()) {
            char first = line[0];
            EXPECT_TRUE(first == '#' || first == '_' ||
                        (first >= 'a' && first <= 'z') ||
                        (first >= 'A' && first <= 'Z'))
                << "torn exposition line: " << line;
        }
        begin = end + 1;
    }
    // Characters with no escape rule (tab) pass through verbatim.
    EXPECT_NE(
        text.find("campaign_stage_us_sum{label=\"tab\there\"} 4\n"),
        std::string::npos);
}

TEST(ReportExposition, HistogramBucketsAreCumulative)
{
    support::MetricsRegistry registry;
    support::Histogram &h = registry.histogram("reduce.tests");
    h.observe(0); // bucket 0 (le 0)
    h.observe(1); // bucket 1 (le 1)
    h.observe(2); // bucket 2 (le 3)
    h.observe(3); // bucket 2 (le 3)

    std::string text = registry.expose();
    EXPECT_NE(text.find("reduce_tests_bucket{le=\"0\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("reduce_tests_bucket{le=\"1\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("reduce_tests_bucket{le=\"3\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("reduce_tests_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("reduce_tests_sum 6\n"), std::string::npos);
    EXPECT_NE(text.find("reduce_tests_count 4\n"), std::string::npos);
}

//===------------------------------------------------------------------===//
// Snapshots
//===------------------------------------------------------------------===//

TEST(ReportSnapshot, AppendsParseableRegistrySamples)
{
    TempDir dir("snap");
    fs::create_directories(dir.str());
    std::string path = dir.str() + "/run.metrics.jsonl";

    support::MetricsRegistry registry;
    registry.counter("campaign.seeds").add(5);
    registry.histogram("campaign.stage_us", "generate").observe(11);

    SnapshotWriter writer({.path = path, .registry = &registry});
    ASSERT_TRUE(writer.snapshot());
    registry.counter("campaign.seeds").add(3);
    ASSERT_TRUE(writer.snapshot());
    EXPECT_EQ(writer.snapshotsTaken(), 2u);

    std::string text = readFile(path);
    std::vector<std::string> lines;
    size_t begin = 0;
    while (begin < text.size()) {
        size_t end = text.find('\n', begin);
        ASSERT_NE(end, std::string::npos);
        lines.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    ASSERT_EQ(lines.size(), 2u);
    std::string error;
    std::optional<corpus::JsonValue> first =
        corpus::JsonValue::parse(lines[0], &error);
    ASSERT_TRUE(first) << error;
    EXPECT_EQ(first->getU64("seq"), 0u);
    EXPECT_EQ(first->get("counters")->getU64("campaign.seeds"), 5u);
    std::optional<corpus::JsonValue> second =
        corpus::JsonValue::parse(lines[1], &error);
    ASSERT_TRUE(second) << error;
    EXPECT_EQ(second->getU64("seq"), 1u);
    EXPECT_EQ(second->get("counters")->getU64("campaign.seeds"), 8u);
}

//===------------------------------------------------------------------===//
// Watchdog
//===------------------------------------------------------------------===//

TEST(ReportWatchdog, FiresOnceThenRearmsOnProgress)
{
    uint64_t fake_now = 0;
    std::vector<std::string> dumps;
    support::MetricsRegistry registry;
    EventLog log(&registry);

    WatchdogOptions options;
    options.stallThresholdUs = 1000;
    options.events = &log;
    options.registry = &registry;
    options.onStall = [&](const std::string &dump) {
        dumps.push_back(dump);
    };
    options.clock = [&] { return fake_now; };
    Watchdog watchdog(options);

    unsigned inner_calls = 0;
    core::CampaignObserver observer = watchdog.wrap(
        [&](const core::CampaignProgress &) { ++inner_calls; });

    core::CampaignProgress progress;
    progress.seedsDone = 3;
    progress.seedsTotal = 18;
    observer(progress);
    EXPECT_EQ(inner_calls, 1u);

    // Under the threshold: quiet.
    fake_now = 500;
    EXPECT_FALSE(watchdog.poll());
    EXPECT_EQ(watchdog.stallsFired(), 0u);

    // Over the threshold: exactly one fire, however often polled.
    fake_now = 2000;
    EXPECT_TRUE(watchdog.poll());
    EXPECT_FALSE(watchdog.poll());
    EXPECT_FALSE(watchdog.poll());
    EXPECT_EQ(watchdog.stallsFired(), 1u);
    EXPECT_TRUE(watchdog.stalled());
    ASSERT_EQ(dumps.size(), 1u);
    EXPECT_NE(dumps[0].find("no progress"), std::string::npos);
    EXPECT_NE(dumps[0].find("3/18"), std::string::npos);
    EXPECT_EQ(registry.counterValue("report.stalls"), 1u);

    // The stall event is segregated into the ops phase.
    std::vector<support::Event> events = log.sorted();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].type(), "watchdog_stall");
    EXPECT_EQ(events[0].key().phase, support::kPhaseOps);
    EXPECT_EQ(events[0].getNum("seeds_done"), 3u);

    // Progress clears the latch — and logs the stalled→ready
    // transition as watchdog_recovered, bookending the stall.
    progress.seedsDone = 4;
    observer(progress);
    EXPECT_FALSE(watchdog.stalled());
    events = log.sorted();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].type(), "watchdog_recovered");
    EXPECT_EQ(events[1].key().phase, support::kPhaseOps);
    EXPECT_EQ(events[1].getNum("stall"), 1u);
    EXPECT_EQ(events[1].getNum("seeds_done"), 4u);

    EXPECT_FALSE(watchdog.poll()); // just progressed at t=2000
    fake_now = 4000;
    EXPECT_TRUE(watchdog.poll());
    EXPECT_EQ(watchdog.stallsFired(), 2u);
    EXPECT_EQ(log.size(), 3u); // stall, recovered, stall
}

//===------------------------------------------------------------------===//
// Dossiers
//===------------------------------------------------------------------===//

TEST(ReportDossier, AssemblesFullLineage)
{
    TempDir dir("dossier");
    corpus::StoreError error;
    auto store = corpus::CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store) << error.message;

    support::MetricsRegistry registry;
    EventLog log(&registry);
    corpus::CheckpointRunOptions options;
    options.threads = 2;
    options.metrics = &registry;
    options.events = &log;
    auto result = corpus::runCheckpointed(*store, smallPlan(),
                                          options, &error);
    ASSERT_TRUE(result) << error.message;
    ASSERT_FALSE(result->findings.empty());

    // Triage through the store's verdict cache, with events on, so
    // the dossier can pick up both the verdict and the trajectory.
    corpus::StoreVerdictCache cache(*store);
    core::TriageOptions triage;
    triage.maxTests = 120;
    triage.metrics = &registry;
    triage.verdictCache = &cache;
    triage.events = &log;
    core::TriageSummary summary =
        core::triageFindings(result->findings, triage);
    ASSERT_FALSE(summary.reports.empty());

    // The fingerprint of finding 0, as the report generator forms it.
    std::optional<CampaignReportData> data =
        collectReportData(*store, &error);
    ASSERT_TRUE(data) << error.message;
    ASSERT_FALSE(data->fingerprints.empty());
    const std::string &fingerprint = data->fingerprints[0];
    ASSERT_FALSE(fingerprint.empty());

    std::optional<Dossier> dossier =
        buildDossier(*store, &log, fingerprint, &error);
    ASSERT_TRUE(dossier) << error.message;

    const core::Finding &finding = result->findings[0];
    EXPECT_EQ(dossier->seed, finding.seed);
    ASSERT_EQ(dossier->markers.size(), 1u);
    EXPECT_EQ(dossier->markers[0], finding.marker);
    EXPECT_EQ(dossier->missedBy, finding.missedBy.name());
    EXPECT_EQ(dossier->reference, finding.reference.name());
    EXPECT_FALSE(dossier->source.empty());
    ASSERT_EQ(dossier->builds.size(), 2u);
    EXPECT_EQ(dossier->builds[0].name, alphaO3().name());
    EXPECT_TRUE(dossier->builds[0].missesMarker);
    EXPECT_FALSE(dossier->builds[1].missesMarker);
    // The reference eliminated it under collectRemarks, so the killer
    // pass is attributed.
    EXPECT_FALSE(dossier->builds[1].killerPass.empty());
    ASSERT_TRUE(dossier->verdict.has_value());
    EXPECT_FALSE(dossier->verdict->signature.empty());
    ASSERT_TRUE(dossier->reduction.has_value());
    EXPECT_GT(dossier->reduction->tests, 0u);

    // Both renderings carry the lineage and stay parseable/readable.
    std::string json = dossierJson(*dossier);
    std::string parse_error;
    std::optional<corpus::JsonValue> doc =
        corpus::JsonValue::parse(json, &parse_error);
    ASSERT_TRUE(doc) << parse_error;
    EXPECT_EQ(doc->getString("fingerprint"), fingerprint);
    EXPECT_EQ(doc->getU64("seed"), finding.seed);
    std::string markdown = dossierMarkdown(*dossier);
    EXPECT_NE(markdown.find(fingerprint), std::string::npos);
    EXPECT_NE(markdown.find("killer pass"), std::string::npos);

    EXPECT_FALSE(buildDossier(*store, nullptr, "not-a-fingerprint",
                              &error));
    EXPECT_EQ(error.status, corpus::StoreStatus::NotFound);
}

//===------------------------------------------------------------------===//
// Report generator
//===------------------------------------------------------------------===//

TEST(ReportGenerator, ReportFromStoreMatchesAfterKillResume)
{
    auto run_and_render = [](const std::string &store_dir,
                             const std::string &report_dir,
                             uint64_t halt_after) {
        corpus::StoreError error;
        {
            auto store =
                corpus::CorpusStore::open(store_dir, &error);
            ASSERT_TRUE(store) << error.message;
            corpus::CheckpointRunOptions options;
            options.threads = 2;
            options.checkpointEveryChunks = 2;
            options.haltAfterChunks = halt_after;
            auto result = corpus::runCheckpointed(
                *store, smallPlan(), options, &error);
            ASSERT_TRUE(result) << error.message;
            if (halt_after) {
                ASSERT_FALSE(result->completed);
                // Second leg: resume to completion, like a restart
                // after SIGKILL.
                corpus::CheckpointRunOptions resume;
                resume.threads = 2;
                resume.checkpointEveryChunks = 2;
                auto resumed = corpus::runCheckpointed(
                    *store, smallPlan(), resume, &error);
                ASSERT_TRUE(resumed) << error.message;
                ASSERT_TRUE(resumed->completed);
            }
        }
        auto store = corpus::CorpusStore::open(store_dir, &error);
        ASSERT_TRUE(store) << error.message;
        CampaignReportOptions options;
        options.html = true;
        ASSERT_TRUE(writeCampaignReport(*store, report_dir, options,
                                        &error))
            << error.message;
    };

    TempDir full_store("full");
    TempDir full_report("fullrep");
    run_and_render(full_store.str(), full_report.str(), 0);

    TempDir killed_store("killed");
    TempDir killed_report("killedrep");
    run_and_render(killed_store.str(), killed_report.str(), 2);

    // Same files, same bytes — the report derives from checkpointed
    // state only, which the resume contract makes bit-identical.
    std::vector<std::string> names;
    for (const auto &entry :
         fs::directory_iterator(full_report.str()))
        names.push_back(entry.path().filename().string());
    ASSERT_FALSE(names.empty());
    EXPECT_NE(std::find(names.begin(), names.end(), "report.md"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "report.html"),
              names.end());
    for (const std::string &name : names) {
        std::string full = readFile(full_report.str() + "/" + name);
        std::string killed =
            readFile(killed_report.str() + "/" + name);
        EXPECT_EQ(full, killed) << "report file " << name
                                << " diverged after kill/resume";
    }
    size_t killed_count = std::distance(
        fs::directory_iterator(killed_report.str()),
        fs::directory_iterator{});
    EXPECT_EQ(names.size(), killed_count);

    // Sanity on the content: the report names the builds and links
    // the findings index to dossier files that exist.
    std::string markdown =
        readFile(full_report.str() + "/report.md");
    EXPECT_NE(markdown.find("# Campaign report"), std::string::npos);
    EXPECT_NE(markdown.find("**complete**"), std::string::npos);
    EXPECT_NE(markdown.find(alphaO3().name()), std::string::npos);
    EXPECT_NE(markdown.find(betaO3().name()), std::string::npos);
    if (markdown.find("finding-0.md") != std::string::npos) {
        EXPECT_TRUE(
            fs::exists(full_report.str() + "/finding-0.md"));
        EXPECT_TRUE(
            fs::exists(full_report.str() + "/finding-0.json"));
    }
}

TEST(ReportGenerator, IncompleteStoreRendersPartialReport)
{
    TempDir store_dir("partial");
    TempDir report_dir("partialrep");
    corpus::StoreError error;
    {
        auto store =
            corpus::CorpusStore::open(store_dir.str(), &error);
        ASSERT_TRUE(store) << error.message;
        corpus::CheckpointRunOptions options;
        options.checkpointEveryChunks = 2;
        options.haltAfterChunks = 2; // killed mid-run, never resumed
        auto result = corpus::runCheckpointed(*store, smallPlan(),
                                              options, &error);
        ASSERT_TRUE(result) << error.message;
        ASSERT_FALSE(result->completed);
    }
    auto store = corpus::CorpusStore::open(store_dir.str(), &error);
    ASSERT_TRUE(store) << error.message;
    ASSERT_TRUE(writeCampaignReport(*store, report_dir.str(), {},
                                    &error))
        << error.message;
    std::string markdown =
        readFile(report_dir.str() + "/report.md");
    EXPECT_NE(markdown.find("**incomplete**"), std::string::npos);

    // A store with no checkpoint at all is a classified error.
    TempDir empty("empty");
    auto fresh = corpus::CorpusStore::open(empty.str(), &error);
    ASSERT_TRUE(fresh) << error.message;
    TempDir out("emptyrep");
    EXPECT_FALSE(
        writeCampaignReport(*fresh, out.str(), {}, &error));
    EXPECT_EQ(error.status, corpus::StoreStatus::NoCheckpoint);
}

} // namespace
} // namespace dce::report
