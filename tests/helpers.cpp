#include "helpers.hpp"

#include "ir/lowering.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "lang/parser.hpp"

namespace dce::test {

std::unique_ptr<lang::TranslationUnit>
parseOk(const std::string &source)
{
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(source, diags);
    EXPECT_TRUE(unit != nullptr)
        << "compilation failed:\n" << diags.str() << "\nsource:\n"
        << source;
    return unit;
}

std::string
parseErrors(const std::string &source)
{
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(source, diags);
    EXPECT_EQ(unit, nullptr) << "expected errors for:\n" << source;
    return diags.str();
}

std::unique_ptr<ir::Module>
lowerOk(const std::string &source)
{
    auto unit = parseOk(source);
    if (!unit)
        return nullptr;
    auto module = ir::lowerToIr(*unit);
    ir::VerifyResult verify = ir::verifyModule(*module);
    EXPECT_TRUE(verify.ok())
        << "IR verification failed:\n" << verify.str() << "\nIR:\n"
        << ir::printModule(*module);
    return module;
}

interp::ExecResult
runSource(const std::string &source)
{
    auto module = lowerOk(source);
    if (!module)
        return {};
    return interp::execute(*module);
}

} // namespace dce::test
