/** @file Round-trip tests for the MiniC pretty-printer. */
#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "helpers.hpp"
#include "instrument/instrument.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

namespace dce::lang {
namespace {

using dce::test::parseOk;

/** print(parse(s)) must parse again and print identically (fixpoint
 * after one round). */
void
expectRoundTrip(const std::string &source)
{
    auto unit = parseOk(source);
    ASSERT_TRUE(unit);
    std::string once = printUnit(*unit);

    DiagnosticEngine diags;
    auto reparsed = parseAndCheck(once, diags);
    ASSERT_TRUE(reparsed != nullptr)
        << "printed output failed to reparse:\n" << once << "\n"
        << diags.str();
    std::string twice = printUnit(*reparsed);
    EXPECT_EQ(once, twice) << "printer not a fixpoint for:\n" << source;
}

TEST(Printer, RoundTripsDeclarations)
{
    expectRoundTrip(R"(
        int a;
        static int b = 3;
        char c[2];
        static int d[2] = {0, 0};
        int *p = &a;
        char *q = &c[1];
        unsigned long big = 5000000000;
    )");
}

TEST(Printer, RoundTripsControlFlow)
{
    expectRoundTrip(R"(
        int a; int b;
        void dead(void);
        int main() {
            for (int i = 0; i < 5; i++) {
                if (a == b) { dead(); } else { a++; }
            }
            while (a) { a--; if (b) { break; } }
            do { b++; } while (b < 2);
            switch (a) {
              case 0:
                a = 1;
                break;
              case -3:
                a = 2;
                break;
              default:
                break;
            }
            return 0;
        }
    )");
}

TEST(Printer, RoundTripsExpressions)
{
    expectRoundTrip(R"(
        int a; int b; int c;
        int main() {
            a = b + c * 2 - (b - c) / 3;
            a = b << 2 >> 1;
            a = b < c == (b > c);
            a = b & c | b ^ c;
            a = b && c || !b;
            a = -b + ~c;
            a = b ? c : a;
            a += b;
            a <<= 1;
            c = (char)a + (long)b;
            return a;
        }
    )");
}

TEST(Printer, RoundTripsPointersAndArrays)
{
    expectRoundTrip(R"(
        char a;
        char b[2];
        int *f;
        int **d = &f;
        int main() {
            char *p = &a;
            char *q = &b[1];
            if (p == q) { return 1; }
            *p = 3;
            b[0] = *q;
            f = *d;
            *d = f;
            return 0;
        }
    )");
}

TEST(Printer, ParenthesizationPreservesPrecedence)
{
    auto unit = parseOk("int x = (1 + 2) * 3;");
    ASSERT_TRUE(unit);
    std::string printed = printUnit(*unit);
    EXPECT_NE(printed.find("(1 + 2) * 3"), std::string::npos) << printed;
}

TEST(Printer, NegationOfNegativeDoesNotFuse)
{
    auto unit = parseOk("int main() { int a = 1; return - -a; }");
    ASSERT_TRUE(unit);
    std::string printed = printUnit(*unit);
    EXPECT_EQ(printed.find("--a"), std::string::npos) << printed;
    // And it must reparse.
    DiagnosticEngine diags;
    EXPECT_TRUE(parseAndCheck(printed, diags) != nullptr) << printed;
}

TEST(Printer, ImplicitCastsInvisible)
{
    auto unit = parseOk("char c; int main() { c = 300; return c; }");
    ASSERT_TRUE(unit);
    std::string printed = printUnit(*unit);
    EXPECT_EQ(printed.find("(char)"), std::string::npos) << printed;
}

TEST(Printer, LargeLiteralsKeepTheirType)
{
    expectRoundTrip("long big = 5000000000;");
}

TEST(Printer, RoundTripsFiveHundredGeneratorSeeds)
{
    // The corpus store persists programs as printed text and reloads
    // them through the parser, so print → reparse → reprint must be a
    // fixpoint over the whole generator distribution — both plain and
    // instrumented programs.
    for (uint64_t seed = 1; seed <= 500; ++seed) {
        auto unit = gen::generateProgram(seed);
        ASSERT_TRUE(unit);
        instrument::Instrumented prog =
            instrument::instrumentUnit(*unit);

        for (const lang::TranslationUnit *tu :
             {unit.get(), prog.unit.get()}) {
            std::string once = printUnit(*tu);
            DiagnosticEngine diags;
            auto reparsed = parseAndCheck(once, diags);
            ASSERT_TRUE(reparsed != nullptr)
                << "seed " << seed << " failed to reparse:\n"
                << diags.str() << "\n" << once;
            ASSERT_EQ(once, printUnit(*reparsed))
                << "printer not a fixpoint for seed " << seed;
        }
    }
}

} // namespace
} // namespace dce::lang
