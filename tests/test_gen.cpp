/** @file Property tests for the random program generator: validity,
 * determinism, termination, and dead-code abundance. */
#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "helpers.hpp"
#include "interp/interpreter.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

namespace dce::gen {
namespace {

TEST(Gen, DeterministicFromSeed)
{
    for (uint64_t seed : {0ull, 1ull, 42ull, 987654321ull}) {
        EXPECT_EQ(generateSource(seed), generateSource(seed))
            << "seed " << seed;
    }
    EXPECT_NE(generateSource(1), generateSource(2));
}

TEST(Gen, HasMainAndGlobals)
{
    auto unit = generateProgram(7);
    ASSERT_TRUE(unit);
    EXPECT_NE(unit->findFunction("main"), nullptr);
    EXPECT_FALSE(unit->globals.empty());
}

/** The generator's core contract, swept over many seeds: output
 * parses, type-checks, lowers to verifiable IR, and terminates. */
class GenProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenProperty, ValidAndTerminating)
{
    uint64_t seed = GetParam();
    std::string source = generateSource(seed);

    // Printed output must round-trip through the frontend.
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(source, diags);
    ASSERT_TRUE(unit != nullptr)
        << "seed " << seed << " produced invalid MiniC:\n"
        << diags.str() << "\n"
        << source;

    auto module = ir::lowerToIr(*unit);
    interp::ExecResult result = interp::execute(*module);
    EXPECT_EQ(result.status, interp::ExecStatus::Ok)
        << "seed " << seed << " did not terminate cleanly:\n"
        << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenProperty,
                         ::testing::Range<uint64_t>(0, 60));

TEST(Gen, ProducesSubstantialDeadCode)
{
    // Over a small corpus, most generated branch arms should never
    // execute (the paper measures 89.59% dead blocks on Csmith
    // output; we only require a healthy majority here).
    unsigned programs = 30;
    unsigned with_branches = 0;
    for (uint64_t seed = 100; seed < 100 + programs; ++seed) {
        std::string source = generateSource(seed);
        if (source.find("if (") != std::string::npos)
            ++with_branches;
    }
    EXPECT_GT(with_branches, programs * 2 / 3);
}

TEST(Gen, ConfigControlsShape)
{
    GenConfig tiny;
    tiny.numGlobals = 2;
    tiny.numHelpers = 0;
    tiny.maxStmtsPerBlock = 2;
    tiny.maxBlockDepth = 1;
    auto unit = generateProgram(5, tiny);
    ASSERT_TRUE(unit);
    // 2 regular globals plus the fixed pattern/read-only objects.
    EXPECT_GE(unit->globals.size(), 2u);
    EXPECT_LT(unit->globals.size(), 15u);
    // main plus the fixed tiny-helper gadget.
    EXPECT_EQ(unit->functions.size(), 2u);
}

} // namespace
} // namespace dce::gen
