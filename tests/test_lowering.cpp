/** @file Tests for AST-to-IR lowering: structure, verification, and
 * front-end constant-branch folding. */
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "ir/cfg.hpp"
#include "ir/printer.hpp"

namespace dce::ir {
namespace {

using dce::test::lowerOk;

/** Count instructions with @p opcode across the whole module. */
size_t
countOpcode(const Module &module, Opcode opcode)
{
    size_t count = 0;
    for (const auto &fn : module.functions()) {
        for (const auto &block : fn->blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() == opcode)
                    ++count;
            }
        }
    }
    return count;
}

TEST(Lowering, GlobalsBecomeMemoryObjects)
{
    auto module = lowerOk(R"(
        int a = 5;
        static char b[3];
        char *p = &b[1];
        static int z[2] = {7, 8};
    )");
    ASSERT_TRUE(module);
    GlobalVar *a = module->getGlobal("a");
    ASSERT_TRUE(a);
    EXPECT_FALSE(a->isInternal());
    ASSERT_EQ(a->init.size(), 1u);
    EXPECT_EQ(a->init[0].value, 5);

    GlobalVar *b = module->getGlobal("b");
    ASSERT_TRUE(b);
    EXPECT_TRUE(b->isInternal());
    EXPECT_TRUE(b->isArray());
    EXPECT_EQ(b->count(), 3u);

    GlobalVar *p = module->getGlobal("p");
    ASSERT_TRUE(p);
    ASSERT_EQ(p->init.size(), 1u);
    EXPECT_TRUE(p->init[0].isAddress());
    EXPECT_EQ(p->init[0].base, b);
    EXPECT_EQ(p->init[0].value, 1);

    GlobalVar *z = module->getGlobal("z");
    ASSERT_TRUE(z);
    ASSERT_EQ(z->init.size(), 2u);
    EXPECT_EQ(z->init[1].value, 8);
}

TEST(Lowering, DeclarationsStayOpaque)
{
    auto module = lowerOk(R"(
        void DCEMarker0(void);
        int main() { DCEMarker0(); return 0; }
    )");
    ASSERT_TRUE(module);
    Function *marker = module->getFunction("DCEMarker0");
    ASSERT_TRUE(marker);
    EXPECT_TRUE(marker->isDeclaration());
    EXPECT_EQ(countOpcode(*module, Opcode::Call), 1u);
}

TEST(Lowering, IfProducesDiamond)
{
    auto module = lowerOk(R"(
        int a;
        int main() { if (a) { a = 1; } else { a = 2; } return a; }
    )");
    ASSERT_TRUE(module);
    Function *main_fn = module->getFunction("main");
    // entry, then, else, join.
    EXPECT_EQ(main_fn->numBlocks(), 4u);
    EXPECT_EQ(countOpcode(*module, Opcode::CondBr), 1u);
}

TEST(Lowering, ConstantConditionFoldsAtLowering)
{
    // Front-end DCE: `if (0)` never emits the dead arm, so the marker
    // call disappears even at -O0 — the paper's §4.1 observation.
    auto module = lowerOk(R"(
        void DCEMarker0(void);
        int main() { if (0) { DCEMarker0(); } return 0; }
    )");
    ASSERT_TRUE(module);
    EXPECT_EQ(countOpcode(*module, Opcode::Call), 0u);
    EXPECT_EQ(countOpcode(*module, Opcode::CondBr), 0u);
}

TEST(Lowering, NonConstantConditionSurvivesLowering)
{
    auto module = lowerOk(R"(
        void DCEMarker0(void);
        static int c = 0;
        int main() { if (c) { DCEMarker0(); } return 0; }
    )");
    ASSERT_TRUE(module);
    // The front end does not know c's stored value: marker call stays.
    EXPECT_EQ(countOpcode(*module, Opcode::Call), 1u);
}

TEST(Lowering, CodeAfterReturnIsDropped)
{
    auto module = lowerOk(R"(
        void DCEMarker0(void);
        int main() { return 0; DCEMarker0(); }
    )");
    ASSERT_TRUE(module);
    EXPECT_EQ(countOpcode(*module, Opcode::Call), 0u);
}

TEST(Lowering, LoopsProduceBackEdges)
{
    auto module = lowerOk(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 3; i++) { s += i; }
            return s;
        }
    )");
    ASSERT_TRUE(module);
    Function *main_fn = module->getFunction("main");
    auto preds = predecessorMap(*main_fn);
    // Some block (the for.cond header) must have two predecessors.
    bool has_join = false;
    for (const auto &block : main_fn->blocks())
        has_join |= preds.at(block.get()).size() >= 2;
    EXPECT_TRUE(has_join);
}

TEST(Lowering, ShortCircuitBranches)
{
    auto module = lowerOk(R"(
        int a; int b;
        int main() { if (a && b) { a = 1; } return a; }
    )");
    ASSERT_TRUE(module);
    EXPECT_GE(countOpcode(*module, Opcode::CondBr), 2u);
}

TEST(Lowering, SwitchLowersToSwitchInstr)
{
    auto module = lowerOk(R"(
        int a;
        int main() {
            switch (a) {
              case 1:
                a = 10;
                break;
              case 2:
                a = 20;
                break;
              default:
                a = 30;
                break;
            }
            return a;
        }
    )");
    ASSERT_TRUE(module);
    EXPECT_EQ(countOpcode(*module, Opcode::Switch), 1u);
}

TEST(Lowering, AllAllocasInEntryBlock)
{
    auto module = lowerOk(R"(
        int main() {
            int a = 1;
            for (int i = 0; i < 2; i++) {
                int inner = i;
                a += inner;
            }
            return a;
        }
    )");
    ASSERT_TRUE(module);
    Function *main_fn = module->getFunction("main");
    for (const auto &block : main_fn->blocks()) {
        for (const auto &instr : block->instrs()) {
            if (instr->opcode() == Opcode::Alloca)
                EXPECT_EQ(block.get(), main_fn->entry());
        }
    }
}

TEST(Lowering, CompoundAssignWidensThenNarrows)
{
    auto module = lowerOk(R"(
        char c;
        int main() { c += 300; return c; }
    )");
    ASSERT_TRUE(module);
    // i8 load -> sext to i32 -> add -> trunc -> store.
    EXPECT_GE(countOpcode(*module, Opcode::Cast), 2u);
}

TEST(Lowering, ParamsGetStackSlots)
{
    auto module = lowerOk(R"(
        int add(int x, int y) { return x + y; }
        int main() { return add(1, 2); }
    )");
    ASSERT_TRUE(module);
    Function *add_fn = module->getFunction("add");
    size_t allocas = 0;
    for (const auto &instr : add_fn->entry()->instrs()) {
        if (instr->opcode() == Opcode::Alloca)
            ++allocas;
    }
    EXPECT_EQ(allocas, 2u);
}

} // namespace
} // namespace dce::ir
