/** @file Optimizer tests: per-pass behaviour, translation validation
 * against the interpreter, and the engineered capability knobs. */
#include <gtest/gtest.h>

#include "compiler/compiler.hpp"
#include "helpers.hpp"
#include "interp/interpreter.hpp"
#include "ir/lowering.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "lang/parser.hpp"

namespace dce {
namespace {

using compiler::Compiler;
using compiler::CompilerId;
using compiler::OptLevel;
using test::lowerOk;
using test::parseOk;

size_t
countOpcode(const ir::Module &module, ir::Opcode opcode)
{
    size_t count = 0;
    for (const auto &fn : module.functions()) {
        for (const auto &block : fn->blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() == opcode)
                    ++count;
            }
        }
    }
    return count;
}

bool
callsFunction(const ir::Module &module, const std::string &name)
{
    for (const auto &fn : module.functions()) {
        for (const auto &block : fn->blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() == ir::Opcode::Call &&
                    instr->callee->name() == name) {
                    return true;
                }
            }
        }
    }
    return false;
}

/** Compile @p source with @p compiler (verifying after every pass) and
 * check the optimized module behaves exactly like the -O0 build. */
std::unique_ptr<ir::Module>
compileValidated(const std::string &source, const Compiler &comp)
{
    auto unit = parseOk(source);
    if (!unit)
        return nullptr;
    compiler::Compilation result = comp.compile(*unit, /*verify_each=*/true);
    EXPECT_TRUE(result.ok())
        << comp.describe() << " verification failure:\n"
        << result.error() << "\nsource:\n"
        << source << "\nIR:\n"
        << ir::printModule(result.module());
    auto optimized = result.takeModule();
    auto baseline_module = ir::lowerToIr(*unit);
    interp::ExecResult expected = interp::execute(*baseline_module);
    interp::ExecResult actual = interp::execute(*optimized);
    EXPECT_TRUE(interp::observablyEqual(expected, actual))
        << comp.describe() << " miscompiled:\n"
        << interp::explainDifference(expected, actual) << "source:\n"
        << source << "\noptimized IR:\n"
        << ir::printModule(*optimized);
    return optimized;
}

//===------------------------------------------------------------------===//
// Individual pass behaviour (via the full pipelines)
//===------------------------------------------------------------------===//

TEST(Opt, Mem2RegRemovesScalarAllocas)
{
    Compiler comp(CompilerId::Beta, OptLevel::O1);
    auto module = compileValidated(R"(
        int main() {
            int a = 3;
            int b = a + 4;
            return b;
        }
    )",
                                   comp);
    ASSERT_TRUE(module);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Alloca), 0u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Load), 0u);
}

TEST(Opt, ConstantsFoldToReturn)
{
    Compiler comp(CompilerId::Beta, OptLevel::O1);
    auto module = compileValidated(
        "int main() { int a = 3; int b = 4; return a * b + 2; }", comp);
    ASSERT_TRUE(module);
    // main should be a single block returning the constant 14.
    ir::Function *main_fn = module->getFunction("main");
    EXPECT_EQ(main_fn->numBlocks(), 1u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Bin), 0u);
}

TEST(Opt, SccpFoldsThroughBranches)
{
    Compiler comp(CompilerId::Beta, OptLevel::O1);
    auto module = compileValidated(R"(
        void DCEMarker0(void);
        int main() {
            int a = 1;
            int b;
            if (a) { b = 2; } else { b = 3; }
            if (b == 3) { DCEMarker0(); }
            return b;
        }
    )",
                                   comp);
    ASSERT_TRUE(module);
    EXPECT_FALSE(callsFunction(*module, "DCEMarker0"));
}

TEST(Opt, DeadLoopsDisappear)
{
    Compiler comp(CompilerId::Beta, OptLevel::O2);
    auto module = compileValidated(R"(
        void DCEMarker0(void);
        int main() {
            int a = 0;
            while (a) { DCEMarker0(); }
            return 0;
        }
    )",
                                   comp);
    ASSERT_TRUE(module);
    EXPECT_FALSE(callsFunction(*module, "DCEMarker0"));
}

TEST(Opt, MarkersInLiveCodeSurviveEveryLevel)
{
    for (CompilerId id : {CompilerId::Alpha, CompilerId::Beta}) {
        for (OptLevel level : compiler::allOptLevels()) {
            Compiler comp(id, level);
            auto module = compileValidated(R"(
                void DCEMarker0(void);
                int a = 1;
                int main() {
                    if (a) { DCEMarker0(); }
                    return 0;
                }
            )",
                                           comp);
            ASSERT_TRUE(module);
            EXPECT_TRUE(callsFunction(*module, "DCEMarker0"))
                << comp.describe()
                << " removed a live marker (unsound!)";
        }
    }
}

TEST(Opt, InlinerSeesThroughHelpers)
{
    Compiler comp(CompilerId::Beta, OptLevel::O2);
    auto module = compileValidated(R"(
        void DCEMarker0(void);
        static int five(void) { return 5; }
        int main() {
            if (five() != 5) { DCEMarker0(); }
            return 0;
        }
    )",
                                   comp);
    ASSERT_TRUE(module);
    EXPECT_FALSE(callsFunction(*module, "DCEMarker0"));
    // The helper itself is gone too (inlined + globaldce).
    EXPECT_EQ(module->getFunction("five"), nullptr);
}

TEST(Opt, GlobalOptFoldsNeverStoredGlobals)
{
    for (CompilerId id : {CompilerId::Alpha, CompilerId::Beta}) {
        Compiler comp(id, OptLevel::O2);
        auto module = compileValidated(R"(
            void DCEMarker0(void);
            static int g = 0;
            int main() {
                if (g) { DCEMarker0(); }
                return 0;
            }
        )",
                                       comp);
        ASSERT_TRUE(module);
        EXPECT_FALSE(callsFunction(*module, "DCEMarker0"))
            << comp.describe();
    }
}

TEST(Opt, StoredEqualsInitDivergence)
{
    // Listing 4a: `static int a = 0; if (a) dead(); a = 0;`
    // beta folds (stored value == initializer), alpha does not (its
    // global value analysis is flow-insensitive). The paper's flagship
    // GCC miss (PR99357).
    const std::string source = R"(
        void DCEMarker0(void);
        static int a = 0;
        int main() {
            if (a) { DCEMarker0(); }
            a = 0;
            return 0;
        }
    )";
    Compiler beta(CompilerId::Beta, OptLevel::O3);
    auto beta_module = compileValidated(source, beta);
    ASSERT_TRUE(beta_module);
    EXPECT_FALSE(callsFunction(*beta_module, "DCEMarker0"));

    Compiler alpha(CompilerId::Alpha, OptLevel::O3);
    auto alpha_module = compileValidated(source, alpha);
    ASSERT_TRUE(alpha_module);
    EXPECT_TRUE(callsFunction(*alpha_module, "DCEMarker0"));
}

TEST(Opt, StoredNotEqualInitMissedByBothAtHead)
{
    // Listing 6a: `a = 1` at the end — beta's old flow-sensitive
    // analysis handled it; the R7 commit regressed it.
    const std::string source = R"(
        void DCEMarker0(void);
        static int a = 0;
        int main() {
            if (a) { DCEMarker0(); }
            a = 1;
            return 0;
        }
    )";
    Compiler beta_head(CompilerId::Beta, OptLevel::O3);
    auto head_module = compileValidated(source, beta_head);
    ASSERT_TRUE(head_module);
    EXPECT_TRUE(callsFunction(*head_module, "DCEMarker0"));

    // Pre-regression build (before commit 65c02df91e4).
    Compiler beta_old(CompilerId::Beta, OptLevel::O3, 1);
    auto old_module = compileValidated(source, beta_old);
    ASSERT_TRUE(old_module);
    EXPECT_FALSE(callsFunction(*old_module, "DCEMarker0"));
}

TEST(Opt, PtrCmpOffsetDivergence)
{
    // Listing 3: &a == &b[1]. alpha folds any constant offset; beta
    // only offset 0 (LLVM PR49434).
    const std::string source = R"(
        void DCEMarker0(void);
        char a;
        char b[2];
        int main() {
            char *c = &a;
            char *d = &b[1];
            if (c == d) { DCEMarker0(); }
            return 0;
        }
    )";
    Compiler alpha(CompilerId::Alpha, OptLevel::O3);
    auto alpha_module = compileValidated(source, alpha);
    ASSERT_TRUE(alpha_module);
    EXPECT_FALSE(callsFunction(*alpha_module, "DCEMarker0"));

    Compiler beta(CompilerId::Beta, OptLevel::O3);
    auto beta_module = compileValidated(source, beta);
    ASSERT_TRUE(beta_module);
    EXPECT_TRUE(callsFunction(*beta_module, "DCEMarker0"));

    // The b[0] variant folds for both — the paper notes changing the
    // index to 0 lets EarlyCSE manage.
    const std::string zero_variant = R"(
        void DCEMarker0(void);
        char a;
        char b[2];
        int main() {
            char *c = &a;
            char *d = &b[0];
            if (c == d) { DCEMarker0(); }
            return 0;
        }
    )";
    auto beta_zero = compileValidated(zero_variant, beta);
    ASSERT_TRUE(beta_zero);
    EXPECT_FALSE(callsFunction(*beta_zero, "DCEMarker0"));
}

TEST(Opt, UniformZeroArrayDivergence)
{
    // Listing 9f: b[a] with b = {0, 0}. beta folds, alpha misses
    // (GCC PR99419, duplicate of developer-reported PR80603).
    const std::string source = R"(
        void DCEMarker0(void);
        int a;
        static int b[2] = {0, 0};
        int main() {
            if (b[a]) { DCEMarker0(); }
            return 0;
        }
    )";
    Compiler beta(CompilerId::Beta, OptLevel::O3);
    auto beta_module = compileValidated(source, beta);
    ASSERT_TRUE(beta_module);
    EXPECT_FALSE(callsFunction(*beta_module, "DCEMarker0"));

    Compiler alpha(CompilerId::Alpha, OptLevel::O3);
    auto alpha_module = compileValidated(source, alpha);
    ASSERT_TRUE(alpha_module);
    EXPECT_TRUE(callsFunction(*alpha_module, "DCEMarker0"));
}

TEST(Opt, ExitDseDivergence)
{
    // Listing 1's trailing `c = 0;`: beta removes the dead store,
    // alpha emits it (movl $0, c(%rip) in the paper's GCC output).
    const std::string source = R"(
        static int c = 0;
        int main() {
            c = 5;
            c = 0;
            return 0;
        }
    )";
    Compiler beta(CompilerId::Beta, OptLevel::O3);
    auto beta_module = compileValidated(source, beta);
    ASSERT_TRUE(beta_module);
    EXPECT_EQ(countOpcode(*beta_module, ir::Opcode::Store), 0u);
}

TEST(Opt, UnswitchFreezeRegression)
{
    // Listing 7: beta at -O2 eliminates dead(), at -O3 the unswitch
    // regression (freeze) blocks it.
    const std::string source = R"(
        void dead(void);
        int a, c;
        static int b;
        int main() {
            b = 0;
            while (a) { while (c) { if (b) { dead(); } } }
            return 0;
        }
    )";
    Compiler beta_o2(CompilerId::Beta, OptLevel::O2);
    auto o2_module = compileValidated(source, beta_o2);
    ASSERT_TRUE(o2_module);
    EXPECT_FALSE(callsFunction(*o2_module, "dead"))
        << ir::printModule(*o2_module);

    Compiler beta_o3(CompilerId::Beta, OptLevel::O3);
    auto o3_module = compileValidated(source, beta_o3);
    ASSERT_TRUE(o3_module);
    EXPECT_TRUE(callsFunction(*o3_module, "dead"))
        << ir::printModule(*o3_module);
}

TEST(Opt, VrpRemRegression)
{
    // Listing 8b essence: equality facts folding through %.
    const std::string source = R"(
        void dead(void);
        int x;
        int main() {
            int v = x;
            if (v == 7) {
                if (v % 3 == 0) { dead(); }
            }
            return 0;
        }
    )";
    Compiler beta_o2(CompilerId::Beta, OptLevel::O2);
    auto o2_module = compileValidated(source, beta_o2);
    ASSERT_TRUE(o2_module);
    EXPECT_FALSE(callsFunction(*o2_module, "dead"));

    Compiler beta_o3(CompilerId::Beta, OptLevel::O3);
    auto o3_module = compileValidated(source, beta_o3);
    ASSERT_TRUE(o3_module);
    EXPECT_TRUE(callsFunction(*o3_module, "dead"));

    // The post-head fix commit restores it.
    Compiler beta_fixed(CompilerId::Beta, OptLevel::O3,
                        compiler::spec(CompilerId::Beta).latestIndex());
    auto fixed_module = compileValidated(source, beta_fixed);
    ASSERT_TRUE(fixed_module);
    EXPECT_FALSE(callsFunction(*fixed_module, "dead"));
}

TEST(Opt, ShiftNonzeroRelationDivergence)
{
    // Listing 9a essence: (x << y) != 0 implies x != 0.
    const std::string source = R"(
        void dead(void);
        int x, y;
        int main() {
            if (x << y) {
                if (x == 0) { dead(); }
            }
            return 0;
        }
    )";
    Compiler beta(CompilerId::Beta, OptLevel::O3);
    auto beta_module = compileValidated(source, beta);
    ASSERT_TRUE(beta_module);
    EXPECT_FALSE(callsFunction(*beta_module, "dead"));

    Compiler alpha(CompilerId::Alpha, OptLevel::O3);
    auto alpha_module = compileValidated(source, alpha);
    ASSERT_TRUE(alpha_module);
    EXPECT_TRUE(callsFunction(*alpha_module, "dead"));

    // alpha's post-head fix commit adds the relation.
    Compiler alpha_fixed(
        CompilerId::Alpha, OptLevel::O3,
        compiler::spec(CompilerId::Alpha).headIndex() + 1);
    auto fixed_module = compileValidated(source, alpha_fixed);
    ASSERT_TRUE(fixed_module);
    EXPECT_FALSE(callsFunction(*fixed_module, "dead"));
}

TEST(Opt, LoopUnrollEnablesForwarding)
{
    // Listing 9e shape with static globals: the loop stores &a[1] into
    // c[0] and c[1]; `!c[0]` is then false.
    const std::string source = R"(
        void dead(void);
        static int a[2];
        static int b;
        static int *c[2];
        int main() {
            for (b = 0; b < 2; b++) {
                c[b] = &a[1];
            }
            if (!c[0]) { dead(); }
            return 0;
        }
    )";
    // beta at O3: clean unroll + forwarding eliminates the call.
    Compiler beta(CompilerId::Beta, OptLevel::O3);
    auto beta_module = compileValidated(source, beta);
    ASSERT_TRUE(beta_module);
    EXPECT_FALSE(callsFunction(*beta_module, "dead"))
        << ir::printModule(*beta_module);

    // alpha at O1 also eliminates (no vectorizer); at O3 the
    // store-rewrite regression (freeze) blocks the fold.
    Compiler alpha_o1(CompilerId::Alpha, OptLevel::O1);
    auto o1_module = compileValidated(source, alpha_o1);
    ASSERT_TRUE(o1_module);

    Compiler alpha_o3(CompilerId::Alpha, OptLevel::O3);
    auto o3_module = compileValidated(source, alpha_o3);
    ASSERT_TRUE(o3_module);
    EXPECT_TRUE(callsFunction(*o3_module, "dead"))
        << ir::printModule(*o3_module);
}

TEST(Opt, InlinedHuskRegression)
{
    // Listing 9b essence: at O2+, alpha's IPA-clone commit keeps the
    // husk of an inlined static alive; markers inside survive.
    const std::string source = R"(
        void dead(void);
        static int g = 0;
        static void helper(void) {
            if (g) { dead(); }
        }
        int main() {
            helper();
            return 0;
        }
    )";
    Compiler alpha_o1(CompilerId::Alpha, OptLevel::O1);
    auto o1_module = compileValidated(source, alpha_o1);
    ASSERT_TRUE(o1_module);

    Compiler alpha_o3(CompilerId::Alpha, OptLevel::O3);
    auto o3_module = compileValidated(source, alpha_o3);
    ASSERT_TRUE(o3_module);
    // The husk remains as a function in the module even though main no
    // longer calls it.
    EXPECT_NE(o3_module->getFunction("helper"), nullptr);

    Compiler beta_o3(CompilerId::Beta, OptLevel::O3);
    auto beta_module = compileValidated(source, beta_o3);
    ASSERT_TRUE(beta_module);
    EXPECT_EQ(beta_module->getFunction("helper"), nullptr);
}

TEST(Opt, AliasForwardingRegression)
{
    // Listing 9c essence: forwarding a global's value across stores
    // through provably-unrelated pointers. alpha-O3's alias regression
    // clobbers everything; O1 forwards.
    const std::string source = R"(
        void dead(void);
        static char b;
        static int c;
        int main() {
            b = 0;
            int *g = &c;
            *g = 5;
            if (b != 0) { dead(); }
            return 0;
        }
    )";
    Compiler alpha_o1(CompilerId::Alpha, OptLevel::O1);
    auto o1_module = compileValidated(source, alpha_o1);
    ASSERT_TRUE(o1_module);
    EXPECT_FALSE(callsFunction(*o1_module, "dead"))
        << ir::printModule(*o1_module);

    Compiler alpha_o3(CompilerId::Alpha, OptLevel::O3);
    auto o3_module = compileValidated(source, alpha_o3);
    ASSERT_TRUE(o3_module);
    EXPECT_TRUE(callsFunction(*o3_module, "dead"))
        << ir::printModule(*o3_module);
}

//===------------------------------------------------------------------===//
// Translation validation sweep: every compiler/level must preserve
// behaviour on a battery of semantically-interesting programs.
//===------------------------------------------------------------------===//

const char *kValidationPrograms[] = {
    R"(int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; })",
    R"(int a = 7; int b = 0; int main() { return a / b + a % b; })",
    R"(char c; int main() { c = 200; return c >> 2; })",
    R"(unsigned u = 3000000000; int main() { return u > 2000000000; })",
    R"(int g; void bump(void) { g += 3; } int main() { bump(); bump(); return g; })",
    R"(void M(void); int a = 2; int main() { switch (a) { case 1: M(); break; case 2: a = 9; break; default: break; } return a; })",
    R"(int a[4] = {1,2,3,4}; int main() { int s = 0; for (int i = 0; i < 4; i++) { s += a[i]; } return s; })",
    R"(static int x = 5; int main() { int *p = &x; *p = 6; return x; })",
    R"(int main() { int a = 1, b = 2; return (a < b ? a : b) + (a && b) + (a || b); })",
    R"(void M(void); int n = 3; int main() { while (n) { M(); n--; } return n; })",
    R"(static short e; static long a = 78240; int main() { short g = a; e = a; return (e == a) ^ g; })",
    R"(int a; int main() { int r = 0; do { r++; a++; } while (a < 5); return r; })",
    R"(static int a, b; int main() { for (a = 0; a < 3; a++) { for (b = 0; b < 2; b++) { } } return a * 10 + b; })",
    R"(int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); } int main() { return f(5); })",
    R"(char b[2]; int main() { char *e = &b[1]; *e = 7; return b[1]; })",
};

class ValidationSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ValidationSweep, OptimizedBehaviourMatchesO0)
{
    auto [compiler_index, program_index] = GetParam();
    CompilerId id = compiler_index == 0 ? CompilerId::Alpha
                                        : CompilerId::Beta;
    const char *source = kValidationPrograms[program_index];
    for (OptLevel level : compiler::allOptLevels()) {
        Compiler comp(id, level);
        compileValidated(source, comp);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, ValidationSweep,
    ::testing::Combine(
        ::testing::Range(0, 2),
        ::testing::Range(0, static_cast<int>(
                                std::size(kValidationPrograms)))));

} // namespace
} // namespace dce
