/** @file The paper's reduced bug reports as regression tests: each
 * listing's MiniC port must reproduce the documented miss/eliminate
 * matrix against the simulated compilers (see examples/case_studies
 * for the human-readable version). */
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "ir/lowering.hpp"
#include "helpers.hpp"
#include "lang/parser.hpp"

namespace dce {
namespace {

using compiler::CompilerId;
using compiler::OptLevel;
using test::parseOk;

/** Expected status of DCEMarker0 per build. */
struct Expectation {
    const char *name;
    const char *source;
    bool alpha_o1_missed;
    bool alpha_o3_missed;
    bool beta_o2_missed;
    bool beta_o3_missed;
};

const Expectation kListings[] = {
    {"Listing3_PtrCmpOffset",
     R"(void DCEMarker0(void);
        char a; char b[2];
        int main() {
            char *c = &a; char *d = &b[1];
            if (c == d) { DCEMarker0(); }
            return 0;
        })",
     false, false, true, true},
    {"Listing4a_FlowInsensitiveGlobals",
     R"(void DCEMarker0(void);
        static int a = 0;
        int main() {
            if (a) { DCEMarker0(); }
            a = 0;
            return 0;
        })",
     true, true, false, false},
    {"Listing6a_StoredNotEqualInit",
     R"(void DCEMarker0(void);
        static int a = 0;
        int main() {
            if (a) { DCEMarker0(); }
            a = 1;
            return 0;
        })",
     true, true, true, true},
    {"Listing7_UnswitchFreeze",
     R"(void DCEMarker0(void);
        int a, c;
        static int b;
        int main() {
            b = 0;
            while (a) { while (c) { if (b) { DCEMarker0(); } } }
            return 0;
        })",
     false, false, false, true},
    {"Listing8b_ConstantRangeRem",
     R"(void DCEMarker0(void);
        int x;
        int main() {
            int v = x;
            if (v == 7) {
                if (v % 3 == 0) { DCEMarker0(); }
            }
            return 0;
        })",
     true /* no VRP at -O1 */, false, false, true},
    {"Listing9a_ShiftNonzero",
     R"(void DCEMarker0(void);
        int x, y;
        int main() {
            if (x << y) {
                if (x == 0) { DCEMarker0(); }
            }
            return 0;
        })",
     true, true, false, false},
    {"Listing9b_IpaHusk",
     R"(void DCEMarker0(void);
        static int helper(int p) {
            if (p) { DCEMarker0(); }
            return 0;
        }
        int main() {
            helper(0);
            return 0;
        })",
     false, true, false, false},
    {"Listing9c_AliasForwarding",
     R"(void DCEMarker0(void);
        static char b;
        static int c;
        int main() {
            b = 0;
            int *g = &c;
            *g = 5;
            if (b != 0) { DCEMarker0(); }
            return 0;
        })",
     false, true, false, false},
    {"Listing9e_VectorizedPtrStores",
     R"(void DCEMarker0(void);
        static int a[2];
        static int b;
        static int *c[2];
        int main() {
            for (b = 0; b < 2; b++) {
                c[b] = &a[1];
            }
            if (!c[0]) { DCEMarker0(); }
            return 0;
        })",
     false, true, false, false},
    {"Listing9f_UniformZeroArray",
     R"(void DCEMarker0(void);
        int a;
        static int b[2] = {0, 0};
        int main() {
            if (b[a]) { DCEMarker0(); }
            return 0;
        })",
     true, true, false, false},
};

class PaperListings : public ::testing::TestWithParam<size_t> {};

TEST_P(PaperListings, ReproducesTheDocumentedMatrix)
{
    const Expectation &expected = kListings[GetParam()];
    auto unit = parseOk(expected.source);
    ASSERT_TRUE(unit);

    // In every listing, DCEMarker0 is truly dead: verify via execution.
    auto module = ir::lowerToIr(*unit);
    interp::ExecResult run = interp::execute(*module);
    ASSERT_EQ(run.status, interp::ExecStatus::Ok) << expected.name;
    EXPECT_EQ(run.calledExternals.count("DCEMarker0"), 0u)
        << expected.name << ": marker must never execute";

    auto missed = [&](CompilerId id, OptLevel level) {
        compiler::Compiler comp(id, level);
        return core::aliveMarkers(*unit, comp).count(0) != 0;
    };
    EXPECT_EQ(missed(CompilerId::Alpha, OptLevel::O1),
              expected.alpha_o1_missed)
        << expected.name << " at alpha-O1";
    EXPECT_EQ(missed(CompilerId::Alpha, OptLevel::O3),
              expected.alpha_o3_missed)
        << expected.name << " at alpha-O3";
    EXPECT_EQ(missed(CompilerId::Beta, OptLevel::O2),
              expected.beta_o2_missed)
        << expected.name << " at beta-O2";
    EXPECT_EQ(missed(CompilerId::Beta, OptLevel::O3),
              expected.beta_o3_missed)
        << expected.name << " at beta-O3";
}

INSTANTIATE_TEST_SUITE_P(
    AllListings, PaperListings,
    ::testing::Range<size_t>(0, std::size(kListings)),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return kListings[info.param].name;
    });

} // namespace
} // namespace dce
