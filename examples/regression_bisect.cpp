/**
 * @file
 * Regression workflow (§4.2's "between optimization levels" + the
 * bisection behind Tables 3/4): find a marker the compiler eliminates
 * at -O2 but misses at -O3, confirm an older build also eliminated it,
 * then bisect the commit history to the offending change and print its
 * component/file metadata — everything a regression report needs.
 */
#include <cstdio>

#include "bisect/bisect.hpp"
#include "core/analysis.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

using namespace dce;
using compiler::CompilerId;
using compiler::OptLevel;

int
main()
{
    // Listing 8b's essence: an equality-guarded modulo check. v == 7
    // implies v % 3 == 1, so the inner block is dead; beta's -O2 folds
    // it through correlated value propagation, but a ConstantRange
    // rework regressed -O3.
    const char *source = R"(
        void DCEMarker0(void);
        int x;
        int main() {
            int v = x;
            if (v == 7) {
                if (v % 3 == 0) {
                    DCEMarker0();
                }
            }
            return 0;
        }
    )";
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(source, diags);
    if (!unit) {
        std::printf("parse error:\n%s", diags.str().c_str());
        return 1;
    }

    std::printf("test case:\n%s\n", source);
    // One O0 lowering, cloned per probed build (the engine's
    // lowering-cache pattern).
    auto lowered = ir::lowerToIr(*unit);
    for (OptLevel level : {OptLevel::O1, OptLevel::O2, OptLevel::O3}) {
        compiler::Compiler comp(CompilerId::Beta, level);
        bool missed = core::aliveMarkers(*lowered, comp).count(0) != 0;
        std::printf("%-22s -> marker %s\n", comp.describe().c_str(),
                    missed ? "MISSED" : "eliminated");
    }

    const compiler::CompilerSpec &spec = compiler::spec(CompilerId::Beta);
    std::printf("\nbisecting beta's history (%zu commits) at -O3...\n",
                spec.headIndex() + 1);
    bisect::BisectResult result = bisect::bisectRegression(
        CompilerId::Beta, OptLevel::O3, *unit, /*marker=*/0,
        /*good=*/0, /*bad=*/spec.headIndex());
    if (result.status != bisect::BisectStatus::Found) {
        // The status says which endpoint check failed — "already bad
        // at good" wants an older baseline, "not bad at bad" means the
        // regression does not reproduce here at all.
        std::printf("bisection aborted: %s\n",
                    bisect::bisectStatusName(result.status));
        return 1;
    }
    std::printf("first bad commit: %s\n", result.commit->hash.c_str());
    std::printf("  subject  : %s\n", result.commit->subject.c_str());
    std::printf("  component: %s\n", result.commit->component.c_str());
    std::printf("  files    :");
    for (const std::string &file : result.commit->files)
        std::printf(" %s", file.c_str());
    std::printf("\n");

    // Check whether a later (post-release) commit already fixes it.
    for (size_t commit = spec.headIndex() + 1;
         commit < spec.history().size(); ++commit) {
        compiler::Compiler fixed(CompilerId::Beta, OptLevel::O3, commit);
        if (!core::aliveMarkers(*lowered, fixed).count(0)) {
            std::printf("\nfixed by %s (%s)\n",
                        spec.history()[commit].hash.c_str(),
                        spec.history()[commit].subject.c_str());
            break;
        }
    }
    std::printf("\nPaper parallel: LLVM PR49731 (Listing 8b) — "
                "regressed by a ConstantRange change, fixed with "
                "611a02cce509.\n");
    return 0;
}
