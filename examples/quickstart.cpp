/**
 * @file
 * Quickstart: the whole public API in ~60 effective lines. Take a
 * MiniC program, insert optimization markers, compile it with the two
 * simulated compilers, and report which truly-dead markers each one
 * failed to eliminate — a missed optimization whenever the other
 * compiler managed.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "core/analysis.hpp"
#include "core/campaign.hpp"
#include "instrument/instrument.hpp"
#include "lang/printer.hpp"
#include "support/trace.hpp"

using namespace dce;

int
main()
{
    // A little program with one dead branch: `a` is a static that only
    // ever holds its initializer, so `if (a)` can never be taken.
    const char *source = R"(
        static int a = 0;
        int x;
        int main() {
            if (a) {
                x = 42;
            }
            a = 0;
            return x;
        }
    )";

    // Step 1: insert DCEMarkerN() calls into every block-like construct.
    instrument::Instrumented prog = instrument::instrumentSource(source);
    std::printf("instrumented program (%u markers):\n%s\n",
                prog.markerCount(),
                lang::printUnit(*prog.unit).c_str());

    // Ground truth: run the program; executed markers are alive.
    core::GroundTruth truth = core::groundTruth(prog);
    std::printf("ground truth: %zu alive, %zu dead markers\n\n",
                truth.aliveMarkers.size(), truth.deadMarkers.size());

    // Step 2+3: compile with both compilers at -O3 and compare the
    // markers that survive in each one's assembly.
    compiler::Compiler alpha(compiler::CompilerId::Alpha,
                             compiler::OptLevel::O3);
    compiler::Compiler beta(compiler::CompilerId::Beta,
                            compiler::OptLevel::O3);
    std::set<unsigned> alpha_missed = core::missedMarkers(
        core::aliveMarkers(*prog.unit, alpha), truth);
    std::set<unsigned> beta_missed = core::missedMarkers(
        core::aliveMarkers(*prog.unit, beta), truth);

    auto report = [&](const compiler::Compiler &comp,
                      const std::set<unsigned> &missed) {
        std::printf("%s: %zu missed dead marker(s)",
                    comp.describe().c_str(), missed.size());
        for (unsigned m : missed)
            std::printf("  [DCEMarker%u]", m);
        std::printf("\n");
    };
    report(alpha, alpha_missed);
    report(beta, beta_missed);

    // Step 4: anything missed by one but eliminated by the other is a
    // feasible missed optimization.
    std::set<unsigned> findings =
        core::setMinus(alpha_missed, beta_missed);
    if (!findings.empty()) {
        std::printf("\n=> missed optimization: alpha kept DCEMarker%u "
                    "although beta proved the block dead.\n"
                    "   (This is the paper's Listing 4a / GCC PR99357 "
                    "bug class: flow-insensitive global value "
                    "analysis.)\n",
                    *findings.begin());
    }

    // Scaling up: the same differential over a random corpus, run by
    // the parallel campaign engine. Build handles (BuildId) index the
    // runner's build list; thread count never changes the records.
    // With the tracer enabled, every pipeline stage records a span.
    support::Tracer::global().setEnabled(true);
    core::CampaignOptions options;
    options.threads = 0; // one worker per hardware thread
    core::CampaignRunner runner(
        {{compiler::CompilerId::Alpha, compiler::OptLevel::O3},
         {compiler::CompilerId::Beta, compiler::OptLevel::O3}},
        options);
    core::Campaign campaign = runner.run(/*first_seed=*/1, /*count=*/40);
    core::BuildId alpha_id{0}, beta_id{1};
    std::printf("\ncampaign over 40 random programs: %llu dead markers; "
                "alpha misses %llu that beta eliminates "
                "(%.1f seeds/s on %s)\n",
                static_cast<unsigned long long>(campaign.totalDead()),
                static_cast<unsigned long long>(
                    campaign.totalMissedVersus(alpha_id, beta_id)),
                campaign.metrics.seedsPerSecond(),
                "all hardware threads");

    // The campaign left a Chrome trace behind: open it in Perfetto
    // (https://ui.perfetto.dev) or chrome://tracing to see every seed,
    // stage, and optimization pass on a per-worker timeline.
    support::Tracer::global().setEnabled(false);
    if (support::Tracer::global().writeJson("quickstart_trace.json")) {
        std::printf("wrote quickstart_trace.json (%zu spans) — load it "
                    "at https://ui.perfetto.dev\n",
                    support::Tracer::global().events().size());
    }
    return 0;
}
