/**
 * @file
 * Long-running campaign workflow: a checkpointed campaign over a
 * persistent corpus store that survives being killed at any point.
 *
 *   longrun full <store-dir>            uninterrupted run + summary
 *   longrun run <store-dir> [chunks]    run, optionally stopping after
 *                                       N chunk commits (crash drill)
 *   longrun resume <store-dir>          continue from the checkpoint
 *
 * `run` and `resume` print the same deterministic summary once the
 * campaign completes, so `diff <(longrun full a) <(... kill/resume b)`
 * is the crash-safety check — CI runs exactly that, with a real
 * SIGKILL between `run` and `resume`.
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"

using namespace dce;

namespace {

corpus::CampaignPlan
demoPlan()
{
    corpus::CampaignPlan plan;
    // Sized so a `sleep 2 && kill -9` in CI reliably lands mid-run
    // (several seconds of work, a checkpoint every ~10 seeds).
    plan.count = 600;
    plan.chunkSize = 5;
    plan.randomSeeds = true;
    plan.streamSeed = 7;
    plan.builds = {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3,
         SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3,
         SIZE_MAX},
    };
    plan.computePrimary = true;
    plan.collectRemarks = true;
    plan.missedByBuild = 0;
    plan.referenceBuild = 1;
    return plan;
}

int
fail(const corpus::StoreError &error)
{
    std::fprintf(stderr, "error: %s (%s)\n", error.message.c_str(),
                 corpus::storeStatusName(error.status));
    return 1;
}

int
report(const corpus::CheckpointedCampaign &result)
{
    if (!result.completed) {
        std::printf("halted after %llu chunks (checkpointed)\n",
                    (unsigned long long)result.chunksRun);
        return 0;
    }
    std::fputs(corpus::summaryText(result).c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(
            stderr,
            "usage: %s full|run|resume <store-dir> [halt-chunks]\n",
            argv[0]);
        return 2;
    }
    std::string mode = argv[1];
    std::string dir = argv[2];
    corpus::StoreError error;

    if (mode == "resume") {
        auto result = corpus::resumeCampaign(dir, {}, &error);
        if (!result)
            return fail(error);
        return report(*result);
    }

    if (mode != "full" && mode != "run") {
        std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
        return 2;
    }
    auto store = corpus::CorpusStore::open(dir, &error);
    if (!store)
        return fail(error);
    corpus::CheckpointRunOptions options;
    options.checkpointEveryChunks = 2;
    if (mode == "run" && argc > 3)
        options.haltAfterChunks =
            std::strtoull(argv[3], nullptr, 10);
    auto result =
        corpus::runCheckpointed(*store, demoPlan(), options, &error);
    if (!result)
        return fail(error);
    return report(*result);
}
