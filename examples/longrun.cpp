/**
 * @file
 * Long-running campaign workflow: a checkpointed campaign over a
 * persistent corpus store that survives being killed at any point,
 * with the full telemetry stack attached — structured event log,
 * periodic metrics snapshots, stall watchdog, and a campaign report
 * rendered from the store afterwards.
 *
 *   longrun full <store-dir>            uninterrupted run + summary
 *   longrun run <store-dir> [chunks]    run, optionally stopping after
 *                                       N chunk commits (crash drill)
 *   longrun resume <store-dir>          continue from the checkpoint
 *   longrun full <fleet-dir> --fleet N  shard the same plan across N
 *                                       worker processes; the merged
 *                                       summary/report byte-match the
 *                                       single-process run
 *   longrun fleet-worker <fleet-dir> <store-name>
 *                                       (internal) one fleet worker —
 *                                       what the coordinator execs
 *   longrun trace-merge <fleet-dir> [out]
 *                                       re-merge a traced fleet's
 *                                       traces/ into one Perfetto file
 *                                       (defaults to the coordinator's
 *                                       own output path, so the two
 *                                       merges are diffably identical)
 *
 * Optional flags (any mode):
 *   --events <file>    write the deterministic event log (JSONL)
 *   --metrics <file>   append periodic metrics snapshots (JSONL)
 *   --report <dir>     render report.md/report.html + dossiers
 *   --trace <file>     record Chrome-trace spans; single-process runs
 *                      write <file> directly, a --fleet run traces
 *                      every process and copies the merged timeline to
 *                      <file>
 *   --sample <ms>      time-series sampling cadence (default 500 when
 *                      serving, else off); feeds /timeseries, the
 *                      /dashboard sparklines, and the throughput
 *                      monitor behind /readyz — and, under --fleet,
 *                      each worker's metrics.jsonl snapshot cadence
 *   --latency-report   add the wall-clock "Pipeline latency" section
 *                      (stage p50/p90/p99) to the --report output;
 *                      off by default because that section is NOT
 *                      byte-reproducible across runs
 *   --equiv <K>        after a completed campaign, run the metamorphic
 *                      analysis (K variants per corpus program), triage
 *                      its findings through the store's verdict cache,
 *                      persist equiv.json, and append the deterministic
 *                      metamorphic summary block to the output
 *   --serve <port>     serve live ops endpoints (loopback; 0 picks an
 *                      ephemeral port, printed on startup)
 *   --serve-wait       after the run (and report), keep serving until
 *                      GET /quitquitquit — lets drills curl a settled
 *                      server instead of racing the campaign's exit
 *
 * `run` and `resume` print the same deterministic summary once the
 * campaign completes, so `diff <(longrun full a) <(... kill/resume b)`
 * is the crash-safety check — CI runs exactly that, with a real
 * SIGKILL between `run` and `resume`, and additionally diffs the
 * `--report` output of both stores (the report derives from the store
 * alone, so kill/resume must not change a byte of it).
 */
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "equiv/engine.hpp"
#include "report/anomaly.hpp"
#include "report/event_log.hpp"
#include "report/report.hpp"
#include "report/snapshot.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/trace_merge.hpp"
#include "fleet/worker.hpp"
#include "report/watchdog.hpp"
#include "serve/ops_server.hpp"
#include "support/timeseries.hpp"
#include "support/trace.hpp"

using namespace dce;

namespace {

corpus::CampaignPlan
demoPlan()
{
    corpus::CampaignPlan plan;
    // Sized so a `sleep 2 && kill -9` in CI reliably lands mid-run
    // (several seconds of work, a checkpoint every ~10 seeds).
    plan.count = 600;
    plan.chunkSize = 5;
    plan.randomSeeds = true;
    plan.streamSeed = 7;
    plan.builds = {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3,
         SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3,
         SIZE_MAX},
    };
    plan.computePrimary = true;
    plan.collectRemarks = true;
    plan.missedByBuild = 0;
    plan.referenceBuild = 1;
    return plan;
}

int
fail(const corpus::StoreError &error)
{
    std::fprintf(stderr, "error: %s (%s)\n", error.message.c_str(),
                 corpus::storeStatusName(error.status));
    return 1;
}

int
printSummary(const corpus::CheckpointedCampaign &result)
{
    if (!result.completed) {
        std::printf("halted after %llu chunks (checkpointed)\n",
                    (unsigned long long)result.chunksRun);
        return 0;
    }
    std::fputs(corpus::summaryText(result).c_str(), stdout);
    return 0;
}

struct Flags {
    std::string eventsPath;
    std::string metricsPath;
    std::string reportDir;
    std::string tracePath;
    uint64_t sampleMs = 0;
    bool latencyReport = false;
    bool serve = false;
    uint16_t servePort = 0;
    bool serveWait = false;
    unsigned fleetWorkers = 0;
    unsigned equivVariants = 0;
};

/** The liveness stack behind /timeseries, /dashboard, and /readyz's
 * throughput gate: one ring, one sampler thread, one EWMA monitor.
 * quiesce() detaches the monitor *before* the sampler's final stop()
 * sample, so a finished campaign's zero rate never reads as a
 * degradation while --serve-wait holds the endpoints open. */
struct LivenessStack {
    support::TimeSeries series;
    std::unique_ptr<report::ThroughputMonitor> monitor;
    std::unique_ptr<support::TimeSeriesSampler> sampler;
    std::atomic<bool> monitorLive{true};

    void
    start(uint64_t interval_ms, support::MetricsRegistry &registry,
          support::EventSink *events,
          std::function<void(support::MetricsRegistry &)> augment)
    {
        report::ThroughputMonitorOptions monitor_options;
        monitor_options.events = events;
        monitor_options.registry = &registry;
        monitor = std::make_unique<report::ThroughputMonitor>(
            monitor_options);
        support::TimeSeriesSamplerOptions sampler_options;
        sampler_options.intervalMs = interval_ms;
        sampler_options.registry = &registry;
        sampler_options.augment = std::move(augment);
        sampler_options.onSample =
            [this](const support::TimeSample &sample) {
                if (monitorLive.load(std::memory_order_relaxed))
                    monitor->observe(sample.seeds);
            };
        sampler = std::make_unique<support::TimeSeriesSampler>(
            series, sampler_options);
        sampler->start();
    }

    void
    quiesce()
    {
        monitorLive.store(false, std::memory_order_relaxed);
        if (sampler)
            sampler->stop();
    }
};

/** Coordinator mode: shard demoPlan() across worker processes (each
 * an exec of this binary in fleet-worker mode), serve the aggregated
 * ops endpoints while they run, then report from the merged store. */
int
runFleetMode(const char *self, const std::string &fleet_dir,
             const Flags &flags)
{
    corpus::StoreError error;
    support::MetricsRegistry registry;
    fleet::FleetOptions fleet_options;
    fleet_options.workers = flags.fleetWorkers;
    fleet_options.workerExecArgv = {self, "fleet-worker"};
    fleet_options.metrics = &registry;
    fleet_options.trace = !flags.tracePath.empty();
    fleet_options.snapshotIntervalMs = flags.sampleMs;
    fleet_options.logLine = [](const std::string &line) {
        std::fprintf(stderr, "%s\n", line.c_str());
    };
    fleet::FleetCoordinator coordinator(fleet_dir, demoPlan(),
                                        fleet_options);

    LivenessStack liveness;
    if (flags.sampleMs) {
        // The coordinator's own registry has only fleet.* counters;
        // each sample folds in the workers' latest dumps plus the
        // lease-committed findings total, so the series is fleet-wide.
        liveness.start(
            flags.sampleMs, registry, nullptr,
            [&coordinator](support::MetricsRegistry &scratch) {
                coordinator.mergeWorkerMetrics(scratch);
                scratch.counter("campaign.progress", "findings")
                    .add(coordinator.progress().findings);
            });
    }

    serve::OpsServerOptions serve_options;
    serve_options.port = flags.servePort;
    serve_options.metrics = &registry;
    serve_options.fleet = &coordinator;
    serve_options.allowRemoteShutdown = flags.serveWait;
    if (flags.sampleMs) {
        serve_options.timeseries = &liveness.series;
        serve_options.throughput = liveness.monitor.get();
    }
    serve::OpsServer ops(serve_options);
    if (flags.serve) {
        std::string serve_error;
        if (!ops.start(&serve_error)) {
            std::fprintf(stderr, "error: serve: %s\n",
                         serve_error.c_str());
            return 1;
        }
        std::fprintf(stderr, "serving ops on 127.0.0.1:%u\n",
                     unsigned(ops.port()));
    }

    std::optional<fleet::FleetResult> result =
        coordinator.run(&error);
    liveness.quiesce();
    if (!result)
        return fail(error);

    if (!flags.tracePath.empty() &&
        !result->mergedTracePath.empty() &&
        result->mergedTracePath != flags.tracePath) {
        std::optional<std::string> trace_bytes =
            fleet::readFile(result->mergedTracePath, &error);
        if (!trace_bytes ||
            !fleet::writeFileAtomic(flags.tracePath, *trace_bytes,
                                    &error))
            return fail(error);
    }

    support::MetricsRegistry latency_registry;
    if (!flags.reportDir.empty()) {
        corpus::OpenOptions open_options;
        open_options.createIfMissing = false;
        open_options.metrics = &registry;
        auto merged = corpus::CorpusStore::open(
            result->mergedStoreDir, &error, open_options);
        if (!merged)
            return fail(error);
        report::CampaignReportOptions report_options;
        report_options.html = true;
        if (flags.latencyReport) {
            coordinator.mergeWorkerMetrics(latency_registry);
            report_options.latencyMetrics = &latency_registry;
        }
        if (!report::writeCampaignReport(*merged, flags.reportDir,
                                         report_options, &error))
            return fail(error);
    }

    int status = printSummary(result->merged);
    if (flags.serve && flags.serveWait) {
        std::fflush(stdout);
        ops.waitForShutdownRequest();
    }
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s full|run|resume <store-dir> "
                     "[halt-chunks] [--events <file>] "
                     "[--metrics <file>] [--report <dir>] "
                     "[--trace <file>] [--sample <ms>] "
                     "[--latency-report] [--equiv <K>] "
                     "[--serve <port>] [--serve-wait]\n",
                     argv[0]);
        return 2;
    }
    std::string mode = argv[1];
    std::string dir = argv[2];
    if (mode == "fleet-worker") {
        if (argc != 4) {
            std::fprintf(stderr,
                         "usage: %s fleet-worker <fleet-dir> "
                         "<store-name>\n",
                         argv[0]);
            return 2;
        }
        return fleet::runFleetWorker(dir, argv[3]);
    }
    if (mode == "trace-merge") {
        std::string out = argc >= 4 ? argv[3]
                                    : fleet::mergedTracePath(dir);
        corpus::StoreError error;
        std::optional<fleet::TraceMergeResult> merged =
            fleet::mergeTraces(dir, out, &error);
        if (!merged)
            return fail(error);
        std::printf("merged %llu trace file(s), %llu span(s) -> %s\n",
                    (unsigned long long)merged->files,
                    (unsigned long long)merged->events, out.c_str());
        return 0;
    }
    Flags flags;
    uint64_t halt_chunks = 0;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--events")
            flags.eventsPath = value();
        else if (arg == "--metrics")
            flags.metricsPath = value();
        else if (arg == "--report")
            flags.reportDir = value();
        else if (arg == "--trace")
            flags.tracePath = value();
        else if (arg == "--sample")
            flags.sampleMs = std::strtoull(value(), nullptr, 10);
        else if (arg == "--latency-report")
            flags.latencyReport = true;
        else if (arg == "--serve") {
            flags.serve = true;
            flags.servePort =
                uint16_t(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--serve-wait")
            flags.serveWait = true;
        else if (arg == "--equiv")
            flags.equivVariants =
                unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--fleet")
            flags.fleetWorkers =
                unsigned(std::strtoul(value(), nullptr, 10));
        else
            halt_chunks = std::strtoull(arg.c_str(), nullptr, 10);
    }

    if (mode != "full" && mode != "run" && mode != "resume") {
        std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
        return 2;
    }
    // Serving without sampling would leave /timeseries and the
    // dashboard sparklines empty; default the cadence on.
    if (flags.serve && !flags.sampleMs)
        flags.sampleMs = 500;
    if (flags.fleetWorkers > 0) {
        if (mode != "full") {
            std::fprintf(stderr, "--fleet requires mode 'full'\n");
            return 2;
        }
        return runFleetMode(argv[0], dir, flags);
    }

    corpus::StoreError error;
    support::MetricsRegistry registry;
    report::EventLog log(&registry);
    report::Watchdog watchdog(
        {.stallThresholdUs = 60'000'000,
         .events = &log,
         .registry = &registry,
         .onStall =
             [](const std::string &dump) {
                 std::fputs(dump.c_str(), stderr);
             },
         .clock = nullptr});
    watchdog.start();

    report::SnapshotWriter snapshots(
        {.path = flags.metricsPath, .intervalMs = 500,
         .registry = &registry});
    if (!flags.metricsPath.empty())
        snapshots.start();

    // Tracing keeps the default process identity (pid 1,
    // "dce-campaign"), so single-process trace output is unchanged
    // by the fleet-identity machinery.
    if (!flags.tracePath.empty())
        support::Tracer::global().setEnabled(true);

    LivenessStack liveness;
    if (flags.sampleMs)
        liveness.start(flags.sampleMs, registry, &log, nullptr);

    // One store handle for the whole process: the campaign writes
    // through it and — when serving — /report and /dossier read
    // through it concurrently (the store is mutex-guarded).
    corpus::OpenOptions open_options;
    open_options.createIfMissing = mode != "resume";
    open_options.metrics = &registry;
    auto store = corpus::CorpusStore::open(dir, &error, open_options);
    if (!store)
        return fail(error);

    corpus::CampaignPlan plan;
    if (mode == "resume") {
        // The plan comes from the checkpoint, exactly as
        // resumeCampaign would derive it.
        std::optional<corpus::CheckpointState> state =
            corpus::readCheckpointState(*store, &error);
        if (!state)
            return fail(error);
        plan = state->plan;
    } else {
        plan = demoPlan();
    }

    corpus::CampaignStatusBoard board;
    corpus::CheckpointRunOptions options;
    options.checkpointEveryChunks = 2;
    options.metrics = &registry;
    options.events = &log;
    options.observer = watchdog.wrap({});
    options.status = &board;
    if (mode == "run")
        options.haltAfterChunks = halt_chunks;

    serve::OpsServerOptions serve_options;
    serve_options.port = flags.servePort;
    serve_options.metrics = &registry;
    serve_options.store = store.get();
    serve_options.events = &log;
    serve_options.watchdog = &watchdog;
    serve_options.status = &board;
    serve_options.allowRemoteShutdown = flags.serveWait;
    if (flags.sampleMs) {
        serve_options.timeseries = &liveness.series;
        serve_options.throughput = liveness.monitor.get();
    }
    serve::OpsServer ops(serve_options);
    if (flags.serve) {
        std::string serve_error;
        if (!ops.start(&serve_error)) {
            std::fprintf(stderr, "error: serve: %s\n",
                         serve_error.c_str());
            return 1;
        }
        std::fprintf(stderr, "serving ops on 127.0.0.1:%u\n",
                     unsigned(ops.port()));
    }

    std::optional<corpus::CheckpointedCampaign> result =
        corpus::runCheckpointed(*store, plan, options, &error);
    watchdog.stop();
    liveness.quiesce();
    if (!flags.metricsPath.empty())
        snapshots.stop();
    if (!flags.tracePath.empty() &&
        !support::Tracer::global().writeJson(flags.tracePath)) {
        std::fprintf(stderr, "error: writing trace %s failed\n",
                     flags.tracePath.c_str());
        return 1;
    }
    if (!result)
        return fail(error);

    // Metamorphic analysis runs as post-campaign store analysis (like
    // the report): pure in (store contents, options), so full and
    // kill/resume runs produce byte-identical equiv.json, summary
    // block, and report section.
    std::optional<equiv::EquivSummary> equiv_summary;
    if (flags.equivVariants > 0 && result->completed) {
        equiv::EquivOptions equiv_options;
        equiv_options.variantsPerProgram = flags.equivVariants;
        equiv_options.metrics = &registry;
        equiv_options.events = &log;
        equiv_summary = equiv::runEquivAnalysis(*store, equiv_options);
        if (equiv_summary) {
            corpus::StoreVerdictCache cache(*store);
            core::TriageOptions triage_options;
            triage_options.metrics = &registry;
            triage_options.verdictCache = &cache;
            equiv::triageEquivFindings(*equiv_summary, triage_options);
            if (!store->writeEquivState(
                    equiv::serializeEquivSummary(*equiv_summary),
                    &error))
                return fail(error);
        }
    }

    if (!flags.eventsPath.empty() && !log.write(flags.eventsPath)) {
        std::fprintf(stderr, "error: writing event log %s failed\n",
                     flags.eventsPath.c_str());
        return 1;
    }
    if (!flags.reportDir.empty()) {
        // The report derives from the durable store alone (no event
        // log), so kill/resume runs render byte-identical reports —
        // and the same render the server's /report endpoint returns.
        report::CampaignReportOptions report_options;
        report_options.html = true;
        if (flags.latencyReport)
            report_options.latencyMetrics = &registry;
        if (!report::writeCampaignReport(*store, flags.reportDir,
                                         report_options, &error))
            return fail(error);
    }

    int status = printSummary(*result);
    if (equiv_summary)
        std::fputs(equiv::equivSummaryText(*equiv_summary).c_str(),
                   stdout);
    if (flags.serve && flags.serveWait) {
        // Summary and artifacts are on disk; hold the endpoints open
        // for drills until an operator asks us to go.
        std::fflush(stdout);
        ops.waitForShutdownRequest();
    }
    return status;
}
