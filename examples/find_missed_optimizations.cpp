/**
 * @file
 * The paper's §4.2 workflow as a standalone tool: generate a random
 * corpus, run the marker-based differential campaign between the two
 * compilers at -O3, keep the primary findings, reduce one of them with
 * the delta-debugging reducer, and print the reduced report the way
 * one would file it.
 */
#include <cstdio>

#include "core/triage.hpp"
#include "lang/printer.hpp"
#include "support/metrics.hpp"

using namespace dce;
using compiler::CompilerId;
using compiler::OptLevel;

int
main()
{
    constexpr unsigned kPrograms = 60;
    std::printf("generating and analyzing %u random programs...\n",
                kPrograms);

    core::BuildSpec alpha{CompilerId::Alpha, OptLevel::O3, SIZE_MAX};
    core::BuildSpec beta{CompilerId::Beta, OptLevel::O3, SIZE_MAX};
    core::CampaignOptions options;
    options.computePrimary = true;
    options.threads = 0; // all hardware threads; records unchanged
    options.observer = [](const core::CampaignProgress &progress) {
        if (progress.seedsDone % 20 == 0 ||
            progress.seedsDone == progress.seedsTotal) {
            std::printf("  ... %llu/%llu seeds\n",
                        static_cast<unsigned long long>(
                            progress.seedsDone),
                        static_cast<unsigned long long>(
                            progress.seedsTotal));
        }
    };
    core::CampaignRunner runner({alpha, beta}, options);
    core::Campaign campaign = runner.run(/*first_seed=*/4000, kPrograms);
    core::BuildId alpha_id{0}, beta_id{1}; // runner's build order

    const support::MetricsRegistry &registry =
        support::MetricsRegistry::global();
    uint64_t hits = registry.counterValue("campaign.cache_hits");
    uint64_t probes =
        hits + registry.counterValue("campaign.cache_misses");
    std::printf("corpus: %llu markers, %llu dead, %llu alive "
                "(%.1f seeds/s, cache hit rate %.1f%%)\n",
                static_cast<unsigned long long>(campaign.totalMarkers()),
                static_cast<unsigned long long>(campaign.totalDead()),
                static_cast<unsigned long long>(campaign.totalAlive()),
                campaign.metrics.seedsPerSecond(),
                probes ? 100.0 * double(hits) / double(probes) : 0.0);
    std::printf("alpha misses %llu markers beta eliminates; beta misses "
                "%llu markers alpha eliminates\n\n",
                static_cast<unsigned long long>(
                    campaign.totalMissedVersus(alpha_id, beta_id)),
                static_cast<unsigned long long>(
                    campaign.totalMissedVersus(beta_id, alpha_id)));

    // Pick primary findings in each direction and reduce the first.
    std::vector<core::Finding> findings =
        core::collectFindings(campaign, alpha, beta, 3);
    for (core::Finding &f : core::collectFindings(campaign, beta, alpha, 2))
        findings.push_back(f);
    if (findings.empty()) {
        std::printf("no differential findings in this corpus; try more "
                    "seeds.\n");
        return 0;
    }
    std::printf("found %zu primary differential findings; reducing the "
                "first with delta debugging...\n\n",
                findings.size());

    // A single finding, so the parallelism that pays here is the
    // speculative ddmin inside the reduction: every hardware thread
    // evaluates a different candidate removal of the current sweep.
    core::TriageOptions triage_options;
    triage_options.reduceWorkers = 0;
    core::TriageSummary summary =
        core::triageFindings({findings.front()}, triage_options);
    const core::Report &report = summary.reports.front();
    std::printf("--- reduced bug report "
                "---------------------------------------\n");
    std::printf("compiler : %s misses DCEMarker%u (eliminated by %s)\n",
                report.finding.missedBy.name().c_str(),
                report.finding.marker,
                report.finding.reference.name().c_str());
    std::printf("root-cause signature: %s%s\n", report.signature.c_str(),
                report.fixed ? "  (a later commit fixes it)" : "");
    std::printf("reduced test case (%u predicate runs):\n%s",
                report.reductionTests, report.reducedSource.c_str());
    std::printf("------------------------------------------------------"
                "----\n");
    return 0;
}
