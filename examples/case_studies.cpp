/**
 * @file
 * The paper's reduced bug reports (Listings 3, 4, 6, 7, 8, 9), ported
 * to MiniC and replayed against the simulated compilers. For each case
 * the example prints which builds miss the dead marker, next to what
 * the paper observed for GCC/LLVM — the per-listing reproduction
 * matrix summarized in EXPERIMENTS.md.
 */
#include <cstdio>
#include <vector>

#include "core/analysis.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"

using namespace dce;
using compiler::CompilerId;
using compiler::OptLevel;

namespace {

struct CaseStudy {
    const char *name;
    const char *paper;
    const char *source; ///< must declare DCEMarker0 as the dead probe
};

const CaseStudy kCases[] = {
    {"Listing 3 (LLVM PR49434)",
     "LLVM misses &a == &b[1]; GCC folds it",
     R"(void DCEMarker0(void);
        char a;
        char b[2];
        int main() {
            char *c = &a;
            char *d = &b[1];
            if (c == d) { DCEMarker0(); }
            return 0;
        })"},
    {"Listing 4a (GCC PR99357)",
     "GCC's global value analysis is not flow-sensitive",
     R"(void DCEMarker0(void);
        static int a = 0;
        int main() {
            if (a) { DCEMarker0(); }
            a = 0;
            return 0;
        })"},
    {"Listing 6a (LLVM 3.8 regression)",
     "a = 1 variant: both compilers miss at head",
     R"(void DCEMarker0(void);
        static int a = 0;
        int main() {
            if (a) { DCEMarker0(); }
            a = 1;
            return 0;
        })"},
    {"Listing 7 (unswitch regression)",
     "LLVM eliminated at -O2 but not -O3 after a loop-unswitch change",
     R"(void DCEMarker0(void);
        int a, c;
        static int b;
        int main() {
            b = 0;
            while (a) { while (c) { if (b) { DCEMarker0(); } } }
            return 0;
        })"},
    {"Listing 8b essence (LLVM PR49731)",
     "constant-range modulo missed at -O3, fixed by 611a02cce509",
     R"(void DCEMarker0(void);
        int x;
        int main() {
            int v = x;
            if (v == 7) {
                if (v % 3 == 0) { DCEMarker0(); }
            }
            return 0;
        })"},
    {"Listing 9a essence (GCC PR102546)",
     "GCC missed (x << y) != 0 => x != 0",
     R"(void DCEMarker0(void);
        int x, y;
        int main() {
            if (x << y) {
                if (x == 0) { DCEMarker0(); }
            }
            return 0;
        })"},
    {"Listing 9b essence (GCC PR100034)",
     "uncleaned IPA husk keeps dead code in the binary at -O3",
     R"(void DCEMarker0(void);
        static int helper(int p) {
            if (p) { DCEMarker0(); }
            return 0;
        }
        int main() {
            helper(0);
            return 0;
        })"},
    {"Listing 9c essence (GCC PR100051)",
     "alias precision lost at -O3; -O1 forwards the store",
     R"(void DCEMarker0(void);
        static char b;
        static int c;
        int main() {
            b = 0;
            int *g = &c;
            *g = 5;
            if (b != 0) { DCEMarker0(); }
            return 0;
        })"},
    {"Listing 9e (GCC PR99776)",
     "vectorized pointer stores blocked folding at -O3; -O1 clean",
     R"(void DCEMarker0(void);
        static int a[2];
        static int b;
        static int *c[2];
        int main() {
            for (b = 0; b < 2; b++) {
                c[b] = &a[1];
            }
            if (!c[0]) { DCEMarker0(); }
            return 0;
        })"},
    {"Listing 9f (GCC PR99419 / dup of PR80603)",
     "uniform all-zero array load b[a] not folded by GCC",
     R"(void DCEMarker0(void);
        int a;
        static int b[2] = {0, 0};
        int main() {
            if (b[a]) { DCEMarker0(); }
            return 0;
        })"},
};

} // namespace

int
main()
{
    std::printf("%-38s %6s %6s %6s %6s   %s\n", "case", "a-O1",
                "a-O3", "b-O2", "b-O3", "paper behaviour");
    std::printf("---------------------------------------------------"
                "------------------------------------------\n");
    for (const CaseStudy &cs : kCases) {
        DiagnosticEngine diags;
        auto unit = lang::parseAndCheck(cs.source, diags);
        if (!unit) {
            std::printf("%-38s PARSE ERROR\n%s", cs.name,
                        diags.str().c_str());
            continue;
        }
        // One lowering per case; each probed build clones it (the
        // campaign engine's lowering-cache pattern).
        auto lowered = ir::lowerToIr(*unit);
        auto probe = [&](CompilerId id, OptLevel level) {
            compiler::Compiler comp(id, level);
            return core::aliveMarkers(*lowered, comp).count(0) != 0
                       ? "MISS"
                       : "elim";
        };
        std::printf("%-38s %6s %6s %6s %6s   %s\n", cs.name,
                    probe(CompilerId::Alpha, OptLevel::O1),
                    probe(CompilerId::Alpha, OptLevel::O3),
                    probe(CompilerId::Beta, OptLevel::O2),
                    probe(CompilerId::Beta, OptLevel::O3), cs.paper);
    }
    std::printf("\n('MISS' = marker survives in the build's assembly "
                "although the block is dead.)\n");
    return 0;
}
