# Empty compiler generated dependencies file for dce_tests.
# This may be replaced when dependencies are built.
