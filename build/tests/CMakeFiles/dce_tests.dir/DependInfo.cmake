
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/helpers.cpp" "tests/CMakeFiles/dce_tests.dir/helpers.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/helpers.cpp.o.d"
  "/root/repo/tests/test_backend.cpp" "tests/CMakeFiles/dce_tests.dir/test_backend.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_backend.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/dce_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/dce_tests.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_gen.cpp.o.d"
  "/root/repo/tests/test_instrument.cpp" "tests/CMakeFiles/dce_tests.dir/test_instrument.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_instrument.cpp.o.d"
  "/root/repo/tests/test_interp.cpp" "tests/CMakeFiles/dce_tests.dir/test_interp.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_interp.cpp.o.d"
  "/root/repo/tests/test_ints.cpp" "tests/CMakeFiles/dce_tests.dir/test_ints.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_ints.cpp.o.d"
  "/root/repo/tests/test_lexer.cpp" "tests/CMakeFiles/dce_tests.dir/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_lexer.cpp.o.d"
  "/root/repo/tests/test_lowering.cpp" "tests/CMakeFiles/dce_tests.dir/test_lowering.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_lowering.cpp.o.d"
  "/root/repo/tests/test_opt.cpp" "tests/CMakeFiles/dce_tests.dir/test_opt.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_opt.cpp.o.d"
  "/root/repo/tests/test_paper_listings.cpp" "tests/CMakeFiles/dce_tests.dir/test_paper_listings.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_paper_listings.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/dce_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_printer.cpp" "tests/CMakeFiles/dce_tests.dir/test_printer.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_printer.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/dce_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sema.cpp" "tests/CMakeFiles/dce_tests.dir/test_sema.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_sema.cpp.o.d"
  "/root/repo/tests/test_validation_sweep.cpp" "tests/CMakeFiles/dce_tests.dir/test_validation_sweep.cpp.o" "gcc" "tests/CMakeFiles/dce_tests.dir/test_validation_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bisect/CMakeFiles/dce_bisect.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/dce_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/dce_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/dce_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dce_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/dce_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/dce_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dce_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dce_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dce_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
