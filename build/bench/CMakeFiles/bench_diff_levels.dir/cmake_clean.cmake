file(REMOVE_RECURSE
  "CMakeFiles/bench_diff_levels.dir/bench_diff_levels.cpp.o"
  "CMakeFiles/bench_diff_levels.dir/bench_diff_levels.cpp.o.d"
  "bench_diff_levels"
  "bench_diff_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diff_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
