# Empty dependencies file for bench_diff_levels.
# This may be replaced when dependencies are built.
