# Empty dependencies file for bench_diff_compilers.
# This may be replaced when dependencies are built.
