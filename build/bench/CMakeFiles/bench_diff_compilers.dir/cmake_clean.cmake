file(REMOVE_RECURSE
  "CMakeFiles/bench_diff_compilers.dir/bench_diff_compilers.cpp.o"
  "CMakeFiles/bench_diff_compilers.dir/bench_diff_compilers.cpp.o.d"
  "bench_diff_compilers"
  "bench_diff_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diff_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
