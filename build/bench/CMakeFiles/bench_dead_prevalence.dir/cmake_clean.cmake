file(REMOVE_RECURSE
  "CMakeFiles/bench_dead_prevalence.dir/bench_dead_prevalence.cpp.o"
  "CMakeFiles/bench_dead_prevalence.dir/bench_dead_prevalence.cpp.o.d"
  "bench_dead_prevalence"
  "bench_dead_prevalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dead_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
