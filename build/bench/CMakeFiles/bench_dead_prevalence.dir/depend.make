# Empty dependencies file for bench_dead_prevalence.
# This may be replaced when dependencies are built.
