file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_primary.dir/bench_table2_primary.cpp.o"
  "CMakeFiles/bench_table2_primary.dir/bench_table2_primary.cpp.o.d"
  "bench_table2_primary"
  "bench_table2_primary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_primary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
