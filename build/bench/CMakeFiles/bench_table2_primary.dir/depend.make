# Empty dependencies file for bench_table2_primary.
# This may be replaced when dependencies are built.
