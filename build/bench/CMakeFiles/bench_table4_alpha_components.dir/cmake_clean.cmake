file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_alpha_components.dir/bench_table4_alpha_components.cpp.o"
  "CMakeFiles/bench_table4_alpha_components.dir/bench_table4_alpha_components.cpp.o.d"
  "bench_table4_alpha_components"
  "bench_table4_alpha_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_alpha_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
