# Empty compiler generated dependencies file for bench_table4_alpha_components.
# This may be replaced when dependencies are built.
