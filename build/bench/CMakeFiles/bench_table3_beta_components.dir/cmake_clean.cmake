file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_beta_components.dir/bench_table3_beta_components.cpp.o"
  "CMakeFiles/bench_table3_beta_components.dir/bench_table3_beta_components.cpp.o.d"
  "bench_table3_beta_components"
  "bench_table3_beta_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_beta_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
