# Empty dependencies file for bench_table3_beta_components.
# This may be replaced when dependencies are built.
