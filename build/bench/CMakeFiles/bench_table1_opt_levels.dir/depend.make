# Empty dependencies file for bench_table1_opt_levels.
# This may be replaced when dependencies are built.
