file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_primary_cfg.dir/bench_fig2_primary_cfg.cpp.o"
  "CMakeFiles/bench_fig2_primary_cfg.dir/bench_fig2_primary_cfg.cpp.o.d"
  "bench_fig2_primary_cfg"
  "bench_fig2_primary_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_primary_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
