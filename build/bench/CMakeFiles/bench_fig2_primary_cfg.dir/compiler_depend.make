# Empty compiler generated dependencies file for bench_fig2_primary_cfg.
# This may be replaced when dependencies are built.
