# Empty dependencies file for bench_table5_reports.
# This may be replaced when dependencies are built.
