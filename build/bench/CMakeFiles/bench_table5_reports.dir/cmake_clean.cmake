file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_reports.dir/bench_table5_reports.cpp.o"
  "CMakeFiles/bench_table5_reports.dir/bench_table5_reports.cpp.o.d"
  "bench_table5_reports"
  "bench_table5_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
