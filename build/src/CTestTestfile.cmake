# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lang")
subdirs("ir")
subdirs("interp")
subdirs("opt")
subdirs("backend")
subdirs("compiler")
subdirs("gen")
subdirs("instrument")
subdirs("core")
subdirs("reduce")
subdirs("bisect")
