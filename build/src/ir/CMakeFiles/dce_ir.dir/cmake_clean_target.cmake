file(REMOVE_RECURSE
  "libdce_ir.a"
)
