# Empty compiler generated dependencies file for dce_ir.
# This may be replaced when dependencies are built.
