file(REMOVE_RECURSE
  "CMakeFiles/dce_ir.dir/cfg.cpp.o"
  "CMakeFiles/dce_ir.dir/cfg.cpp.o.d"
  "CMakeFiles/dce_ir.dir/clone.cpp.o"
  "CMakeFiles/dce_ir.dir/clone.cpp.o.d"
  "CMakeFiles/dce_ir.dir/dominators.cpp.o"
  "CMakeFiles/dce_ir.dir/dominators.cpp.o.d"
  "CMakeFiles/dce_ir.dir/ir.cpp.o"
  "CMakeFiles/dce_ir.dir/ir.cpp.o.d"
  "CMakeFiles/dce_ir.dir/loop_info.cpp.o"
  "CMakeFiles/dce_ir.dir/loop_info.cpp.o.d"
  "CMakeFiles/dce_ir.dir/lowering.cpp.o"
  "CMakeFiles/dce_ir.dir/lowering.cpp.o.d"
  "CMakeFiles/dce_ir.dir/printer.cpp.o"
  "CMakeFiles/dce_ir.dir/printer.cpp.o.d"
  "CMakeFiles/dce_ir.dir/verifier.cpp.o"
  "CMakeFiles/dce_ir.dir/verifier.cpp.o.d"
  "libdce_ir.a"
  "libdce_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
