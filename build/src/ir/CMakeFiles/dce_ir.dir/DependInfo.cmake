
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/cfg.cpp" "src/ir/CMakeFiles/dce_ir.dir/cfg.cpp.o" "gcc" "src/ir/CMakeFiles/dce_ir.dir/cfg.cpp.o.d"
  "/root/repo/src/ir/clone.cpp" "src/ir/CMakeFiles/dce_ir.dir/clone.cpp.o" "gcc" "src/ir/CMakeFiles/dce_ir.dir/clone.cpp.o.d"
  "/root/repo/src/ir/dominators.cpp" "src/ir/CMakeFiles/dce_ir.dir/dominators.cpp.o" "gcc" "src/ir/CMakeFiles/dce_ir.dir/dominators.cpp.o.d"
  "/root/repo/src/ir/ir.cpp" "src/ir/CMakeFiles/dce_ir.dir/ir.cpp.o" "gcc" "src/ir/CMakeFiles/dce_ir.dir/ir.cpp.o.d"
  "/root/repo/src/ir/loop_info.cpp" "src/ir/CMakeFiles/dce_ir.dir/loop_info.cpp.o" "gcc" "src/ir/CMakeFiles/dce_ir.dir/loop_info.cpp.o.d"
  "/root/repo/src/ir/lowering.cpp" "src/ir/CMakeFiles/dce_ir.dir/lowering.cpp.o" "gcc" "src/ir/CMakeFiles/dce_ir.dir/lowering.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/dce_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/dce_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/ir/CMakeFiles/dce_ir.dir/verifier.cpp.o" "gcc" "src/ir/CMakeFiles/dce_ir.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/dce_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
