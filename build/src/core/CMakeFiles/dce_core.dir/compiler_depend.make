# Empty compiler generated dependencies file for dce_core.
# This may be replaced when dependencies are built.
