file(REMOVE_RECURSE
  "CMakeFiles/dce_core.dir/analysis.cpp.o"
  "CMakeFiles/dce_core.dir/analysis.cpp.o.d"
  "CMakeFiles/dce_core.dir/campaign.cpp.o"
  "CMakeFiles/dce_core.dir/campaign.cpp.o.d"
  "CMakeFiles/dce_core.dir/triage.cpp.o"
  "CMakeFiles/dce_core.dir/triage.cpp.o.d"
  "libdce_core.a"
  "libdce_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
