file(REMOVE_RECURSE
  "libdce_core.a"
)
