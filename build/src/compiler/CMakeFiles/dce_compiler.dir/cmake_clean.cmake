file(REMOVE_RECURSE
  "CMakeFiles/dce_compiler.dir/compiler.cpp.o"
  "CMakeFiles/dce_compiler.dir/compiler.cpp.o.d"
  "libdce_compiler.a"
  "libdce_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
