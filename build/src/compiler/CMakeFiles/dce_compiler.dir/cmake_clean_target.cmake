file(REMOVE_RECURSE
  "libdce_compiler.a"
)
