# Empty dependencies file for dce_compiler.
# This may be replaced when dependencies are built.
