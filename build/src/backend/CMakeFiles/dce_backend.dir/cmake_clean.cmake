file(REMOVE_RECURSE
  "CMakeFiles/dce_backend.dir/codegen.cpp.o"
  "CMakeFiles/dce_backend.dir/codegen.cpp.o.d"
  "libdce_backend.a"
  "libdce_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
