file(REMOVE_RECURSE
  "libdce_backend.a"
)
