# Empty dependencies file for dce_backend.
# This may be replaced when dependencies are built.
