# Empty compiler generated dependencies file for dce_instrument.
# This may be replaced when dependencies are built.
