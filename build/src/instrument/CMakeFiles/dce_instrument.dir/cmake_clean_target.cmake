file(REMOVE_RECURSE
  "libdce_instrument.a"
)
