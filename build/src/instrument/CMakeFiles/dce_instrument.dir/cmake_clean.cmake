file(REMOVE_RECURSE
  "CMakeFiles/dce_instrument.dir/instrument.cpp.o"
  "CMakeFiles/dce_instrument.dir/instrument.cpp.o.d"
  "libdce_instrument.a"
  "libdce_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
