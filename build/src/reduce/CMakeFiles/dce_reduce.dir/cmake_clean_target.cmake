file(REMOVE_RECURSE
  "libdce_reduce.a"
)
