# Empty compiler generated dependencies file for dce_reduce.
# This may be replaced when dependencies are built.
