file(REMOVE_RECURSE
  "CMakeFiles/dce_reduce.dir/reducer.cpp.o"
  "CMakeFiles/dce_reduce.dir/reducer.cpp.o.d"
  "libdce_reduce.a"
  "libdce_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
