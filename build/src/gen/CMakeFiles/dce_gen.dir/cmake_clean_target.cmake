file(REMOVE_RECURSE
  "libdce_gen.a"
)
