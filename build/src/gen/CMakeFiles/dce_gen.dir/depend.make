# Empty dependencies file for dce_gen.
# This may be replaced when dependencies are built.
