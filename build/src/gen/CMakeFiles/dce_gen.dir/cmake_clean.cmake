file(REMOVE_RECURSE
  "CMakeFiles/dce_gen.dir/generator.cpp.o"
  "CMakeFiles/dce_gen.dir/generator.cpp.o.d"
  "libdce_gen.a"
  "libdce_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
