# Empty dependencies file for dce_support.
# This may be replaced when dependencies are built.
