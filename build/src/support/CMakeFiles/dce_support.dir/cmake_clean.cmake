file(REMOVE_RECURSE
  "CMakeFiles/dce_support.dir/diagnostics.cpp.o"
  "CMakeFiles/dce_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/dce_support.dir/rng.cpp.o"
  "CMakeFiles/dce_support.dir/rng.cpp.o.d"
  "libdce_support.a"
  "libdce_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
