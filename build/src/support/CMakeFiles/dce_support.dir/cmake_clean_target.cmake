file(REMOVE_RECURSE
  "libdce_support.a"
)
