# Empty compiler generated dependencies file for dce_lang.
# This may be replaced when dependencies are built.
