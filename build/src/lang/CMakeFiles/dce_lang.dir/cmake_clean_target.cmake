file(REMOVE_RECURSE
  "libdce_lang.a"
)
