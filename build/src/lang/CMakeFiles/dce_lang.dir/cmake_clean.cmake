file(REMOVE_RECURSE
  "CMakeFiles/dce_lang.dir/ast.cpp.o"
  "CMakeFiles/dce_lang.dir/ast.cpp.o.d"
  "CMakeFiles/dce_lang.dir/lexer.cpp.o"
  "CMakeFiles/dce_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/dce_lang.dir/parser.cpp.o"
  "CMakeFiles/dce_lang.dir/parser.cpp.o.d"
  "CMakeFiles/dce_lang.dir/printer.cpp.o"
  "CMakeFiles/dce_lang.dir/printer.cpp.o.d"
  "CMakeFiles/dce_lang.dir/sema.cpp.o"
  "CMakeFiles/dce_lang.dir/sema.cpp.o.d"
  "CMakeFiles/dce_lang.dir/type.cpp.o"
  "CMakeFiles/dce_lang.dir/type.cpp.o.d"
  "libdce_lang.a"
  "libdce_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
