# Empty dependencies file for dce_opt.
# This may be replaced when dependencies are built.
