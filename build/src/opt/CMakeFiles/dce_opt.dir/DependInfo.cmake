
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/alias.cpp" "src/opt/CMakeFiles/dce_opt.dir/alias.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/alias.cpp.o.d"
  "/root/repo/src/opt/dce.cpp" "src/opt/CMakeFiles/dce_opt.dir/dce.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/dce.cpp.o.d"
  "/root/repo/src/opt/dse.cpp" "src/opt/CMakeFiles/dce_opt.dir/dse.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/dse.cpp.o.d"
  "/root/repo/src/opt/earlycse.cpp" "src/opt/CMakeFiles/dce_opt.dir/earlycse.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/earlycse.cpp.o.d"
  "/root/repo/src/opt/globaldce.cpp" "src/opt/CMakeFiles/dce_opt.dir/globaldce.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/globaldce.cpp.o.d"
  "/root/repo/src/opt/globalopt.cpp" "src/opt/CMakeFiles/dce_opt.dir/globalopt.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/globalopt.cpp.o.d"
  "/root/repo/src/opt/inline.cpp" "src/opt/CMakeFiles/dce_opt.dir/inline.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/inline.cpp.o.d"
  "/root/repo/src/opt/instcombine.cpp" "src/opt/CMakeFiles/dce_opt.dir/instcombine.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/instcombine.cpp.o.d"
  "/root/repo/src/opt/jump_threading.cpp" "src/opt/CMakeFiles/dce_opt.dir/jump_threading.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/jump_threading.cpp.o.d"
  "/root/repo/src/opt/loop_store_rewrite.cpp" "src/opt/CMakeFiles/dce_opt.dir/loop_store_rewrite.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/loop_store_rewrite.cpp.o.d"
  "/root/repo/src/opt/loop_unroll.cpp" "src/opt/CMakeFiles/dce_opt.dir/loop_unroll.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/loop_unroll.cpp.o.d"
  "/root/repo/src/opt/loop_unswitch.cpp" "src/opt/CMakeFiles/dce_opt.dir/loop_unswitch.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/loop_unswitch.cpp.o.d"
  "/root/repo/src/opt/mem2reg.cpp" "src/opt/CMakeFiles/dce_opt.dir/mem2reg.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/mem2reg.cpp.o.d"
  "/root/repo/src/opt/pass.cpp" "src/opt/CMakeFiles/dce_opt.dir/pass.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/pass.cpp.o.d"
  "/root/repo/src/opt/sccp.cpp" "src/opt/CMakeFiles/dce_opt.dir/sccp.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/sccp.cpp.o.d"
  "/root/repo/src/opt/simplify_cfg.cpp" "src/opt/CMakeFiles/dce_opt.dir/simplify_cfg.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/simplify_cfg.cpp.o.d"
  "/root/repo/src/opt/vrp.cpp" "src/opt/CMakeFiles/dce_opt.dir/vrp.cpp.o" "gcc" "src/opt/CMakeFiles/dce_opt.dir/vrp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/dce_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dce_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
