file(REMOVE_RECURSE
  "libdce_opt.a"
)
