# Empty compiler generated dependencies file for dce_interp.
# This may be replaced when dependencies are built.
