file(REMOVE_RECURSE
  "libdce_interp.a"
)
