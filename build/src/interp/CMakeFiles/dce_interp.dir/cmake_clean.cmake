file(REMOVE_RECURSE
  "CMakeFiles/dce_interp.dir/interpreter.cpp.o"
  "CMakeFiles/dce_interp.dir/interpreter.cpp.o.d"
  "libdce_interp.a"
  "libdce_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
