file(REMOVE_RECURSE
  "libdce_bisect.a"
)
