# Empty compiler generated dependencies file for dce_bisect.
# This may be replaced when dependencies are built.
