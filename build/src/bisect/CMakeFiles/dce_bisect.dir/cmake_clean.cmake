file(REMOVE_RECURSE
  "CMakeFiles/dce_bisect.dir/bisect.cpp.o"
  "CMakeFiles/dce_bisect.dir/bisect.cpp.o.d"
  "libdce_bisect.a"
  "libdce_bisect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_bisect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
