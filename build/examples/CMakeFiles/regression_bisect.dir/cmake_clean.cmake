file(REMOVE_RECURSE
  "CMakeFiles/regression_bisect.dir/regression_bisect.cpp.o"
  "CMakeFiles/regression_bisect.dir/regression_bisect.cpp.o.d"
  "regression_bisect"
  "regression_bisect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_bisect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
