# Empty dependencies file for regression_bisect.
# This may be replaced when dependencies are built.
