file(REMOVE_RECURSE
  "CMakeFiles/find_missed_optimizations.dir/find_missed_optimizations.cpp.o"
  "CMakeFiles/find_missed_optimizations.dir/find_missed_optimizations.cpp.o.d"
  "find_missed_optimizations"
  "find_missed_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_missed_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
