# Empty dependencies file for find_missed_optimizations.
# This may be replaced when dependencies are built.
