
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bisect/CMakeFiles/dce_bisect.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/dce_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/dce_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/dce_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dce_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/dce_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/dce_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dce_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dce_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dce_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
