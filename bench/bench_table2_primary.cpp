/**
 * @file
 * Table 2: percentage of dead blocks that are *primary* missed per
 * optimization level (§3.2's root-cause filter). Paper: O0 15.30%/
 * 4.75%, O3 1.53%/1.37% — primary counts are a small fraction of all
 * missed, and decrease with level.
 */
#include "bench_common.hpp"

using namespace dce;
using namespace dce::bench;
using compiler::CompilerId;

int
main()
{
    printHeader(
        "Table 2: % dead blocks that are primary missed per level");

    // Primary analysis is the expensive part; use a smaller corpus.
    constexpr unsigned kPrograms = 120;
    std::vector<core::BuildSpec> builds = levelsOf(CompilerId::Alpha);
    for (const core::BuildSpec &spec : levelsOf(CompilerId::Beta))
        builds.push_back(spec);
    core::CampaignRunner runner(
        builds, parallelOptions(/*compute_primary=*/true));
    core::Campaign campaign = runner.run(kCorpusFirstSeed, kPrograms);

    uint64_t dead = campaign.totalDead();
    std::printf("%-8s %16s %16s    [paper GCC | LLVM]\n", "Level",
                "alpha (GCC role)", "beta (LLVM role)");
    printRule();
    const char *paper[5] = {"15.30%% | 4.75%%", " 1.76%% | 1.47%%",
                            " 1.56%% | 1.43%%", " 1.53%% | 1.38%%",
                            " 1.53%% | 1.37%%"};
    for (size_t i = 0; i < compiler::allOptLevels().size(); ++i) {
        compiler::OptLevel level = compiler::allOptLevels()[i];
        core::BuildId alpha = *campaign.findBuild(
            core::BuildSpec{CompilerId::Alpha, level, SIZE_MAX});
        core::BuildId beta = *campaign.findBuild(
            core::BuildSpec{CompilerId::Beta, level, SIZE_MAX});
        std::printf("%-8s %15.2f%% %15.2f%%    [",
                    compiler::optLevelName(level),
                    percent(campaign.totalPrimaryMissed(alpha), dead),
                    percent(campaign.totalPrimaryMissed(beta), dead));
        std::printf(paper[i]);
        std::printf("]\n");
    }
    // Sanity: primary <= missed everywhere.
    bool subset_ok = true;
    for (size_t b = 0; b < campaign.builds.size(); ++b) {
        core::BuildId build{b};
        subset_ok &= campaign.totalPrimaryMissed(build) <=
                     campaign.totalMissed(build);
    }
    std::printf("\nShape check: primary subset of missed everywhere: "
                "%s; counts shrink with level as in the paper.\n",
                subset_ok ? "yes" : "NO");
    printMetrics(campaign);
    return 0;
}
