/**
 * @file
 * Observability-layer benchmarks (google-benchmark): what the §17
 * liveness surface costs. BM_TimeSeriesAppend / BM_TimeSeriesRead
 * price the seqlock ring's two sides; BM_SampleOnce is one full
 * sampler derivation (registry walk + four stage percentiles);
 * BM_PercentileEstimate isolates the bucket-interpolation math;
 * BM_TraceMerge prices folding a fleet's per-process trace files;
 * BM_CampaignObserved mirrors bench_throughput's BM_Campaign with the
 * full liveness stack live — tracer on, 50ms sampler, throughput
 * monitor — so diffing the two measures the observed-campaign
 * overhead directly (budget: within noise).
 */
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include <unistd.h>

#include "core/campaign.hpp"
#include "fleet/fleet.hpp"
#include "fleet/trace_merge.hpp"
#include "report/anomaly.hpp"
#include "support/timeseries.hpp"
#include "support/trace.hpp"

using namespace dce;

namespace {

std::vector<core::BuildSpec>
campaignBuilds()
{
    return {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3, SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3, SIZE_MAX},
    };
}

support::TimeSample
syntheticSample(uint64_t i)
{
    support::TimeSample sample;
    sample.wallMs = i;
    sample.seeds = i * 3;
    sample.findings = i / 7;
    sample.seedsPerSec = 120.0;
    sample.cacheHitRate = 0.4;
    sample.stageP99Us = {40.0, 900.0, 10000.0, 2500.0};
    sample.serveP99Us = 300.0;
    return sample;
}

/** A registry shaped like a mid-campaign one: the real counter names
 * plus populated stage histograms. */
void
fillRegistry(support::MetricsRegistry &registry)
{
    registry.counter("campaign.seeds").add(10000);
    registry.counter("campaign.progress", "findings").add(42);
    registry.counter("campaign.cache_hits").add(7000);
    registry.counter("campaign.cache_misses").add(3000);
    for (const char *stage : support::kTimeSeriesStages) {
        support::Histogram &h =
            registry.histogram("campaign.stage_us", stage);
        for (uint64_t i = 1; i <= 4096; ++i)
            h.observe(i * 11 % 20000);
    }
    support::Histogram &serve = registry.histogram("serve.request_us");
    for (uint64_t i = 1; i <= 1024; ++i)
        serve.observe(i * 13 % 4000);
}

} // namespace

static void
BM_TimeSeriesAppend(benchmark::State &state)
{
    support::TimeSeries series(512);
    uint64_t i = 0;
    for (auto _ : state)
        series.append(syntheticSample(++i));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesAppend)->Unit(benchmark::kNanosecond);

static void
BM_TimeSeriesRead(benchmark::State &state)
{
    // Read a full ring from the oldest retained sample — the
    // worst-case /timeseries request (a dashboard's first fetch).
    support::TimeSeries series(512);
    for (uint64_t i = 0; i < 1024; ++i)
        series.append(syntheticSample(i));
    for (auto _ : state)
        benchmark::DoNotOptimize(series.read(0));
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_TimeSeriesRead)->Unit(benchmark::kMicrosecond);

static void
BM_PercentileEstimate(benchmark::State &state)
{
    support::Histogram histogram;
    for (uint64_t i = 1; i <= 100000; ++i)
        histogram.observe(i * 7 % 50000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(histogram.percentileEstimate(0.5));
        benchmark::DoNotOptimize(histogram.percentileEstimate(0.9));
        benchmark::DoNotOptimize(histogram.percentileEstimate(0.99));
    }
    state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_PercentileEstimate)->Unit(benchmark::kNanosecond);

static void
BM_SampleOnce(benchmark::State &state)
{
    // One sampler tick against a realistic registry: snapshot walk,
    // cache-rate division, five p99 interpolations, ring publish.
    support::MetricsRegistry registry;
    fillRegistry(registry);
    support::TimeSeries series(512);
    support::TimeSeriesSamplerOptions options;
    options.registry = &registry;
    support::TimeSeriesSampler sampler(series, options);
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sampleOnce());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleOnce)->Unit(benchmark::kMicrosecond);

static void
BM_TraceMerge(benchmark::State &state)
{
    // Fold a fleet's worth of per-process traces (state.range(0)
    // files x 512 spans) into one timeline — the post-run coordinator
    // step and the `longrun trace-merge` path.
    const uint64_t files = uint64_t(state.range(0));
    std::string dir = "/tmp/dce_bench_observe_" +
                      std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(fleet::tracesDir(dir));
    for (uint64_t f = 0; f < files; ++f) {
        support::Tracer tracer;
        tracer.setEnabled(true);
        tracer.setProcess(1000 + f,
                          "fleet-worker worker." + std::to_string(f));
        for (int i = 0; i < 512; ++i) {
            support::TraceSpan span("lease", "fleet", tracer);
            span.setArg("lease", uint64_t(i));
        }
        fleet::writeFileAtomic(fleet::workerTracePath(
                                   dir, "worker." + std::to_string(f)),
                               tracer.toJson());
    }
    std::string out = fleet::mergedTracePath(dir);
    for (auto _ : state) {
        auto merged = fleet::mergeTraces(dir, out);
        if (!merged) {
            state.SkipWithError("merge failed");
            break;
        }
        benchmark::DoNotOptimize(merged->events);
    }
    state.SetItemsProcessed(state.iterations() * files * 512);
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_TraceMerge)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

static void
BM_CampaignObserved(benchmark::State &state)
{
    // BM_Campaign (bench_throughput) with the full liveness stack on:
    // global tracer enabled, a 50ms sampler publishing to the ring,
    // and a throughput monitor fed every sample. Diff against
    // BM_Campaign at the same thread count for the observability
    // overhead.
    constexpr unsigned kSeeds = 48;
    core::CampaignOptions options;
    options.threads = static_cast<unsigned>(state.range(0));
    core::CampaignRunner runner(campaignBuilds(), options);

    support::Tracer &tracer = support::Tracer::global();
    tracer.setEnabled(true);

    report::ThroughputMonitorOptions monitor_options;
    monitor_options.registry = &support::MetricsRegistry::global();
    report::ThroughputMonitor monitor(monitor_options);

    support::TimeSeries series(512);
    support::TimeSeriesSamplerOptions sampler_options;
    sampler_options.intervalMs = 50;
    sampler_options.registry = &support::MetricsRegistry::global();
    sampler_options.onSample =
        [&monitor](const support::TimeSample &sample) {
            monitor.observe(sample.seeds);
        };
    support::TimeSeriesSampler sampler(series, sampler_options);
    sampler.start();

    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(5000, kSeeds));

    sampler.stop();
    tracer.setEnabled(false);
    state.counters["spans"] = double(tracer.events().size());
    tracer.clear();
    state.SetItemsProcessed(state.iterations() * kSeeds);
}
BENCHMARK(BM_CampaignObserved)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
