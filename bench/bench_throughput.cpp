/**
 * @file
 * Throughput microbenchmarks (google-benchmark): the per-program cost
 * of each pipeline stage. The paper reports the whole 10,000-file
 * campaign taking "around an hour" on a Threadripper 3990X; these
 * numbers show our stand-in testbed is in a comparable
 * programs-per-second regime.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "core/campaign.hpp"
#include "corpus/checkpoint.hpp"
#include "corpus/serialize.hpp"
#include "corpus/store.hpp"
#include "gen/generator.hpp"
#include "instrument/instrument.hpp"
#include "interp/interpreter.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

using namespace dce;

static void
BM_Generate(benchmark::State &state)
{
    uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(gen::generateProgram(seed++));
}
BENCHMARK(BM_Generate);

static void
BM_ParseAndSema(benchmark::State &state)
{
    std::string source = gen::generateSource(7);
    for (auto _ : state) {
        DiagnosticEngine diags;
        benchmark::DoNotOptimize(lang::parseAndCheck(source, diags));
    }
}
BENCHMARK(BM_ParseAndSema);

static void
BM_Instrument(benchmark::State &state)
{
    auto unit = gen::generateProgram(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(instrument::instrumentUnit(*unit));
}
BENCHMARK(BM_Instrument);

static void
BM_GroundTruthExecution(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::groundTruth(prog));
}
BENCHMARK(BM_GroundTruthExecution);

static void
BM_CompileO0(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    compiler::Compiler comp(compiler::CompilerId::Beta,
                            compiler::OptLevel::O0);
    for (auto _ : state)
        benchmark::DoNotOptimize(comp.compile(*prog.unit));
}
BENCHMARK(BM_CompileO0);

static void
BM_CompileO3Alpha(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    compiler::Compiler comp(compiler::CompilerId::Alpha,
                            compiler::OptLevel::O3);
    for (auto _ : state)
        benchmark::DoNotOptimize(comp.compile(*prog.unit));
}
BENCHMARK(BM_CompileO3Alpha);

static void
BM_CompileO3Beta(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    compiler::Compiler comp(compiler::CompilerId::Beta,
                            compiler::OptLevel::O3);
    for (auto _ : state)
        benchmark::DoNotOptimize(comp.compile(*prog.unit));
}
BENCHMARK(BM_CompileO3Beta);

static void
BM_EmitAssembly(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    compiler::Compiler comp(compiler::CompilerId::Beta,
                            compiler::OptLevel::O3);
    for (auto _ : state) {
        compiler::Compilation result = comp.compile(*prog.unit);
        benchmark::DoNotOptimize(result.assembly());
    }
}
BENCHMARK(BM_EmitAssembly);

static void
BM_CompileLoweredO3Beta(benchmark::State &state)
{
    // The campaign engine's cache path: clone a shared O0 lowering and
    // optimize the clone, instead of re-lowering from the AST.
    instrument::Instrumented prog = core::makeProgram(7);
    auto lowered = ir::lowerToIr(*prog.unit);
    compiler::Compiler comp(compiler::CompilerId::Beta,
                            compiler::OptLevel::O3);
    for (auto _ : state)
        benchmark::DoNotOptimize(comp.compileLowered(*lowered));
}
BENCHMARK(BM_CompileLoweredO3Beta);

static std::vector<core::BuildSpec>
campaignBuilds()
{
    return {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3, SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3, SIZE_MAX},
    };
}

static void
BM_FullPipelinePerProgram(benchmark::State &state)
{
    std::vector<core::BuildSpec> builds = campaignBuilds();
    uint64_t seed = 5000;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::runCampaign(seed++, 1, builds));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPipelinePerProgram);

static void
BM_Campaign(benchmark::State &state)
{
    // Whole-campaign throughput at 1/2/4/8 worker threads. Items
    // processed = seeds, so the reported items/s is seeds/s and the
    // thread-scaling curve is read straight off the report.
    constexpr unsigned kSeeds = 48;
    core::CampaignOptions options;
    options.threads = static_cast<unsigned>(state.range(0));
    core::CampaignRunner runner(campaignBuilds(), options);
    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(5000, kSeeds));
    state.SetItemsProcessed(state.iterations() * kSeeds);
}
BENCHMARK(BM_Campaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static corpus::CampaignPlan
benchPlan(unsigned seeds)
{
    corpus::CampaignPlan plan;
    plan.firstSeed = 5000;
    plan.count = seeds;
    plan.chunkSize = 8;
    plan.builds = campaignBuilds();
    plan.computePrimary = false;
    return plan;
}

static void
BM_CheckpointedCampaign(benchmark::State &state)
{
    // The same campaign through the corpus layer: every chunk is
    // serialized into the store and the checkpoint cadence is the
    // argument (1 = after every chunk, 6 = only the final one on this
    // 48-seed / 8-seed-chunk plan). Comparing against BM_Campaign/1
    // gives the full persistence overhead; comparing cadence 1 vs 6
    // isolates the checkpoint-write cost — the <5% budget.
    constexpr unsigned kSeeds = 48;
    corpus::CampaignPlan plan = benchPlan(kSeeds);
    int iteration = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::string dir = "/tmp/dce_bench_store_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(iteration++);
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
        {
            support::MetricsRegistry registry;
            corpus::OpenOptions open_options;
            open_options.metrics = &registry;
            auto store =
                corpus::CorpusStore::open(dir, nullptr, open_options);
            corpus::CheckpointRunOptions options;
            options.metrics = &registry;
            options.checkpointEveryChunks =
                static_cast<unsigned>(state.range(0));
            benchmark::DoNotOptimize(
                corpus::runCheckpointed(*store, plan, options));
        }
        state.PauseTiming();
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * kSeeds);
}
BENCHMARK(BM_CheckpointedCampaign)
    ->Arg(1)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_CorpusDedupHits(benchmark::State &state)
{
    // A duplicate-heavy corpus: 6 distinct programs, each sighted 16
    // times. The content-addressed store writes each payload once;
    // the dedup_hits counter absorbs the rest.
    std::vector<std::string> texts;
    std::vector<std::string> hashes;
    for (uint64_t seed = 0; seed < 6; ++seed) {
        texts.push_back(corpus::canonicalProgramText(seed, {}));
        hashes.push_back(corpus::programHash(texts.back()));
    }
    uint64_t hits = 0;
    int iteration = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::string dir = "/tmp/dce_bench_dedup_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(iteration++);
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
        {
            support::MetricsRegistry registry;
            corpus::OpenOptions open_options;
            open_options.metrics = &registry;
            auto store =
                corpus::CorpusStore::open(dir, nullptr, open_options);
            for (int round = 0; round < 16; ++round)
                for (size_t i = 0; i < texts.size(); ++i)
                    store->putProgram(hashes[i], texts[i]);
            hits = registry.counterValue("corpus.dedup_hits");
        }
        state.PauseTiming();
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
    }
    state.counters["dedup_hits"] = double(hits);
    state.SetItemsProcessed(state.iterations() * 16 * texts.size());
}
BENCHMARK(BM_CorpusDedupHits)->Unit(benchmark::kMillisecond);

/**
 * Engine acceptance check, run before the microbenchmarks: the
 * parallel engine must produce bit-identical records to the serial
 * one, and 4 workers must actually buy wall-clock speedup.
 */
static bool
verifyEngine()
{
    constexpr uint64_t kFirstSeed = 5000;
    constexpr unsigned kSeeds = 96;
    std::vector<core::BuildSpec> builds = campaignBuilds();

    core::CampaignOptions serial;
    serial.threads = 1;
    core::Campaign one =
        core::CampaignRunner(builds, serial).run(kFirstSeed, kSeeds);

    core::CampaignOptions parallel = serial;
    parallel.threads = 4;
    core::Campaign four =
        core::CampaignRunner(builds, parallel).run(kFirstSeed, kSeeds);

    bool identical = one.programs == four.programs;
    double speedup = four.metrics.wallSeconds > 0
                         ? one.metrics.wallSeconds /
                               four.metrics.wallSeconds
                         : 0;
    std::printf("[engine] threads=1 vs threads=4 over %u seeds: "
                "records identical: %s; speedup %.2fx "
                "(%.1f -> %.1f seeds/s)\n\n",
                kSeeds, identical ? "yes" : "NO", speedup,
                one.metrics.seedsPerSecond(),
                four.metrics.seedsPerSecond());
    return identical;
}

int
main(int argc, char **argv)
{
    bool engine_ok = verifyEngine();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return engine_ok ? 0 : 1;
}
