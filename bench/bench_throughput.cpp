/**
 * @file
 * Throughput microbenchmarks (google-benchmark): the per-program cost
 * of each pipeline stage. The paper reports the whole 10,000-file
 * campaign taking "around an hour" on a Threadripper 3990X; these
 * numbers show our stand-in testbed is in a comparable
 * programs-per-second regime.
 */
#include <benchmark/benchmark.h>

#include "backend/codegen.hpp"
#include "core/campaign.hpp"
#include "gen/generator.hpp"
#include "instrument/instrument.hpp"
#include "interp/interpreter.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

using namespace dce;

static void
BM_Generate(benchmark::State &state)
{
    uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(gen::generateProgram(seed++));
}
BENCHMARK(BM_Generate);

static void
BM_ParseAndSema(benchmark::State &state)
{
    std::string source = gen::generateSource(7);
    for (auto _ : state) {
        DiagnosticEngine diags;
        benchmark::DoNotOptimize(lang::parseAndCheck(source, diags));
    }
}
BENCHMARK(BM_ParseAndSema);

static void
BM_Instrument(benchmark::State &state)
{
    auto unit = gen::generateProgram(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(instrument::instrumentUnit(*unit));
}
BENCHMARK(BM_Instrument);

static void
BM_GroundTruthExecution(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::groundTruth(prog));
}
BENCHMARK(BM_GroundTruthExecution);

static void
BM_CompileO0(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    compiler::Compiler comp(compiler::CompilerId::Beta,
                            compiler::OptLevel::O0);
    for (auto _ : state)
        benchmark::DoNotOptimize(comp.compile(*prog.unit));
}
BENCHMARK(BM_CompileO0);

static void
BM_CompileO3Alpha(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    compiler::Compiler comp(compiler::CompilerId::Alpha,
                            compiler::OptLevel::O3);
    for (auto _ : state)
        benchmark::DoNotOptimize(comp.compile(*prog.unit));
}
BENCHMARK(BM_CompileO3Alpha);

static void
BM_CompileO3Beta(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    compiler::Compiler comp(compiler::CompilerId::Beta,
                            compiler::OptLevel::O3);
    for (auto _ : state)
        benchmark::DoNotOptimize(comp.compile(*prog.unit));
}
BENCHMARK(BM_CompileO3Beta);

static void
BM_EmitAssembly(benchmark::State &state)
{
    instrument::Instrumented prog = core::makeProgram(7);
    compiler::Compiler comp(compiler::CompilerId::Beta,
                            compiler::OptLevel::O3);
    for (auto _ : state) {
        auto module = comp.compile(*prog.unit);
        benchmark::DoNotOptimize(backend::emitAssembly(*module));
    }
}
BENCHMARK(BM_EmitAssembly);

static void
BM_FullPipelinePerProgram(benchmark::State &state)
{
    std::vector<core::BuildSpec> builds = {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3, SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3, SIZE_MAX},
    };
    uint64_t seed = 5000;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::runCampaign(seed++, 1, builds));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPipelinePerProgram);

BENCHMARK_MAIN();
