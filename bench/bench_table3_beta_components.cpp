/**
 * @file
 * Table 3: components affected by commits that introduce missed DCE
 * opportunities in beta (the LLVM role). Paper: 54 primary -O3
 * markers, 38 regressions, 21 unique commits across 11 components and
 * 23 files (alias analysis, value propagation, peephole, loops, pass
 * management, ...).
 */
#include "bench_components.hpp"

int
main()
{
    dce::bench::runComponentTable(
        dce::compiler::CompilerId::Beta,
        "Shape check vs paper Table 3: several unique offending "
        "commits spanning multiple components (paper: 21 commits, 11 "
        "components, 23 files for LLVM).");
    return 0;
}
