/**
 * @file
 * Table 4: components affected by commits that introduce missed DCE
 * opportunities in alpha (the GCC role). Paper: 308 primary -O3
 * markers, 44 regressions, 23 unique commits across 16 components and
 * 34 files.
 */
#include "bench_components.hpp"

int
main()
{
    dce::bench::runComponentTable(
        dce::compiler::CompilerId::Alpha,
        "Shape check vs paper Table 4: several unique offending "
        "commits spanning multiple components (paper: 23 commits, 16 "
        "components, 34 files for GCC).");
    return 0;
}
