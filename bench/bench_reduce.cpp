/**
 * @file
 * Reduction throughput: the PR 3 reducer (ddmin-with-complement +
 * memoization + single-parse predicate, optionally speculative) versus
 * the seed reducer (restart-on-any-improvement sweep, no memo, a
 * predicate that re-parses and re-lowers per differential build).
 *
 * The comparison metric is *differential pipeline compiles per
 * finding* — every optimize+emit pipeline run by a predicate bumps a
 * counter in an isolated MetricsRegistry — so the result is exact and
 * machine-independent: it holds on a 1-CPU container just as on a
 * workstation. Acceptance target (ISSUE 3): the new path runs >= 2x
 * fewer pipeline compiles per finding.
 */
#include <chrono>

#include "bench_common.hpp"
#include "core/triage.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "reduce/reducer.hpp"

using namespace dce;
using namespace dce::bench;
using compiler::CompilerId;
using compiler::OptLevel;

namespace {

/** The seed ddmin loop, verbatim: chunk sizes halve from n/2 down to
 * 1, and the whole sweep restarts whenever *any* chunk removal
 * succeeded — the restart bug PR 3 fixes. Kept here as the baseline. */
reduce::ReduceResult
legacyReduceSource(const std::string &source,
                   const reduce::Predicate &interesting,
                   unsigned max_tests)
{
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < source.size()) {
        size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        lines.push_back(source.substr(pos, eol - pos));
        pos = eol + 1;
    }

    reduce::ReduceResult result;
    result.source = source;
    result.linesBefore = static_cast<unsigned>(lines.size());
    std::vector<bool> keep(lines.size(), true);
    auto countKept = [&] {
        size_t count = 0;
        for (bool flag : keep)
            count += flag ? 1 : 0;
        return count;
    };
    auto joined = [&] {
        std::string out;
        for (size_t i = 0; i < lines.size(); ++i) {
            if (keep[i]) {
                out += lines[i];
                out += "\n";
            }
        }
        return out;
    };

    ++result.testsRun;
    if (!interesting(source)) {
        result.linesAfter = result.linesBefore;
        return result;
    }
    bool improved = true;
    while (improved && result.testsRun < max_tests) {
        improved = false;
        for (size_t chunk = std::max<size_t>(countKept() / 2, 1);
             chunk >= 1 && result.testsRun < max_tests; chunk /= 2) {
            for (size_t start = 0;
                 start < lines.size() && result.testsRun < max_tests;) {
                std::vector<size_t> selected;
                size_t cursor = start;
                while (cursor < lines.size() &&
                       selected.size() < chunk) {
                    if (keep[cursor])
                        selected.push_back(cursor);
                    ++cursor;
                }
                if (selected.empty())
                    break;
                for (size_t index : selected)
                    keep[index] = false;
                std::string candidate = joined();
                ++result.testsRun;
                if (interesting(candidate)) {
                    improved = true;
                    result.source = std::move(candidate);
                } else {
                    for (size_t index : selected)
                        keep[index] = true;
                }
                start = cursor;
            }
            if (chunk == 1)
                break;
        }
    }
    result.linesAfter = static_cast<unsigned>(countKept());
    return result;
}

/** The seed interestingness predicate, verbatim in shape: re-parse,
 * re-lower + execute, then one full from-AST compile per differential
 * build. Pipeline compiles land in @p compiles. */
bool
legacyIsInteresting(const std::string &source, unsigned marker,
                    const core::BuildSpec &missed_by,
                    const core::BuildSpec &reference,
                    support::Counter &compiles)
{
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(source, diags);
    if (!unit)
        return false;
    std::string name = instrument::markerName(marker);
    if (!unit->findFunction(name))
        return false;
    auto module = ir::lowerToIr(*unit);
    interp::ExecResult run = interp::execute(*module);
    if (!run.ok() || run.calledExternals.count(name))
        return false;
    compiles.add();
    std::set<unsigned> missed_alive =
        core::aliveMarkers(*unit, missed_by.make());
    if (!missed_alive.count(marker))
        return false;
    compiles.add();
    std::set<unsigned> reference_alive =
        core::aliveMarkers(*unit, reference.make());
    return reference_alive.count(marker) == 0;
}

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    printHeader("Reduction throughput: legacy sweep vs speculative "
                "ddmin + memo (pipeline compiles per finding)");

    core::BuildSpec alpha{CompilerId::Alpha, OptLevel::O3, SIZE_MAX};
    core::BuildSpec beta{CompilerId::Beta, OptLevel::O3, SIZE_MAX};
    core::CampaignOptions options = parallelOptions(true);
    core::CampaignRunner runner({alpha, beta}, options);
    core::Campaign campaign = runner.run(kCorpusFirstSeed, 120);

    std::vector<core::Finding> findings =
        core::collectFindings(campaign, alpha, beta, 6);
    for (core::Finding &finding :
         core::collectFindings(campaign, beta, alpha, 4)) {
        findings.push_back(finding);
    }
    if (findings.empty()) {
        std::printf("no findings in this corpus; nothing to reduce\n");
        return 0;
    }
    constexpr unsigned kMaxTests = 800;
    std::printf("reducing %zu findings (budget %u tests each)\n\n",
                findings.size(), kMaxTests);
    std::printf("%-8s %-7s | %13s %9s %7s | %13s %9s %9s %7s\n", "seed",
                "marker", "legacy:comp", "tests", "lines",
                "new:comp", "tests", "memohit", "lines");
    printRule();

    uint64_t legacy_compiles_total = 0, new_compiles_total = 0;
    double legacy_wall = 0, new_wall = 0;
    bool identical_lines = true;
    for (const core::Finding &finding : findings) {
        instrument::Instrumented prog =
            core::makeProgram(finding.seed);
        std::string source = lang::printUnit(*prog.unit);

        // Legacy: seed algorithm + seed predicate, isolated registry.
        support::MetricsRegistry legacy_registry;
        support::Counter &legacy_compiles =
            legacy_registry.counter("reduce.compiles");
        auto t0 = std::chrono::steady_clock::now();
        reduce::ReduceResult legacy = legacyReduceSource(
            source,
            [&](const std::string &candidate) {
                return legacyIsInteresting(candidate, finding.marker,
                                           finding.missedBy,
                                           finding.reference,
                                           legacy_compiles);
            },
            kMaxTests);
        legacy_wall += seconds(t0);

        // New: ParallelReducer + single-parse InterestingnessTest.
        // One worker, so the comparison is algorithmic, not core count.
        support::MetricsRegistry new_registry;
        core::InterestingnessTest interesting(
            finding.marker, finding.missedBy, finding.reference,
            &new_registry);
        reduce::ReduceOptions reduce_options;
        reduce_options.maxTests = kMaxTests;
        reduce_options.workers = 1;
        reduce_options.metrics = &new_registry;
        t0 = std::chrono::steady_clock::now();
        reduce::ReduceResult fresh =
            reduce::ParallelReducer(reduce_options)
                .reduce(source, interesting);
        new_wall += seconds(t0);

        uint64_t new_compiles =
            new_registry.counterValue("reduce.compiles");
        legacy_compiles_total += legacy_compiles.value();
        new_compiles_total += new_compiles;
        identical_lines &= fresh.linesAfter <= legacy.linesAfter;
        std::printf(
            "%-8llu %-7u | %13llu %9u %7u | %13llu %9llu %9llu %7u\n",
            static_cast<unsigned long long>(finding.seed),
            finding.marker,
            static_cast<unsigned long long>(legacy_compiles.value()),
            legacy.testsRun, legacy.linesAfter,
            static_cast<unsigned long long>(new_compiles),
            static_cast<unsigned long long>(
                new_registry.counterValue("reduce.tests")),
            static_cast<unsigned long long>(
                new_registry.counterValue("reduce.cache_hits")),
            fresh.linesAfter);
    }
    printRule();

    double ratio =
        new_compiles_total
            ? static_cast<double>(legacy_compiles_total) /
                  static_cast<double>(new_compiles_total)
            : 0.0;
    std::printf("totals: legacy %llu pipeline compiles (%.1fs), new "
                "%llu (%.1fs) -> %.2fx fewer compiles per finding\n",
                static_cast<unsigned long long>(legacy_compiles_total),
                legacy_wall,
                static_cast<unsigned long long>(new_compiles_total),
                new_wall, ratio);
    std::printf("acceptance (>= 2x fewer pipeline compiles): %s\n",
                ratio >= 2.0 ? "MET" : "MISSED");
    std::printf("reduced size never worse than legacy: %s\n",
                identical_lines ? "yes" : "NO");

    // Wall-clock scaling of speculation (meaningful on multicore
    // hosts only; the compile counts above are the portable metric).
    std::printf("\nspeculative reduction of the first finding:\n");
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        const core::Finding &finding = findings.front();
        instrument::Instrumented prog =
            core::makeProgram(finding.seed);
        std::string source = lang::printUnit(*prog.unit);
        support::MetricsRegistry registry;
        core::InterestingnessTest interesting(
            finding.marker, finding.missedBy, finding.reference,
            &registry);
        reduce::ReduceOptions reduce_options;
        reduce_options.maxTests = kMaxTests;
        reduce_options.workers = workers;
        reduce_options.metrics = &registry;
        auto t0 = std::chrono::steady_clock::now();
        reduce::ReduceResult result =
            reduce::ParallelReducer(reduce_options)
                .reduce(source, interesting);
        std::printf("  %u worker(s): %.2fs, %u canonical tests, %u "
                    "lines (bit-identical source required)\n",
                    workers, seconds(t0), result.testsRun,
                    result.linesAfter);
    }
    return 0;
}
