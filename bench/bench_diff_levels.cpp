/**
 * @file
 * §4.2 "Between optimization levels": same compiler, -O1/-O2 versus
 * -O3. Paper: GCC misses 308 markers at -O3 that -O1/-O2 eliminate
 * (24 primary); LLVM misses 456 (54 primary). These are the
 * regressions that feed the bisection benches.
 */
#include "bench_common.hpp"

using namespace dce;
using namespace dce::bench;
using compiler::CompilerId;
using compiler::OptLevel;

int
main()
{
    printHeader("Differential testing across optimization levels "
                "(O1/O2 vs O3)");

    for (CompilerId id : {CompilerId::Alpha, CompilerId::Beta}) {
        core::CampaignRunner runner({{id, OptLevel::O1, SIZE_MAX},
                                     {id, OptLevel::O2, SIZE_MAX},
                                     {id, OptLevel::O3, SIZE_MAX}},
                                    parallelOptions(true));
        core::Campaign campaign =
            runner.run(kCorpusFirstSeed, kCorpusSize);
        core::BuildId o1{0}, o2{1}, o3{2}; // runner's build order

        uint64_t count = 0, primary = 0;
        for (const core::ProgramRecord &record : campaign.programs) {
            if (!record.valid)
                continue;
            // Missed at O3 but eliminated at O1 *or* O2.
            const auto &missed_o3 = record.missedFor(o3);
            const auto &missed_o1 = record.missedFor(o1);
            const auto &missed_o2 = record.missedFor(o2);
            for (unsigned m : missed_o3) {
                if (!missed_o1.count(m) || !missed_o2.count(m)) {
                    ++count;
                    if (record.primaryFor(o3).count(m))
                        ++primary;
                }
            }
        }
        std::printf("%-6s misses %llu dead markers at -O3 that -O1/-O2 "
                    "eliminate (%llu primary)   [paper: GCC 308/24, "
                    "LLVM 456/54]\n",
                    compiler::compilerName(id),
                    static_cast<unsigned long long>(count),
                    static_cast<unsigned long long>(primary));
    }
    printRule();
    std::printf("Shape check: lower levels sometimes beat -O3 for both "
                "compilers — the regression signal the paper bisects.\n");
    return 0;
}
