/**
 * @file
 * §4.2 "Between optimization levels": same compiler, -O1/-O2 versus
 * -O3. Paper: GCC misses 308 markers at -O3 that -O1/-O2 eliminate
 * (24 primary); LLVM misses 456 (54 primary). These are the
 * regressions that feed the bisection benches.
 */
#include "bench_common.hpp"

using namespace dce;
using namespace dce::bench;
using compiler::CompilerId;
using compiler::OptLevel;

int
main()
{
    printHeader("Differential testing across optimization levels "
                "(O1/O2 vs O3)");

    for (CompilerId id : {CompilerId::Alpha, CompilerId::Beta}) {
        core::BuildSpec o1{id, OptLevel::O1, SIZE_MAX};
        core::BuildSpec o2{id, OptLevel::O2, SIZE_MAX};
        core::BuildSpec o3{id, OptLevel::O3, SIZE_MAX};
        core::CampaignOptions options;
        options.computePrimary = true;
        core::Campaign campaign = core::runCampaign(
            kCorpusFirstSeed, kCorpusSize, {o1, o2, o3}, options);

        uint64_t count = 0, primary = 0;
        for (const core::ProgramRecord &record : campaign.programs) {
            if (!record.valid)
                continue;
            // Missed at O3 but eliminated at O1 *or* O2.
            const auto &missed_o3 = record.missed.at(o3.name());
            const auto &missed_o1 = record.missed.at(o1.name());
            const auto &missed_o2 = record.missed.at(o2.name());
            for (unsigned m : missed_o3) {
                if (!missed_o1.count(m) || !missed_o2.count(m)) {
                    ++count;
                    if (record.primary.at(o3.name()).count(m))
                        ++primary;
                }
            }
        }
        std::printf("%-6s misses %llu dead markers at -O3 that -O1/-O2 "
                    "eliminate (%llu primary)   [paper: GCC 308/24, "
                    "LLVM 456/54]\n",
                    compiler::compilerName(id),
                    static_cast<unsigned long long>(count),
                    static_cast<unsigned long long>(primary));
    }
    printRule();
    std::printf("Shape check: lower levels sometimes beat -O3 for both "
                "compilers — the regression signal the paper bisects.\n");
    return 0;
}
