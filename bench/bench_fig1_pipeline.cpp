/**
 * @file
 * Figure 1: end-to-end walkthrough of the approach on one program —
 * (1) insert markers, (2) compile with two compilers, (3) compare the
 * surviving marker sets, (4) keep the primary ones. Prints every
 * stage's artifact so the pipeline is inspectable.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "ir/lowering.hpp"
#include "lang/printer.hpp"

using namespace dce;
using namespace dce::bench;
using compiler::CompilerId;
using compiler::OptLevel;

int
main()
{
    printHeader("Figure 1 walkthrough: the four steps of the approach");

    // Listing 1a's shape (printf replaced by an opaque extern).
    const char *original = R"(void print(int v);
char a;
char b[2];
static int c = 0;
int main() {
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    int f = 0;
    int g = 0;
    for (; f < 10; f++) {
      g += f;
    }
    print(g);
  }
  if (c) {
    b[0] = 1;
    b[1] = 1;
  }
  c = 0;
  return 0;
}
)";

    std::printf("\n-- step 0: original test case --\n%s", original);

    instrument::Instrumented prog =
        instrument::instrumentSource(original);
    std::printf("\n-- step 1: instrumented (%u markers) --\n%s",
                prog.markerCount(),
                lang::printUnit(*prog.unit).c_str());

    core::GroundTruth truth = core::groundTruth(prog);
    std::printf("-- ground truth (execution): alive = {");
    for (unsigned m : truth.aliveMarkers)
        std::printf(" DCEMarker%u", m);
    std::printf(" }, dead = {");
    for (unsigned m : truth.deadMarkers)
        std::printf(" DCEMarker%u", m);
    std::printf(" }\n");

    // Lower once and let each build clone the shared module — the
    // campaign engine's lowering cache, at figure scale.
    auto lowered = ir::lowerToIr(*prog.unit);
    compiler::Compiler alpha(CompilerId::Alpha, OptLevel::O3);
    compiler::Compiler beta(CompilerId::Beta, OptLevel::O3);
    std::set<unsigned> alpha_alive = core::aliveMarkers(*lowered, alpha);
    std::set<unsigned> beta_alive = core::aliveMarkers(*lowered, beta);

    auto show = [&](const char *name, const std::set<unsigned> &alive) {
        std::printf("-- step 2+3: %s keeps {", name);
        for (unsigned m : alive)
            std::printf(" DCEMarker%u", m);
        std::printf(" } in its assembly\n");
    };
    show(alpha.describe().c_str(), alpha_alive);
    show(beta.describe().c_str(), beta_alive);

    std::set<unsigned> alpha_missed =
        core::missedMarkers(alpha_alive, truth);
    std::set<unsigned> beta_missed =
        core::missedMarkers(beta_alive, truth);
    std::printf("-- differential: alpha misses %zu dead markers, beta "
                "misses %zu\n",
                alpha_missed.size(), beta_missed.size());

    std::set<unsigned> alpha_primary =
        core::primaryMissedMarkers(prog, alpha_missed, truth);
    std::printf("-- step 4: primary missed for alpha = {");
    for (unsigned m : alpha_primary)
        std::printf(" DCEMarker%u", m);
    std::printf(" }\n");

    std::printf("\nPaper comparison (Listings 1/2): GCC kept DCECheck2 "
                "(the `if (c)` body) and the trailing store; LLVM kept "
                "DCECheck0/1 (the pointer-comparison body). Here alpha "
                "(GCC role) misses the stored-equals-init check and "
                "beta (LLVM role) misses the &a == &b[1] body.\n");
    return 0;
}
