/**
 * @file
 * Shared helpers for the experiment benches. Each bench regenerates
 * one table or figure of the paper's §4 on a seeded corpus and prints
 * the same rows the paper reports. Absolute numbers differ (the
 * substrate is a simulated compiler pair, not GCC/LLVM on a
 * Threadripper); the *shape* — who wins, orderings, magnitudes — is
 * the reproduction target (see EXPERIMENTS.md).
 */
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/triage.hpp"
#include "support/metrics.hpp"

namespace dce::bench {

/** Default corpus: seeds [1000, 1000+kCorpusSize). */
inline constexpr uint64_t kCorpusFirstSeed = 1000;
inline constexpr unsigned kCorpusSize = 300;

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
printRule()
{
    std::printf("--------------------------------------------------------"
                "----\n");
}

inline double
percent(uint64_t part, uint64_t whole)
{
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole);
}

/** The five build specs of one compiler across all levels (at head). */
inline std::vector<core::BuildSpec>
levelsOf(compiler::CompilerId id)
{
    std::vector<core::BuildSpec> builds;
    for (compiler::OptLevel level : compiler::allOptLevels())
        builds.push_back({id, level, SIZE_MAX});
    return builds;
}

/** Engine options shared by the benches: every hardware thread.
 * Thread count never changes the records (DESIGN.md §8), so the
 * tables are identical to a serial run. */
inline core::CampaignOptions
parallelOptions(bool compute_primary = false)
{
    core::CampaignOptions options;
    options.computePrimary = compute_primary;
    options.threads = 0; // one worker per hardware thread
    return options;
}

/**
 * Engine report printed under each table: the campaign's timing line
 * plus the metrics-registry dump (cache accounting, invalid-seed
 * reasons, stage histograms, per-pass deltas). Registry values are
 * cumulative for the process — benches that run several campaigns see
 * running totals unless they reset() between tables.
 */
inline void
printMetrics(const core::Campaign &campaign,
             const support::MetricsRegistry &registry =
                 support::MetricsRegistry::global())
{
    uint64_t hits = registry.counterValue("campaign.cache_hits");
    uint64_t misses = registry.counterValue("campaign.cache_misses");
    uint64_t probes = hits + misses;
    std::printf(
        "[engine] %.1f seeds/s over %llu seeds, wall %.2fs, "
        "lowering-cache hit rate %.1f%%, invalid programs %llu\n",
        campaign.metrics.seedsPerSecond(),
        static_cast<unsigned long long>(campaign.metrics.seedsDone),
        campaign.metrics.wallSeconds,
        probes ? 100.0 * double(hits) / double(probes) : 0.0,
        static_cast<unsigned long long>(
            registry.counterTotal("campaign.invalid")));
    std::printf("[metrics]\n%s", registry.dumpText().c_str());
}

/** Killer-pass histogram for @p build, from a collectRemarks
 * campaign's attributed remarks (empty prints a hint instead). */
inline void
printKillerHistogram(const core::Campaign &campaign,
                     core::BuildId build)
{
    core::KillerHistogram histogram =
        core::killerHistogram(campaign, build);
    if (histogram.empty()) {
        std::printf("[killer-pass] no remark data (campaign ran "
                    "without collectRemarks)\n");
        return;
    }
    std::printf("[killer-pass] %s: %llu eliminations\n",
                campaign.builds[build.index].name().c_str(),
                static_cast<unsigned long long>(
                    histogram.totalEliminated));
    for (const auto &[pass, count] : histogram.byPass) {
        std::printf("  %-18s %8llu  (%.1f%%)\n", pass.c_str(),
                    static_cast<unsigned long long>(count),
                    percent(count, histogram.totalEliminated));
    }
}

} // namespace dce::bench
