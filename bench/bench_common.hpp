/**
 * @file
 * Shared helpers for the experiment benches. Each bench regenerates
 * one table or figure of the paper's §4 on a seeded corpus and prints
 * the same rows the paper reports. Absolute numbers differ (the
 * substrate is a simulated compiler pair, not GCC/LLVM on a
 * Threadripper); the *shape* — who wins, orderings, magnitudes — is
 * the reproduction target (see EXPERIMENTS.md).
 */
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace dce::bench {

/** Default corpus: seeds [1000, 1000+kCorpusSize). */
inline constexpr uint64_t kCorpusFirstSeed = 1000;
inline constexpr unsigned kCorpusSize = 300;

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
printRule()
{
    std::printf("--------------------------------------------------------"
                "----\n");
}

inline double
percent(uint64_t part, uint64_t whole)
{
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole);
}

/** The five build specs of one compiler across all levels (at head). */
inline std::vector<core::BuildSpec>
levelsOf(compiler::CompilerId id)
{
    std::vector<core::BuildSpec> builds;
    for (compiler::OptLevel level : compiler::allOptLevels())
        builds.push_back({id, level, SIZE_MAX});
    return builds;
}

/** Engine options shared by the benches: every hardware thread.
 * Thread count never changes the records (DESIGN.md §8), so the
 * tables are identical to a serial run. */
inline core::CampaignOptions
parallelOptions(bool compute_primary = false)
{
    core::CampaignOptions options;
    options.computePrimary = compute_primary;
    options.threads = 0; // one worker per hardware thread
    return options;
}

/** One-line engine report printed under each table. */
inline void
printMetrics(const core::CampaignMetrics &metrics)
{
    std::printf(
        "[engine] %.1f seeds/s over %llu seeds, wall %.2fs, "
        "lowering-cache hit rate %.1f%%, invalid programs %llu\n",
        metrics.seedsPerSecond(),
        static_cast<unsigned long long>(metrics.seedsDone),
        metrics.wallSeconds, 100.0 * metrics.cacheHitRate(),
        static_cast<unsigned long long>(metrics.invalidPrograms));
    std::printf(
        "[stages] generate %.2fs, ground truth %.2fs, compile %.2fs, "
        "primary %.2fs (summed across workers)\n",
        metrics.stages.generate, metrics.stages.groundTruth,
        metrics.stages.compile, metrics.stages.primary);
}

} // namespace dce::bench
