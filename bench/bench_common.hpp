/**
 * @file
 * Shared helpers for the experiment benches. Each bench regenerates
 * one table or figure of the paper's §4 on a seeded corpus and prints
 * the same rows the paper reports. Absolute numbers differ (the
 * substrate is a simulated compiler pair, not GCC/LLVM on a
 * Threadripper); the *shape* — who wins, orderings, magnitudes — is
 * the reproduction target (see EXPERIMENTS.md).
 */
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace dce::bench {

/** Default corpus: seeds [1000, 1000+kCorpusSize). */
inline constexpr uint64_t kCorpusFirstSeed = 1000;
inline constexpr unsigned kCorpusSize = 300;

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
printRule()
{
    std::printf("--------------------------------------------------------"
                "----\n");
}

inline double
percent(uint64_t part, uint64_t whole)
{
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole);
}

/** The five build specs of one compiler across all levels (at head). */
inline std::vector<core::BuildSpec>
levelsOf(compiler::CompilerId id)
{
    std::vector<core::BuildSpec> builds;
    for (compiler::OptLevel level : compiler::allOptLevels())
        builds.push_back({id, level, SIZE_MAX});
    return builds;
}

} // namespace dce::bench
