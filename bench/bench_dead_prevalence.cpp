/**
 * @file
 * §4.1 headline numbers: dead-block prevalence in the generated corpus
 * and the fraction of dead markers each compiler eliminates at -O3.
 * Paper reference: 89.59% of 3,109,167 instrumented blocks dead;
 * GCC -O3 eliminates 94.40% and LLVM -O3 95.69% of the dead markers.
 */
#include "bench_common.hpp"

using namespace dce;
using namespace dce::bench;
using compiler::CompilerId;
using compiler::OptLevel;

int
main()
{
    printHeader("Dead block prevalence and -O3 elimination (paper "
                "section 4.1)");

    std::vector<core::BuildSpec> builds = {
        {CompilerId::Alpha, OptLevel::O3, SIZE_MAX},
        {CompilerId::Beta, OptLevel::O3, SIZE_MAX},
    };
    core::CampaignRunner runner(builds, parallelOptions());
    core::Campaign campaign = runner.run(kCorpusFirstSeed, kCorpusSize);

    uint64_t total = campaign.totalMarkers();
    uint64_t dead = campaign.totalDead();
    uint64_t alive = campaign.totalAlive();
    std::printf("corpus: %u programs, %llu instrumented blocks\n",
                kCorpusSize, static_cast<unsigned long long>(total));
    std::printf("dead blocks : %llu (%.2f%%)   [paper: 89.59%%]\n",
                static_cast<unsigned long long>(dead),
                percent(dead, total));
    std::printf("alive blocks: %llu (%.2f%%)   [paper: 10.41%%]\n",
                static_cast<unsigned long long>(alive),
                percent(alive, total));
    printRule();
    for (size_t i = 0; i < campaign.builds.size(); ++i) {
        core::BuildId build{i};
        uint64_t missed = campaign.totalMissed(build);
        std::printf(
            "%-22s eliminates %6.2f%% of dead blocks  "
            "[paper: GCC 94.40%%, LLVM 95.69%%]\n",
            campaign.builds[i].name().c_str(),
            percent(dead - missed, dead));
    }
    std::printf("\nShape check: both compilers eliminate the large "
                "majority; beta (LLVM role) >= alpha (GCC role): %s\n",
                campaign.totalMissed(core::BuildId{1}) <=
                        campaign.totalMissed(core::BuildId{0})
                    ? "yes"
                    : "NO");
    printMetrics(campaign);
    return 0;
}
