/**
 * @file
 * §4.2 "Between GCC and LLVM": differential testing of the two
 * compilers at -O3. Paper: GCC eliminates 3,781 markers LLVM misses;
 * LLVM eliminates 39,723 markers GCC misses; 396 and 4,749 of those
 * are primary. Shape target: both directions non-empty, with the
 * beta(LLVM)-wins direction several times larger.
 */
#include "bench_common.hpp"

using namespace dce;
using namespace dce::bench;
using compiler::CompilerId;
using compiler::OptLevel;

int
main()
{
    printHeader("Differential testing: alpha-O3 vs beta-O3 "
                "(paper section 4.2)");

    core::BuildSpec alpha_spec{CompilerId::Alpha, OptLevel::O3,
                               SIZE_MAX};
    core::BuildSpec beta_spec{CompilerId::Beta, OptLevel::O3, SIZE_MAX};
    core::CampaignRunner runner({alpha_spec, beta_spec},
                                parallelOptions(true));
    core::Campaign campaign = runner.run(kCorpusFirstSeed, kCorpusSize);
    core::BuildId alpha{0}, beta{1}; // runner's build order

    // Missed by X, eliminated by Y.
    uint64_t alpha_misses = campaign.totalMissedVersus(alpha, beta);
    uint64_t beta_misses = campaign.totalMissedVersus(beta, alpha);

    // Primary subsets of the differentials.
    uint64_t alpha_primary = 0, beta_primary = 0;
    for (const core::ProgramRecord &record : campaign.programs) {
        if (!record.valid)
            continue;
        alpha_primary += core::setMinus(record.primaryFor(alpha),
                                        record.missedFor(beta))
                             .size();
        beta_primary += core::setMinus(record.primaryFor(beta),
                                       record.missedFor(alpha))
                            .size();
    }

    std::printf("markers missed by alpha but eliminated by beta: %llu "
                "(primary %llu)   [paper: GCC misses 39,723 / 4,749 "
                "primary]\n",
                static_cast<unsigned long long>(alpha_misses),
                static_cast<unsigned long long>(alpha_primary));
    std::printf("markers missed by beta but eliminated by alpha: %llu "
                "(primary %llu)   [paper: LLVM misses 3,781 / 396 "
                "primary]\n",
                static_cast<unsigned long long>(beta_misses),
                static_cast<unsigned long long>(beta_primary));
    printRule();
    std::printf("Shape check: both directions non-empty (each compiler "
                "wins somewhere): %s; alpha (GCC role) misses more "
                "overall: %s\n",
                alpha_misses > 0 && beta_misses > 0 ? "yes" : "NO",
                alpha_misses > beta_misses ? "yes" : "NO");
    printMetrics(campaign);
    return 0;
}
