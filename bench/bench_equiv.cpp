/**
 * @file
 * Metamorphic-testing benchmarks (google-benchmark): what the equiv
 * oracle (DESIGN.md §16) costs on top of a plain campaign.
 * BM_CheckpointedCampaignBaseline reuses the established 48-seed plan;
 * BM_EquivAnalysis/{1,2,4} runs the full post-campaign analysis over
 * that store with K variants per program — diffing the two gives the
 * oracle's overhead ratio at each K. BM_DeriveVariant isolates the
 * transform engine (clone + edit + reparse per variant) and
 * BM_EquivPairOracle the per-pair probe behind the positive control
 * (instrument, ground truth, and one custom-config compile per side).
 */
#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include <unistd.h>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "equiv/engine.hpp"
#include "equiv/transforms.hpp"
#include "gen/generator.hpp"
#include "lang/printer.hpp"
#include "opt/pass.hpp"

using namespace dce;

namespace {

corpus::CampaignPlan
benchPlan()
{
    // Mirrors BM_CheckpointedCampaign in bench_throughput: same seed
    // window, chunking, and builds, so the equiv overhead diffs
    // cleanly against the established campaign baselines.
    corpus::CampaignPlan plan;
    plan.firstSeed = 5000;
    plan.count = 48;
    plan.chunkSize = 8;
    plan.builds = {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3, SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3, SIZE_MAX},
    };
    plan.computePrimary = false;
    return plan;
}

std::string
scratchDir(const std::string &tag, int iteration)
{
    return "/tmp/dce_bench_equiv_" + tag + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(iteration);
}

/** One campaign store shared by every BM_EquivAnalysis iteration —
 * the analysis only reads it, so building it once keeps the timed
 * region pure oracle work. */
corpus::CorpusStore &
sharedStore()
{
    static std::string dir = scratchDir("shared", 0);
    static std::unique_ptr<corpus::CorpusStore> store = [] {
        std::filesystem::remove_all(dir);
        auto opened = corpus::CorpusStore::open(dir);
        corpus::CheckpointRunOptions options;
        options.checkpointEveryChunks = 1;
        corpus::runCheckpointed(*opened, benchPlan(), options);
        return opened;
    }();
    return *store;
}

const char kPairBase[] = "int g = 1;\n"
                         "int main(void) {\n"
                         "  int t;\n"
                         "  if (g) { t = 1; } else { t = 4; }\n"
                         "  if (0 == 3) { return 5; }\n"
                         "  return 0;\n"
                         "}\n";

const char kPairVariant[] = "int g = 1;\n"
                            "int main(void) {\n"
                            "  int t;\n"
                            "  if (g) { t = 1; } else { t = 4; }\n"
                            "  if (t == 3) { return 5; }\n"
                            "  return 0;\n"
                            "}\n";

} // namespace

static void
BM_CheckpointedCampaignBaseline(benchmark::State &state)
{
    // The campaign the oracle rides on: its cost is the denominator of
    // the equiv overhead ratio.
    int iteration = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::string dir = scratchDir("single", iteration++);
        std::filesystem::remove_all(dir);
        {
            auto store = corpus::CorpusStore::open(dir);
            corpus::CheckpointRunOptions options;
            options.checkpointEveryChunks = 1;
            state.ResumeTiming();
            benchmark::DoNotOptimize(
                corpus::runCheckpointed(*store, benchPlan(), options));
            state.PauseTiming();
        }
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * benchPlan().count);
}
BENCHMARK(BM_CheckpointedCampaignBaseline)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_EquivAnalysis(benchmark::State &state)
{
    corpus::CorpusStore &store = sharedStore();
    const unsigned k = static_cast<unsigned>(state.range(0));
    uint64_t variants = 0;
    for (auto _ : state) {
        support::MetricsRegistry registry;
        equiv::EquivOptions options;
        options.variantsPerProgram = k;
        options.maxChainLength = 3;
        options.seed = 2026;
        options.metrics = &registry;
        auto summary = equiv::runEquivAnalysis(store, options);
        benchmark::DoNotOptimize(summary);
        variants += summary ? summary->variants + summary->rejected()
                            : 0;
    }
    // Items = variants derived (equivalent + rejected): the unit the
    // oracle pays for — derive, execute, and compile on every build.
    state.SetItemsProcessed(static_cast<int64_t>(variants));
}
BENCHMARK(BM_EquivAnalysis)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_DeriveVariant(benchmark::State &state)
{
    // The transform engine alone: clone + edits + reparse per variant,
    // no interpreter or compiler in the loop.
    std::unique_ptr<lang::TranslationUnit> base =
        gen::generateProgram(5001);
    uint64_t seed = 1;
    for (auto _ : state) {
        std::vector<equiv::TransformKind> chain;
        auto variant = equiv::deriveVariant(*base, seed++, 3, &chain);
        benchmark::DoNotOptimize(variant);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeriveVariant)->Unit(benchmark::kMicrosecond);

static void
BM_EquivPairOracle(benchmark::State &state)
{
    // The positive-control probe: both sides instrumented, ground-
    // truthed, and compiled under an explicit pass configuration.
    opt::PassConfig config;
    config.jumpThreading = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            equiv::checkEquivPair(kPairBase, kPairVariant, config,
                                  compiler::OptLevel::O2));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EquivPairOracle)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
