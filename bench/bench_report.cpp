/**
 * @file
 * Telemetry overhead microbenchmarks (google-benchmark): the cost of
 * the report layer's hot paths — event emission into the log, the
 * deterministic JSONL serialization, Prometheus exposition, a metrics
 * snapshot render, and a full campaign run with the event sink
 * attached versus without. The last pair is the budget that matters:
 * the event log is per-chunk/per-finding, so a campaign with events
 * on must sit within noise of one with events off.
 */
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include <unistd.h>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "report/event_log.hpp"
#include "report/snapshot.hpp"
#include "support/metrics.hpp"

using namespace dce;

static void
BM_EventEmit(benchmark::State &state)
{
    support::MetricsRegistry registry;
    report::EventLog log(&registry);
    uint64_t chunk = 0;
    for (auto _ : state) {
        support::Event event(
            "chunk_committed",
            {support::kPhaseChunk, chunk++,
             support::kChunkCommitMinor});
        event.num("chunk", chunk)
            .num("slots", 5)
            .num("valid", 5)
            .str("builds", "alpha-O3,beta-O3");
        log.emit(std::move(event));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventEmit);

static void
BM_EventLogSerialize(benchmark::State &state)
{
    // Serialize a log the size of a full longrun campaign (~hundreds
    // of events): sort + JSONL render.
    support::MetricsRegistry registry;
    report::EventLog log(&registry);
    for (uint64_t chunk = 120; chunk-- > 0;) {
        support::Event event(
            "chunk_committed",
            {support::kPhaseChunk, chunk,
             support::kChunkCommitMinor});
        event.num("chunk", chunk).num("slots", 5).num("findings", 1);
        log.emit(std::move(event));
        support::Event find("finding_discovered",
                            {support::kPhaseChunk, chunk, 2});
        find.num("seed", chunk * 977)
            .str("fingerprint", "prog:deadbeef|markers:3|by:a|ref:b");
        log.emit(std::move(find));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(log.toJsonl());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventLogSerialize);

static support::MetricsRegistry &
populatedRegistry()
{
    static support::MetricsRegistry registry;
    static const bool initialized = [] {
        for (int i = 0; i < 24; ++i) {
            registry.counter("campaign.stage", "s" + std::to_string(i))
                .add(i * 7 + 1);
            registry
                .histogram("campaign.stage_us", "s" + std::to_string(i))
                .observe(uint64_t(1) << (i % 20));
        }
        return true;
    }();
    (void)initialized;
    return registry;
}

static void
BM_PrometheusExpose(benchmark::State &state)
{
    support::MetricsRegistry &registry = populatedRegistry();
    for (auto _ : state)
        benchmark::DoNotOptimize(registry.expose());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrometheusExpose);

static void
BM_SnapshotRender(benchmark::State &state)
{
    report::SnapshotWriter writer(
        {.path = "", .registry = &populatedRegistry()});
    for (auto _ : state)
        benchmark::DoNotOptimize(writer.renderSnapshot());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotRender);

static corpus::CampaignPlan
benchPlan()
{
    corpus::CampaignPlan plan;
    plan.firstSeed = 5000;
    plan.count = 24;
    plan.chunkSize = 4;
    plan.builds = {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3,
         SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3,
         SIZE_MAX},
    };
    plan.computePrimary = true;
    plan.missedByBuild = 0;
    plan.referenceBuild = 1;
    return plan;
}

static void
BM_CheckpointedCampaignEvents(benchmark::State &state)
{
    // arg 0: events off; arg 1: events on. The pair bounds the event
    // log's overhead on a real checkpointed campaign.
    bool with_events = state.range(0) != 0;
    corpus::CampaignPlan plan = benchPlan();
    int iteration = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::string dir = "/tmp/dce_bench_report_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(iteration++);
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
        {
            support::MetricsRegistry registry;
            report::EventLog log(&registry);
            auto store = corpus::CorpusStore::open(dir);
            corpus::CheckpointRunOptions options;
            options.metrics = &registry;
            options.events = with_events ? &log : nullptr;
            benchmark::DoNotOptimize(
                corpus::runCheckpointed(*store, plan, options));
        }
        state.PauseTiming();
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * benchPlan().count);
}
BENCHMARK(BM_CheckpointedCampaignEvents)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
