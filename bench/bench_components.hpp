/**
 * @file
 * Shared implementation for Tables 3 and 4: collect -O3 level-
 * regressions from a corpus, bisect each one over the compiler's
 * commit history, and categorize the offending commits by component
 * and touched files.
 */
#pragma once

#include <map>
#include <set>

#include "bench_common.hpp"
#include "bisect/bisect.hpp"

namespace dce::bench {

inline void
runComponentTable(compiler::CompilerId id, const char *paper_note)
{
    using compiler::OptLevel;

    printHeader(std::string("Commits introducing missed DCE "
                            "opportunities in ") +
                compiler::compilerName(id) + " (O3 regressions, "
                "bisected)");

    core::CampaignOptions options = parallelOptions(true);
    options.collectRemarks = true; // attribute kills for the histogram
    core::CampaignRunner runner({{id, OptLevel::O1, SIZE_MAX},
                                 {id, OptLevel::O2, SIZE_MAX},
                                 {id, OptLevel::O3, SIZE_MAX}},
                                options);
    core::Campaign campaign = runner.run(kCorpusFirstSeed, kCorpusSize);
    core::BuildId o1{0}, o2{1}, o3{2}; // runner's build order

    // Collect primary O3 regressions: missed at O3, eliminated at a
    // lower level; bisect each against commit 0.
    const compiler::CompilerSpec &spec = compiler::spec(id);
    std::map<std::string, const compiler::Commit *> offenders;
    std::map<std::string, unsigned> cases_per_commit;
    std::map<bisect::BisectStatus, unsigned> aborted;
    unsigned bisected = 0, regressions = 0;
    constexpr unsigned kMaxBisections = 60;

    for (const core::ProgramRecord &record : campaign.programs) {
        if (!record.valid || bisected >= kMaxBisections)
            continue;
        const auto &primary_o3 = record.primaryFor(o3);
        const auto &missed_o1 = record.missedFor(o1);
        const auto &missed_o2 = record.missedFor(o2);
        for (unsigned marker : primary_o3) {
            if (missed_o1.count(marker) && missed_o2.count(marker))
                continue; // not a level regression
            ++regressions;
            if (bisected >= kMaxBisections)
                break;
            instrument::Instrumented prog =
                core::makeProgram(record.seed);
            bisect::BisectResult result = bisect::bisectRegression(
                id, OptLevel::O3, *prog.unit, marker, 0,
                spec.headIndex());
            ++bisected;
            if (result.status == bisect::BisectStatus::Found) {
                offenders[result.commit->hash] = result.commit;
                ++cases_per_commit[result.commit->hash];
            } else {
                ++aborted[result.status];
            }
        }
    }

    // Aggregate per component.
    std::map<std::string, std::pair<unsigned, std::set<std::string>>>
        by_component; // component -> (commits, files)
    for (const auto &[hash, commit] : offenders) {
        auto &entry = by_component[commit->component];
        entry.first += 1;
        entry.second.insert(commit->files.begin(),
                            commit->files.end());
    }

    std::printf("primary O3 regressions found: %u; bisected: %u; "
                "unique offending commits: %zu\n",
                regressions, bisected, offenders.size());
    for (const auto &[status, count] : aborted) {
        std::printf("  bisections aborted (%s): %u\n",
                    bisect::bisectStatusName(status), count);
    }
    std::printf("\n");
    std::printf("%-32s %9s %7s\n", "Component", "# Commits", "# Files");
    printRule();
    size_t total_files = 0;
    for (const auto &[component, entry] : by_component) {
        std::printf("%-32s %9u %7zu\n", component.c_str(), entry.first,
                    entry.second.size());
        total_files += entry.second.size();
    }
    printRule();
    std::printf("%-32s %9zu %7zu\n", "total", offenders.size(),
                total_files);
    std::printf("\ncases per offending commit:\n");
    for (const auto &[hash, commit] : offenders) {
        std::printf("  %s  %-30s (%u cases)%s\n", hash.c_str(),
                    commit->component.c_str(), cases_per_commit[hash],
                    commit->knownRegression
                        ? ""
                        : "  [UNEXPECTED: not a known regression]");
    }
    std::printf("\n%s\n", paper_note);
    std::printf("\nWhich pass killed the markers the O3 build *did* "
                "eliminate (remark attribution):\n");
    printKillerHistogram(campaign, o3);
    printMetrics(campaign);
}

} // namespace dce::bench
