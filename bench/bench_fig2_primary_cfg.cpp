/**
 * @file
 * Figure 2 / Listing 5: the primary-vs-secondary missed-block
 * definition on the nested-dead-code CFG, swept across the detection
 * patterns the paper discusses: (a) both blocks missed -> only the
 * outer is primary; (b) outer detected, inner missed -> the inner
 * becomes primary.
 */
#include "bench_common.hpp"

using namespace dce;
using namespace dce::bench;

int
main()
{
    printHeader("Figure 2 / Listing 5: primary missed dead blocks");

    // expr1 always false; expr2 undecidable-but-dead.
    instrument::Instrumented prog = instrument::instrumentSource(R"(
        static int a = 0;
        int x;
        int main() {
            if (a) {
                x = 1;
                if (x == 1) { x = 2; }
            }
            a = 0;
            return 0;
        }
    )");
    core::GroundTruth truth = core::groundTruth(prog);
    std::printf("markers: %u; dead: %zu (both if-bodies are dead)\n",
                prog.markerCount(), truth.deadMarkers.size());

    // Pattern (a): a compiler missing both blocks (alpha's
    // flow-insensitive global analysis misses the outer, hence also
    // the inner).
    compiler::Compiler alpha(compiler::CompilerId::Alpha,
                             compiler::OptLevel::O3);
    std::set<unsigned> missed = core::missedMarkers(
        core::aliveMarkers(*prog.unit, alpha), truth);
    std::set<unsigned> primary =
        core::primaryMissedMarkers(prog, missed, truth);
    std::printf("\n(a) alpha misses %zu blocks; primary = %zu  "
                "[paper: B2 primary, B3 secondary]\n",
                missed.size(), primary.size());

    // Pattern (b): outer detected, inner missed => inner is primary.
    // Simulate with a synthetic missed set containing only the inner
    // marker (the Definition's C(2) = detected case).
    if (missed.size() == 2) {
        unsigned outer = *primary.begin();
        unsigned inner = 0;
        for (unsigned m : missed) {
            if (m != outer)
                inner = m;
        }
        std::set<unsigned> only_inner{inner};
        std::set<unsigned> inner_primary =
            core::primaryMissedMarkers(prog, only_inner, truth);
        std::printf("(b) outer detected, inner missed: primary = { "
                    "DCEMarker%u } (= the inner block)  [paper: B3 "
                    "becomes primary]\n",
                    *inner_primary.begin());
    }

    // A compiler that detects both (beta) reports nothing.
    compiler::Compiler beta(compiler::CompilerId::Beta,
                            compiler::OptLevel::O3);
    std::set<unsigned> beta_missed = core::missedMarkers(
        core::aliveMarkers(*prog.unit, beta), truth);
    std::printf("(c) beta detects both: missed = %zu, nothing to "
                "report\n",
                beta_missed.size());
    return 0;
}
