/**
 * @file
 * Table 5: reported / confirmed / duplicate / fixed counts from the
 * triage pipeline (reduce -> signature -> deduplicate -> check fix
 * commits). Paper: GCC 53 reported / 43 confirmed / 5 duplicate / 12
 * fixed; LLVM 31 / 19 / 0 / 11. Shape target: reported > confirmed >=
 * fixed for both, with duplicates a small fraction.
 */
#include "bench_common.hpp"
#include "core/triage.hpp"

using namespace dce;
using namespace dce::bench;
using compiler::CompilerId;
using compiler::OptLevel;

int
main()
{
    printHeader("Table 5: missed optimizations reported / confirmed / "
                "duplicate / fixed");

    core::BuildSpec alpha{CompilerId::Alpha, OptLevel::O3, SIZE_MAX};
    core::BuildSpec beta{CompilerId::Beta, OptLevel::O3, SIZE_MAX};
    core::BuildSpec alpha_o1{CompilerId::Alpha, OptLevel::O1, SIZE_MAX};
    core::BuildSpec beta_o2{CompilerId::Beta, OptLevel::O2, SIZE_MAX};
    core::CampaignRunner runner({alpha, beta, alpha_o1, beta_o2},
                                parallelOptions(true));
    core::Campaign campaign = runner.run(kCorpusFirstSeed, 150);

    // Findings: compiler-vs-compiler differentials at O3, plus
    // level regressions (the paper reported both kinds).
    std::vector<core::Finding> findings =
        core::collectFindings(campaign, alpha, beta, 10);
    for (core::Finding &finding :
         core::collectFindings(campaign, beta, alpha, 6)) {
        findings.push_back(finding);
    }
    for (core::Finding &finding :
         core::collectFindings(campaign, alpha, alpha_o1, 4)) {
        findings.push_back(finding);
    }
    for (core::Finding &finding :
         core::collectFindings(campaign, beta, beta_o2, 4)) {
        findings.push_back(finding);
    }

    // Batch-reduce every finding concurrently: one triage worker per
    // hardware thread, speculative ddmin inside each reduction. The
    // summary is identical to a serial run (DESIGN.md §10).
    core::TriageOptions triage_options;
    triage_options.threads = 0;
    triage_options.reduceWorkers = 1;
    std::printf("collected %zu findings; reducing and triaging "
                "in parallel...\n\n",
                findings.size());
    core::TriageSummary summary =
        core::triageFindings(findings, triage_options);

    std::printf("%-18s %8s %8s\n", "", "alpha", "beta");
    printRule();
    auto row = [&](const char *label, unsigned a, unsigned b,
                   const char *paper) {
        std::printf("%-18s %8u %8u    [paper GCC/LLVM: %s]\n", label, a,
                    b, paper);
    };
    row("Reported", summary.reported(CompilerId::Alpha),
        summary.reported(CompilerId::Beta), "53 / 31");
    row("Confirmed",
        summary.count(CompilerId::Alpha, &core::Report::confirmed),
        summary.count(CompilerId::Beta, &core::Report::confirmed),
        "43 / 19");
    row("Marked Duplicate",
        summary.count(CompilerId::Alpha, &core::Report::duplicate),
        summary.count(CompilerId::Beta, &core::Report::duplicate),
        "5 / 0");
    row("Fixed", summary.count(CompilerId::Alpha, &core::Report::fixed),
        summary.count(CompilerId::Beta, &core::Report::fixed),
        "12 / 11");

    std::printf("\nsample reduced report (first):\n");
    if (!summary.reports.empty()) {
        const core::Report &report = summary.reports.front();
        std::printf("  signature: %s  (marker DCEMarker%u, seed %llu, "
                    "%u reduction tests)\n",
                    report.signature.c_str(), report.finding.marker,
                    static_cast<unsigned long long>(
                        report.finding.seed),
                    report.reductionTests);
        std::printf("----8<----\n%s----8<----\n",
                    report.reducedSource.c_str());
    }

    const support::MetricsRegistry &registry =
        support::MetricsRegistry::global();
    uint64_t predicate_runs = registry.counterValue("reduce.tests");
    uint64_t memo_hits = registry.counterValue("reduce.cache_hits");
    std::printf("\n[reduce] %llu predicate runs, %llu memo hits, "
                "%llu differential pipeline compiles; rejections:",
                static_cast<unsigned long long>(predicate_runs),
                static_cast<unsigned long long>(memo_hits),
                static_cast<unsigned long long>(
                    registry.counterValue("reduce.compiles")));
    for (const auto &[key, value] : registry.counters()) {
        if (key.rfind("reduce.reject", 0) == 0)
            std::printf(" %s=%llu", key.c_str(),
                        static_cast<unsigned long long>(value));
    }
    std::printf("\n");
    printMetrics(campaign);
    return 0;
}
