/**
 * @file
 * Fleet benchmarks (google-benchmark): what the multi-process campaign
 * fleet (DESIGN.md §15) costs and buys. BM_FleetCampaign runs the same
 * 48-seed plan as BM_CheckpointedCampaignBaseline through a
 * FleetCoordinator with {1,2,4} forked workers — diffing the two gives
 * the process-sharding overhead (lease table I/O, per-worker stores,
 * the deterministic merge) against the parallel speedup on multi-core
 * hosts. BM_LeaseCycle isolates the per-lease protocol cost: one
 * claim + complete round-trip through the flocked lease table,
 * i.e. the fixed tax a lease pays before any campaign work happens.
 */
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include <unistd.h>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/fleet.hpp"
#include "fleet/lease.hpp"

using namespace dce;

namespace {

corpus::CampaignPlan
benchPlan()
{
    // Mirrors BM_CheckpointedCampaign in bench_throughput: same seed
    // window, chunking, and builds, so fleet numbers diff cleanly
    // against the established single-process baselines.
    corpus::CampaignPlan plan;
    plan.firstSeed = 5000;
    plan.count = 48;
    plan.chunkSize = 8;
    plan.builds = {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3, SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3, SIZE_MAX},
    };
    plan.computePrimary = false;
    return plan;
}

std::string
scratchDir(const std::string &tag, int iteration)
{
    return "/tmp/dce_bench_fleet_" + tag + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(iteration);
}

} // namespace

static void
BM_CheckpointedCampaignBaseline(benchmark::State &state)
{
    // The single-process shape the fleet must reproduce byte-for-byte:
    // one store, one checkpointed runner. Kept in this binary so one
    // run yields both sides of the fleet-vs-single comparison.
    int iteration = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::string dir = scratchDir("single", iteration++);
        std::filesystem::remove_all(dir);
        {
            auto store = corpus::CorpusStore::open(dir);
            corpus::CheckpointRunOptions options;
            options.checkpointEveryChunks = 1;
            state.ResumeTiming();
            benchmark::DoNotOptimize(
                corpus::runCheckpointed(*store, benchPlan(), options));
            state.PauseTiming();
        }
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * benchPlan().count);
}
BENCHMARK(BM_CheckpointedCampaignBaseline)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_FleetCampaign(benchmark::State &state)
{
    // Full fleet lifecycle per iteration: lease-table init, N forked
    // workers (in-process loop — empty workerExecArgv), supervision,
    // and the deterministic merge. items/s here vs the baseline above
    // is the headline fleet-vs-single seeds/s comparison.
    const unsigned workers = static_cast<unsigned>(state.range(0));
    int iteration = 0;
    uint64_t crashes = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::string dir = scratchDir("fleet" + std::to_string(workers),
                                     iteration++);
        std::filesystem::remove_all(dir);
        {
            fleet::FleetOptions options;
            options.workers = workers;
            options.leaseChunks = 1;
            options.workerCheckpointEveryChunks = 1;
            options.pollMs = 5;
            fleet::FleetCoordinator coordinator(dir, benchPlan(),
                                                options);
            state.ResumeTiming();
            corpus::StoreError error;
            std::optional<fleet::FleetResult> result =
                coordinator.run(&error);
            state.PauseTiming();
            if (!result) {
                state.SkipWithError(("fleet: " + error.message).c_str());
                return;
            }
            crashes += result->workersCrashed;
        }
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * benchPlan().count);
    state.counters["crashes"] = double(crashes);
}
BENCHMARK(BM_FleetCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_LeaseCycle(benchmark::State &state)
{
    // Protocol floor: claim + complete one lease through the flocked
    // table (two locked read-modify-write passes over the lease files,
    // each with a tmp+fsync+rename). This bounds how fine leaseChunks
    // can be cut before coordination dwarfs campaign work.
    std::string dir = scratchDir("lease", 0);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    fleet::LeaseTable table(dir);
    corpus::StoreError error;
    if (!fleet::LeaseTable::init(dir, 1, 1, &error)) {
        state.SkipWithError(("lease init: " + error.message).c_str());
        return;
    }
    for (auto _ : state) {
        std::optional<fleet::Lease> lease =
            table.claim(::getpid(), "bench", 120000, 0, &error);
        if (!lease) {
            state.SkipWithError("claim failed");
            return;
        }
        bool stolen = false;
        if (!table.complete(*lease, &stolen, &error) || stolen) {
            state.SkipWithError("complete failed");
            return;
        }
        // Reset to Available for the next iteration: init() keeps
        // existing files, so drop the done lease and recreate it.
        state.PauseTiming();
        std::filesystem::remove(fleet::leasePath(dir, 0));
        if (!fleet::LeaseTable::init(dir, 1, 1, &error)) {
            state.SkipWithError("re-init failed");
            return;
        }
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations());
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LeaseCycle)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
