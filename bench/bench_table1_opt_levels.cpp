/**
 * @file
 * Table 1: percentage of dead blocks that are *missed* per
 * optimization level. Paper: O0 ~84-85%, O1 ~5-8%, Os/O2/O3 ~4-6%,
 * strictly decreasing with level for both compilers.
 */
#include "bench_common.hpp"

using namespace dce;
using namespace dce::bench;
using compiler::CompilerId;

int
main()
{
    printHeader("Table 1: % dead blocks missed per optimization level");

    std::vector<core::BuildSpec> builds = levelsOf(CompilerId::Alpha);
    for (const core::BuildSpec &spec : levelsOf(CompilerId::Beta))
        builds.push_back(spec);
    core::CampaignRunner runner(builds, parallelOptions());
    core::Campaign campaign = runner.run(kCorpusFirstSeed, kCorpusSize);

    uint64_t dead = campaign.totalDead();
    std::printf("%-8s %16s %16s    [paper GCC | LLVM]\n", "Level",
                "alpha (GCC role)", "beta (LLVM role)");
    printRule();
    const char *paper[5] = {"85.21%% | 83.82%%", " 8.18%% |  5.20%%",
                            " 5.94%% |  4.75%%", " 5.66%% |  4.35%%",
                            " 5.60%% |  4.31%%"};
    for (size_t i = 0; i < compiler::allOptLevels().size(); ++i) {
        compiler::OptLevel level = compiler::allOptLevels()[i];
        core::BuildId alpha = *campaign.findBuild(
            core::BuildSpec{CompilerId::Alpha, level, SIZE_MAX});
        core::BuildId beta = *campaign.findBuild(
            core::BuildSpec{CompilerId::Beta, level, SIZE_MAX});
        std::printf("%-8s %15.2f%% %15.2f%%    [",
                    compiler::optLevelName(level),
                    percent(campaign.totalMissed(alpha), dead),
                    percent(campaign.totalMissed(beta), dead));
        std::printf(paper[i]);
        std::printf("]\n");
    }
    std::printf(
        "\nShape check: O0 dominates and missed%% decreases "
        "O1 > Os > O2, as in the paper. O3 sits slightly above O2 "
        "here because the engineered O3-only regressions (DESIGN.md "
        "section 6) are denser in this corpus than real regressions "
        "were in the paper's Csmith corpus — the O3-vs-O2 gap is "
        "exactly the regression signal bench_diff_levels mines.\n");
    printMetrics(campaign);
    return 0;
}
