/**
 * @file
 * Ops-server benchmarks (google-benchmark): what serving live
 * endpoints costs a running campaign. BM_CampaignServed mirrors
 * bench_throughput's BM_Campaign — same builds, same 48-seed plan,
 * same thread args — but with an OpsServer up and a scraper hammering
 * /metrics + /healthz throughout, so diffing the two benchmarks'
 * seeds/s measures the serving overhead directly (budget: <5%).
 * BM_CheckpointedCampaignServed does the same against the corpus-layer
 * runner with /progress + /report scrapes, the full production shape.
 * BM_OpsScrape isolates the per-request cost of a /metrics render.
 */
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/campaign.hpp"
#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "report/event_log.hpp"
#include "serve/ops_server.hpp"

using namespace dce;

namespace {

std::vector<core::BuildSpec>
campaignBuilds()
{
    return {
        {compiler::CompilerId::Alpha, compiler::OptLevel::O3, SIZE_MAX},
        {compiler::CompilerId::Beta, compiler::OptLevel::O3, SIZE_MAX},
    };
}

/** Minimal loopback GET; returns false on connect/read failure. */
bool
httpGet(uint16_t port, const std::string &target)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return false;
    }
    std::string request =
        "GET " + target + " HTTP/1.1\r\nHost: l\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        ssize_t n = ::send(fd, request.data() + sent,
                           request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += size_t(n);
    }
    char buffer[4096];
    size_t received = 0;
    for (;;) {
        ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
        if (n <= 0)
            break;
        received += size_t(n);
    }
    ::close(fd);
    return received > 0;
}

/** Scrapes @p targets round-robin every @p interval until stopped. */
class Scraper {
  public:
    Scraper(uint16_t port, std::vector<std::string> targets,
            std::chrono::milliseconds interval)
        : thread_([this, port, targets = std::move(targets),
                   interval] {
              size_t next = 0;
              while (!stop_.load(std::memory_order_relaxed)) {
                  if (httpGet(port, targets[next % targets.size()]))
                      scrapes_.fetch_add(1,
                                         std::memory_order_relaxed);
                  ++next;
                  std::this_thread::sleep_for(interval);
              }
          })
    {
    }

    ~Scraper()
    {
        stop_.store(true);
        thread_.join();
    }

    uint64_t scrapes() const { return scrapes_.load(); }

  private:
    std::atomic<bool> stop_{false};
    std::atomic<uint64_t> scrapes_{0};
    std::thread thread_;
};

} // namespace

static void
BM_CampaignServed(benchmark::State &state)
{
    // BM_Campaign (bench_throughput) with a live ops server being
    // scraped: the /metrics renders walk the same global registry the
    // campaign workers increment, so this measures the real
    // instrument-contention cost, not an idle listener.
    constexpr unsigned kSeeds = 48;
    core::CampaignOptions options;
    options.threads = static_cast<unsigned>(state.range(0));
    core::CampaignRunner runner(campaignBuilds(), options);

    serve::OpsServer ops({});
    std::string error;
    if (!ops.start(&error)) {
        state.SkipWithError(("serve: " + error).c_str());
        return;
    }
    // 50ms cadence = 20 scrapes/s, ~300x a production Prometheus
    // default (15s) — aggressive enough to show up if serving ever
    // touched the hot path, cheap enough not to measure raw CPU
    // stealing on small hosts.
    Scraper scraper(ops.port(), {"/metrics", "/healthz"},
                    std::chrono::milliseconds(50));

    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(5000, kSeeds));
    state.SetItemsProcessed(state.iterations() * kSeeds);
    state.counters["scrapes"] = double(scraper.scrapes());
}
BENCHMARK(BM_CampaignServed)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_CheckpointedCampaignServed(benchmark::State &state)
{
    // The production shape: checkpointed runner publishing the status
    // board, server reading /progress and rendering /report from the
    // live store mid-campaign. Compare BM_CheckpointedCampaign/1 in
    // bench_throughput for the serve-free baseline.
    constexpr unsigned kSeeds = 48;
    corpus::CampaignPlan plan;
    plan.firstSeed = 5000;
    plan.count = kSeeds;
    plan.chunkSize = 8;
    plan.builds = campaignBuilds();
    plan.computePrimary = false;

    int iteration = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::string dir = "/tmp/dce_bench_served_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(iteration++);
        std::filesystem::remove_all(dir);
        {
            support::MetricsRegistry registry;
            report::EventLog log(&registry);
            corpus::CampaignStatusBoard board;
            corpus::OpenOptions open_options;
            open_options.metrics = &registry;
            auto store =
                corpus::CorpusStore::open(dir, nullptr, open_options);

            serve::OpsServerOptions serve_options;
            serve_options.metrics = &registry;
            serve_options.store = store.get();
            serve_options.events = &log;
            serve_options.status = &board;
            serve::OpsServer ops(serve_options);
            std::string error;
            if (!ops.start(&error)) {
                state.SkipWithError(("serve: " + error).c_str());
                return;
            }
            Scraper scraper(ops.port(),
                            {"/metrics", "/progress", "/report"},
                            std::chrono::milliseconds(50));

            corpus::CheckpointRunOptions options;
            options.metrics = &registry;
            options.checkpointEveryChunks = 1;
            options.events = &log;
            options.status = &board;
            state.ResumeTiming();
            benchmark::DoNotOptimize(
                corpus::runCheckpointed(*store, plan, options));
            state.PauseTiming();
        }
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * kSeeds);
}
BENCHMARK(BM_CheckpointedCampaignServed)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_OpsScrape(benchmark::State &state)
{
    // Per-request cost of a loopback /metrics scrape against a
    // realistically-sized registry (a few hundred series).
    support::MetricsRegistry registry;
    for (int i = 0; i < 64; ++i) {
        registry.counter("campaign.invalid", "k" + std::to_string(i))
            .add(uint64_t(i));
        registry.histogram("campaign.stage_us", "s" + std::to_string(i))
            .observe(uint64_t(i) * 17 + 1);
    }
    serve::OpsServerOptions options;
    options.metrics = &registry;
    serve::OpsServer ops(options);
    std::string error;
    if (!ops.start(&error)) {
        state.SkipWithError(("serve: " + error).c_str());
        return;
    }
    for (auto _ : state) {
        if (!httpGet(ops.port(), "/metrics")) {
            state.SkipWithError("scrape failed");
            return;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpsScrape)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
