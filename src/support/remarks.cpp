#include "support/remarks.hpp"

namespace dce::support {

const char *
remarkKindName(RemarkKind kind)
{
    switch (kind) {
    case RemarkKind::MarkerEliminated:
        return "marker-eliminated";
    case RemarkKind::MarkerCallRemoved:
        return "marker-call-removed";
    case RemarkKind::MarkerProvedDead:
        return "marker-proved-dead";
    case RemarkKind::Note:
        return "note";
    }
    return "unknown";
}

const Remark *
RemarkCollector::killerOf(unsigned marker) const
{
    for (const Remark &remark : remarks_) {
        if (remark.kind == RemarkKind::MarkerEliminated &&
            remark.marker == marker)
            return &remark;
    }
    return nullptr;
}

std::map<std::string, uint64_t>
RemarkCollector::killerHistogram() const
{
    std::map<std::string, uint64_t> histogram;
    for (const Remark &remark : remarks_) {
        if (remark.kind == RemarkKind::MarkerEliminated)
            ++histogram[remark.pass];
    }
    return histogram;
}

} // namespace dce::support
