#include "support/timeseries.hpp"

#include <bit>
#include <chrono>
#include <cstdio>

namespace dce::support {

namespace {

uint64_t
wallMsNow()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** Decimals are serialized as quoted "%.3f" strings — the repo-wide
 * integer-only-JSON convention (matches /progress). */
void
appendQuotedDouble(std::string &out, double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f", value);
    out += '"';
    out += buffer;
    out += '"';
}

// Ring field layout. seq lives in the slot stamp (stamp = seq + 1).
enum Field : size_t {
    kFieldWallMs = 0,
    kFieldSeeds,
    kFieldFindings,
    kFieldSeedsPerSec,  // double bits
    kFieldCacheHitRate, // double bits
    kFieldStage0,       // 4 consecutive double-bit stage p99s
    kFieldServeP99 = kFieldStage0 + 4,
};

} // namespace

TimeSeries::TimeSeries(size_t capacity)
    : capacity_(capacity ? capacity : 1),
      slots_(std::make_unique<Slot[]>(capacity ? capacity : 1))
{
}

uint64_t
TimeSeries::next() const
{
    return next_.load();
}

void
TimeSeries::append(TimeSample sample)
{
    uint64_t seq = next_.load();
    sample.seq = seq;
    Slot &slot = slots_[seq % capacity_];
    // Per-slot seqlock, all fields atomic (seq_cst): mark in-progress,
    // store, publish. Readers that catch the kWriting stamp — or a
    // stamp from another generation — skip the slot.
    slot.stamp.store(kWriting);
    slot.fields[kFieldWallMs].store(sample.wallMs);
    slot.fields[kFieldSeeds].store(sample.seeds);
    slot.fields[kFieldFindings].store(sample.findings);
    slot.fields[kFieldSeedsPerSec].store(
        std::bit_cast<uint64_t>(sample.seedsPerSec));
    slot.fields[kFieldCacheHitRate].store(
        std::bit_cast<uint64_t>(sample.cacheHitRate));
    for (size_t i = 0; i < sample.stageP99Us.size(); ++i)
        slot.fields[kFieldStage0 + i].store(
            std::bit_cast<uint64_t>(sample.stageP99Us[i]));
    slot.fields[kFieldServeP99].store(
        std::bit_cast<uint64_t>(sample.serveP99Us));
    slot.stamp.store(seq + 1);
    next_.store(seq + 1);
}

std::vector<TimeSample>
TimeSeries::read(uint64_t since) const
{
    uint64_t end = next_.load();
    uint64_t begin = end > capacity_ ? end - capacity_ : 0;
    if (since > begin)
        begin = since;
    std::vector<TimeSample> out;
    if (begin >= end)
        return out;
    out.reserve(static_cast<size_t>(end - begin));
    for (uint64_t seq = begin; seq < end; ++seq) {
        const Slot &slot = slots_[seq % capacity_];
        if (slot.stamp.load() != seq + 1)
            continue; // overwritten or mid-write: skip, don't block
        TimeSample sample;
        sample.seq = seq;
        sample.wallMs = slot.fields[kFieldWallMs].load();
        sample.seeds = slot.fields[kFieldSeeds].load();
        sample.findings = slot.fields[kFieldFindings].load();
        sample.seedsPerSec = std::bit_cast<double>(
            slot.fields[kFieldSeedsPerSec].load());
        sample.cacheHitRate = std::bit_cast<double>(
            slot.fields[kFieldCacheHitRate].load());
        for (size_t i = 0; i < sample.stageP99Us.size(); ++i)
            sample.stageP99Us[i] = std::bit_cast<double>(
                slot.fields[kFieldStage0 + i].load());
        sample.serveP99Us = std::bit_cast<double>(
            slot.fields[kFieldServeP99].load());
        if (slot.stamp.load() != seq + 1)
            continue; // torn by a concurrent overwrite: drop it
        out.push_back(sample);
    }
    return out;
}

std::string
timeSeriesJson(const TimeSeries &series, uint64_t since)
{
    std::vector<TimeSample> points = series.read(since);
    std::string out = "{\"capacity\":";
    out += std::to_string(series.capacity());
    out += ",\"next\":";
    out += std::to_string(series.next());
    out += ",\"points\":[";
    bool first = true;
    for (const TimeSample &point : points) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"seq\":";
        out += std::to_string(point.seq);
        out += ",\"wall_ms\":";
        out += std::to_string(point.wallMs);
        out += ",\"seeds\":";
        out += std::to_string(point.seeds);
        out += ",\"findings\":";
        out += std::to_string(point.findings);
        out += ",\"seeds_per_sec\":";
        appendQuotedDouble(out, point.seedsPerSec);
        out += ",\"cache_hit_rate\":";
        appendQuotedDouble(out, point.cacheHitRate);
        out += ",\"stage_p99_us\":{";
        for (size_t i = 0; i < kTimeSeriesStages.size(); ++i) {
            if (i)
                out += ',';
            out += '"';
            out += kTimeSeriesStages[i];
            out += "\":";
            appendQuotedDouble(out, point.stageP99Us[i]);
        }
        out += "},\"serve_p99_us\":";
        appendQuotedDouble(out, point.serveP99Us);
        out += '}';
    }
    out += "]}";
    return out;
}

TimeSeriesSampler::TimeSeriesSampler(TimeSeries &series,
                                     TimeSeriesSamplerOptions options)
    : series_(series), options_(std::move(options))
{
    if (!options_.registry)
        options_.registry = &MetricsRegistry::global();
    if (!options_.clock)
        options_.clock = wallMsNow;
}

TimeSeriesSampler::~TimeSeriesSampler()
{
    stop();
}

TimeSample
TimeSeriesSampler::sampleOnce()
{
    // Fleet mode folds worker dumps into a scratch registry so the
    // sample covers every process; single-process samples directly.
    MetricsRegistry scratch;
    MetricsRegistry *source = options_.registry;
    if (options_.augment) {
        scratch.merge(*options_.registry);
        options_.augment(scratch);
        source = &scratch;
    }

    TimeSample sample;
    sample.wallMs = options_.clock();
    sample.seeds = source->counterValue("campaign.seeds");
    sample.findings =
        source->counterValue("campaign.progress", "findings");
    uint64_t hits = source->counterValue("campaign.cache_hits");
    uint64_t misses = source->counterValue("campaign.cache_misses");
    if (hits + misses)
        sample.cacheHitRate = static_cast<double>(hits) /
                              static_cast<double>(hits + misses);
    for (const auto &[key, snapshot] : source->histograms()) {
        for (size_t i = 0; i < kTimeSeriesStages.size(); ++i) {
            if (key == MetricsRegistry::keyFor("campaign.stage_us",
                                               kTimeSeriesStages[i]))
                sample.stageP99Us[i] = Histogram::percentileFromBuckets(
                    snapshot.buckets, snapshot.count, 0.99);
        }
        if (key == "serve.request_us")
            sample.serveP99Us = Histogram::percentileFromBuckets(
                snapshot.buckets, snapshot.count, 0.99);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (havePrevious_ && sample.wallMs > lastWallMs_ &&
            sample.seeds >= lastSeeds_) {
            double dt = static_cast<double>(sample.wallMs -
                                            lastWallMs_) /
                        1000.0;
            sample.seedsPerSec =
                static_cast<double>(sample.seeds - lastSeeds_) / dt;
        }
        lastSeeds_ = sample.seeds;
        lastWallMs_ = sample.wallMs;
        havePrevious_ = true;
    }

    series_.append(sample);
    if (options_.onSample)
        options_.onSample(sample);
    return sample;
}

void
TimeSeriesSampler::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (running_)
            return;
        stopRequested_ = false;
        running_ = true;
    }
    sampler_ = std::thread([this] { run(); });
}

void
TimeSeriesSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    wake_.notify_all();
    sampler_.join();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        running_ = false;
    }
    sampleOnce(); // final sample so the series covers shutdown
}

void
TimeSeriesSampler::run()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait_for(
                lock, std::chrono::milliseconds(options_.intervalMs),
                [this] { return stopRequested_; });
            if (stopRequested_)
                return;
        }
        sampleOnce();
    }
}

} // namespace dce::support
