/**
 * @file
 * Marker-name utilities, shared by every layer that needs to recognize
 * `DCEMarkerN` symbols: the instrumenter mints the names, the pass
 * framework's remark census attributes their elimination, the backend
 * scanner and the interpreter classify calls. Pure string helpers with
 * no dependencies, which is why they live in support rather than in
 * instrument (opt must not depend on the front end).
 */
#pragma once

#include <optional>
#include <string>

namespace dce::support {

/** The marker function name prefix; markers are PREFIX + index. */
inline constexpr const char *kMarkerPrefix = "DCEMarker";

/** Name of marker @p index. */
std::string markerName(unsigned index);

/** Parse a marker name back to its index; nullopt if not a marker. */
std::optional<unsigned> markerIndex(const std::string &name);

} // namespace dce::support
