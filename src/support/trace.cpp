#include "support/trace.hpp"

#include <chrono>
#include <fstream>

#include "support/json.hpp"

namespace dce::support {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point
tracerEpoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

/** JSON string escaping for the few fields we serialize — the shared
 * support implementation, so the tracer and the event log agree on
 * control-character and UTF-8 handling. */
void
appendEscaped(std::string &out, const std::string &text)
{
    appendJsonEscaped(out, text);
}

} // namespace

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

uint64_t
Tracer::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - tracerEpoch())
            .count());
}

uint32_t
Tracer::currentThreadId()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
Tracer::setProcess(uint64_t pid, std::string name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pid_ = pid;
    processName_ = std::move(name);
}

uint64_t
Tracer::processId() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pid_;
}

std::string
Tracer::processName() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return processName_;
}

void
Tracer::record(Event event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

std::vector<Tracer::Event>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::string
Tracer::toJson() const
{
    std::vector<Event> snapshot = events();
    uint64_t pid;
    std::string process_name;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pid = pid_;
        process_name = processName_;
    }
    std::string pid_str = std::to_string(pid);
    std::string out;
    out.reserve(64 + snapshot.size() * 96);
    out += "{\"traceEvents\":[";
    // A process_name metadata event so the viewer labels the lane
    // group; tools accept "M" events with ts omitted-or-zero.
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += pid_str;
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    appendEscaped(out, process_name);
    out += "\"}}";
    for (const Event &event : snapshot) {
        out += ",{\"name\":\"";
        appendEscaped(out, event.name);
        out += "\",\"cat\":\"";
        appendEscaped(out, event.category);
        out += "\",\"ph\":\"X\",\"ts\":";
        out += std::to_string(event.startUs);
        out += ",\"dur\":";
        out += std::to_string(event.durationUs);
        out += ",\"pid\":";
        out += pid_str;
        out += ",\"tid\":";
        out += std::to_string(event.tid);
        if (event.arg != Event::kNoArg) {
            out += ",\"args\":{\"";
            appendEscaped(out, event.argName.empty() ? "value"
                                                     : event.argName);
            out += "\":";
            out += std::to_string(event.arg);
            out += "}";
        }
        out += "}";
    }
    out += "]}";
    return out;
}

bool
Tracer::writeJson(const std::string &path) const
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        return false;
    std::string json = toJson();
    file.write(json.data(),
               static_cast<std::streamsize>(json.size()));
    return static_cast<bool>(file);
}

} // namespace dce::support
