/**
 * @file
 * A process-wide counter/histogram registry, replacing the ad-hoc
 * per-campaign metric fields. Instruments are created on demand by
 * name + optional label (`counter("campaign.invalid", "timeout")`)
 * and live for the registry's lifetime, so callers can resolve an
 * instrument once and increment a bare atomic on the hot path.
 *
 * Thread-safety: increments and observations are lock-free relaxed
 * atomics; get-or-create and the dump/reset walks take the registry
 * mutex. Totals are exact (fetch_add), only cross-instrument snapshot
 * consistency is best-effort — fine for throughput metrics.
 *
 * Benches and tests needing isolated totals construct their own
 * registry; production code defaults to MetricsRegistry::global().
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dce::support {

/**
 * Canonical Content-Type for MetricsRegistry::expose() output —
 * Prometheus text exposition format 0.0.4. Anything serving expose()
 * over HTTP (the ops server's /metrics) must use exactly this value;
 * scrapers key their parser off it.
 */
inline constexpr const char *kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/** Monotonic counter. Increment is one relaxed fetch_add. */
class Counter {
public:
    void add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<uint64_t> value_{0};
};

/**
 * Power-of-two-bucketed histogram over non-negative integer samples
 * (microseconds, instruction counts). Bucket i counts samples with
 * bit_width(value) == i; count and sum give exact totals/means.
 */
class Histogram {
public:
    static constexpr size_t kBuckets = 64;

    void observe(uint64_t value)
    {
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        buckets_[bucketOf(value)].fetch_add(
            1, std::memory_order_relaxed);
    }

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    double mean() const
    {
        uint64_t n = count();
        return n ? static_cast<double>(sum()) / static_cast<double>(n)
                 : 0.0;
    }

    uint64_t bucket(size_t index) const
    {
        return buckets_[index].load(std::memory_order_relaxed);
    }

    void reset();

    /** Fold @p other's samples into this histogram (exact: counts,
     * sums, and buckets all add). @p other should be quiescent. */
    void merge(const Histogram &other);

    /**
     * Fold an externally-recorded state (count/sum/per-bucket) into
     * this histogram — the cross-process analog of merge(), for a
     * fleet coordinator folding a worker's serialized registry dump
     * into its own (DESIGN.md §15).
     */
    void absorb(uint64_t count, uint64_t sum,
                const std::array<uint64_t, kBuckets> &buckets);

    static size_t bucketOf(uint64_t value)
    {
        size_t width = 0;
        while (value) {
            ++width;
            value >>= 1;
        }
        // 0 for sample 0, else floor(log2(v)) + 1; values at or above
        // 2^(kBuckets-1) saturate into the top bucket.
        return width < kBuckets ? width : kBuckets - 1;
    }

    /**
     * Quantile estimate (q in [0, 1]) by linear interpolation inside
     * the bit-width bucket holding the rank-q sample: bucket i spans
     * [2^(i-1), 2^i - 1] (bucket 0 is exactly 0), so the estimate is
     * exact at bucket boundaries and within a factor of 2 elsewhere.
     * Returns 0 for an empty histogram.
     */
    double percentileEstimate(double q) const;

    /** percentileEstimate() over an external snapshot — usable on a
     * MetricsRegistry::HistogramSnapshot without re-observing. */
    static double
    percentileFromBuckets(const std::array<uint64_t, kBuckets> &buckets,
                          uint64_t count, double q);

private:
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> buckets_[kBuckets]{};
};

class MetricsRegistry {
public:
    /** Process-wide default registry. */
    static MetricsRegistry &global();

    /**
     * Get-or-create the counter `name{label}` (bare `name` when the
     * label is empty). The reference stays valid for the registry's
     * lifetime — resolve once, increment lock-free.
     */
    Counter &counter(std::string_view name,
                     std::string_view label = {});

    /** Histogram analog of counter(). */
    Histogram &histogram(std::string_view name,
                         std::string_view label = {});

    /** Value of counter `name{label}`; 0 if it was never created. */
    uint64_t counterValue(std::string_view name,
                          std::string_view label = {}) const;

    /** Sum of `name{...}` over every label, the bare key included. */
    uint64_t counterTotal(std::string_view name) const;

    /** All (key, value) counter pairs, sorted by key. */
    std::vector<std::pair<std::string, uint64_t>> counters() const;

    /** Point-in-time copy of one histogram's state. */
    struct HistogramSnapshot {
        uint64_t count = 0;
        uint64_t sum = 0;
        std::array<uint64_t, Histogram::kBuckets> buckets{};
    };

    /** All (key, snapshot) histogram pairs, sorted by key. */
    std::vector<std::pair<std::string, HistogramSnapshot>>
    histograms() const;

    /**
     * Prometheus text exposition of every instrument (DESIGN.md §12).
     * Names are sanitized (`campaign.stage_us` → `campaign_stage_us`),
     * the registry's single label value becomes `label="..."`, and
     * histograms expose cumulative `_bucket{le="2^i-1"}` series (the
     * bit-width buckets' upper bounds) plus `_sum`/`_count`. Series
     * are ordered by (name, label) — insertion order never shows, so
     * two registries with the same totals expose identical text.
     */
    std::string expose() const;

    /**
     * Human-readable dump, sorted by key:
     *   counter campaign.invalid{timeout} 3
     *   histogram campaign.stage_us{compile} count=40 sum=8123 mean=203.1
     */
    std::string dumpText() const;

    /** JSON dump: {"counters":{...},"histograms":{...}}. */
    std::string dumpJson() const;

    /** Zero every instrument (references stay valid). */
    void reset();

    /**
     * Fold every instrument of @p other into this registry, creating
     * missing ones. Used to commit a chunk-local registry into the
     * campaign registry at a checkpoint boundary, so counters only
     * ever reflect fully committed work. @p other must be quiescent
     * and must outlive the call; concurrent merges in opposite
     * directions are not supported.
     */
    void merge(const MetricsRegistry &other);

    /** The registry key for (name, label): name or "name{label}". */
    static std::string keyFor(std::string_view name,
                              std::string_view label);

private:
    mutable std::mutex mutex_;
    // std::map keeps dumps sorted; node stability is irrelevant since
    // instruments are held by unique_ptr anyway.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace dce::support
