/**
 * @file
 * Scoped-span structured tracing — the `-ftime-trace` analog.
 *
 * A Tracer buffers complete ("ph":"X") spans and serializes them as
 * Chrome trace_event JSON, loadable in chrome://tracing or Perfetto
 * (https://ui.perfetto.dev). Spans are created with the RAII TraceSpan
 * guard; each records its wall-clock duration and the worker thread it
 * ran on, so a parallel campaign renders as one lane per worker.
 *
 * Cost model:
 *  - Disabled (the default): TraceSpan's constructor does one relaxed
 *    atomic load, stores nullptr, and returns — no clock read, no
 *    allocation, no lock. Verified by a zero-allocation test.
 *  - Enabled: two steady_clock reads per span plus one short
 *    mutex-guarded append at scope exit.
 *
 * The process-wide instance is Tracer::global(); campaign code traces
 * through it so spans from every layer land in one timeline.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dce::support {

class Tracer {
public:
    /** One complete span ("ph":"X") in trace_event terms. */
    struct Event {
        std::string name;
        std::string category;
        uint64_t startUs = 0; ///< µs since the tracer's epoch
        uint64_t durationUs = 0;
        uint32_t tid = 0;
        /// Optional numeric argument (seed, pass index, ...);
        /// kNoArg when absent.
        uint64_t arg = kNoArg;
        std::string argName;

        static constexpr uint64_t kNoArg = ~uint64_t{0};
    };

    /** Process-wide tracer used by the default TraceSpan constructor. */
    static Tracer &global();

    /** Enable or disable recording. Safe to call from any thread. */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Set the process identity stamped on every serialized event and
     * on the process_name metadata record. Defaults to pid 1 /
     * "dce-campaign" so single-process traces are unchanged; fleet
     * workers set their real pid + worker name so merged traces get
     * one labeled track per process (DESIGN.md §17).
     */
    void setProcess(uint64_t pid, std::string name);

    uint64_t processId() const;
    std::string processName() const;

    /** Append a finished span. Thread-safe. */
    void record(Event event);

    /** Current µs-since-epoch timestamp for span bookkeeping. */
    uint64_t nowUs() const;

    /** Snapshot of the buffered events. Thread-safe. */
    std::vector<Event> events() const;

    /** Drop all buffered events. Thread-safe. */
    void clear();

    /**
     * Serialize buffered events as a Chrome trace JSON object:
     * `{"traceEvents":[...]}`. Thread-safe.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; returns false on I/O failure. */
    bool writeJson(const std::string &path) const;

    /** Stable small id for the calling thread (one timeline lane). */
    static uint32_t currentThreadId();

private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::vector<Event> events_;
    uint64_t pid_ = 1;
    std::string processName_ = "dce-campaign";
};

/**
 * RAII span guard. When the tracer is disabled at construction the
 * guard holds only the two string_views and a null tracer pointer —
 * no clock read, no allocation. Name and category must outlive the
 * span; string literals are the intended usage.
 */
class TraceSpan {
public:
    explicit TraceSpan(std::string_view name,
                       std::string_view category = "task",
                       Tracer &tracer = Tracer::global())
    {
        if (tracer.enabled()) {
            tracer_ = &tracer;
            name_ = name;
            category_ = category;
            startUs_ = tracer.nowUs();
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a numeric argument shown in the trace viewer. */
    void setArg(std::string_view name, uint64_t value)
    {
        argName_ = name;
        arg_ = value;
    }

    bool active() const { return tracer_ != nullptr; }

    ~TraceSpan()
    {
        if (!tracer_)
            return;
        Tracer::Event event;
        event.name.assign(name_.data(), name_.size());
        event.category.assign(category_.data(), category_.size());
        event.startUs = startUs_;
        uint64_t end = tracer_->nowUs();
        event.durationUs = end > startUs_ ? end - startUs_ : 0;
        event.tid = Tracer::currentThreadId();
        event.arg = arg_;
        if (arg_ != Tracer::Event::kNoArg)
            event.argName.assign(argName_.data(), argName_.size());
        tracer_->record(std::move(event));
    }

private:
    Tracer *tracer_ = nullptr;
    std::string_view name_;
    std::string_view category_;
    std::string_view argName_;
    uint64_t startUs_ = 0;
    uint64_t arg_ = Tracer::Event::kNoArg;
};

} // namespace dce::support
