#include "support/diagnostics.hpp"

namespace dce {

namespace {

const char *
severityName(DiagSeverity severity)
{
    switch (severity) {
      case DiagSeverity::Note:
        return "note";
      case DiagSeverity::Warning:
        return "warning";
      case DiagSeverity::Error:
        return "error";
    }
    return "unknown";
}

} // namespace

std::string
Diagnostic::str() const
{
    std::string out = severityName(severity);
    if (loc.isValid()) {
        out += " ";
        out += loc.str();
    }
    out += ": ";
    out += message;
    return out;
}

void
DiagnosticEngine::error(SourceLoc loc, std::string message)
{
    diags_.push_back({DiagSeverity::Error, loc, std::move(message)});
    ++numErrors_;
}

void
DiagnosticEngine::warning(SourceLoc loc, std::string message)
{
    diags_.push_back({DiagSeverity::Warning, loc, std::move(message)});
}

void
DiagnosticEngine::note(SourceLoc loc, std::string message)
{
    diags_.push_back({DiagSeverity::Note, loc, std::move(message)});
}

std::string
DiagnosticEngine::str() const
{
    std::string out;
    for (const Diagnostic &diag : diags_) {
        out += diag.str();
        out += "\n";
    }
    return out;
}

void
DiagnosticEngine::clear()
{
    diags_.clear();
    numErrors_ = 0;
}

} // namespace dce
