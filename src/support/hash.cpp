#include "support/hash.hpp"

#include <array>

namespace dce::support {

uint64_t
fnv1a64(std::string_view data)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char byte : data) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace {

std::string
toHex(uint64_t value, unsigned digits)
{
    static const char *kDigits = "0123456789abcdef";
    std::string out(digits, '0');
    for (unsigned i = 0; i < digits; ++i)
        out[digits - 1 - i] = kDigits[(value >> (4 * i)) & 0xf];
    return out;
}

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? 0xedb88320u : 0);
        table[i] = crc;
    }
    return table;
}

} // namespace

std::string
fnv1a64Hex(std::string_view data)
{
    return toHex(fnv1a64(data), 16);
}

uint32_t
crc32(std::string_view data)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    uint32_t crc = 0xffffffffu;
    for (unsigned char byte : data)
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xff];
    return crc ^ 0xffffffffu;
}

std::string
crc32Hex(std::string_view data)
{
    return toHex(crc32(data), 8);
}

} // namespace dce::support
