#include "support/json.hpp"

namespace dce::support {

void
appendJsonEscaped(std::string &out, std::string_view text)
{
    for (unsigned char ch : text) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        default:
            if (ch < 0x20) {
                static const char kHex[] = "0123456789abcdef";
                out += "\\u00";
                out += kHex[ch >> 4];
                out += kHex[ch & 0xf];
            } else {
                out += static_cast<char>(ch);
            }
        }
    }
}

std::string
jsonEscaped(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 8);
    appendJsonEscaped(out, text);
    return out;
}

} // namespace dce::support
