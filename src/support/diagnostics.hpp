/**
 * @file
 * Error and warning collection for the MiniC frontend and the IR
 * verifier. Diagnostics are accumulated rather than thrown so that batch
 * tooling (the generator validating its own output, the reducer probing
 * candidate programs) can ask "did this parse?" cheaply.
 */
#pragma once

#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace dce {

/** Severity of a reported diagnostic. */
enum class DiagSeverity {
    Note,
    Warning,
    Error,
};

/** A single reported problem with an optional source position. */
struct Diagnostic {
    DiagSeverity severity = DiagSeverity::Error;
    SourceLoc loc;
    std::string message;

    /** Render as "error 3:7: message". */
    std::string str() const;
};

/**
 * Accumulates diagnostics produced while processing one compilation
 * unit. Cheap to construct; passed by reference through frontend stages.
 */
class DiagnosticEngine {
  public:
    void error(SourceLoc loc, std::string message);
    void warning(SourceLoc loc, std::string message);
    void note(SourceLoc loc, std::string message);

    bool hasErrors() const { return numErrors_ > 0; }
    size_t errorCount() const { return numErrors_; }
    const std::vector<Diagnostic> &all() const { return diags_; }

    /** All diagnostics, one per line, for logs and test failure output. */
    std::string str() const;

    void clear();

  private:
    std::vector<Diagnostic> diags_;
    size_t numErrors_ = 0;
};

} // namespace dce
