#include "support/rng.hpp"

namespace dce {

uint64_t
Rng::next()
{
    // splitmix64 (Vigna, public domain).
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
Rng::below(uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias. The loop terminates with
    // overwhelming probability after one or two iterations.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t raw = next();
        if (raw >= threshold)
            return raw % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    assert(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + below(span));
}

bool
Rng::chance(unsigned percent)
{
    if (percent >= 100)
        return true;
    return below(100) < percent;
}

size_t
Rng::pickWeighted(const std::vector<unsigned> &weights)
{
    uint64_t total = 0;
    for (unsigned weight : weights)
        total += weight;
    assert(total > 0);
    uint64_t roll = below(total);
    for (size_t i = 0; i < weights.size(); ++i) {
        if (roll < weights[i])
            return i;
        roll -= weights[i];
    }
    assert(false && "unreachable: weights exhausted");
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

} // namespace dce
