/**
 * @file
 * Best-effort liveness time series (DESIGN.md §17): a fixed-capacity
 * lock-free ring of throughput samples (seeds/s, findings, cache-hit
 * rate, per-stage latency p99s) feeding the ops server's /timeseries
 * endpoint and the /dashboard sparklines.
 *
 * The ring is a per-slot seqlock over all-atomic fields: the single
 * writer (a TimeSeriesSampler thread) stamps a slot as in-progress,
 * stores the fields, then publishes the slot's global sequence number;
 * readers double-check the stamp and skip torn or overwritten slots.
 * Because the stamp holds the *global* sequence (not a per-slot
 * counter), slot reuse always changes the stamp — no ABA.
 *
 * This data is deliberately OUTSIDE the determinism boundary: samples
 * are wall-clock-stamped, never checkpointed, and never feed the
 * summary or the campaign report, so the byte-identical kill/resume
 * and fleet-merge guarantees are untouched (the same contract as the
 * SnapshotWriter's JSONL, DESIGN.md §12).
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "support/metrics.hpp"

namespace dce::support {

/** One liveness sample. Doubles ride the ring as bit patterns. */
struct TimeSample {
    uint64_t seq = 0;    ///< monotone cursor, 0-based
    uint64_t wallMs = 0; ///< wall clock at sampling time
    uint64_t seeds = 0;  ///< cumulative campaign.seeds
    uint64_t findings = 0;
    double seedsPerSec = 0.0;  ///< derivative between samples
    double cacheHitRate = 0.0; ///< hits / (hits + misses); 0 if none
    /** p99 of campaign.stage_us{<stage>}, µs, in kStages order. */
    std::array<double, 4> stageP99Us{};
    double serveP99Us = 0.0; ///< p99 of serve.request_us
};

/** Stage labels sampled into TimeSample::stageP99Us, in order. */
inline constexpr std::array<const char *, 4> kTimeSeriesStages = {
    "generate", "ground_truth", "compile", "primary"};

class TimeSeries {
public:
    explicit TimeSeries(size_t capacity = 512);

    size_t capacity() const { return capacity_; }

    /** Cursor one past the newest published sample. */
    uint64_t next() const;

    /**
     * Publish one sample (its seq is assigned here). Single-writer:
     * concurrent appends are not supported (the sampler thread is the
     * only writer).
     */
    void append(TimeSample sample);

    /**
     * Samples with seq >= @p since, oldest first, skipping any slot
     * the writer has since overwritten or is mid-write on — readers
     * never block. At most capacity() samples (older ones are gone).
     */
    std::vector<TimeSample> read(uint64_t since) const;

private:
    // Stamp protocol: 0 = never written, kWriting = in progress,
    // else seq + 1 of the published sample.
    static constexpr uint64_t kWriting = ~uint64_t{0};
    static constexpr size_t kFields = 10;

    struct Slot {
        std::atomic<uint64_t> stamp{0};
        std::array<std::atomic<uint64_t>, kFields> fields{};
    };

    const size_t capacity_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<uint64_t> next_{0};
};

/** JSON for /timeseries?since=N: {"capacity":..,"next":..,
 * "points":[{...},...]}. Decimals are quoted strings ("%.3f"), the
 * repo-wide integer-JSON convention. */
std::string timeSeriesJson(const TimeSeries &series, uint64_t since);

struct TimeSeriesSamplerOptions {
    uint64_t intervalMs = 1000;
    /** Registry to sample; null = the process global. */
    MetricsRegistry *registry = nullptr;
    /**
     * Optional fold step run on a scratch copy of the registry before
     * deriving the sample — the fleet coordinator injects worker
     * metric dumps and the fleet-wide findings count here, so the
     * series covers the whole fleet, not just the coordinator.
     */
    std::function<void(MetricsRegistry &)> augment;
    /** Wall-clock source in ms; injectable for tests. */
    std::function<uint64_t()> clock;
    /** Called with each published sample (throughput monitor hook). */
    std::function<void(const TimeSample &)> onSample;
};

/**
 * Periodic sampler thread deriving TimeSamples from a MetricsRegistry
 * and appending them to a TimeSeries. Thread lifecycle mirrors
 * report::SnapshotWriter; sampleOnce() is the synchronous test hook.
 */
class TimeSeriesSampler {
public:
    TimeSeriesSampler(TimeSeries &series,
                      TimeSeriesSamplerOptions options);
    ~TimeSeriesSampler(); ///< stops the sampler thread if running

    TimeSeriesSampler(const TimeSeriesSampler &) = delete;
    TimeSeriesSampler &operator=(const TimeSeriesSampler &) = delete;

    /** Derive and publish one sample now. */
    TimeSample sampleOnce();

    /** Start the periodic sampler thread (idempotent). */
    void start();
    /** Stop the sampler thread (one final sample is taken). */
    void stop();

private:
    void run();

    TimeSeries &series_;
    TimeSeriesSamplerOptions options_;
    // Previous cumulative totals for the seeds/s derivative.
    uint64_t lastSeeds_ = 0;
    uint64_t lastWallMs_ = 0;
    bool havePrevious_ = false;
    std::thread sampler_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopRequested_ = false;
    bool running_ = false;
};

} // namespace dce::support
