#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace dce::support {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads_ = threads;
    // One worker is the calling thread (see forChunks), so a pool of N
    // threads spawns N-1 OS threads.
    workers_.reserve(threads_ - 1);
    for (unsigned i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runJob(const std::function<void()> &job)
{
    try {
        job();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping, queue drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        runJob(job);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                allIdle_.notify_all();
        }
    }
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (threads_ == 1) {
        // Serial pool: run inline, no queue, no cross-thread handoff.
        runJob(job);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++inFlight_;
        queue_.push_back(std::move(job));
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allIdle_.wait(lock, [this] { return inFlight_ == 0; });
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::forChunks(size_t count, size_t chunk_size,
                      const std::function<void(size_t, size_t)> &fn)
{
    if (count == 0)
        return;
    chunk_size = std::max<size_t>(chunk_size, 1);

    // Shared claim counter: dynamic chunk scheduling. shared_ptr keeps
    // it alive for workers that outlive this frame only on the error
    // path (wait() below normally joins them all).
    auto next = std::make_shared<std::atomic<size_t>>(0);
    auto drain = [next, count, chunk_size, &fn] {
        for (;;) {
            size_t begin = next->fetch_add(chunk_size);
            if (begin >= count)
                return;
            fn(begin, std::min(begin + chunk_size, count));
        }
    };

    size_t chunks = (count + chunk_size - 1) / chunk_size;
    size_t helpers =
        std::min<size_t>(threads_ > 0 ? threads_ - 1 : 0, chunks - 1);
    for (size_t i = 0; i < helpers; ++i)
        submit(drain);

    // The calling thread is worker zero.
    std::exception_ptr callerError;
    try {
        drain();
    } catch (...) {
        callerError = std::current_exception();
        // Stop helpers from claiming more chunks.
        next->store(count);
    }
    wait(); // throws the first helper error, if any
    if (callerError)
        std::rethrow_exception(callerError);
}

} // namespace dce::support
