/**
 * @file
 * Optimization remarks — the `-Rpass` analog for the pass pipeline.
 *
 * A RemarkCollector is attached to one compilation (one PassManager
 * run over one module). Passes and the pass manager emit remarks into
 * it; the campaign engine and triage consume them to attribute each
 * eliminated `DCEMarkerN` call to the pass that removed it.
 *
 * Attribution has two layers:
 *  - The PassManager's marker-call census is *authoritative*: it
 *    counts live marker calls before the pipeline and after each pass,
 *    and emits exactly one `MarkerEliminated` remark per marker at the
 *    pass where its call count transitions >0 to 0. (Counts cannot
 *    resurrect — inlining only clones calls that still exist — so the
 *    first transition is the only one.)
 *  - Individual passes emit *detail* remarks (`MarkerCallRemoved`,
 *    `MarkerProvedDead`, `Note`) at the mechanical deletion or proof
 *    site, explaining *how* the kill happened.
 *
 * Deliberately NOT thread-safe: one collector per compilation, owned
 * by a single worker thread. Cross-thread aggregation happens on the
 * consumer side (core::triage, MetricsRegistry).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dce::support {

enum class RemarkKind {
    /// Authoritative: this pass made the last call to the marker
    /// vanish from the module (emitted by the PassManager census).
    MarkerEliminated,
    /// Detail: a pass mechanically deleted a marker call (unreachable
    /// block removal, dead function erasure, ...).
    MarkerCallRemoved,
    /// Detail: a pass proved the marker's block dead without deleting
    /// it (e.g. SCCP's executability analysis).
    MarkerProvedDead,
    /// Free-form pass event (a threaded jump, an unswitched loop).
    Note,
};

/** Printable name of a remark kind. */
const char *remarkKindName(RemarkKind kind);

struct Remark {
    RemarkKind kind = RemarkKind::Note;
    /// Pass that emitted the remark ("simplifycfg", "globaldce", ...).
    std::string pass;
    /// Position of the pass in the pipeline (0-based).
    unsigned passIndex = 0;
    /// Marker index the remark is about, or kNoMarker for pure notes.
    unsigned marker = kNoMarker;
    /// Human-readable explanation.
    std::string message;

    static constexpr unsigned kNoMarker = ~0u;

    bool operator==(const Remark &) const = default;
};

class RemarkCollector {
public:
    void emit(Remark remark) { remarks_.push_back(std::move(remark)); }

    void emit(RemarkKind kind, std::string pass, unsigned pass_index,
              unsigned marker, std::string message)
    {
        remarks_.push_back(Remark{kind, std::move(pass), pass_index,
                                  marker, std::move(message)});
    }

    const std::vector<Remark> &remarks() const { return remarks_; }

    bool empty() const { return remarks_.empty(); }
    size_t size() const { return remarks_.size(); }
    void clear() { remarks_.clear(); }

    /**
     * The authoritative killer of @p marker: the first (and by the
     * census invariant, only) MarkerEliminated remark for it. Null if
     * the marker survived the pipeline — or never reached it (markers
     * can die at lowering; the campaign layer synthesizes those).
     */
    const Remark *killerOf(unsigned marker) const;

    /** MarkerEliminated remark count per pass name. */
    std::map<std::string, uint64_t> killerHistogram() const;

private:
    std::vector<Remark> remarks_;
};

} // namespace dce::support
