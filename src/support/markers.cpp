#include "support/markers.hpp"

namespace dce::support {

std::string
markerName(unsigned index)
{
    return std::string(kMarkerPrefix) + std::to_string(index);
}

std::optional<unsigned>
markerIndex(const std::string &name)
{
    const std::string prefix = kMarkerPrefix;
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
        return std::nullopt;
    }
    unsigned value = 0;
    for (size_t i = prefix.size(); i < name.size(); ++i) {
        char c = name[i];
        if (c < '0' || c > '9')
            return std::nullopt;
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    return value;
}

} // namespace dce::support
