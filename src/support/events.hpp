/**
 * @file
 * The structured-event model behind the campaign event log
 * (DESIGN.md §12). This header lives in `support` — the lowest layer —
 * so the campaign engine, the checkpointing runner, the triage
 * pipeline, and the bisector can all emit events without depending on
 * the report subsystem that consumes them; `report::EventLog` is the
 * canonical EventSink implementation.
 *
 * Determinism is designed in at this level: every event carries an
 * EventKey — a (phase, major, minor) triple derived from the *plan
 * position* of the work that produced it (chunk index, slot, finding
 * index), never from wall-clock time or scheduling order. Sorting a
 * log by key therefore yields the same byte sequence for a serial and
 * an 8-thread run of the same plan. Events whose timing is inherently
 * operational (watchdog stalls) are segregated into kPhaseOps, so
 * their presence — only on an actual stall — is the only thing that
 * can distinguish two logs of the same plan.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace dce::support {

/**
 * Deterministic total order for event serialization. `phase` splits
 * the campaign lifecycle into bands (below); `major`/`minor` order
 * events within a band by plan position (chunk/slot, finding
 * index/step, checkpoint ordinal).
 */
struct EventKey {
    uint64_t phase = 0;
    uint64_t major = 0;
    uint64_t minor = 0;

    friend bool
    operator<(const EventKey &a, const EventKey &b)
    {
        return std::tie(a.phase, a.major, a.minor) <
               std::tie(b.phase, b.major, b.minor);
    }
    friend bool operator==(const EventKey &, const EventKey &) = default;
};

/// Campaign-scoped preamble (campaign_started).
inline constexpr uint64_t kPhaseCampaign = 0;
/// Per-chunk work: finding_discovered (minor = slot), then the
/// chunk_committed summary (minor = kChunkCommitMinor).
inline constexpr uint64_t kPhaseChunk = 1;
/// checkpoint_written, ordered by checkpoint ordinal.
inline constexpr uint64_t kPhaseCheckpoint = 2;
/// campaign_finished.
inline constexpr uint64_t kPhaseCampaignEnd = 3;
/// Triage: verdict_cached / reduction_finished / finding_classified,
/// major = finding index, minor = step.
inline constexpr uint64_t kPhaseTriage = 4;
/// bisect_resolved, major = marker.
inline constexpr uint64_t kPhaseBisect = 5;
/// Operational events with wall-clock semantics (watchdog stalls);
/// absent from stall-free runs, so they never perturb byte-identity.
inline constexpr uint64_t kPhaseOps = 6;
/// Metamorphic (equivalence-transformation) analysis: equiv_started,
/// then per-finding/outlier events with major = record slot + 1 and
/// minor = variant index, then equiv_finished (major = ~0).
inline constexpr uint64_t kPhaseEquiv = 7;

/// chunk_committed sorts after every per-slot event of its chunk.
inline constexpr uint64_t kChunkCommitMinor = ~uint64_t{0};

/**
 * One typed event: a type tag, an ordering key, and a flat list of
 * named fields (strings or 64-bit numbers) serialized in insertion
 * order. Field values carry the provenance keys already flowing
 * through the pipeline — seed, program hash, marker, killer pass,
 * build name, fingerprint — so a log line is self-describing.
 */
class Event {
  public:
    Event() = default;
    Event(std::string type, EventKey key)
        : type_(std::move(type)), key_(key)
    {
    }

    Event &
    num(std::string name, uint64_t value)
    {
        fields_.push_back({std::move(name), {}, value, true});
        return *this;
    }

    Event &
    str(std::string name, std::string value)
    {
        fields_.push_back({std::move(name), std::move(value), 0, false});
        return *this;
    }

    const std::string &type() const { return type_; }
    const EventKey &key() const { return key_; }

    /** Value of numeric field @p name; nullopt when absent. */
    std::optional<uint64_t> getNum(std::string_view name) const;
    /** Value of string field @p name; nullptr when absent. */
    const std::string *getStr(std::string_view name) const;

    /** Append the event as one JSON object (no trailing newline):
     * {"event":"<type>",<fields in insertion order>}. */
    void appendJson(std::string &out) const;

  private:
    struct Field {
        std::string name;
        std::string str;
        uint64_t num = 0;
        bool isNum = false;
    };

    std::string type_;
    EventKey key_;
    std::vector<Field> fields_;
};

/**
 * Where emitted events go. Implementations must be thread-safe:
 * campaign workers emit from every thread. The canonical
 * implementation is report::EventLog; tests may use ad-hoc sinks.
 */
class EventSink {
  public:
    virtual ~EventSink() = default;
    virtual void emit(Event event) = 0;
};

/** emit() through a possibly-null sink — the pattern at every
 * instrumentation site (a null sink costs one branch). */
inline void
emitEvent(EventSink *sink, Event event)
{
    if (sink)
        sink->emit(std::move(event));
}

} // namespace dce::support
