/**
 * @file
 * Deterministic pseudo-random number generation for the program
 * generator and for randomized property tests. Everything derives from a
 * 64-bit seed so that any generated program, test corpus, or failure can
 * be reproduced exactly from the seed that made it.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace dce {

/**
 * A splitmix64-based generator. Small state, excellent distribution for
 * this use case, and trivially reproducible — which is the property the
 * paper's Csmith-based workflow relies on.
 */
class Rng {
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound). @pre bound > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t range(int64_t lo, int64_t hi);

    /** True with probability percent/100. */
    bool chance(unsigned percent);

    /** Pick an element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &items)
    {
        assert(!items.empty());
        return items[below(items.size())];
    }

    /**
     * Pick an index according to integer weights; weight 0 entries are
     * never chosen. @pre at least one weight is positive.
     */
    size_t pickWeighted(const std::vector<unsigned> &weights);

    /** Derive an independent child generator (for parallel corpora). */
    Rng split();

    /**
     * Opaque stream state for persistence (campaign checkpoints).
     * restore() resumes the stream exactly: after `b.restore(a.state())`
     * both generators replay the identical value sequence for every
     * mix of next/below/range/chance/pickWeighted calls.
     */
    uint64_t state() const { return state_; }
    void restore(uint64_t state) { state_ = state; }

  private:
    uint64_t state_;
};

} // namespace dce
