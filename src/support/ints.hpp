/**
 * @file
 * MiniC integer semantics. MiniC deliberately has *no* undefined
 * behavior: signed arithmetic wraps (two's complement), division and
 * remainder by zero return the dividend (the Csmith "safe math"
 * convention), INT_MIN / -1 returns the dividend, and shift amounts are
 * masked to the operand width. These helpers are the single source of
 * truth shared by the semantic analyzer's constant evaluator, the IR
 * interpreter, and every constant-folding optimization — so the
 * "compilers" and the ground-truth executor can never disagree about
 * what a program computes.
 *
 * Values are carried as int64_t in *canonical form*: wrapped to the
 * type's width, then sign-extended when signed and zero-extended when
 * unsigned.
 */
#pragma once

#include <cassert>
#include <cstdint>

namespace dce {

/** Wrap @p value to canonical form for an integer of @p bits width. */
inline int64_t
wrapInt(int64_t value, unsigned bits, bool is_signed)
{
    assert(bits >= 1 && bits <= 64);
    if (bits == 64)
        return value;
    uint64_t mask = (uint64_t{1} << bits) - 1;
    uint64_t truncated = static_cast<uint64_t>(value) & mask;
    if (is_signed) {
        uint64_t sign_bit = uint64_t{1} << (bits - 1);
        if (truncated & sign_bit)
            truncated |= ~mask;
    }
    return static_cast<int64_t>(truncated);
}

/** a + b at width/signedness, wrapping. Inputs must be canonical. */
inline int64_t
addInt(int64_t a, int64_t b, unsigned bits, bool is_signed)
{
    return wrapInt(static_cast<int64_t>(static_cast<uint64_t>(a) +
                                        static_cast<uint64_t>(b)),
                   bits, is_signed);
}

inline int64_t
subInt(int64_t a, int64_t b, unsigned bits, bool is_signed)
{
    return wrapInt(static_cast<int64_t>(static_cast<uint64_t>(a) -
                                        static_cast<uint64_t>(b)),
                   bits, is_signed);
}

inline int64_t
mulInt(int64_t a, int64_t b, unsigned bits, bool is_signed)
{
    return wrapInt(static_cast<int64_t>(static_cast<uint64_t>(a) *
                                        static_cast<uint64_t>(b)),
                   bits, is_signed);
}

/** a / b; b == 0 or overflowing INT_MIN/-1 yields a (safe math). */
inline int64_t
divInt(int64_t a, int64_t b, unsigned bits, bool is_signed)
{
    if (b == 0)
        return a;
    if (is_signed) {
        if (a == INT64_MIN && b == -1)
            return a;
        // Narrower widths cannot overflow in int64 arithmetic; the
        // result of e.g. INT8_MIN / -1 simply wraps.
        return wrapInt(a / b, bits, is_signed);
    }
    uint64_t ua = static_cast<uint64_t>(a);
    uint64_t ub = static_cast<uint64_t>(b);
    return wrapInt(static_cast<int64_t>(ua / ub), bits, is_signed);
}

/** a % b; b == 0 yields a; INT_MIN % -1 yields 0 (safe math). */
inline int64_t
remInt(int64_t a, int64_t b, unsigned bits, bool is_signed)
{
    if (b == 0)
        return a;
    if (is_signed) {
        if (a == INT64_MIN && b == -1)
            return 0;
        return wrapInt(a % b, bits, is_signed);
    }
    uint64_t ua = static_cast<uint64_t>(a);
    uint64_t ub = static_cast<uint64_t>(b);
    return wrapInt(static_cast<int64_t>(ua % ub), bits, is_signed);
}

/** Shift amounts are masked to [0, bits), like x86 hardware. */
inline unsigned
maskShiftAmount(int64_t amount, unsigned bits)
{
    return static_cast<unsigned>(static_cast<uint64_t>(amount) &
                                 (bits - 1));
}

inline int64_t
shlInt(int64_t a, int64_t b, unsigned bits, bool is_signed)
{
    unsigned amount = maskShiftAmount(b, bits);
    return wrapInt(
        static_cast<int64_t>(static_cast<uint64_t>(a) << amount), bits,
        is_signed);
}

/** Arithmetic shift for signed, logical for unsigned. */
inline int64_t
shrInt(int64_t a, int64_t b, unsigned bits, bool is_signed)
{
    unsigned amount = maskShiftAmount(b, bits);
    if (is_signed)
        return wrapInt(a >> amount, bits, is_signed);
    // Operate on the zero-extended canonical representation.
    uint64_t ua = static_cast<uint64_t>(a);
    if (bits < 64)
        ua &= (uint64_t{1} << bits) - 1;
    return wrapInt(static_cast<int64_t>(ua >> amount), bits, is_signed);
}

/** Comparison respecting signedness of the common type. */
inline bool
ltInt(int64_t a, int64_t b, bool is_signed)
{
    if (is_signed)
        return a < b;
    return static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
}

/** Convert a canonical (from_bits, from_signed) value to canonical
 * (to_bits, to_signed) form — C's value-preserving-then-wrap rule. */
inline int64_t
convertInt(int64_t value, unsigned from_bits, bool from_signed,
           unsigned to_bits, bool to_signed)
{
    // Canonical form already encodes the mathematical value (mod 2^64)
    // with the proper extension, so conversion is just re-wrapping.
    (void)from_bits;
    (void)from_signed;
    return wrapInt(value, to_bits, to_signed);
}

} // namespace dce
