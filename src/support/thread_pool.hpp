/**
 * @file
 * A fixed-size worker pool with chunked, self-scheduling parallel
 * iteration — the execution substrate of the campaign engine.
 *
 * Scheduling model: forChunks() splits an index range into fixed-size
 * chunks that workers claim with an atomic fetch-add. This is the
 * classic dynamic-chunking discipline: it load-balances like work
 * stealing (a worker that draws expensive seeds simply claims fewer
 * chunks) without per-task deques, and — crucially for the campaign's
 * determinism contract — *which* thread runs a chunk can never affect
 * the result, because chunks write to disjoint output slots and all
 * per-item state is derived from the item index alone.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dce::support {

class ThreadPool {
  public:
    /** @param threads worker count; 0 = std::thread::hardware_concurrency
     * (minimum 1). A 1-thread pool spawns no workers at all: every job
     * runs inline on the calling thread, giving exact serial
     * semantics for baseline/determinism comparisons. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that execute jobs (callers included: a
     * 1-thread pool is the calling thread itself). */
    unsigned threadCount() const { return threads_; }

    /** Enqueue an arbitrary job. Inline-executed when threadCount()==1. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * the first captured exception is rethrown here (subsequent ones
     * are dropped).
     */
    void wait();

    /**
     * Apply @p fn over [0, count) in chunks: fn(begin, end) with
     * end - begin <= chunk_size. The calling thread participates, so a
     * pool of N threads keeps N cores busy, not N+1. Blocks until the
     * whole range is processed; rethrows the first exception raised by
     * any chunk (remaining chunks may be skipped).
     */
    void forChunks(size_t count, size_t chunk_size,
                   const std::function<void(size_t, size_t)> &fn);

  private:
    void workerLoop();
    void runJob(const std::function<void()> &job);

    unsigned threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allIdle_;
    std::deque<std::function<void()>> queue_;
    size_t inFlight_ = 0; ///< queued + currently-running jobs
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

} // namespace dce::support
