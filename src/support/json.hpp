/**
 * @file
 * JSON string escaping shared by every JSON producer in the tree: the
 * Chrome-trace tracer, the structured event log, and (via delegation)
 * the corpus store's writer. One definition so "what is a legal JSON
 * string" has exactly one answer:
 *
 *  - `"` `\` and the named control escapes (\n \t \r \b \f) get their
 *    two-character forms;
 *  - every other control byte < 0x20 becomes \u00XX (JSON strings may
 *    not contain raw control characters);
 *  - bytes >= 0x20 — multi-byte UTF-8 sequences included — pass
 *    through untouched, so non-ASCII span names and program text
 *    survive byte-exactly.
 */
#pragma once

#include <string>
#include <string_view>

namespace dce::support {

/** Append @p text to @p out with JSON string escaping (no quotes). */
void appendJsonEscaped(std::string &out, std::string_view text);

/** The escaped form of @p text (no surrounding quotes). */
std::string jsonEscaped(std::string_view text);

} // namespace dce::support
