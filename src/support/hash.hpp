/**
 * @file
 * Stable, portable hashes for the persistent corpus layer: FNV-1a for
 * content addressing (64-bit, hex-keyed program texts) and CRC-32
 * (IEEE, reflected) for per-record corruption checksums. Both are
 * deterministic across platforms and process runs — unlike std::hash —
 * which is what makes them usable as on-disk keys.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dce::support {

/** 64-bit FNV-1a of @p data. Stable across runs and platforms. */
uint64_t fnv1a64(std::string_view data);

/** fnv1a64 rendered as 16 lowercase hex digits — the store's
 * content-address key format. */
std::string fnv1a64Hex(std::string_view data);

/** CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of @p data. */
uint32_t crc32(std::string_view data);

/** crc32 rendered as 8 lowercase hex digits. */
std::string crc32Hex(std::string_view data);

} // namespace dce::support
