/**
 * @file
 * Lightweight source coordinates used by the lexer, parser, and
 * diagnostics. MiniC programs are single-file, so a location is just a
 * (line, column) pair.
 */
#pragma once

#include <cstdint>
#include <string>

namespace dce {

/** A position within a single MiniC source buffer. 1-based; 0 = unknown. */
struct SourceLoc {
    uint32_t line = 0;
    uint32_t column = 0;

    bool isValid() const { return line != 0; }

    bool operator==(const SourceLoc &) const = default;

    /** Render as "line:col" (or "<unknown>"). */
    std::string str() const
    {
        if (!isValid())
            return "<unknown>";
        return std::to_string(line) + ":" + std::to_string(column);
    }
};

} // namespace dce
