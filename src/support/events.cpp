#include "support/events.hpp"

#include "support/json.hpp"

namespace dce::support {

std::optional<uint64_t>
Event::getNum(std::string_view name) const
{
    for (const Field &field : fields_) {
        if (field.isNum && field.name == name)
            return field.num;
    }
    return std::nullopt;
}

const std::string *
Event::getStr(std::string_view name) const
{
    for (const Field &field : fields_) {
        if (!field.isNum && field.name == name)
            return &field.str;
    }
    return nullptr;
}

void
Event::appendJson(std::string &out) const
{
    out += "{\"event\":\"";
    appendJsonEscaped(out, type_);
    out += '"';
    for (const Field &field : fields_) {
        out += ",\"";
        appendJsonEscaped(out, field.name);
        out += "\":";
        if (field.isNum) {
            out += std::to_string(field.num);
        } else {
            out += '"';
            appendJsonEscaped(out, field.str);
            out += '"';
        }
    }
    out += '}';
}

} // namespace dce::support
