/**
 * @file
 * A minimal small-size-optimized vector for trivially copyable element
 * types. The IR keeps operand/user edge lists in these: almost every
 * instruction has <= 4 operands and <= 4 users, so the inline buffer
 * removes one heap allocation per edge list — the dominant allocation
 * source in cloneModule and the pass pipeline before the arena work
 * (DESIGN.md §13).
 *
 * Deliberately not a general-purpose container: elements must be
 * trivially copyable and trivially destructible, which lets growth and
 * erase use memcpy/memmove and keeps the header tiny. That covers the
 * IR's use (raw `Value*` / `BasicBlock*` edges) and nothing else needs
 * it.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <utility>

namespace dce::support {

template <typename T, unsigned InlineN = 4>
class SmallVector {
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector only supports trivially copyable types");
    static_assert(std::is_trivially_destructible_v<T>,
                  "SmallVector only supports trivially destructible types");
    static_assert(InlineN >= 1, "inline capacity must be positive");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVector() = default;

    SmallVector(std::initializer_list<T> init)
    {
        reserve(init.size());
        for (const T &v : init)
            data_[size_++] = v;
    }

    SmallVector(const SmallVector &other) { assignFrom(other); }

    SmallVector &
    operator=(const SmallVector &other)
    {
        if (this != &other) {
            size_ = 0;
            assignFrom(other);
        }
        return *this;
    }

    SmallVector(SmallVector &&other) noexcept { moveFrom(other); }

    SmallVector &
    operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            freeHeap();
            moveFrom(other);
        }
        return *this;
    }

    ~SmallVector() { freeHeap(); }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    size_t capacity() const { return capacity_; }

    T *data() { return data_; }
    const T *data() const { return data_; }

    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T &
    operator[](size_t i)
    {
        assert(i < size_);
        return data_[i];
    }
    const T &
    operator[](size_t i) const
    {
        assert(i < size_);
        return data_[i];
    }

    T &
    front()
    {
        assert(size_ > 0);
        return data_[0];
    }
    const T &
    front() const
    {
        assert(size_ > 0);
        return data_[0];
    }
    T &
    back()
    {
        assert(size_ > 0);
        return data_[size_ - 1];
    }
    const T &
    back() const
    {
        assert(size_ > 0);
        return data_[size_ - 1];
    }

    void
    push_back(const T &v)
    {
        if (size_ == capacity_)
            grow(capacity_ * 2);
        data_[size_++] = v;
    }

    void
    pop_back()
    {
        assert(size_ > 0);
        --size_;
    }

    void clear() { size_ = 0; }

    void
    reserve(size_t n)
    {
        if (n > capacity_)
            grow(n);
    }

    void
    resize(size_t n, const T &fill = T())
    {
        reserve(n);
        for (size_t i = size_; i < n; ++i)
            data_[i] = fill;
        size_ = n;
    }

    /** Erase the element at @p pos, shifting the tail left. */
    iterator
    erase(const_iterator pos)
    {
        assert(pos >= begin() && pos < end());
        size_t idx = static_cast<size_t>(pos - begin());
        std::memmove(data_ + idx, data_ + idx + 1,
                     (size_ - idx - 1) * sizeof(T));
        --size_;
        return data_ + idx;
    }

    /** Erase the half-open range [first, last). */
    iterator
    erase(const_iterator first, const_iterator last)
    {
        assert(first >= begin() && last <= end() && first <= last);
        size_t idx = static_cast<size_t>(first - begin());
        size_t count = static_cast<size_t>(last - first);
        std::memmove(data_ + idx, data_ + idx + count,
                     (size_ - idx - count) * sizeof(T));
        size_ -= count;
        return data_ + idx;
    }

    /** Insert @p v before @p pos. */
    iterator
    insert(const_iterator pos, const T &v)
    {
        assert(pos >= begin() && pos <= end());
        size_t idx = static_cast<size_t>(pos - begin());
        if (size_ == capacity_)
            grow(capacity_ * 2);
        std::memmove(data_ + idx + 1, data_ + idx,
                     (size_ - idx) * sizeof(T));
        data_[idx] = v;
        ++size_;
        return data_ + idx;
    }

    /** Insert the range [first, last) before @p pos. */
    template <typename It>
    iterator
    insert(const_iterator pos, It first, It last)
    {
        assert(pos >= begin() && pos <= end());
        size_t idx = static_cast<size_t>(pos - begin());
        size_t count = static_cast<size_t>(last - first);
        if (size_ + count > capacity_)
            grow(size_ + count);
        std::memmove(data_ + idx + count, data_ + idx,
                     (size_ - idx) * sizeof(T));
        for (size_t i = 0; i < count; ++i, ++first)
            data_[idx + i] = *first;
        size_ += count;
        return data_ + idx;
    }

    bool
    operator==(const SmallVector &other) const
    {
        if (size_ != other.size_)
            return false;
        for (size_t i = 0; i < size_; ++i)
            if (!(data_[i] == other.data_[i]))
                return false;
        return true;
    }

  private:
    void
    assignFrom(const SmallVector &other)
    {
        reserve(other.size_);
        std::memcpy(data_, other.data_, other.size_ * sizeof(T));
        size_ = other.size_;
    }

    void
    moveFrom(SmallVector &other) noexcept
    {
        if (other.isInline()) {
            std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
            data_ = inlineData();
            capacity_ = InlineN;
        } else {
            // Steal the heap buffer.
            data_ = other.data_;
            capacity_ = other.capacity_;
        }
        size_ = other.size_;
        other.data_ = other.inlineData();
        other.capacity_ = InlineN;
        other.size_ = 0;
    }

    bool isInline() const { return data_ == inlineData(); }

    T *
    inlineData()
    {
        return reinterpret_cast<T *>(inline_);
    }
    const T *
    inlineData() const
    {
        return reinterpret_cast<const T *>(inline_);
    }

    void
    grow(size_t new_cap)
    {
        if (new_cap < InlineN * 2)
            new_cap = InlineN * 2;
        T *fresh = static_cast<T *>(::operator new(new_cap * sizeof(T)));
        std::memcpy(fresh, data_, size_ * sizeof(T));
        freeHeap();
        data_ = fresh;
        capacity_ = new_cap;
    }

    void
    freeHeap()
    {
        if (!isInline())
            ::operator delete(data_);
    }

    alignas(T) unsigned char inline_[InlineN * sizeof(T)];
    T *data_ = inlineData();
    size_t size_ = 0;
    size_t capacity_ = InlineN;
};

} // namespace dce::support
