#include "support/metrics.hpp"

#include <cstdio>

namespace dce::support {

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
}

void
Histogram::merge(const Histogram &other)
{
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    for (size_t i = 0; i < kBuckets; ++i) {
        buckets_[i].fetch_add(other.bucket(i),
                              std::memory_order_relaxed);
    }
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

std::string
MetricsRegistry::keyFor(std::string_view name, std::string_view label)
{
    std::string key(name);
    if (!label.empty()) {
        key += '{';
        key += label;
        key += '}';
    }
    return key;
}

Counter &
MetricsRegistry::counter(std::string_view name, std::string_view label)
{
    std::string key = keyFor(name, label);
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[key];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::string_view label)
{
    std::string key = keyFor(name, label);
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[key];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

uint64_t
MetricsRegistry::counterValue(std::string_view name,
                              std::string_view label) const
{
    std::string key = keyFor(name, label);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second->value();
}

uint64_t
MetricsRegistry::counterTotal(std::string_view name) const
{
    std::string bare(name);
    std::string labeled = bare + '{';
    uint64_t total = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[key, counter] : counters_) {
        if (key == bare ||
            key.compare(0, labeled.size(), labeled) == 0)
            total += counter->value();
    }
    return total;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counters() const
{
    std::vector<std::pair<std::string, uint64_t>> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(counters_.size());
    for (const auto &[key, counter] : counters_)
        out.emplace_back(key, counter->value());
    return out;
}

std::string
MetricsRegistry::dumpText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[key, counter] : counters_) {
        out += "counter ";
        out += key;
        out += ' ';
        out += std::to_string(counter->value());
        out += '\n';
    }
    for (const auto &[key, histogram] : histograms_) {
        char line[128];
        std::snprintf(line, sizeof line,
                      " count=%llu sum=%llu mean=%.1f\n",
                      static_cast<unsigned long long>(
                          histogram->count()),
                      static_cast<unsigned long long>(
                          histogram->sum()),
                      histogram->mean());
        out += "histogram ";
        out += key;
        out += line;
    }
    return out;
}

std::string
MetricsRegistry::dumpJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[key, counter] : counters_) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += key; // keys are code-controlled: no escaping needed
        out += "\":";
        out += std::to_string(counter->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[key, histogram] : histograms_) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += key;
        out += "\":{\"count\":";
        out += std::to_string(histogram->count());
        out += ",\"sum\":";
        out += std::to_string(histogram->sum());
        out += '}';
    }
    out += "}}";
    return out;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    // Snapshot under other's lock, apply after releasing it, so the
    // two registry mutexes are never held together (counter() and
    // histogram() take this->mutex_ per key).
    std::vector<std::pair<std::string, uint64_t>> counter_deltas;
    std::vector<std::pair<std::string, const Histogram *>> histo_srcs;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        for (const auto &[key, counter] : other.counters_)
            counter_deltas.emplace_back(key, counter->value());
        for (const auto &[key, histogram] : other.histograms_)
            histo_srcs.emplace_back(key, histogram.get());
    }
    // keyFor(key, "") == key, so get-or-create by full key string
    // lands on exactly the instrument the original (name, label)
    // pair would.
    for (const auto &[key, delta] : counter_deltas) {
        if (delta)
            counter(key).add(delta);
    }
    for (const auto &[key, source] : histo_srcs)
        histogram(key).merge(*source);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[key, counter] : counters_)
        counter->reset();
    for (auto &[key, histogram] : histograms_)
        histogram->reset();
}

} // namespace dce::support
