#include "support/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace dce::support {

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
}

void
Histogram::merge(const Histogram &other)
{
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    for (size_t i = 0; i < kBuckets; ++i) {
        buckets_[i].fetch_add(other.bucket(i),
                              std::memory_order_relaxed);
    }
}

void
Histogram::absorb(uint64_t count, uint64_t sum,
                  const std::array<uint64_t, kBuckets> &buckets)
{
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    for (size_t i = 0; i < kBuckets; ++i)
        buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
}

double
Histogram::percentileFromBuckets(
    const std::array<uint64_t, kBuckets> &buckets, uint64_t count,
    double q)
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target sample, 1-based, clamped so q=0 still lands
    // on a real sample.
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(count) + 0.5);
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        if (!buckets[i])
            continue;
        uint64_t before = cumulative;
        cumulative += buckets[i];
        if (cumulative < rank)
            continue;
        if (i == 0)
            return 0.0; // bucket 0 holds only the exact value 0
        // Bucket i spans [2^(i-1), 2^i - 1]; interpolate by the
        // target's position among this bucket's samples. The top
        // bucket (i == kBuckets-1) is open-ended (it also absorbs
        // saturated samples) — 2^63..2^64-1 still bounds it without
        // overflowing by computing the width, not 2^64.
        double lo = static_cast<double>(uint64_t{1} << (i - 1));
        double width = lo - 1.0; // (2^i - 1) - 2^(i-1)
        double position =
            static_cast<double>(rank - before - 1) /
            static_cast<double>(buckets[i]);
        return lo + width * position;
    }
    return 0.0; // unreachable when count matches the buckets
}

double
Histogram::percentileEstimate(double q) const
{
    std::array<uint64_t, kBuckets> snapshot;
    for (size_t i = 0; i < kBuckets; ++i)
        snapshot[i] = bucket(i);
    return percentileFromBuckets(snapshot, count(), q);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

std::string
MetricsRegistry::keyFor(std::string_view name, std::string_view label)
{
    std::string key(name);
    if (!label.empty()) {
        key += '{';
        key += label;
        key += '}';
    }
    return key;
}

Counter &
MetricsRegistry::counter(std::string_view name, std::string_view label)
{
    std::string key = keyFor(name, label);
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[key];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::string_view label)
{
    std::string key = keyFor(name, label);
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[key];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

uint64_t
MetricsRegistry::counterValue(std::string_view name,
                              std::string_view label) const
{
    std::string key = keyFor(name, label);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second->value();
}

uint64_t
MetricsRegistry::counterTotal(std::string_view name) const
{
    std::string bare(name);
    std::string labeled = bare + '{';
    uint64_t total = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[key, counter] : counters_) {
        if (key == bare ||
            key.compare(0, labeled.size(), labeled) == 0)
            total += counter->value();
    }
    return total;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counters() const
{
    std::vector<std::pair<std::string, uint64_t>> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(counters_.size());
    for (const auto &[key, counter] : counters_)
        out.emplace_back(key, counter->value());
    return out;
}

std::vector<
    std::pair<std::string, MetricsRegistry::HistogramSnapshot>>
MetricsRegistry::histograms() const
{
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(histograms_.size());
    for (const auto &[key, histogram] : histograms_) {
        HistogramSnapshot snapshot;
        snapshot.count = histogram->count();
        snapshot.sum = histogram->sum();
        for (size_t i = 0; i < Histogram::kBuckets; ++i)
            snapshot.buckets[i] = histogram->bucket(i);
        out.emplace_back(key, snapshot);
    }
    return out;
}

namespace {

/** Split a registry key into its (name, label) parts. */
std::pair<std::string, std::string>
splitKey(const std::string &key)
{
    size_t brace = key.find('{');
    if (brace == std::string::npos || key.back() != '}')
        return {key, ""};
    return {key.substr(0, brace),
            key.substr(brace + 1, key.size() - brace - 2)};
}

/** Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Our keys only
 * ever violate this with '.' and '-', both mapped to '_'. */
std::string
sanitizeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!ok)
            c = '_';
    }
    return out;
}

/** Escape a label value per the Prometheus exposition format. */
std::string
escapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

void
appendSeries(std::string &out, const std::string &name,
             const std::string &label_pair)
{
    out += name;
    if (!label_pair.empty()) {
        out += '{';
        out += label_pair;
        out += '}';
    }
}

/** The `label="..."` pair for @p label, empty when the key was bare. */
std::string
labelPair(const std::string &label)
{
    if (label.empty())
        return "";
    return "label=\"" + escapeLabel(label) + "\"";
}

} // namespace

std::string
MetricsRegistry::expose() const
{
    // Snapshot both instrument families, re-sort by (name, label)
    // explicitly: the registry map sorts by the *combined* key, under
    // which "foo.barbaz" can fall between "foo.bar" and "foo.bar{x}"
    // — Prometheus requires every series of a metric consecutive.
    std::vector<std::tuple<std::string, std::string, uint64_t>> cs;
    for (const auto &[key, value] : counters()) {
        auto [name, label] = splitKey(key);
        cs.emplace_back(sanitizeName(name), label, value);
    }
    std::sort(cs.begin(), cs.end());
    std::vector<std::tuple<std::string, std::string, HistogramSnapshot>>
        hs;
    for (const auto &[key, snapshot] : histograms()) {
        auto [name, label] = splitKey(key);
        hs.emplace_back(sanitizeName(name), label, snapshot);
    }
    std::sort(hs.begin(), hs.end(),
              [](const auto &a, const auto &b) {
                  return std::tie(std::get<0>(a), std::get<1>(a)) <
                         std::tie(std::get<0>(b), std::get<1>(b));
              });

    std::string out;
    std::string current;
    for (const auto &[name, label, value] : cs) {
        if (name != current) {
            current = name;
            out += "# TYPE " + name + " counter\n";
        }
        appendSeries(out, name, labelPair(label));
        out += ' ';
        out += std::to_string(value);
        out += '\n';
    }
    current.clear();
    for (const auto &[name, label, snapshot] : hs) {
        if (name != current) {
            current = name;
            out += "# TYPE " + name + " histogram\n";
        }
        std::string labels = labelPair(label);
        // Bucket i of the bit-width histogram holds samples with
        // bit_width(v) == i, i.e. v in [2^(i-1), 2^i - 1] (v == 0 for
        // i == 0) — so the cumulative upper bound of bucket i is
        // 2^i - 1. Trailing empty buckets are elided; +Inf closes the
        // series with the exact total.
        size_t last = 0;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            if (snapshot.buckets[i])
                last = i;
        }
        uint64_t cumulative = 0;
        for (size_t i = 0; i <= last; ++i) {
            cumulative += snapshot.buckets[i];
            uint64_t le =
                i == 0 ? 0 : ((uint64_t{1} << i) - 1);
            std::string bucket_labels = labels;
            if (!bucket_labels.empty())
                bucket_labels += ',';
            bucket_labels += "le=\"" + std::to_string(le) + "\"";
            appendSeries(out, name + "_bucket", bucket_labels);
            out += ' ';
            out += std::to_string(cumulative);
            out += '\n';
        }
        std::string inf_labels = labels;
        if (!inf_labels.empty())
            inf_labels += ',';
        inf_labels += "le=\"+Inf\"";
        appendSeries(out, name + "_bucket", inf_labels);
        out += ' ';
        out += std::to_string(snapshot.count);
        out += '\n';
        appendSeries(out, name + "_sum", labels);
        out += ' ';
        out += std::to_string(snapshot.sum);
        out += '\n';
        appendSeries(out, name + "_count", labels);
        out += ' ';
        out += std::to_string(snapshot.count);
        out += '\n';
    }
    return out;
}

std::string
MetricsRegistry::dumpText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[key, counter] : counters_) {
        out += "counter ";
        out += key;
        out += ' ';
        out += std::to_string(counter->value());
        out += '\n';
    }
    for (const auto &[key, histogram] : histograms_) {
        char line[128];
        std::snprintf(line, sizeof line,
                      " count=%llu sum=%llu mean=%.1f\n",
                      static_cast<unsigned long long>(
                          histogram->count()),
                      static_cast<unsigned long long>(
                          histogram->sum()),
                      histogram->mean());
        out += "histogram ";
        out += key;
        out += line;
    }
    return out;
}

std::string
MetricsRegistry::dumpJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[key, counter] : counters_) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += key; // keys are code-controlled: no escaping needed
        out += "\":";
        out += std::to_string(counter->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[key, histogram] : histograms_) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += key;
        out += "\":{\"count\":";
        out += std::to_string(histogram->count());
        out += ",\"sum\":";
        out += std::to_string(histogram->sum());
        out += '}';
    }
    out += "}}";
    return out;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    // Snapshot under other's lock, apply after releasing it, so the
    // two registry mutexes are never held together (counter() and
    // histogram() take this->mutex_ per key).
    std::vector<std::pair<std::string, uint64_t>> counter_deltas;
    std::vector<std::pair<std::string, const Histogram *>> histo_srcs;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        for (const auto &[key, counter] : other.counters_)
            counter_deltas.emplace_back(key, counter->value());
        for (const auto &[key, histogram] : other.histograms_)
            histo_srcs.emplace_back(key, histogram.get());
    }
    // keyFor(key, "") == key, so get-or-create by full key string
    // lands on exactly the instrument the original (name, label)
    // pair would.
    for (const auto &[key, delta] : counter_deltas) {
        if (delta)
            counter(key).add(delta);
    }
    for (const auto &[key, source] : histo_srcs)
        histogram(key).merge(*source);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[key, counter] : counters_)
        counter->reset();
    for (auto &[key, histogram] : histograms_)
        histogram->reset();
}

} // namespace dce::support
