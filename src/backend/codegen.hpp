/**
 * @file
 * Backend: lower optimized IR to textual x86-flavoured assembly. The
 * contract that the whole methodology rests on: a `call X` line appears
 * in the output iff a reachable Call instruction to X survived
 * optimization — markers are preserved 1:1 (the paper greps the
 * compiler's assembly for `callq DCECheckN` exactly the same way).
 *
 * The lowering is real enough to be representative: phis are demoted
 * to stack slots with edge copies, values get registers from a
 * liveness-driven linear scan (eight GPRs, spills to the frame), and
 * every surviving function — including dead internal ones a weak
 * global-DCE failed to remove — is emitted, which is exactly why
 * markers in them count as missed.
 */
#pragma once

#include <set>
#include <string>

#include "ir/ir.hpp"

namespace dce::backend {

/**
 * Emit assembly for the whole module. Mutates @p module (phi demotion
 * runs first), so pass a module you are done optimizing.
 */
std::string emitAssembly(ir::Module &module);

/** Demote all phis to stack slots (alloca + per-edge stores). Exposed
 * for tests; emitAssembly calls it internally. */
void demotePhis(ir::Module &module);

/** All symbols that appear as direct call targets in @p assembly. */
std::set<std::string> calledSymbols(const std::string &assembly);

/** True if @p assembly contains a call to @p symbol. */
bool containsCall(const std::string &assembly, const std::string &symbol);

} // namespace dce::backend
