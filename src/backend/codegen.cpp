#include "backend/codegen.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/cfg.hpp"
#include "support/trace.hpp"

namespace dce::backend {

using ir::BasicBlock;
using ir::BinOp;
using ir::CastOp;
using ir::CmpPred;
using ir::Constant;
using ir::Function;
using ir::GlobalVar;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Value;
using ir::ValueKind;

//===------------------------------------------------------------------===//
// Phi demotion
//===------------------------------------------------------------------===//

void
demotePhis(Module &module)
{
    for (const auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue;
        // Collect all phis first: demotion adds instructions.
        std::vector<Instr *> phis;
        for (const auto &block : fn->blocks()) {
            for (Instr *phi : block->phis())
                phis.push_back(phi);
        }
        if (phis.empty())
            continue;

        std::unordered_map<Instr *, Instr *> slot_of;
        for (Instr *phi : phis) {
            auto slot = module.newInstr(Opcode::Alloca,
                                                IrType::ptrTy());
            slot->allocatedType = phi->type();
            slot->setId(module.nextValueId());
            slot_of[phi] = fn->entry()->insertBefore(0, std::move(slot));
        }

        // Per (block, predecessor) edge: read the *old* slot values of
        // any same-block phi sources first, then perform all stores —
        // phis assign in parallel, and interleaving loads with stores
        // would corrupt swap patterns (p1 <- p2, p2 <- p1).
        std::unordered_map<BasicBlock *, std::vector<Instr *>> by_block;
        for (Instr *phi : phis)
            by_block[phi->parent()].push_back(phi);
        for (auto &[block, block_phis] : by_block) {
            std::unordered_set<BasicBlock *> seen;
            for (size_t i = 0;
                 i < block_phis[0]->blockOperands().size(); ++i) {
                BasicBlock *pred = block_phis[0]->blockOperands()[i];
                if (!seen.insert(pred).second)
                    continue; // multi-edge: one copy per pred suffices
                size_t insert_at = pred->indexOf(pred->terminator());
                std::vector<std::pair<Value *, Instr *>> copies;
                for (Instr *phi : block_phis) {
                    Value *incoming = phi->incomingValueFor(pred);
                    Value *source = incoming;
                    if (incoming->isInstruction()) {
                        auto *inc = static_cast<Instr *>(incoming);
                        if (inc->opcode() == Opcode::Phi &&
                            inc->parent() == block) {
                            auto load = module.newInstr(
                                Opcode::Load, inc->type());
                            load->addOperand(slot_of.at(inc));
                            load->setId(module.nextValueId());
                            source = pred->insertBefore(
                                insert_at++, std::move(load));
                        }
                    }
                    copies.emplace_back(source, slot_of.at(phi));
                }
                for (auto &[source, slot] : copies) {
                    auto store = module.newInstr(
                        Opcode::Store, IrType::voidTy());
                    store->addOperand(source);
                    store->addOperand(slot);
                    pred->insertBefore(insert_at++, std::move(store));
                }
            }
        }

        // Replace each phi with a load at its block's start.
        for (Instr *phi : phis) {
            BasicBlock *block = phi->parent();
            auto load = module.newInstr(Opcode::Load,
                                                phi->type());
            load->addOperand(slot_of.at(phi));
            load->setId(module.nextValueId());
            Instr *placed = block->insertBefore(block->indexOf(phi),
                                                std::move(load));
            // Remove incoming operands before RAUW in case the phi
            // references itself.
            while (phi->numOperands() > 0)
                phi->removeIncoming(phi->numOperands() - 1);
            phi->replaceAllUsesWith(placed);
            block->erase(phi);
        }
    }
}

//===------------------------------------------------------------------===//
// Register allocation
//===------------------------------------------------------------------===//

namespace {

constexpr unsigned kNumRegs = 8;
const char *kRegNames[kNumRegs] = {"%r8",  "%r9",  "%r10", "%r11",
                                   "%r12", "%r13", "%r14", "%r15"};

/** Where a value lives at emission time. */
struct Location {
    enum class Kind { None, Reg, Stack } kind = Kind::None;
    unsigned index = 0; ///< register number or frame slot

    static Location
    reg(unsigned r)
    {
        return {Kind::Reg, r};
    }
    static Location
    stack(unsigned slot)
    {
        return {Kind::Stack, slot};
    }
};

struct Interval {
    const Instr *value;
    size_t start;
    size_t end;
};

/** Liveness-driven linear scan over one function. */
class Allocator {
  public:
    explicit Allocator(const Function &fn) { run(fn); }

    Location
    locationOf(const Instr *value) const
    {
        auto it = locations_.find(value);
        return it == locations_.end() ? Location{} : it->second;
    }

    /** Frame slots used (spills); allocas are separate. */
    unsigned spillSlots() const { return nextSlot_; }

  private:
    void
    run(const Function &fn)
    {
        // Linearize.
        std::unordered_map<const Instr *, size_t> index;
        std::unordered_map<const BasicBlock *, std::pair<size_t, size_t>>
            block_range;
        size_t counter = 0;
        for (const auto &block : fn.blocks()) {
            size_t begin = counter;
            for (const auto &instr : block->instrs())
                index[instr.get()] = counter++;
            block_range[block.get()] = {begin, counter - 1};
        }

        // Block-level liveness (gen/kill over instruction values).
        std::unordered_map<const BasicBlock *,
                           std::unordered_set<const Instr *>>
            live_out;
        bool iterate = true;
        while (iterate) {
            iterate = false;
            for (const auto &block : fn.blocks()) {
                std::unordered_set<const Instr *> live;
                for (BasicBlock *succ : block->successors()) {
                    // live-in(succ) = (live-out(succ) - defs) + uses;
                    // approximate with upward-exposed scan below by
                    // unioning live-out(succ) plus succ's own uses of
                    // outside values.
                    for (const Instr *value : live_out[succ])
                        live.insert(value);
                    for (const auto &instr : succ->instrs()) {
                        for (const Value *op : instr->operands()) {
                            if (!op->isInstruction())
                                continue;
                            const auto *def =
                                static_cast<const Instr *>(op);
                            if (def->parent() != succ)
                                live.insert(def);
                        }
                    }
                }
                // Remove values defined in the successors themselves is
                // unnecessary: they cannot be live here (defs dominate
                // uses and phis are gone).
                auto &slot = live_out[block.get()];
                size_t before = slot.size();
                slot.insert(live.begin(), live.end());
                iterate |= slot.size() != before;
            }
        }

        // Intervals.
        std::vector<Interval> intervals;
        for (const auto &block : fn.blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->type().isVoid())
                    continue;
                size_t start = index.at(instr.get());
                size_t end = start;
                for (const Instr *user : instr->users())
                    end = std::max(end, index.at(user));
                intervals.push_back({instr.get(), start, end});
            }
        }
        for (const auto &[block, live] : live_out) {
            size_t block_end = block_range.at(block).second;
            for (const Instr *value : live) {
                for (Interval &interval : intervals) {
                    if (interval.value == value)
                        interval.end =
                            std::max(interval.end, block_end);
                }
            }
        }
        std::sort(intervals.begin(), intervals.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.start < b.start;
                  });

        // Linear scan.
        std::vector<std::pair<size_t, unsigned>> active; // (end, reg)
        std::vector<unsigned> free_regs;
        for (unsigned r = 0; r < kNumRegs; ++r)
            free_regs.push_back(kNumRegs - 1 - r);
        for (const Interval &interval : intervals) {
            // Expire.
            for (size_t i = active.size(); i-- > 0;) {
                if (active[i].first < interval.start) {
                    free_regs.push_back(active[i].second);
                    active.erase(active.begin() +
                                 static_cast<ptrdiff_t>(i));
                }
            }
            if (interval.value->opcode() == Opcode::Alloca) {
                // Allocas are frame objects, not register values; their
                // "value" (the address) is rematerialized by lea.
                continue;
            }
            if (!free_regs.empty()) {
                unsigned reg = free_regs.back();
                free_regs.pop_back();
                locations_[interval.value] = Location::reg(reg);
                active.emplace_back(interval.end, reg);
            } else {
                locations_[interval.value] =
                    Location::stack(nextSlot_++);
            }
        }
    }

    std::unordered_map<const Instr *, Location> locations_;
    unsigned nextSlot_ = 0;
};

//===------------------------------------------------------------------===//
// Emission
//===------------------------------------------------------------------===//

class Emitter {
  public:
    explicit Emitter(Module &module) : module_(module) {}

    std::string
    run()
    {
        emitGlobals();
        out_ << "\t.text\n";
        for (const auto &fn : module_.functions()) {
            if (!fn->isDeclaration())
                emitFunction(*fn);
        }
        return out_.str();
    }

  private:
    void
    emitGlobals()
    {
        if (module_.globals().empty())
            return;
        out_ << "\t.data\n";
        for (const auto &g : module_.globals()) {
            if (!g->isInternal())
                out_ << "\t.globl " << g->name() << "\n";
            out_ << g->name() << ":\n";
            uint64_t size = g->elementType().sizeInBytes();
            for (uint64_t i = 0; i < g->count(); ++i) {
                ir::GlobalInit init = i < g->init.size()
                                          ? g->init[i]
                                          : ir::GlobalInit::intValue(0);
                if (init.isAddress()) {
                    out_ << "\t.quad " << init.base->name();
                    if (init.value != 0)
                        out_ << "+" << init.value * static_cast<int64_t>(
                                           init.base->elementType()
                                               .sizeInBytes());
                    out_ << "\n";
                } else {
                    const char *directive =
                        size == 1 ? ".byte"
                        : size == 2 ? ".value"
                        : size == 4 ? ".long"
                                    : ".quad";
                    out_ << "\t" << directive << " " << init.value
                         << "\n";
                }
            }
        }
    }

    std::string
    blockLabel(const Function &fn, const BasicBlock *block) const
    {
        return ".L" + fn.name() + "_" + block->name();
    }

    void
    emitFunction(Function &fn)
    {
        Allocator alloc(fn);

        // Frame layout: allocas first, then spill slots.
        std::unordered_map<const Instr *, unsigned> alloca_offset;
        unsigned frame = 0;
        for (const auto &block : fn.blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() == Opcode::Alloca) {
                    frame += static_cast<unsigned>(
                        instr->allocatedCount *
                        std::max<uint64_t>(
                            instr->allocatedType.sizeInBytes(), 1));
                    frame = (frame + 7) & ~7u;
                    alloca_offset[instr.get()] = frame;
                }
            }
        }
        unsigned spill_base = frame;
        frame += alloc.spillSlots() * 8;
        frame = (frame + 15) & ~15u;

        if (!fn.isInternal())
            out_ << "\t.globl " << fn.name() << "\n";
        out_ << fn.name() << ":\n";
        out_ << "\tpushq %rbp\n";
        out_ << "\tmovq %rsp, %rbp\n";
        if (frame > 0)
            out_ << "\tsubq $" << frame << ", %rsp\n";

        auto slotAddr = [&](unsigned slot) {
            return "-" + std::to_string(spill_base + (slot + 1) * 8) +
                   "(%rbp)";
        };

        /** Materialize @p value into scratch register @p reg. */
        auto fetch = [&](const Value *value, const char *reg) {
            switch (value->valueKind()) {
              case ValueKind::Constant: {
                const auto *c = static_cast<const Constant *>(value);
                out_ << "\tmovq $" << c->value() << ", " << reg << "\n";
                return;
              }
              case ValueKind::Global:
                out_ << "\tleaq "
                     << static_cast<const GlobalVar *>(value)->name()
                     << "(%rip), " << reg << "\n";
                return;
              case ValueKind::Param: {
                // Args land in the frame at fixed offsets (emitted by
                // the call sequence contract below).
                const auto *param =
                    static_cast<const ir::Param *>(value);
                static const char *arg_regs[6] = {"%rdi", "%rsi",
                                                  "%rdx", "%rcx",
                                                  "%rbx", "%rax"};
                if (param->index() < 6) {
                    out_ << "\tmovq " << arg_regs[param->index()]
                         << ", " << reg << "\n";
                }
                return;
              }
              case ValueKind::Instruction: {
                const auto *instr = static_cast<const Instr *>(value);
                if (instr->opcode() == Opcode::Alloca) {
                    out_ << "\tleaq -" << alloca_offset.at(instr)
                         << "(%rbp), " << reg << "\n";
                    return;
                }
                Location loc = alloc.locationOf(instr);
                if (loc.kind == Location::Kind::Reg) {
                    out_ << "\tmovq " << kRegNames[loc.index] << ", "
                         << reg << "\n";
                } else if (loc.kind == Location::Kind::Stack) {
                    out_ << "\tmovq " << slotAddr(loc.index) << ", "
                         << reg << "\n";
                }
                return;
              }
            }
        };

        /** Write %rax into @p instr's home. */
        auto retire = [&](const Instr *instr) {
            Location loc = alloc.locationOf(instr);
            if (loc.kind == Location::Kind::Reg)
                out_ << "\tmovq %rax, " << kRegNames[loc.index] << "\n";
            else if (loc.kind == Location::Kind::Stack)
                out_ << "\tmovq %rax, " << slotAddr(loc.index) << "\n";
        };

        for (const auto &block : fn.blocks()) {
            out_ << blockLabel(fn, block.get()) << ":\n";
            for (const auto &owned : block->instrs()) {
                const Instr *instr = owned.get();
                emitInstr(fn, *instr, fetch, retire);
            }
        }
        out_ << "\n";
    }

    template <typename Fetch, typename Retire>
    void
    emitInstr(const Function &fn, const Instr &instr, Fetch &&fetch,
              Retire &&retire)
    {
        switch (instr.opcode()) {
          case Opcode::Alloca:
            break; // frame object; address rematerialized on use
          case Opcode::Load:
            fetch(instr.operand(0), "%rax");
            out_ << "\tmov" << widthSuffix(instr.type())
                 << " (%rax), " << narrowReg("%rax", instr.type())
                 << "\n";
            retire(&instr);
            break;
          case Opcode::Store:
            fetch(instr.operand(0), "%rax");
            fetch(instr.operand(1), "%rcx");
            out_ << "\tmov" << widthSuffix(instr.operand(0)->type())
                 << " " << narrowReg("%rax", instr.operand(0)->type())
                 << ", (%rcx)\n";
            break;
          case Opcode::Bin: {
            fetch(instr.operand(0), "%rax");
            fetch(instr.operand(1), "%rcx");
            switch (instr.binOp) {
              case BinOp::Add: out_ << "\taddq %rcx, %rax\n"; break;
              case BinOp::Sub: out_ << "\tsubq %rcx, %rax\n"; break;
              case BinOp::Mul: out_ << "\timulq %rcx, %rax\n"; break;
              case BinOp::Div:
                out_ << "\tcqto\n\tidivq %rcx\n";
                break;
              case BinOp::Rem:
                out_ << "\tcqto\n\tidivq %rcx\n\tmovq %rdx, %rax\n";
                break;
              case BinOp::Shl:
                out_ << "\tmovq %rcx, %rcx\n\tshlq %cl, %rax\n";
                break;
              case BinOp::Shr:
                out_ << (instr.type().isSigned ? "\tsarq %cl, %rax\n"
                                               : "\tshrq %cl, %rax\n");
                break;
              case BinOp::And: out_ << "\tandq %rcx, %rax\n"; break;
              case BinOp::Or: out_ << "\torq %rcx, %rax\n"; break;
              case BinOp::Xor: out_ << "\txorq %rcx, %rax\n"; break;
            }
            retire(&instr);
            break;
          }
          case Opcode::Cmp: {
            fetch(instr.operand(0), "%rax");
            fetch(instr.operand(1), "%rcx");
            out_ << "\tcmpq %rcx, %rax\n";
            out_ << "\tset" << setcc(instr.cmpPred) << " %al\n";
            out_ << "\tmovzbq %al, %rax\n";
            retire(&instr);
            break;
          }
          case Opcode::Cast: {
            fetch(instr.operand(0), "%rax");
            // Canonical-form values: re-extension is a masked move.
            out_ << "\t# " << ir::castOpName(instr.castOp) << " to "
                 << instr.type().str() << "\n";
            retire(&instr);
            break;
          }
          case Opcode::Freeze:
            fetch(instr.operand(0), "%rax");
            retire(&instr);
            break;
          case Opcode::Gep: {
            fetch(instr.operand(0), "%rax");
            fetch(instr.operand(1), "%rcx");
            uint64_t size = instr.gepElemSize;
            if (size == 1 || size == 2 || size == 4 || size == 8) {
                out_ << "\tleaq (%rax,%rcx," << size << "), %rax\n";
            } else {
                out_ << "\timulq $" << size
                     << ", %rcx, %rcx\n\taddq %rcx, %rax\n";
            }
            retire(&instr);
            break;
          }
          case Opcode::Select:
            fetch(instr.operand(2), "%rdx");
            fetch(instr.operand(1), "%rcx");
            fetch(instr.operand(0), "%rax");
            out_ << "\ttestq %rax, %rax\n";
            out_ << "\tcmovzq %rdx, %rcx\n";
            out_ << "\tmovq %rcx, %rax\n";
            retire(&instr);
            break;
          case Opcode::Call: {
            static const char *arg_regs[6] = {"%rdi", "%rsi", "%rdx",
                                              "%rcx", "%rbx", "%rax"};
            for (size_t i = 0; i < instr.numOperands() && i < 6; ++i)
                fetch(instr.operand(i), arg_regs[i]);
            out_ << "\tcall " << instr.callee->name() << "\n";
            if (!instr.type().isVoid())
                retire(&instr);
            break;
          }
          case Opcode::Ret:
            if (instr.numOperands() == 1)
                fetch(instr.operand(0), "%rax");
            else
                out_ << "\txorl %eax, %eax\n";
            out_ << "\tleave\n\tret\n";
            break;
          case Opcode::Br:
            out_ << "\tjmp " << blockLabel(fn, instr.blockOperands()[0])
                 << "\n";
            break;
          case Opcode::CondBr:
            fetch(instr.operand(0), "%rax");
            out_ << "\ttestq %rax, %rax\n";
            out_ << "\tjne " << blockLabel(fn, instr.blockOperands()[0])
                 << "\n";
            out_ << "\tjmp " << blockLabel(fn, instr.blockOperands()[1])
                 << "\n";
            break;
          case Opcode::Switch: {
            fetch(instr.operand(0), "%rax");
            for (size_t i = 0; i < instr.caseValues.size(); ++i) {
                out_ << "\tcmpq $" << instr.caseValues[i]
                     << ", %rax\n";
                out_ << "\tje "
                     << blockLabel(fn, instr.blockOperands()[i + 1])
                     << "\n";
            }
            out_ << "\tjmp " << blockLabel(fn, instr.blockOperands()[0])
                 << "\n";
            break;
          }
          case Opcode::Unreachable:
            out_ << "\tud2\n";
            break;
          case Opcode::Phi:
            assert(false && "phis must be demoted before emission");
            break;
        }
    }

    static const char *
    widthSuffix(IrType type)
    {
        if (type.isPtr())
            return "q";
        switch (type.bits) {
          case 8: return "b";
          case 16: return "w";
          case 32: return "l";
          default: return "q";
        }
    }

    static std::string
    narrowReg(const std::string &reg64, IrType type)
    {
        // Only the scratch registers are narrowed; map %rax/%rcx.
        if (type.isPtr() || type.bits == 64)
            return reg64;
        std::string base = reg64 == "%rax" ? "a" : "c";
        switch (type.bits) {
          case 8: return "%" + base + "l";
          case 16: return "%" + base + "x";
          default: return "%e" + base + "x";
        }
    }

    static const char *
    setcc(CmpPred pred)
    {
        switch (pred) {
          case CmpPred::Eq: return "e";
          case CmpPred::Ne: return "ne";
          case CmpPred::Slt: return "l";
          case CmpPred::Sle: return "le";
          case CmpPred::Sgt: return "g";
          case CmpPred::Sge: return "ge";
          case CmpPred::Ult: return "b";
          case CmpPred::Ule: return "be";
          case CmpPred::Ugt: return "a";
          case CmpPred::Uge: return "ae";
        }
        return "e";
    }

    Module &module_;
    std::ostringstream out_;
};

} // namespace

std::string
emitAssembly(Module &module)
{
    support::TraceSpan span("codegen", "compile");
    demotePhis(module);
    Emitter emitter(module);
    return emitter.run();
}

std::set<std::string>
calledSymbols(const std::string &assembly)
{
    std::set<std::string> symbols;
    size_t pos = 0;
    while (pos < assembly.size()) {
        size_t eol = assembly.find('\n', pos);
        if (eol == std::string::npos)
            eol = assembly.size();
        std::string_view line(assembly.data() + pos, eol - pos);
        // Lines look like "\tcall <symbol>".
        size_t call = line.find("call ");
        if (call != std::string::npos &&
            (call == 0 || line[call - 1] == '\t' ||
             line[call - 1] == ' ')) {
            std::string_view rest = line.substr(call + 5);
            size_t end = rest.find_first_of(" \t");
            symbols.emplace(rest.substr(0, end));
        }
        pos = eol + 1;
    }
    return symbols;
}

bool
containsCall(const std::string &assembly, const std::string &symbol)
{
    return calledSymbols(assembly).count(symbol) != 0;
}

} // namespace dce::backend
