/**
 * @file
 * Optimization-marker instrumentation — step (1) of the paper's
 * approach (Figure 1). Inserts a call to a fresh, body-less function
 * `DCEMarkerN()` at the top of every source construct that roughly
 * corresponds to a basic block: if/else bodies, loop bodies, switch
 * arms, and the function tail following an if that returns. Because
 * the callees have no bodies, no compiler can analyze or inline them;
 * a marker disappears from the generated assembly iff the surrounding
 * block was proven dead.
 */
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "support/markers.hpp"
#include "support/source_location.hpp"

namespace dce::instrument {

// The marker-name helpers live in support/markers.hpp so the opt and
// backend layers can use them without depending on the front end;
// re-exported here for the historical spelling.
using support::kMarkerPrefix;
using support::markerIndex;
using support::markerName;

/** Which construct a marker was placed in (for reports). */
enum class MarkerSite {
    IfThen,
    IfElse,
    LoopBody,
    SwitchArm,
    AfterConditionalReturn,
};

const char *markerSiteName(MarkerSite site);

/** Where one marker went. */
struct MarkerInfo {
    unsigned index = 0;
    MarkerSite site = MarkerSite::IfThen;
    std::string function; ///< enclosing function name
    SourceLoc loc;        ///< location of the instrumented construct
};

/** Result of instrumenting one translation unit. */
struct Instrumented {
    std::unique_ptr<lang::TranslationUnit> unit;
    std::vector<MarkerInfo> markers;

    unsigned markerCount() const
    {
        return static_cast<unsigned>(markers.size());
    }
};

/**
 * Instrument a copy of @p unit (the original is untouched). The result
 * has been re-checked by Sema.
 */
Instrumented instrumentUnit(const lang::TranslationUnit &unit);

/** Convenience: parse, instrument, and return the printed source too. */
Instrumented instrumentSource(const std::string &source);

} // namespace dce::instrument
