#include "instrument/instrument.hpp"

#include <cassert>

#include "lang/parser.hpp"
#include "lang/sema.hpp"
#include "support/trace.hpp"

namespace dce::instrument {

using namespace lang;

const char *
markerSiteName(MarkerSite site)
{
    switch (site) {
      case MarkerSite::IfThen: return "if-then";
      case MarkerSite::IfElse: return "if-else";
      case MarkerSite::LoopBody: return "loop-body";
      case MarkerSite::SwitchArm: return "switch-arm";
      case MarkerSite::AfterConditionalReturn:
        return "after-conditional-return";
    }
    return "?";
}

namespace {

class Instrumenter {
  public:
    explicit Instrumenter(const TranslationUnit &unit)
        : result_{unit.clone(), {}}
    {
    }

    Instrumented
    run()
    {
        for (auto &fn : result_.unit->functions) {
            if (fn->isDefinition()) {
                currentFunction_ = fn->name;
                instrumentBlock(*fn->body);
            }
        }
        declareMarkers();

        DiagnosticEngine diags;
        Sema sema(diags);
        sema.check(*result_.unit);
        assert(!diags.hasErrors() &&
               "instrumentation broke the program");
        (void)diags;
        return std::move(result_);
    }

  private:
    /** Insert a fresh marker call at the front of @p block. */
    void
    insertMarker(BlockStmt &block, MarkerSite site, SourceLoc loc)
    {
        unsigned index = static_cast<unsigned>(result_.markers.size());
        auto call = std::make_unique<CallExpr>(markerName(index),
                                               std::vector<ExprPtr>{});
        auto stmt = std::make_unique<ExprStmt>(std::move(call));
        block.stmts.insert(block.stmts.begin(), std::move(stmt));
        result_.markers.push_back(
            {index, site, currentFunction_, loc});
    }

    /** Ensure a statement in a body position is a block (wrapping a
     * single statement if necessary) and return it. */
    BlockStmt &
    asBlock(StmtPtr &slot)
    {
        if (slot->kind() != StmtKind::Block) {
            auto wrapper = std::make_unique<BlockStmt>();
            wrapper->loc = slot->loc;
            wrapper->stmts.push_back(std::move(slot));
            slot = std::move(wrapper);
        }
        return static_cast<BlockStmt &>(*slot);
    }

    /** Does this statement (or any statement nested un-conditionally
     * in a block) return? Used for the after-conditional-return site. */
    static bool
    containsReturn(const Stmt &stmt)
    {
        if (stmt.kind() == StmtKind::Return)
            return true;
        if (stmt.kind() == StmtKind::Block) {
            for (const auto &child :
                 static_cast<const BlockStmt &>(stmt).stmts) {
                if (containsReturn(*child))
                    return true;
            }
        }
        return false;
    }

    void
    instrumentStmt(Stmt &stmt)
    {
        switch (stmt.kind()) {
          case StmtKind::Block:
            instrumentBlock(static_cast<BlockStmt &>(stmt));
            break;
          case StmtKind::If: {
            auto &if_stmt = static_cast<IfStmt &>(stmt);
            BlockStmt &then_block = asBlock(if_stmt.thenStmt);
            instrumentBlock(then_block);
            insertMarker(then_block, MarkerSite::IfThen, if_stmt.loc);
            if (if_stmt.elseStmt) {
                BlockStmt &else_block = asBlock(if_stmt.elseStmt);
                instrumentBlock(else_block);
                insertMarker(else_block, MarkerSite::IfElse,
                             if_stmt.loc);
            }
            break;
          }
          case StmtKind::While: {
            auto &loop = static_cast<WhileStmt &>(stmt);
            BlockStmt &body = asBlock(loop.body);
            instrumentBlock(body);
            insertMarker(body, MarkerSite::LoopBody, loop.loc);
            break;
          }
          case StmtKind::DoWhile: {
            auto &loop = static_cast<DoWhileStmt &>(stmt);
            BlockStmt &body = asBlock(loop.body);
            instrumentBlock(body);
            insertMarker(body, MarkerSite::LoopBody, loop.loc);
            break;
          }
          case StmtKind::For: {
            auto &loop = static_cast<ForStmt &>(stmt);
            BlockStmt &body = asBlock(loop.body);
            instrumentBlock(body);
            insertMarker(body, MarkerSite::LoopBody, loop.loc);
            break;
          }
          case StmtKind::Switch: {
            auto &switch_stmt = static_cast<SwitchStmt &>(stmt);
            for (SwitchCase &arm : switch_stmt.cases) {
                instrumentBlock(*arm.body);
                insertMarker(*arm.body, MarkerSite::SwitchArm,
                             arm.loc);
            }
            break;
          }
          default:
            break;
        }
    }

    void
    instrumentBlock(BlockStmt &block)
    {
        // Instrument children first (indices then read top-down), then
        // add after-conditional-return markers for the tail following
        // each returning if.
        for (StmtPtr &child : block.stmts)
            instrumentStmt(*child);

        for (size_t i = 0; i < block.stmts.size(); ++i) {
            Stmt &child = *block.stmts[i];
            if (child.kind() != StmtKind::If)
                continue;
            auto &if_stmt = static_cast<IfStmt &>(child);
            bool returns = containsReturn(*if_stmt.thenStmt) ||
                           (if_stmt.elseStmt &&
                            containsReturn(*if_stmt.elseStmt));
            bool has_tail = i + 1 < block.stmts.size();
            if (!returns || !has_tail)
                continue;
            unsigned index =
                static_cast<unsigned>(result_.markers.size());
            auto call = std::make_unique<CallExpr>(
                markerName(index), std::vector<ExprPtr>{});
            auto marker_stmt =
                std::make_unique<ExprStmt>(std::move(call));
            block.stmts.insert(
                block.stmts.begin() + static_cast<ptrdiff_t>(i + 1),
                std::move(marker_stmt));
            result_.markers.push_back(
                {index, MarkerSite::AfterConditionalReturn,
                 currentFunction_, if_stmt.loc});
            ++i; // skip the marker we just inserted
        }
    }

    void
    declareMarkers()
    {
        // Declarations go in front so every call site sees them; the
        // declOrder bookkeeping keeps printing stable.
        for (const MarkerInfo &marker : result_.markers) {
            auto decl = std::make_unique<FunctionDecl>(
                markerName(marker.index),
                result_.unit->types->voidType());
            result_.unit->functions.insert(
                result_.unit->functions.begin(), std::move(decl));
        }
        // Rebuild declOrder: all marker declarations first, then the
        // original order shifted.
        auto &order = result_.unit->declOrder;
        for (auto &[is_function, index] : order) {
            if (is_function)
                index += result_.markers.size();
        }
        std::vector<std::pair<bool, size_t>> fresh;
        for (size_t i = 0; i < result_.markers.size(); ++i)
            fresh.emplace_back(true, i);
        order.insert(order.begin(), fresh.begin(), fresh.end());
    }

    Instrumented result_;
    std::string currentFunction_;
};

} // namespace

Instrumented
instrumentUnit(const TranslationUnit &unit)
{
    support::TraceSpan span("instrument", "campaign");
    return Instrumenter(unit).run();
}

Instrumented
instrumentSource(const std::string &source)
{
    DiagnosticEngine diags;
    auto unit = parseAndCheck(source, diags);
    assert(unit && "instrumentSource requires valid MiniC");
    return instrumentUnit(*unit);
}

} // namespace dce::instrument
