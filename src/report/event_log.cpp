#include "report/event_log.hpp"

#include <algorithm>
#include <cstdio>

namespace dce::report {

EventLog::EventLog(support::MetricsRegistry *metrics)
{
    support::MetricsRegistry &registry =
        metrics ? *metrics : support::MetricsRegistry::global();
    emitted_ = &registry.counter("report.events");
}

void
EventLog::emit(support::Event event)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events_.push_back(std::move(event));
    }
    emitted_->add();
}

size_t
EventLog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
EventLog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::vector<support::Event>
EventLog::sorted() const
{
    std::vector<support::Event> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot = events_;
    }
    // Stable: same-key events come from a single emitter (one worker
    // owns a chunk, one worker owns a finding), so their relative
    // buffer order is deterministic even though unrelated events from
    // other workers interleave between them.
    std::stable_sort(snapshot.begin(), snapshot.end(),
                     [](const support::Event &a,
                        const support::Event &b) {
                         return a.key() < b.key();
                     });
    return snapshot;
}

std::string
EventLog::toJsonl() const
{
    std::vector<support::Event> events = sorted();
    std::string out;
    out.reserve(events.size() * 96);
    for (const support::Event &event : events) {
        event.appendJson(out);
        out += '\n';
    }
    return out;
}

bool
EventLog::write(const std::string &path) const
{
    std::string body = toJsonl();
    std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        return false;
    bool ok =
        std::fwrite(body.data(), 1, body.size(), file) == body.size();
    ok = std::fflush(file) == 0 && ok;
    ok = std::fclose(file) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace dce::report
