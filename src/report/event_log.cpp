#include "report/event_log.hpp"

#include <algorithm>
#include <cstdio>

namespace dce::report {

EventLog::EventLog(support::MetricsRegistry *metrics)
{
    support::MetricsRegistry &registry =
        metrics ? *metrics : support::MetricsRegistry::global();
    emitted_ = &registry.counter("report.events");
}

void
EventLog::emit(support::Event event)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events_.push_back(std::move(event));
    }
    emitted_->add();
}

size_t
EventLog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
EventLog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::vector<support::Event>
EventLog::sorted() const
{
    std::vector<support::Event> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot = events_;
    }
    // Stable: same-key events come from a single emitter (one worker
    // owns a chunk, one worker owns a finding), so their relative
    // buffer order is deterministic even though unrelated events from
    // other workers interleave between them.
    std::stable_sort(snapshot.begin(), snapshot.end(),
                     [](const support::Event &a,
                        const support::Event &b) {
                         return a.key() < b.key();
                     });
    return snapshot;
}

std::vector<support::Event>
EventLog::tail(size_t since, size_t max, size_t *total) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (total)
        *total = events_.size();
    std::vector<support::Event> page;
    if (since >= events_.size() || max == 0)
        return page;
    size_t end = std::min(events_.size(), since + max);
    page.assign(events_.begin() + ptrdiff_t(since),
                events_.begin() + ptrdiff_t(end));
    return page;
}

std::string
EventLog::toJsonl() const
{
    std::vector<support::Event> events = sorted();
    std::string out;
    out.reserve(events.size() * 96);
    for (const support::Event &event : events) {
        event.appendJson(out);
        out += '\n';
    }
    return out;
}

bool
EventLog::write(const std::string &path) const
{
    std::string body = toJsonl();
    std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        return false;
    bool ok =
        std::fwrite(body.data(), 1, body.size(), file) == body.size();
    ok = std::fflush(file) == 0 && ok;
    ok = std::fclose(file) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace dce::report
