/**
 * @file
 * Provenance dossiers (DESIGN.md §12): everything the pipeline knows
 * about one finding, assembled from the corpus store and (optionally)
 * the structured event log, keyed by the finding's VerdictKey
 * fingerprint — the same string the verdict cache and the events
 * carry. A dossier walks the full lineage: generator seed → canonical
 * program text → per-build eliminated/missed marker sets → killer-pass
 * attribution → cached reduction verdict → reduction trajectory.
 *
 * Dossiers are derived data: buildDossier never writes, and everything
 * in it comes from store contents covered by the checkpoint/resume
 * bit-identity contract (plus the deterministic event log), so a
 * dossier built from a killed-and-resumed store equals one from an
 * uninterrupted run.
 */
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/triage.hpp"
#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "report/event_log.hpp"

namespace dce::report {

/** One build's verdict on the dossier's program. */
struct DossierBuild {
    std::string name; ///< BuildSpec::name(), "build<i>" w/o checkpoint
    uint64_t aliveMarkers = 0;  ///< |alive in assembly|
    uint64_t missedMarkers = 0; ///< |missed| (truly dead but present)
    /** Does this build miss the dossier's (first) marker? */
    bool missesMarker = false;
    /** Pass that eliminated the marker, when the build eliminated it
     * and the campaign ran with collectRemarks ("" otherwise). */
    std::string killerPass;
};

/** The reduction trajectory, recovered from a reduction_finished
 * event when an event log is supplied. */
struct DossierReduction {
    uint64_t tests = 0;
    uint64_t linesBefore = 0;
    uint64_t linesAfter = 0;
    uint64_t passes = 0;
};

/** Full lineage of one finding. */
struct Dossier {
    std::string fingerprint;
    // Parsed out of the fingerprint.
    std::string programHash;
    std::vector<unsigned> markers;
    std::string missedBy;
    std::string reference;

    // From the stored record for programHash.
    uint64_t seed = 0;
    uint64_t slot = 0;
    uint64_t chunk = 0;
    unsigned markerCount = 0;
    uint64_t trueDead = 0;
    uint64_t trueAlive = 0;
    std::vector<DossierBuild> builds;

    std::string source; ///< canonical program text

    std::optional<core::CachedVerdict> verdict;
    std::optional<DossierReduction> reduction;
};

/**
 * Parse @p fingerprint ("prog:<hash>|markers:<m,...>|by:<b>|ref:<r>"
 * — VerdictKey::fingerprint's format). nullopt on malformed input.
 */
std::optional<core::VerdictKey>
parseFingerprint(const std::string &fingerprint);

/**
 * Assemble the dossier for @p fingerprint from @p store, consulting
 * @p log (may be null) for the reduction trajectory. Fails with
 * NotFound when no stored record carries the fingerprint's program
 * hash, and with the store's own classification on read failure.
 */
std::optional<Dossier>
buildDossier(corpus::CorpusStore &store, const EventLog *log,
             const std::string &fingerprint,
             corpus::StoreError *error = nullptr);

/** The dossier as one pretty-printed JSON object. */
std::string dossierJson(const Dossier &dossier);

/** The dossier as a human-readable Markdown document. */
std::string dossierMarkdown(const Dossier &dossier);

} // namespace dce::report
