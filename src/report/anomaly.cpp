#include "report/anomaly.hpp"

#include <chrono>
#include <cstdio>

namespace dce::report {

namespace {

uint64_t
steadyUs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
formatRate(double rate)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f", rate);
    return buffer;
}

} // namespace

ThroughputMonitor::ThroughputMonitor(ThroughputMonitorOptions options)
    : options_(std::move(options))
{
    if (!options_.registry)
        options_.registry = &support::MetricsRegistry::global();
    degradedCounter_ =
        &options_.registry->counter("report.throughput_degraded");
    recoveredCounter_ =
        &options_.registry->counter("report.throughput_recovered");
}

uint64_t
ThroughputMonitor::now() const
{
    return options_.clock ? options_.clock() : steadyUs();
}

bool
ThroughputMonitor::degraded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return degradedNow_;
}

double
ThroughputMonitor::baselineRate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_ ? ewma_ : 0.0;
}

bool
ThroughputMonitor::observe(uint64_t total_units)
{
    bool fired_degraded = false;
    bool fired_recovered = false;
    uint64_t ordinal = 0;
    double rate = 0.0;
    double baseline = 0.0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        uint64_t current_us = now();
        if (!havePrevious_) {
            havePrevious_ = true;
            lastUnits_ = total_units;
            lastUs_ = current_us;
            return false;
        }
        if (current_us <= lastUs_ || total_units < lastUnits_) {
            // Clock or counter went backwards (restart, merge): treat
            // as a fresh baseline observation, don't divide by <= 0.
            lastUnits_ = total_units;
            lastUs_ = current_us;
            return false;
        }
        double dt =
            static_cast<double>(current_us - lastUs_) / 1'000'000.0;
        rate = static_cast<double>(total_units - lastUnits_) / dt;
        lastUnits_ = total_units;
        lastUs_ = current_us;

        if (samples_ == 0)
            ewma_ = rate;
        baseline = ewma_;
        ++samples_;

        bool armed = samples_ > options_.warmupSamples &&
                     baseline > options_.minBaselineRate;
        if (!degradedNow_) {
            if (armed && rate < options_.degradeRatio * baseline) {
                // Latch; the EWMA freezes so the slump can't erode
                // the healthy baseline and self-declare recovery.
                degradedNow_ = true;
                fired_degraded = true;
                ordinal = degradations_.fetch_add(1) + 1;
            } else {
                ewma_ = options_.alpha * rate +
                        (1.0 - options_.alpha) * ewma_;
            }
        } else if (rate >= options_.recoverRatio * baseline) {
            degradedNow_ = false;
            fired_recovered = true;
            ordinal = degradations_.load();
            ewma_ = options_.alpha * rate +
                    (1.0 - options_.alpha) * ewma_;
        }
    }
    if (fired_degraded) {
        degradedCounter_->add();
        if (options_.events) {
            // kPhaseOps like the watchdog's stall events; minors 2/3
            // keep the keys disjoint from watchdog_stall/_recovered
            // (minors 0/1) at the same ordinal.
            support::Event event("throughput_degraded",
                                 {support::kPhaseOps, ordinal, 2});
            event.num("degradation", ordinal)
                .str("rate", formatRate(rate))
                .str("baseline", formatRate(baseline));
            options_.events->emit(std::move(event));
        }
    }
    if (fired_recovered) {
        recoveredCounter_->add();
        if (options_.events) {
            support::Event event("throughput_recovered",
                                 {support::kPhaseOps, ordinal, 3});
            event.num("degradation", ordinal)
                .str("rate", formatRate(rate))
                .str("baseline", formatRate(baseline));
            options_.events->emit(std::move(event));
        }
    }
    return fired_degraded || fired_recovered;
}

} // namespace dce::report
