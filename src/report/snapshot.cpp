#include "report/snapshot.hpp"

#include <chrono>
#include <cstdio>

#include "support/json.hpp"

namespace dce::report {

namespace {

uint64_t
wallMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

} // namespace

SnapshotWriter::SnapshotWriter(SnapshotOptions options)
    : options_(std::move(options))
{
    if (!options_.registry)
        options_.registry = &support::MetricsRegistry::global();
}

SnapshotWriter::~SnapshotWriter()
{
    stop();
}

std::string
SnapshotWriter::renderSnapshot()
{
    uint64_t seq = sequence_.fetch_add(1);
    std::string out = "{\"seq\":" + std::to_string(seq) +
                      ",\"wall_ms\":" + std::to_string(wallMs()) +
                      ",\"counters\":{";
    bool first = true;
    for (const auto &[key, value] : options_.registry->counters()) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        support::appendJsonEscaped(out, key);
        out += "\":";
        out += std::to_string(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[key, snapshot] :
         options_.registry->histograms()) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        support::appendJsonEscaped(out, key);
        out += "\":{\"count\":";
        out += std::to_string(snapshot.count);
        out += ",\"sum\":";
        out += std::to_string(snapshot.sum);
        out += '}';
    }
    out += "}}";
    return out;
}

bool
SnapshotWriter::snapshot()
{
    std::string line = renderSnapshot();
    line += '\n';
    std::lock_guard<std::mutex> lock(mutex_);
    std::FILE *file = std::fopen(options_.path.c_str(), "ab");
    if (!file)
        return false;
    bool ok =
        std::fwrite(line.data(), 1, line.size(), file) == line.size();
    ok = std::fclose(file) == 0 && ok;
    return ok;
}

void
SnapshotWriter::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (running_)
            return;
        stopRequested_ = false;
        running_ = true;
    }
    sampler_ = std::thread([this] { run(); });
}

void
SnapshotWriter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    wake_.notify_all();
    sampler_.join();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        running_ = false;
    }
    snapshot(); // final sample so the file always covers shutdown
}

void
SnapshotWriter::run()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait_for(
                lock, std::chrono::milliseconds(options_.intervalMs),
                [this] { return stopRequested_; });
            if (stopRequested_)
                return;
        }
        snapshot();
    }
}

} // namespace dce::report
