#include "report/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "core/triage.hpp"
#include "report/dossier.hpp"
#include "support/json.hpp"

namespace fs = std::filesystem;

namespace dce::report {

namespace {

void
setError(corpus::StoreError *error, corpus::StoreStatus status,
         std::string message)
{
    if (error) {
        error->status = status;
        error->message = std::move(message);
    }
}

bool
writeFile(const fs::path &path, const std::string &text,
          corpus::StoreError *error)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(),
              static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
        setError(error, corpus::StoreStatus::IoError,
                 "write " + path.string() + " failed");
        return false;
    }
    return true;
}

/** Minimal inline-HTML escaping for the Markdown converter. */
std::string
htmlEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '&':
            out += "&amp;";
            break;
        case '<':
            out += "&lt;";
            break;
        case '>':
            out += "&gt;";
            break;
        default:
            out += c;
        }
    }
    return out;
}

/** Split @p text into lines (trailing newline tolerated). */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    size_t begin = 0;
    while (begin < text.size()) {
        size_t end = text.find('\n', begin);
        if (end == std::string::npos)
            end = text.size();
        lines.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return lines;
}

/** Render one Markdown table row's cells as HTML @p tag cells. */
std::string
tableRow(const std::string &line, const char *tag)
{
    std::string out = "<tr>";
    size_t begin = 1; // skip the leading '|'
    while (begin < line.size()) {
        size_t bar = line.find('|', begin);
        if (bar == std::string::npos)
            break;
        std::string cell = line.substr(begin, bar - begin);
        // Trim the cell.
        size_t first = cell.find_first_not_of(' ');
        size_t last = cell.find_last_not_of(' ');
        cell = first == std::string::npos
                   ? ""
                   : cell.substr(first, last - first + 1);
        out += std::string("<") + tag + ">" + htmlEscape(cell) +
               "</" + tag + ">";
        begin = bar + 1;
    }
    out += "</tr>\n";
    return out;
}

} // namespace

std::optional<CampaignReportData>
collectReportData(corpus::CorpusStore &store,
                  corpus::StoreError *error)
{
    std::optional<corpus::CheckpointState> state =
        corpus::readCheckpointState(store, error);
    if (!state)
        return std::nullopt;

    CampaignReportData data;
    data.state = std::move(*state);
    const corpus::CampaignPlan &plan = data.state.plan;

    unsigned chunk_size = plan.chunkSize ? plan.chunkSize : 1;
    data.totalChunks = (plan.count + chunk_size - 1) / chunk_size;
    data.complete = data.state.completed.size() == data.totalChunks;

    // Reconstruct the campaign positionally: records land in their
    // plan slot, uncommitted slots stay invalid (and are excluded
    // from every total by the valid flag).
    data.campaign.builds = plan.builds;
    data.campaign.programs.resize(plan.count);
    corpus::StoreError load_error;
    std::vector<corpus::StoredRecord> records =
        store.loadRecords(&load_error);
    if (!load_error.ok()) {
        setError(error, load_error.status, load_error.message);
        return std::nullopt;
    }
    std::map<uint64_t, std::string> hash_by_slot;
    for (corpus::StoredRecord &stored : records) {
        // Checkpoint-committed chunks only: records landed after the
        // last checkpoint are durable but not yet *named*, and the
        // report must describe exactly the state a resume would keep —
        // it is also what makes a live /report render equal the
        // post-crash on-disk render of the same store.
        if (!data.state.completed.count(stored.chunk))
            continue;
        ++data.storedRecords;
        if (stored.record.valid)
            ++data.validRecords;
        hash_by_slot[stored.slot] = stored.programHash;
        if (stored.slot < data.campaign.programs.size())
            data.campaign.programs[stored.slot] =
                std::move(stored.record);
    }
    data.campaign.metrics.seedsDone = data.storedRecords;

    // Fingerprint the checkpointed findings — the key that links the
    // findings index, the dossiers, and the verdict cache.
    for (const corpus::StoredFinding &stored : data.state.findings) {
        auto hash = hash_by_slot.find(stored.slot);
        if (hash == hash_by_slot.end()) {
            data.fingerprints.push_back("");
            continue;
        }
        core::VerdictKey key;
        key.programHash = hash->second;
        key.markers = {stored.finding.marker};
        key.missedBy = stored.finding.missedBy.name();
        key.reference = stored.finding.reference.name();
        data.fingerprints.push_back(key.fingerprint());
    }

    // The metamorphic analysis is optional state: a store that never
    // ran one simply has no section. A damaged equiv.json is treated
    // the same (the seal catches it), never a report failure.
    if (std::optional<std::string> line = store.readEquivState())
        data.equiv = equiv::readEquivSummary(*line);

    setError(error, corpus::StoreStatus::Ok, "");
    return data;
}

std::vector<CampaignReportData::StageLatency>
collectStageLatency(const support::MetricsRegistry &registry)
{
    constexpr std::string_view prefix = "campaign.stage_us{";
    std::vector<CampaignReportData::StageLatency> out;
    for (const auto &[key, snapshot] : registry.histograms()) {
        if (key.compare(0, prefix.size(), prefix) != 0 ||
            key.back() != '}')
            continue;
        CampaignReportData::StageLatency row;
        row.stage = key.substr(prefix.size(),
                               key.size() - prefix.size() - 1);
        row.count = snapshot.count;
        row.meanUs = snapshot.count
                         ? static_cast<double>(snapshot.sum) /
                               static_cast<double>(snapshot.count)
                         : 0.0;
        row.p50Us = support::Histogram::percentileFromBuckets(
            snapshot.buckets, snapshot.count, 0.5);
        row.p90Us = support::Histogram::percentileFromBuckets(
            snapshot.buckets, snapshot.count, 0.9);
        row.p99Us = support::Histogram::percentileFromBuckets(
            snapshot.buckets, snapshot.count, 0.99);
        out.push_back(std::move(row));
    }
    return out;
}

std::string
renderCampaignReportMarkdown(const CampaignReportData &data)
{
    const corpus::CampaignPlan &plan = data.state.plan;
    const core::Campaign &campaign = data.campaign;

    std::string out = "# Campaign report\n\n";
    out += data.complete
               ? "Status: **complete** — every chunk committed.\n\n"
               : "Status: **incomplete** — " +
                     std::to_string(data.state.completed.size()) +
                     " of " + std::to_string(data.totalChunks) +
                     " chunks committed at the last checkpoint.\n\n";

    out += "## Plan\n\n";
    out += "| field | value |\n|---|---|\n";
    out += "| seeds | " + std::to_string(plan.count) + " |\n";
    out += "| seed derivation | ";
    out += plan.randomSeeds
               ? "random (stream seed " +
                     std::to_string(plan.streamSeed) + ")"
               : "sequential from " + std::to_string(plan.firstSeed);
    out += " |\n";
    out += "| chunk size | " + std::to_string(plan.chunkSize) + " |\n";
    out += "| chunks | " + std::to_string(data.totalChunks) + " |\n";
    out += "| stored records | " +
           std::to_string(data.storedRecords) + " |\n";
    out += "| valid programs | " +
           std::to_string(data.validRecords) + " |\n";
    out += std::string("| primary analysis | ") +
           (plan.computePrimary ? "on" : "off") + " |\n";
    out += std::string("| remark attribution | ") +
           (plan.collectRemarks ? "on" : "off") + " |\n\n";

    out += "## Corpus totals\n\n";
    out += "| markers | truly dead | truly alive |\n|---|---|---|\n";
    out += "| " + std::to_string(campaign.totalMarkers()) + " | " +
           std::to_string(campaign.totalDead()) + " | " +
           std::to_string(campaign.totalAlive()) + " |\n\n";

    out += "## Per-build results\n\n";
    out += "| build | missed | primary missed | eliminated |\n";
    out += "|---|---|---|---|\n";
    uint64_t dead = campaign.totalDead();
    for (size_t i = 0; i < campaign.builds.size(); ++i) {
        core::BuildId build{i};
        uint64_t missed = campaign.totalMissed(build);
        out += "| " + campaign.builds[i].name() + " | " +
               std::to_string(missed) + " | " +
               std::to_string(campaign.totalPrimaryMissed(build)) +
               " | " + std::to_string(dead - missed) + " |\n";
    }
    out += "\n";

    bool any_kills = false;
    for (size_t i = 0; i < campaign.builds.size(); ++i) {
        core::KillerHistogram histogram =
            core::killerHistogram(campaign, core::BuildId{i});
        if (histogram.empty())
            continue;
        if (!any_kills) {
            out += "## Killer passes\n\n";
            any_kills = true;
        }
        out += "### " + campaign.builds[i].name() + "\n\n";
        out += "| pass | eliminations |\n|---|---|\n";
        for (const auto &[pass, count] : histogram.byPass)
            out += "| " + pass + " | " + std::to_string(count) +
                   " |\n";
        out += "| **total** | " +
               std::to_string(histogram.totalEliminated) + " |\n\n";
    }

    out += "## Findings\n\n";
    if (data.state.findings.empty()) {
        out += "No findings checkpointed.\n\n";
    } else {
        out += "| # | seed | marker | missed by | reference | "
               "dossier |\n|---|---|---|---|---|---|\n";
        for (size_t i = 0; i < data.state.findings.size(); ++i) {
            const corpus::StoredFinding &stored =
                data.state.findings[i];
            out += "| " + std::to_string(i) + " | " +
                   std::to_string(stored.finding.seed) + " | " +
                   std::to_string(stored.finding.marker) + " | " +
                   stored.finding.missedBy.name() + " | " +
                   stored.finding.reference.name() + " | " +
                   "[finding-" + std::to_string(i) + "](finding-" +
                   std::to_string(i) + ".md) |\n";
        }
        out += "\n";
    }

    if (data.equiv) {
        const equiv::EquivSummary &eq = *data.equiv;
        out += "## Metamorphic testing\n\n";
        out += "| field | value |\n|---|---|\n";
        out += "| programs analysed | " +
               std::to_string(eq.programs) + " |\n";
        out += "| variants per program | " +
               std::to_string(eq.variantsPerProgram) + " |\n";
        out += "| variant stream seed | " + std::to_string(eq.seed) +
               " |\n";
        out += "| equivalent variants | " +
               std::to_string(eq.variants) + " |\n";
        out += "| rejected variants | " +
               std::to_string(eq.rejected()) + " |\n\n";
        if (!eq.rejects.empty()) {
            out += "| reject reason | count |\n|---|---|\n";
            for (const auto &[reason, count] : eq.rejects)
                out += "| " + reason + " | " +
                       std::to_string(count) + " |\n";
            out += "\n";
        }
        if (eq.findings.empty()) {
            out += "No metamorphic findings.\n\n";
        } else {
            out += "| # | slot | build | marker | missed base | "
                   "missed variant | chain | signature |\n"
                   "|---|---|---|---|---|---|---|---|\n";
            for (size_t i = 0; i < eq.findings.size(); ++i) {
                const equiv::EquivFinding &finding = eq.findings[i];
                std::string chain;
                for (equiv::TransformKind kind : finding.chain) {
                    if (!chain.empty())
                        chain += " + ";
                    chain += equiv::transformKindName(kind);
                }
                out += "| " + std::to_string(i) + " | " +
                       std::to_string(finding.slot) + " | " +
                       finding.build + " | " +
                       std::to_string(finding.marker) + " | " +
                       std::to_string(finding.missedBase) + " | " +
                       std::to_string(finding.missedVariant) + " | " +
                       chain + " | " +
                       (finding.signature.empty() ? "-"
                                                  : finding.signature) +
                       " |\n";
            }
            out += "\n";
        }
        if (!eq.outliers.empty()) {
            out += "### Instruction-count outliers\n\n";
            out += "| slot | build | base instrs | variant instrs |\n"
                   "|---|---|---|---|\n";
            for (const equiv::EquivOutlier &outlier : eq.outliers) {
                out += "| " + std::to_string(outlier.slot) + " | " +
                       outlier.build + " | " +
                       std::to_string(outlier.baseInstrs) + " | " +
                       std::to_string(outlier.variantInstrs) + " |\n";
            }
            out += "\n";
        }
    }

    if (!data.latency.empty()) {
        out += "## Pipeline latency\n\n";
        out += "Wall-clock per-seed stage latency (µs), percentile "
               "estimates over the\nbit-width histogram buckets of "
               "`campaign.stage_us{stage}`. This section\nis opt-in "
               "operational data and sits outside the byte-identity "
               "contract.\n\n";
        out += "| stage | samples | mean | p50 | p90 | p99 |\n"
               "|---|---|---|---|---|---|\n";
        for (const CampaignReportData::StageLatency &row :
             data.latency) {
            char cells[128];
            std::snprintf(cells, sizeof cells,
                          " %.1f | %.1f | %.1f | %.1f |", row.meanUs,
                          row.p50Us, row.p90Us, row.p99Us);
            out += "| " + row.stage + " | " +
                   std::to_string(row.count) + " |" + cells + "\n";
        }
        out += "\n";
    }

    if (!data.state.counters.empty()) {
        out += "## Campaign counters\n\n";
        out += "| counter | value |\n|---|---|\n";
        for (const auto &[key, value] : data.state.counters)
            out += "| `" + key + "` | " + std::to_string(value) +
                   " |\n";
        out += "\n";
    }
    return out;
}

std::string
markdownToHtml(const std::string &markdown, const std::string &title)
{
    std::string out = "<!DOCTYPE html>\n<html><head><meta "
                      "charset=\"utf-8\"><title>" +
                      htmlEscape(title) +
                      "</title></head><body>\n";
    bool in_code = false;
    bool in_table = false;
    for (const std::string &line : splitLines(markdown)) {
        if (line.rfind("```", 0) == 0) {
            out += in_code ? "</pre>\n" : "<pre>\n";
            in_code = !in_code;
            continue;
        }
        if (in_code) {
            out += htmlEscape(line) + "\n";
            continue;
        }
        bool is_table = !line.empty() && line.front() == '|';
        if (in_table && !is_table) {
            out += "</table>\n";
            in_table = false;
        }
        if (is_table) {
            // A |---|---| separator row marks the previous row as the
            // header; we simply skip it.
            if (line.find("---") != std::string::npos &&
                line.find_first_not_of("|- :") == std::string::npos)
                continue;
            if (!in_table) {
                out += "<table border=\"1\">\n";
                in_table = true;
                out += tableRow(line, "th");
            } else {
                out += tableRow(line, "td");
            }
            continue;
        }
        if (line.rfind("### ", 0) == 0) {
            out += "<h3>" + htmlEscape(line.substr(4)) + "</h3>\n";
        } else if (line.rfind("## ", 0) == 0) {
            out += "<h2>" + htmlEscape(line.substr(3)) + "</h2>\n";
        } else if (line.rfind("# ", 0) == 0) {
            out += "<h1>" + htmlEscape(line.substr(2)) + "</h1>\n";
        } else if (!line.empty()) {
            out += "<p>" + htmlEscape(line) + "</p>\n";
        }
    }
    if (in_table)
        out += "</table>\n";
    if (in_code)
        out += "</pre>\n";
    out += "</body></html>\n";
    return out;
}

bool
writeCampaignReport(corpus::CorpusStore &store,
                    const std::string &out_dir,
                    const CampaignReportOptions &options,
                    corpus::StoreError *error)
{
    std::optional<CampaignReportData> data =
        collectReportData(store, error);
    if (!data)
        return false;
    if (options.latencyMetrics)
        data->latency = collectStageLatency(*options.latencyMetrics);

    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec) {
        setError(error, corpus::StoreStatus::IoError,
                 "mkdir " + out_dir + ": " + ec.message());
        return false;
    }

    std::string markdown = renderCampaignReportMarkdown(*data);
    fs::path dir(out_dir);
    if (!writeFile(dir / "report.md", markdown, error))
        return false;
    if (options.html &&
        !writeFile(dir / "report.html",
                   markdownToHtml(markdown, "Campaign report"),
                   error))
        return false;

    if (options.dossiers) {
        size_t limit = std::min<size_t>(options.maxDossiers,
                                        data->fingerprints.size());
        for (size_t i = 0; i < limit; ++i) {
            const std::string &fingerprint = data->fingerprints[i];
            if (fingerprint.empty())
                continue;
            std::optional<Dossier> dossier = buildDossier(
                store, options.log, fingerprint, error);
            if (!dossier)
                return false;
            std::string name = "finding-" + std::to_string(i);
            if (!writeFile(dir / (name + ".md"),
                           dossierMarkdown(*dossier), error) ||
                !writeFile(dir / (name + ".json"),
                           dossierJson(*dossier), error))
                return false;
        }
    }
    setError(error, corpus::StoreStatus::Ok, "");
    return true;
}

} // namespace dce::report
