#include "report/watchdog.hpp"

#include <chrono>

namespace dce::report {

namespace {

uint64_t
steadyUs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Watchdog::Watchdog(WatchdogOptions options)
    : options_(std::move(options))
{
    if (!options_.registry)
        options_.registry = &support::MetricsRegistry::global();
    stallCounter_ = &options_.registry->counter("report.stalls");
    lastProgressUs_ = now();
}

Watchdog::~Watchdog()
{
    stop();
}

uint64_t
Watchdog::now() const
{
    return options_.clock ? options_.clock() : steadyUs();
}

core::CampaignObserver
Watchdog::wrap(core::CampaignObserver inner)
{
    return [this, inner = std::move(inner)](
               const core::CampaignProgress &progress) {
        bool recovered = false;
        uint64_t ordinal = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            lastProgressUs_ = now();
            lastProgress_ = progress;
            recovered = stalledNow_;
            stalledNow_ = false; // progress re-arms the watchdog
            ordinal = stalls_.load();
        }
        if (recovered && options_.events) {
            // The bookend to watchdog_stall (same kPhaseOps band, same
            // stall ordinal, minor 1) so the log records every
            // stalled→ready transition /readyz went through.
            support::Event event("watchdog_recovered",
                                 {support::kPhaseOps, ordinal, 1});
            event.num("stall", ordinal)
                .num("seeds_done", progress.seedsDone)
                .num("seeds_total", progress.seedsTotal);
            options_.events->emit(std::move(event));
        }
        if (inner)
            inner(progress);
    };
}

bool
Watchdog::stalled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stalledNow_;
}

std::string
Watchdog::diagnosticDump(const core::CampaignProgress &progress,
                         uint64_t silent_us) const
{
    std::string out = "watchdog: no progress for " +
                      std::to_string(silent_us / 1000) + " ms\n";
    out += "in-flight: " + std::to_string(progress.seedsDone) + "/" +
           std::to_string(progress.seedsTotal) + " seeds, " +
           std::to_string(progress.invalidPrograms) + " invalid, " +
           std::to_string(progress.cacheHits) + " cache hits, " +
           std::to_string(progress.cacheMisses) + " misses\n";
    out += options_.registry->dumpText();
    return out;
}

bool
Watchdog::poll()
{
    uint64_t silent_us = 0;
    core::CampaignProgress progress;
    uint64_t ordinal = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        uint64_t current = now();
        silent_us = current >= lastProgressUs_
                        ? current - lastProgressUs_
                        : 0;
        if (silent_us < options_.stallThresholdUs || stalledNow_)
            return false;
        stalledNow_ = true; // latch: no repeat-fire while stalled
        progress = lastProgress_;
        ordinal = stalls_.fetch_add(1) + 1;
    }
    stallCounter_->add();
    if (options_.events) {
        // kPhaseOps: inherently wall-clock-driven, so stall events
        // never perturb the deterministic bands of the log.
        support::Event event("watchdog_stall",
                             {support::kPhaseOps, ordinal, 0});
        event.num("stall", ordinal)
            .num("silent_us", silent_us)
            .num("seeds_done", progress.seedsDone)
            .num("seeds_total", progress.seedsTotal);
        options_.events->emit(std::move(event));
    }
    if (options_.onStall)
        options_.onStall(diagnosticDump(progress, silent_us));
    return true;
}

void
Watchdog::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (running_)
            return;
        stopRequested_ = false;
        running_ = true;
    }
    poller_ = std::thread([this] { run(); });
}

void
Watchdog::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    wake_.notify_all();
    poller_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
}

void
Watchdog::run()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait_for(
                lock,
                std::chrono::microseconds(options_.pollIntervalUs),
                [this] { return stopRequested_; });
            if (stopRequested_)
                return;
        }
        poll();
    }
}

} // namespace dce::report
