#include "report/dossier.hpp"

#include <algorithm>

#include "support/json.hpp"

namespace dce::report {

namespace {

void
setError(corpus::StoreError *error, corpus::StoreStatus status,
         std::string message)
{
    if (error) {
        error->status = status;
        error->message = std::move(message);
    }
}

/** The value of @p part after @p prefix, or nullopt. */
std::optional<std::string>
stripPrefix(const std::string &part, std::string_view prefix)
{
    if (part.compare(0, prefix.size(), prefix) != 0)
        return std::nullopt;
    return part.substr(prefix.size());
}

} // namespace

std::optional<core::VerdictKey>
parseFingerprint(const std::string &fingerprint)
{
    // VerdictKey::fingerprint():
    //   prog:<hash>|markers:<m,...>|by:<build>|ref:<build>
    // Build names never contain '|', so a plain split is exact.
    std::vector<std::string> parts;
    size_t begin = 0;
    while (begin <= fingerprint.size()) {
        size_t bar = fingerprint.find('|', begin);
        if (bar == std::string::npos)
            bar = fingerprint.size();
        parts.push_back(fingerprint.substr(begin, bar - begin));
        begin = bar + 1;
    }
    if (parts.size() != 4)
        return std::nullopt;
    auto hash = stripPrefix(parts[0], "prog:");
    auto markers = stripPrefix(parts[1], "markers:");
    auto by = stripPrefix(parts[2], "by:");
    auto ref = stripPrefix(parts[3], "ref:");
    if (!hash || !markers || !by || !ref)
        return std::nullopt;

    core::VerdictKey key;
    key.programHash = *hash;
    key.missedBy = *by;
    key.reference = *ref;
    size_t pos = 0;
    while (pos < markers->size()) {
        size_t comma = markers->find(',', pos);
        if (comma == std::string::npos)
            comma = markers->size();
        std::string token = markers->substr(pos, comma - pos);
        if (token.empty() ||
            token.find_first_not_of("0123456789") != std::string::npos)
            return std::nullopt;
        key.markers.push_back(
            static_cast<unsigned>(std::stoul(token)));
        pos = comma + 1;
    }
    return key;
}

std::optional<Dossier>
buildDossier(corpus::CorpusStore &store, const EventLog *log,
             const std::string &fingerprint,
             corpus::StoreError *error)
{
    std::optional<core::VerdictKey> key =
        parseFingerprint(fingerprint);
    if (!key) {
        setError(error, corpus::StoreStatus::NotFound,
                 "malformed fingerprint: " + fingerprint);
        return std::nullopt;
    }

    Dossier dossier;
    dossier.fingerprint = fingerprint;
    dossier.programHash = key->programHash;
    dossier.markers = key->markers;
    dossier.missedBy = key->missedBy;
    dossier.reference = key->reference;

    // Locate the stored record carrying this program.
    corpus::StoreError load_error;
    std::vector<corpus::StoredRecord> records =
        store.loadRecords(&load_error);
    if (!load_error.ok()) {
        setError(error, load_error.status, load_error.message);
        return std::nullopt;
    }
    const corpus::StoredRecord *stored = nullptr;
    for (const corpus::StoredRecord &candidate : records) {
        if (candidate.programHash == key->programHash) {
            stored = &candidate;
            break;
        }
    }
    if (!stored) {
        setError(error, corpus::StoreStatus::NotFound,
                 "no stored record for program " + key->programHash);
        return std::nullopt;
    }
    const core::ProgramRecord &record = stored->record;
    dossier.seed = record.seed;
    dossier.slot = stored->slot;
    dossier.chunk = stored->chunk;
    dossier.markerCount = record.markerCount;
    dossier.trueDead = record.trueDead.size();
    dossier.trueAlive = record.trueAlive.size();

    // Canonical source text (content-addressed by the hash we hold).
    corpus::StoreError text_error;
    std::optional<std::string> source =
        store.getProgram(key->programHash, &text_error);
    if (!source) {
        setError(error, text_error.status, text_error.message);
        return std::nullopt;
    }
    dossier.source = std::move(*source);

    // Build names come from the checkpointed plan when one exists;
    // a store without a checkpoint still yields a dossier, with
    // positional build labels.
    std::vector<std::string> build_names;
    if (std::optional<corpus::CheckpointState> state =
            corpus::readCheckpointState(store)) {
        for (const core::BuildSpec &spec : state->plan.builds)
            build_names.push_back(spec.name());
    }
    unsigned marker =
        dossier.markers.empty() ? 0 : dossier.markers.front();
    for (size_t i = 0; i < record.alive.size(); ++i) {
        DossierBuild build;
        build.name = i < build_names.size()
                         ? build_names[i]
                         : "build" + std::to_string(i);
        build.aliveMarkers = record.alive[i].size();
        build.missedMarkers = record.missed[i].size();
        build.missesMarker = record.missed[i].count(marker) != 0;
        if (!build.missesMarker && i < record.kills.size()) {
            auto kill = std::find_if(
                record.kills[i].begin(), record.kills[i].end(),
                [&](const core::MarkerKill &k) {
                    return k.marker == marker;
                });
            if (kill != record.kills[i].end())
                build.killerPass = kill->pass;
        }
        dossier.builds.push_back(std::move(build));
    }

    // Cached triage verdict, when triage ran against this store.
    dossier.verdict = store.getVerdict(fingerprint);

    // Reduction trajectory, when the caller kept the event log.
    if (log) {
        for (const support::Event &event : log->sorted()) {
            if (event.type() != "reduction_finished")
                continue;
            const std::string *fp = event.getStr("fingerprint");
            if (!fp || *fp != fingerprint)
                continue;
            DossierReduction reduction;
            reduction.tests = event.getNum("tests").value_or(0);
            reduction.linesBefore =
                event.getNum("lines_before").value_or(0);
            reduction.linesAfter =
                event.getNum("lines_after").value_or(0);
            reduction.passes =
                event.getNum("reduce_passes").value_or(0);
            dossier.reduction = reduction;
            break;
        }
    }

    setError(error, corpus::StoreStatus::Ok, "");
    return dossier;
}

std::string
dossierJson(const Dossier &dossier)
{
    std::string out = "{\n";
    auto str_field = [&](const char *name, const std::string &value,
                         bool comma = true) {
        out += "  \"";
        out += name;
        out += "\": \"";
        support::appendJsonEscaped(out, value);
        out += comma ? "\",\n" : "\"\n";
    };
    auto num_field = [&](const char *name, uint64_t value) {
        out += "  \"";
        out += name;
        out += "\": ";
        out += std::to_string(value);
        out += ",\n";
    };
    str_field("fingerprint", dossier.fingerprint);
    str_field("program_hash", dossier.programHash);
    out += "  \"markers\": [";
    for (size_t i = 0; i < dossier.markers.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(dossier.markers[i]);
    }
    out += "],\n";
    str_field("missed_by", dossier.missedBy);
    str_field("reference", dossier.reference);
    num_field("seed", dossier.seed);
    num_field("slot", dossier.slot);
    num_field("chunk", dossier.chunk);
    num_field("marker_count", dossier.markerCount);
    num_field("true_dead", dossier.trueDead);
    num_field("true_alive", dossier.trueAlive);
    out += "  \"builds\": [\n";
    for (size_t i = 0; i < dossier.builds.size(); ++i) {
        const DossierBuild &build = dossier.builds[i];
        out += "    {\"name\": \"";
        support::appendJsonEscaped(out, build.name);
        out += "\", \"alive\": " + std::to_string(build.aliveMarkers);
        out +=
            ", \"missed\": " + std::to_string(build.missedMarkers);
        out += ", \"misses_marker\": ";
        out += build.missesMarker ? "true" : "false";
        out += ", \"killer_pass\": \"";
        support::appendJsonEscaped(out, build.killerPass);
        out += "\"}";
        out += i + 1 < dossier.builds.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
    if (dossier.verdict) {
        out += "  \"verdict\": {\"signature\": \"";
        support::appendJsonEscaped(out, dossier.verdict->signature);
        out += "\", \"fixed\": ";
        out += dossier.verdict->fixed ? "true" : "false";
        out += ", \"reduction_tests\": ";
        out += std::to_string(dossier.verdict->reductionTests);
        out += ", \"reduced_source\": \"";
        support::appendJsonEscaped(out,
                                   dossier.verdict->reducedSource);
        out += "\"},\n";
    } else {
        out += "  \"verdict\": null,\n";
    }
    if (dossier.reduction) {
        out += "  \"reduction\": {\"tests\": ";
        out += std::to_string(dossier.reduction->tests);
        out += ", \"lines_before\": ";
        out += std::to_string(dossier.reduction->linesBefore);
        out += ", \"lines_after\": ";
        out += std::to_string(dossier.reduction->linesAfter);
        out += ", \"passes\": ";
        out += std::to_string(dossier.reduction->passes);
        out += "},\n";
    } else {
        out += "  \"reduction\": null,\n";
    }
    str_field("source", dossier.source, false);
    out += "}\n";
    return out;
}

std::string
dossierMarkdown(const Dossier &dossier)
{
    std::string out = "# Finding dossier\n\n";
    out += "Fingerprint: `" + dossier.fingerprint + "`\n\n";
    out += "- **Seed:** " + std::to_string(dossier.seed) + " (slot " +
           std::to_string(dossier.slot) + ", chunk " +
           std::to_string(dossier.chunk) + ")\n";
    out += "- **Program:** `" + dossier.programHash + "` — " +
           std::to_string(dossier.markerCount) + " markers, " +
           std::to_string(dossier.trueDead) + " truly dead, " +
           std::to_string(dossier.trueAlive) + " alive\n";
    out += "- **Markers under report:** ";
    for (size_t i = 0; i < dossier.markers.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(dossier.markers[i]);
    }
    out += "\n";
    out += "- **Missed by:** " + dossier.missedBy +
           " — **reference:** " + dossier.reference + "\n\n";

    out += "## Per-build verdicts\n\n";
    out += "| build | alive | missed | this marker | killer pass |\n";
    out += "|---|---|---|---|---|\n";
    for (const DossierBuild &build : dossier.builds) {
        out += "| " + build.name + " | " +
               std::to_string(build.aliveMarkers) + " | " +
               std::to_string(build.missedMarkers) + " | " +
               (build.missesMarker ? "missed" : "eliminated") + " | " +
               (build.killerPass.empty() ? "—" : build.killerPass) +
               " |\n";
    }
    out += "\n";

    if (dossier.verdict) {
        out += "## Triage verdict\n\n";
        out += "- signature `" + dossier.verdict->signature + "`\n";
        out += std::string("- fixed past head: ") +
               (dossier.verdict->fixed ? "yes" : "no") + "\n";
        out += "- reduction tests: " +
               std::to_string(dossier.verdict->reductionTests) +
               "\n\n";
        out += "### Reduced source\n\n```\n" +
               dossier.verdict->reducedSource;
        if (!dossier.verdict->reducedSource.empty() &&
            dossier.verdict->reducedSource.back() != '\n')
            out += '\n';
        out += "```\n\n";
    }
    if (dossier.reduction) {
        out += "## Reduction trajectory\n\n";
        out += "- " + std::to_string(dossier.reduction->tests) +
               " interestingness tests, " +
               std::to_string(dossier.reduction->linesBefore) +
               " → " + std::to_string(dossier.reduction->linesAfter) +
               " lines over " +
               std::to_string(dossier.reduction->passes) +
               " passes\n\n";
    }

    out += "## Canonical source\n\n```\n" + dossier.source;
    if (!dossier.source.empty() && dossier.source.back() != '\n')
        out += '\n';
    out += "```\n";
    return out;
}

} // namespace dce::report
