/**
 * @file
 * The structured event log (DESIGN.md §12): the canonical
 * support::EventSink. Workers append events from any thread; the log
 * buffers them and serializes in deterministic EventKey order, so a
 * serial and an 8-thread run of the same plan produce byte-identical
 * JSONL — the property the report/dossier layer (and CI) builds on.
 *
 * Buffering model: events accumulate in memory for the campaign's
 * lifetime (a full longrun campaign is a few thousand events — the
 * log is per-chunk/per-finding, never per-candidate), and flush()
 * rewrites the whole file through temp-file-plus-rename. Rewriting
 * instead of appending is what makes mid-run flushes crash-safe *and*
 * the final file schedule-independent: whenever the last flush
 * happened, the file on disk is a deterministically ordered prefix of
 * the run's events, and the final flush is the full sorted log.
 */
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "support/events.hpp"
#include "support/metrics.hpp"

namespace dce::report {

class EventLog : public support::EventSink {
  public:
    /** @param metrics registry for the `report.events` counter;
     * null = the process global. */
    explicit EventLog(support::MetricsRegistry *metrics = nullptr);

    /** Append one event. Thread-safe; never blocks on I/O. */
    void emit(support::Event event) override;

    size_t size() const;
    void clear();

    /** The buffered events in deterministic order: stable-sorted by
     * EventKey, so same-key events keep their (single-emitter)
     * emission order. */
    std::vector<support::Event> sorted() const;

    /** One JSON object per line, in sorted() order. */
    std::string toJsonl() const;

    /**
     * Cursor-paged tail in *emission* order: up to @p max events
     * starting at emission index @p since, with the current total in
     * @p total. Emission order is append-only, so `since = last total`
     * is a stable cursor while the campaign runs — unlike sorted()
     * order, which reshuffles as out-of-order keys arrive. Backs the
     * ops server's /events endpoint.
     */
    std::vector<support::Event> tail(size_t since, size_t max,
                                     size_t *total = nullptr) const;

    /**
     * Write toJsonl() to @p path via temp-file-plus-rename (the file
     * is never observable half-written). Safe to call repeatedly —
     * each call rewrites the full deterministic log. False on I/O
     * failure.
     */
    bool write(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::vector<support::Event> events_;
    support::Counter *emitted_ = nullptr;
};

} // namespace dce::report
