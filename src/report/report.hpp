/**
 * @file
 * Campaign report generator (DESIGN.md §12): renders the paper-style
 * summary — corpus totals, per-build missed/eliminated tables,
 * killer-pass histograms, the findings index with links into per-
 * finding dossiers — from a corpus store alone. Everything in the
 * report derives from store contents covered by the checkpoint/resume
 * bit-identity contract (records, checkpointed plan/findings/
 * counters), and nothing is wall-clock-stamped, so the report for a
 * killed-and-resumed store is byte-identical to the report for an
 * uninterrupted run; CI diffs exactly that.
 *
 * The generator also works on a store whose campaign was killed and
 * *never* resumed: it reports whatever the last checkpoint pinned,
 * flagged as incomplete.
 */
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "equiv/engine.hpp"
#include "report/event_log.hpp"
#include "support/metrics.hpp"

namespace dce::report {

struct CampaignReportOptions {
    /** Also render report.html (a minimal conversion of the
     * Markdown). */
    bool html = false;
    /** Write per-finding dossiers (finding-<n>.md / .json) next to
     * the report, capped at maxDossiers. */
    bool dossiers = true;
    unsigned maxDossiers = 64;
    /** Event log consulted for reduction trajectories in dossiers.
     * Deliberately NOT used for the report body, which must be
     * derivable from the store alone. Null = none. */
    const EventLog *log = nullptr;
    /**
     * Registry whose campaign.stage_us histograms feed the opt-in
     * "Pipeline latency" section (DESIGN.md §17). Latency is
     * wall-clock data, so a report rendered with it set is NOT
     * byte-identical across runs — leave null (the default) anywhere
     * the kill/resume/fleet identity contract applies.
     */
    const support::MetricsRegistry *latencyMetrics = nullptr;
};

/** Everything the report renders, assembled from one store. */
struct CampaignReportData {
    corpus::CheckpointState state; ///< plan, findings, counters
    core::Campaign campaign; ///< reconstructed from stored records
    /** VerdictKey fingerprint per state.findings entry ("" when the
     * finding's slot has no stored record — never on a healthy
     * store). */
    std::vector<std::string> fingerprints;
    uint64_t storedRecords = 0;
    uint64_t validRecords = 0;
    uint64_t totalChunks = 0;
    bool complete = false; ///< every chunk committed
    /** The store's metamorphic analysis (equiv.json), when one was
     * run — renders as the "Metamorphic testing" section. */
    std::optional<equiv::EquivSummary> equiv;
    /** One "Pipeline latency" row: percentile estimates over a
     * campaign.stage_us{stage} histogram (µs). */
    struct StageLatency {
        std::string stage;
        uint64_t count = 0;
        double meanUs = 0.0;
        double p50Us = 0.0;
        double p90Us = 0.0;
        double p99Us = 0.0;
    };
    /** Filled only via CampaignReportOptions::latencyMetrics (or by a
     * caller directly); empty = section omitted. */
    std::vector<StageLatency> latency;
};

/** The "Pipeline latency" rows for @p registry: one entry per
 * campaign.stage_us{stage} histogram, in registry (sorted) order. */
std::vector<CampaignReportData::StageLatency>
collectStageLatency(const support::MetricsRegistry &registry);

/**
 * Assemble the report's inputs from @p store: parse the checkpoint
 * (NoCheckpoint when the store never ran a checkpointed campaign),
 * load the records into a positionally-faithful core::Campaign, and
 * fingerprint every checkpointed finding.
 */
std::optional<CampaignReportData>
collectReportData(corpus::CorpusStore &store,
                  corpus::StoreError *error = nullptr);

/** Render the Markdown report body (pure; no I/O, no clock). */
std::string
renderCampaignReportMarkdown(const CampaignReportData &data);

/** Minimal Markdown-to-HTML conversion (headings, tables, code
 * fences, paragraphs) — enough to open a report in a browser. */
std::string markdownToHtml(const std::string &markdown,
                           const std::string &title);

/**
 * Generate the full report under @p out_dir (created if missing):
 * report.md, optionally report.html, and per-finding dossiers.
 * False + classified @p error on store or I/O failure.
 */
bool writeCampaignReport(corpus::CorpusStore &store,
                         const std::string &out_dir,
                         const CampaignReportOptions &options = {},
                         corpus::StoreError *error = nullptr);

} // namespace dce::report
