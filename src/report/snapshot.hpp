/**
 * @file
 * Periodic metrics snapshots (DESIGN.md §12): a SnapshotWriter appends
 * one JSONL line per snapshot — sequence number, wall-clock
 * milliseconds, every counter, every histogram's count/sum — to a
 * file, so a long runCheckpointed campaign's throughput trajectory
 * can be plotted after the fact (seeds/s is the derivative of
 * `campaign.seeds` between snapshots).
 *
 * Snapshots are wall-clock-stamped and therefore *operational* data:
 * they are deliberately kept out of the deterministic event log and
 * the campaign report. start() spawns a sampler thread on the
 * configured cadence; snapshot() takes one sample synchronously (the
 * test hook, and the way callers record a final sample at shutdown).
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "support/metrics.hpp"

namespace dce::report {

struct SnapshotOptions {
    std::string path; ///< JSONL file, appended to (created if missing)
    /** Sampler thread cadence. */
    uint64_t intervalMs = 1000;
    /** Registry to sample; null = the process global. */
    support::MetricsRegistry *registry = nullptr;
};

class SnapshotWriter {
  public:
    explicit SnapshotWriter(SnapshotOptions options);
    ~SnapshotWriter(); ///< stops the sampler thread if running

    SnapshotWriter(const SnapshotWriter &) = delete;
    SnapshotWriter &operator=(const SnapshotWriter &) = delete;

    /** Append one snapshot line now. False on I/O failure. */
    bool snapshot();

    /** Start the periodic sampler thread (idempotent). */
    void start();
    /** Stop the sampler thread and take one final snapshot. */
    void stop();

    uint64_t snapshotsTaken() const { return sequence_.load(); }

    /** The JSON body of the next snapshot (exposed for tests). */
    std::string renderSnapshot();

  private:
    void run();

    SnapshotOptions options_;
    std::atomic<uint64_t> sequence_{0};
    std::thread sampler_;
    std::mutex mutex_; ///< guards stop_ for the cv + file appends
    std::condition_variable wake_;
    bool stopRequested_ = false;
    bool running_ = false;
};

} // namespace dce::report
