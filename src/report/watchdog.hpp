/**
 * @file
 * Campaign stall watchdog (DESIGN.md §12). A Watchdog wraps any
 * CampaignObserver and tracks time-since-last-progress; when no seed
 * completes for the configured threshold it fires exactly once —
 * emitting a watchdog_stall event (kPhaseOps, so stall-free logs stay
 * deterministic), bumping `report.stalls`, and handing the configured
 * onStall callback a diagnostic dump (last observed progress plus a
 * registry dump). The stall flag clears on the next observed progress,
 * re-arming the watchdog; while stalled it never repeat-fires.
 *
 * The clock is injectable so tests drive stalls deterministically;
 * production construction defaults to the steady clock and an optional
 * background poller thread.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "core/campaign.hpp"
#include "support/events.hpp"
#include "support/metrics.hpp"

namespace dce::report {

struct WatchdogOptions {
    /** Progress silence that counts as a stall. */
    uint64_t stallThresholdUs = 30'000'000;
    /** Poller thread cadence (start()/stop() only). */
    uint64_t pollIntervalUs = 1'000'000;
    /** Sink for watchdog_stall events; null = none. */
    support::EventSink *events = nullptr;
    /** Registry for the `report.stalls` counter and the diagnostic
     * dump; null = the process global. */
    support::MetricsRegistry *registry = nullptr;
    /** Receives the diagnostic dump on each stall; null = none. */
    std::function<void(const std::string &)> onStall;
    /** Microsecond clock; null = std::chrono::steady_clock. Tests
     * inject a fake to script stalls. */
    std::function<uint64_t()> clock;
};

class Watchdog {
  public:
    explicit Watchdog(WatchdogOptions options);
    ~Watchdog(); ///< stops the poller thread if running

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Wrap @p inner: the returned observer records progress (feeding
     * the stall detector and the diagnostic snapshot) and then
     * forwards to @p inner (which may be null). The Watchdog must
     * outlive the returned observer.
     */
    core::CampaignObserver wrap(core::CampaignObserver inner);

    /** Check for a stall now (the poller's body; the test hook).
     * Returns true when this call fired a stall. */
    bool poll();

    /** Start/stop the background poller thread (idempotent). */
    void start();
    void stop();

    uint64_t stallsFired() const { return stalls_.load(); }
    bool stalled() const;

  private:
    uint64_t now() const;
    void run();
    std::string diagnosticDump(const core::CampaignProgress &progress,
                               uint64_t silent_us) const;

    WatchdogOptions options_;
    support::Counter *stallCounter_ = nullptr;

    mutable std::mutex mutex_;
    uint64_t lastProgressUs_ = 0;
    core::CampaignProgress lastProgress_; ///< in-flight state
    bool stalledNow_ = false; ///< single-fire latch
    std::atomic<uint64_t> stalls_{0};

    std::thread poller_;
    std::condition_variable wake_;
    bool running_ = false;
    bool stopRequested_ = false;
};

} // namespace dce::report
