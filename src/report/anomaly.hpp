/**
 * @file
 * Throughput anomaly detection (DESIGN.md §17). A ThroughputMonitor
 * tracks a campaign's seed rate as an exponentially-weighted moving
 * average and latches a `degraded` flag when the instantaneous rate
 * falls below a configured fraction of that baseline — flipping
 * /readyz to 503 (the serve layer consults degraded() exactly like it
 * consults Watchdog::stalled()) and emitting kPhaseOps
 * throughput_degraded / throughput_recovered events, so operational
 * logs record every transition without perturbing the deterministic
 * event bands.
 *
 * The monitor owns no thread: the TimeSeriesSampler (or a test) feeds
 * it cumulative unit counts via observe(), and the injectable clock —
 * the Watchdog's pattern — lets tests script exact rates. The EWMA is
 * frozen while degraded so a slump cannot drag the baseline down and
 * declare itself recovered; recovery means the measured rate is back
 * within recoverRatio of the *healthy* baseline.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

#include "support/events.hpp"
#include "support/metrics.hpp"

namespace dce::report {

struct ThroughputMonitorOptions {
    /** EWMA smoothing factor in (0, 1]; higher = more reactive. */
    double alpha = 0.3;
    /** Degrade when rate < degradeRatio * baseline. */
    double degradeRatio = 0.5;
    /** Recover when rate >= recoverRatio * baseline (hysteresis:
     * keep recoverRatio > degradeRatio to avoid flapping). */
    double recoverRatio = 0.8;
    /** Observations folded into the baseline before detection arms —
     * startup ramp must not read as a degradation. */
    uint64_t warmupSamples = 5;
    /** Baselines below this rate (units/s) never arm detection; keeps
     * idle or run-end tails from flipping /readyz. */
    double minBaselineRate = 0.0;
    /** Sink for transition events; null = none. */
    support::EventSink *events = nullptr;
    /** Registry for report.throughput_* counters; null = global. */
    support::MetricsRegistry *registry = nullptr;
    /** Microsecond clock; null = std::chrono::steady_clock. Tests
     * inject a fake to script rates deterministically. */
    std::function<uint64_t()> clock;
};

class ThroughputMonitor {
  public:
    explicit ThroughputMonitor(ThroughputMonitorOptions options);

    ThroughputMonitor(const ThroughputMonitor &) = delete;
    ThroughputMonitor &operator=(const ThroughputMonitor &) = delete;

    /**
     * Feed the cumulative unit count (e.g. campaign.seeds). The rate
     * is the delta against the previous observation over the clock
     * interval. Returns true when this call fired a transition
     * (either direction).
     */
    bool observe(uint64_t total_units);

    /** True while throughput is below the degrade threshold —
     * /readyz serves 503 while this holds. */
    bool degraded() const;

    /** Current EWMA baseline rate, units/s (0 during warmup). */
    double baselineRate() const;

    uint64_t degradationsFired() const { return degradations_.load(); }

  private:
    uint64_t now() const;

    ThroughputMonitorOptions options_;
    support::Counter *degradedCounter_ = nullptr;
    support::Counter *recoveredCounter_ = nullptr;

    mutable std::mutex mutex_;
    bool havePrevious_ = false;
    uint64_t lastUnits_ = 0;
    uint64_t lastUs_ = 0;
    uint64_t samples_ = 0; ///< rate observations folded so far
    double ewma_ = 0.0;
    bool degradedNow_ = false;
    std::atomic<uint64_t> degradations_{0};
};

} // namespace dce::report
