/**
 * @file
 * Semantics-preserving MiniC AST transforms — the metamorphic half of
 * the equivalence-transformation oracle (DESIGN.md §16, after
 * Optimization-Guided Equivalence Transformations). Each transform
 * rewrites a marker-free, sema-checked unit at one rng-chosen site
 * into a program with identical observable behaviour (exit value,
 * external-call trace, final globals, trap/termination status):
 *
 *   LoopRotate      while (c) B        => if (c) { do B while (c); }
 *   Reassociate     (a op b) op c      => a op (b op c)   and
 *                   a op b             => b op a          for pure a, b
 *                   (op in {+, *, &, |, ^}; MiniC arithmetic wraps, so
 *                   these are exact, and left-to-right evaluation
 *                   order of a, b, c is preserved by reassociation)
 *   BranchSwap      if (c) A else B    => if (!c) B else A
 *   BranchFlatten   if (a) { if (b) S }=> if (a && b) S   (no elses;
 *                   short-circuit && preserves b's evaluation
 *                   condition exactly)
 *   ConstantReexpr  k                  => (k - d) + d     (0 => d - d)
 *                   value-preserving, so safe even in divisor and
 *                   shift-amount positions
 *   StmtCommute     S1; S2;            => S2; S1;         for adjacent
 *                   call-free, memory-free statements with disjoint
 *                   read/write sets (by resolved VarDecl identity)
 *
 * The transforms are deliberately conservative — each is argued
 * correct on MiniC's trap-free semantics (support/ints.hpp: wrapping
 * arithmetic, safe div/rem, masked shifts), and the interpreter
 * re-checks every derived variant anyway (engine.hpp), so a bug here
 * surfaces as a counted "not-equivalent" reject, never as a finding.
 *
 * Everything is a pure function of (AST, seed): deriveVariant with the
 * same inputs yields the same variant bytes on any thread count.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "support/rng.hpp"

namespace dce::equiv {

enum class TransformKind {
    LoopRotate,
    Reassociate,
    BranchSwap,
    BranchFlatten,
    ConstantReexpr,
    StmtCommute,
};

/** Stable label for @p kind (metrics / provenance / reports). */
const char *transformKindName(TransformKind kind);

/** Parse a transformKindName back; nullopt for unknown labels. */
std::optional<TransformKind> transformKindFromName(std::string_view name);

/** Every transform, in enum order. */
const std::vector<TransformKind> &allTransforms();

/**
 * Apply one @p kind transform to @p unit at an rng-chosen site.
 * @p unit must be marker-free and sema-checked (site analysis reads
 * the types and resolved declarations sema installed). Returns false
 * when the unit offers no site for this kind; @p unit is unchanged
 * then. On success the tree is structurally edited; callers must
 * round-trip through print + parseAndCheck before the next transform
 * or any downstream use (fresh nodes carry no sema annotations).
 */
bool applyTransform(lang::TranslationUnit &unit, TransformKind kind,
                    Rng &rng);

/**
 * Derive one variant of @p stripped_base: clone, apply up to
 * @p max_chain transforms drawn from Rng(seed) — re-parsing through
 * Sema after each edit — and return the marker-free, sema-checked
 * variant plus the chain actually applied. Null when no transform
 * found a site (an unchanged program is not a variant). A pure
 * function of (base text, seed, max_chain).
 */
std::unique_ptr<lang::TranslationUnit>
deriveVariant(const lang::TranslationUnit &stripped_base, uint64_t seed,
              unsigned max_chain, std::vector<TransformKind> *chain);

} // namespace dce::equiv
