#include "equiv/transforms.hpp"

#include <algorithm>

#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "support/diagnostics.hpp"

namespace dce::equiv {

using lang::AssignExpr;
using lang::AssignOp;
using lang::BinaryExpr;
using lang::BinaryOp;
using lang::BlockStmt;
using lang::CallExpr;
using lang::CastExpr;
using lang::ConditionalExpr;
using lang::DeclStmt;
using lang::DoWhileStmt;
using lang::Expr;
using lang::ExprKind;
using lang::ExprPtr;
using lang::ExprStmt;
using lang::ForStmt;
using lang::IfStmt;
using lang::IndexExpr;
using lang::IntLit;
using lang::ReturnStmt;
using lang::Stmt;
using lang::StmtKind;
using lang::StmtPtr;
using lang::SwitchStmt;
using lang::TranslationUnit;
using lang::UnaryExpr;
using lang::UnaryOp;
using lang::VarDecl;
using lang::VarRef;
using lang::WhileStmt;

const char *
transformKindName(TransformKind kind)
{
    switch (kind) {
    case TransformKind::LoopRotate:
        return "loop-rotate";
    case TransformKind::Reassociate:
        return "reassociate";
    case TransformKind::BranchSwap:
        return "branch-swap";
    case TransformKind::BranchFlatten:
        return "branch-flatten";
    case TransformKind::ConstantReexpr:
        return "constant-reexpr";
    case TransformKind::StmtCommute:
        return "stmt-commute";
    }
    return "unknown";
}

std::optional<TransformKind>
transformKindFromName(std::string_view name)
{
    for (TransformKind kind : allTransforms()) {
        if (name == transformKindName(kind))
            return kind;
    }
    return std::nullopt;
}

const std::vector<TransformKind> &
allTransforms()
{
    static const std::vector<TransformKind> kinds = {
        TransformKind::LoopRotate,     TransformKind::Reassociate,
        TransformKind::BranchSwap,     TransformKind::BranchFlatten,
        TransformKind::ConstantReexpr, TransformKind::StmtCommute,
    };
    return kinds;
}

namespace {

//===------------------------------------------------------------------===//
// Site collection
//===------------------------------------------------------------------===//

/** Wrapping integer ops: fully associative and commutative in MiniC
 * (support/ints.hpp two's-complement semantics), and free of
 * short-circuiting — the only ops Reassociate touches. */
bool
isAssociativeOp(BinaryOp op)
{
    switch (op) {
    case BinaryOp::Add:
    case BinaryOp::Mul:
    case BinaryOp::BitAnd:
    case BinaryOp::BitOr:
    case BinaryOp::BitXor:
        return true;
    default:
        return false;
    }
}

/** No side effects at all: commuting two pure expressions only
 * reorders reads, which MiniC's memory model cannot observe. */
bool
isPureExpr(const Expr *expr)
{
    if (!expr)
        return true;
    switch (expr->kind()) {
    case ExprKind::IntLit:
    case ExprKind::VarRef:
        return true;
    case ExprKind::Unary: {
        const auto *unary = static_cast<const UnaryExpr *>(expr);
        switch (unary->op) {
        case UnaryOp::PreInc:
        case UnaryOp::PreDec:
        case UnaryOp::PostInc:
        case UnaryOp::PostDec:
            return false;
        default:
            return isPureExpr(unary->sub.get());
        }
    }
    case ExprKind::Binary: {
        const auto *bin = static_cast<const BinaryExpr *>(expr);
        return isPureExpr(bin->lhs.get()) && isPureExpr(bin->rhs.get());
    }
    case ExprKind::Assign:
    case ExprKind::Call:
        return false;
    case ExprKind::Index: {
        const auto *index = static_cast<const IndexExpr *>(expr);
        return isPureExpr(index->base.get()) &&
               isPureExpr(index->index.get());
    }
    case ExprKind::Conditional: {
        const auto *cond = static_cast<const ConditionalExpr *>(expr);
        return isPureExpr(cond->cond.get()) &&
               isPureExpr(cond->thenExpr.get()) &&
               isPureExpr(cond->elseExpr.get());
    }
    case ExprKind::Cast:
        return isPureExpr(static_cast<const CastExpr *>(expr)->sub.get());
    }
    return false;
}

/** Reassociation requires every participant to carry the same
 * (sema-installed) integer type — identical types mean sema inserted
 * no conversions, so regrouping is exact wrap-around arithmetic. */
bool
sameIntType(const Expr *a, const Expr *b)
{
    return a->type && a->type->isInt() && a->type == b->type;
}

/** The inner no-else `if` of a flattenable no-else outer `if`: its
 * direct then-statement, or the sole statement of its then-block. */
IfStmt *
flattenableInner(IfStmt &outer)
{
    if (outer.elseStmt)
        return nullptr;
    Stmt *then_stmt = outer.thenStmt.get();
    if (then_stmt->kind() == StmtKind::Block) {
        auto &block = static_cast<BlockStmt &>(*then_stmt);
        if (block.stmts.size() != 1)
            return nullptr;
        then_stmt = block.stmts.front().get();
    }
    if (then_stmt->kind() != StmtKind::If)
        return nullptr;
    auto *inner = static_cast<IfStmt *>(then_stmt);
    return inner->elseStmt ? nullptr : inner;
}

/**
 * Variable-footprint analysis for StmtCommute. Two adjacent
 * statements commute when both are "tame" — expression or scalar-
 * declaration statements whose effects are fully described by reads
 * and writes of resolved scalar VarDecls (no calls, no memory ops) —
 * and their footprints do not conflict.
 */
struct Footprint {
    std::vector<const VarDecl *> reads;
    std::vector<const VarDecl *> writes;
    bool tame = true;
};

void
footprintExpr(const Expr *expr, Footprint &fp, bool written = false)
{
    if (!expr || !fp.tame)
        return;
    switch (expr->kind()) {
    case ExprKind::IntLit:
        return;
    case ExprKind::VarRef: {
        const auto *ref = static_cast<const VarRef *>(expr);
        if (!ref->decl) {
            fp.tame = false;
            return;
        }
        (written ? fp.writes : fp.reads).push_back(ref->decl);
        return;
    }
    case ExprKind::Unary: {
        const auto *unary = static_cast<const UnaryExpr *>(expr);
        switch (unary->op) {
        case UnaryOp::AddrOf:
        case UnaryOp::Deref:
            fp.tame = false; // memory: identity-based tracking ends
            return;
        case UnaryOp::PreInc:
        case UnaryOp::PreDec:
        case UnaryOp::PostInc:
        case UnaryOp::PostDec:
            footprintExpr(unary->sub.get(), fp, /*written=*/true);
            footprintExpr(unary->sub.get(), fp, /*written=*/false);
            return;
        default:
            footprintExpr(unary->sub.get(), fp);
            return;
        }
    }
    case ExprKind::Binary: {
        const auto *bin = static_cast<const BinaryExpr *>(expr);
        // Short-circuit rhs effects are conditional; the superset is
        // fine — footprints only ever gate a swap conservatively.
        footprintExpr(bin->lhs.get(), fp);
        footprintExpr(bin->rhs.get(), fp);
        return;
    }
    case ExprKind::Assign: {
        const auto *assign = static_cast<const AssignExpr *>(expr);
        if (assign->lhs->kind() != ExprKind::VarRef) {
            fp.tame = false; // array/pointer store
            return;
        }
        footprintExpr(assign->lhs.get(), fp, /*written=*/true);
        if (assign->op != AssignOp::Assign)
            footprintExpr(assign->lhs.get(), fp, /*written=*/false);
        footprintExpr(assign->rhs.get(), fp);
        return;
    }
    case ExprKind::Index:
    case ExprKind::Call:
        fp.tame = false;
        return;
    case ExprKind::Conditional: {
        const auto *cond = static_cast<const ConditionalExpr *>(expr);
        footprintExpr(cond->cond.get(), fp);
        footprintExpr(cond->thenExpr.get(), fp);
        footprintExpr(cond->elseExpr.get(), fp);
        return;
    }
    case ExprKind::Cast:
        footprintExpr(static_cast<const CastExpr *>(expr)->sub.get(),
                      fp, written);
        return;
    }
    fp.tame = false;
}

Footprint
footprintStmt(const Stmt &stmt)
{
    Footprint fp;
    switch (stmt.kind()) {
    case StmtKind::ExprStmt:
        footprintExpr(static_cast<const ExprStmt &>(stmt).expr.get(),
                      fp);
        return fp;
    case StmtKind::DeclStmt: {
        const VarDecl *decl =
            static_cast<const DeclStmt &>(stmt).decl.get();
        if (!decl->initList.empty() || !decl->type ||
            !decl->type->isInt()) {
            fp.tame = false;
            return fp;
        }
        fp.writes.push_back(decl);
        footprintExpr(decl->init.get(), fp);
        return fp;
    }
    default:
        fp.tame = false;
        return fp;
    }
}

bool
intersects(const std::vector<const VarDecl *> &a,
           const std::vector<const VarDecl *> &b)
{
    for (const VarDecl *decl : a) {
        if (std::find(b.begin(), b.end(), decl) != b.end())
            return true;
    }
    return false;
}

bool
commutable(const Stmt &first, const Stmt &second)
{
    Footprint a = footprintStmt(first);
    if (!a.tame)
        return false;
    Footprint b = footprintStmt(second);
    if (!b.tame)
        return false;
    return !intersects(a.writes, b.writes) &&
           !intersects(a.writes, b.reads) &&
           !intersects(b.writes, a.reads);
}

/** Everything one unit offers each transform, collected in one
 * deterministic pre-order walk. */
struct Sites {
    std::vector<StmtPtr *> whiles;            ///< LoopRotate
    std::vector<BinaryExpr *> rotations;      ///< Reassociate (a op b) op c
    std::vector<BinaryExpr *> commutations;   ///< Reassociate a op b
    std::vector<IfStmt *> swappable;          ///< BranchSwap (has else)
    std::vector<IfStmt *> flattenable;        ///< BranchFlatten
    std::vector<ExprPtr *> literals;          ///< ConstantReexpr
    std::vector<std::pair<BlockStmt *, size_t>> commutes; ///< StmtCommute
};

/** Literals above this never re-express: keeps both addends well
 * inside int range and the printed program shapes small. */
constexpr uint64_t kMaxReexprLiteral = 1023;

void
collectExpr(ExprPtr *slot, Sites &sites)
{
    Expr *expr = slot->get();
    if (!expr)
        return;
    switch (expr->kind()) {
    case ExprKind::IntLit:
        if (static_cast<IntLit *>(expr)->value <= kMaxReexprLiteral)
            sites.literals.push_back(slot);
        return;
    case ExprKind::VarRef:
        return;
    case ExprKind::Unary:
        collectExpr(&static_cast<UnaryExpr *>(expr)->sub, sites);
        return;
    case ExprKind::Binary: {
        auto *bin = static_cast<BinaryExpr *>(expr);
        if (isAssociativeOp(bin->op) &&
            sameIntType(bin, bin->lhs.get()) &&
            sameIntType(bin, bin->rhs.get())) {
            if (bin->lhs->kind() == ExprKind::Binary) {
                auto *inner = static_cast<BinaryExpr *>(bin->lhs.get());
                if (inner->op == bin->op &&
                    sameIntType(bin, inner->lhs.get()) &&
                    sameIntType(bin, inner->rhs.get())) {
                    sites.rotations.push_back(bin);
                }
            }
            if (isPureExpr(bin->lhs.get()) && isPureExpr(bin->rhs.get()))
                sites.commutations.push_back(bin);
        }
        collectExpr(&bin->lhs, sites);
        collectExpr(&bin->rhs, sites);
        return;
    }
    case ExprKind::Assign: {
        auto *assign = static_cast<AssignExpr *>(expr);
        collectExpr(&assign->lhs, sites);
        collectExpr(&assign->rhs, sites);
        return;
    }
    case ExprKind::Index: {
        auto *index = static_cast<IndexExpr *>(expr);
        collectExpr(&index->base, sites);
        collectExpr(&index->index, sites);
        return;
    }
    case ExprKind::Call:
        for (ExprPtr &arg : static_cast<CallExpr *>(expr)->args)
            collectExpr(&arg, sites);
        return;
    case ExprKind::Conditional: {
        auto *cond = static_cast<ConditionalExpr *>(expr);
        collectExpr(&cond->cond, sites);
        collectExpr(&cond->thenExpr, sites);
        collectExpr(&cond->elseExpr, sites);
        return;
    }
    case ExprKind::Cast:
        collectExpr(&static_cast<CastExpr *>(expr)->sub, sites);
        return;
    }
}

void collectStmt(StmtPtr *slot, Sites &sites);

void
collectBlock(BlockStmt &block, Sites &sites)
{
    for (size_t i = 0; i + 1 < block.stmts.size(); ++i) {
        if (commutable(*block.stmts[i], *block.stmts[i + 1]))
            sites.commutes.emplace_back(&block, i);
    }
    for (StmtPtr &child : block.stmts)
        collectStmt(&child, sites);
}

void
collectStmt(StmtPtr *slot, Sites &sites)
{
    Stmt *stmt = slot->get();
    if (!stmt)
        return;
    switch (stmt->kind()) {
    case StmtKind::Block:
        collectBlock(static_cast<BlockStmt &>(*stmt), sites);
        return;
    case StmtKind::ExprStmt:
        collectExpr(&static_cast<ExprStmt &>(*stmt).expr, sites);
        return;
    case StmtKind::DeclStmt: {
        VarDecl *decl = static_cast<DeclStmt &>(*stmt).decl.get();
        if (decl->init)
            collectExpr(&decl->init, sites);
        // initList stays literal: array initializers must remain
        // constant expressions.
        return;
    }
    case StmtKind::If: {
        auto &if_stmt = static_cast<IfStmt &>(*stmt);
        if (if_stmt.elseStmt)
            sites.swappable.push_back(&if_stmt);
        if (flattenableInner(if_stmt))
            sites.flattenable.push_back(&if_stmt);
        collectExpr(&if_stmt.cond, sites);
        collectStmt(&if_stmt.thenStmt, sites);
        if (if_stmt.elseStmt)
            collectStmt(&if_stmt.elseStmt, sites);
        return;
    }
    case StmtKind::While: {
        auto &loop = static_cast<WhileStmt &>(*stmt);
        sites.whiles.push_back(slot);
        collectExpr(&loop.cond, sites);
        collectStmt(&loop.body, sites);
        return;
    }
    case StmtKind::DoWhile: {
        auto &loop = static_cast<DoWhileStmt &>(*stmt);
        collectStmt(&loop.body, sites);
        collectExpr(&loop.cond, sites);
        return;
    }
    case StmtKind::For: {
        auto &loop = static_cast<ForStmt &>(*stmt);
        if (loop.init)
            collectStmt(&loop.init, sites);
        if (loop.cond)
            collectExpr(&loop.cond, sites);
        if (loop.step)
            collectExpr(&loop.step, sites);
        collectStmt(&loop.body, sites);
        return;
    }
    case StmtKind::Switch: {
        auto &switch_stmt = static_cast<SwitchStmt &>(*stmt);
        collectExpr(&switch_stmt.cond, sites);
        for (lang::SwitchCase &arm : switch_stmt.cases)
            collectBlock(*arm.body, sites);
        return;
    }
    case StmtKind::Return: {
        auto &ret = static_cast<ReturnStmt &>(*stmt);
        if (ret.value)
            collectExpr(&ret.value, sites);
        return;
    }
    default:
        return;
    }
}

Sites
collectSites(TranslationUnit &unit)
{
    Sites sites;
    // Global initializers are never touched: they must stay constant
    // expressions for sema, and re-expressing them would perturb the
    // optimizer-visible initial state, not the code.
    for (const auto &fn : unit.functions) {
        if (fn->body)
            collectBlock(*fn->body, sites);
    }
    return sites;
}

//===------------------------------------------------------------------===//
// Applications
//===------------------------------------------------------------------===//

/** Wrap @p slot in a BlockStmt unless it already is one — branch
 * bodies that change position must keep their brace structure so the
 * printed form re-parses unambiguously (dangling else). */
void
ensureBlock(StmtPtr &slot)
{
    if (slot->kind() == StmtKind::Block)
        return;
    auto wrapper = std::make_unique<BlockStmt>();
    wrapper->loc = slot->loc;
    wrapper->stmts.push_back(std::move(slot));
    slot = std::move(wrapper);
}

/** while (c) B  =>  if (c) { do B while (c); } — identical condition
 * evaluation count and order, identical body trip count, break and
 * continue land in the same places. */
void
applyLoopRotate(StmtPtr *slot)
{
    auto *loop = static_cast<WhileStmt *>(slot->get());
    ExprPtr entry_cond = loop->cond->clone();
    auto rotated = std::make_unique<DoWhileStmt>(
        std::move(loop->body), std::move(loop->cond));
    rotated->loc = loop->loc;
    auto guard_body = std::make_unique<BlockStmt>();
    guard_body->loc = loop->loc;
    guard_body->stmts.push_back(std::move(rotated));
    auto guard = std::make_unique<IfStmt>(
        std::move(entry_cond), std::move(guard_body), nullptr);
    guard->loc = (*slot)->loc;
    *slot = std::move(guard);
}

/** (a op b) op c => a op (b op c): left-to-right evaluation of a, b, c
 * is preserved, so this is exact for wrapping associative ops even
 * with effectful operands. */
void
applyRotation(BinaryExpr *outer)
{
    auto *inner = static_cast<BinaryExpr *>(outer->lhs.get());
    ExprPtr a = std::move(inner->lhs);
    ExprPtr b = std::move(inner->rhs);
    ExprPtr c = std::move(outer->rhs);
    auto regrouped = std::make_unique<BinaryExpr>(
        outer->op, std::move(b), std::move(c));
    regrouped->loc = outer->loc;
    outer->lhs = std::move(a);
    outer->rhs = std::move(regrouped);
}

void
applyBranchSwap(IfStmt *if_stmt)
{
    auto negated = std::make_unique<UnaryExpr>(
        UnaryOp::LogicalNot, std::move(if_stmt->cond));
    negated->loc = if_stmt->loc;
    if_stmt->cond = std::move(negated);
    std::swap(if_stmt->thenStmt, if_stmt->elseStmt);
    ensureBlock(if_stmt->thenStmt);
    ensureBlock(if_stmt->elseStmt);
}

/** if (a) { if (b) S } => if (a && b) S: short-circuit && evaluates b
 * exactly when a holds — the same condition the nesting imposed. */
void
applyBranchFlatten(IfStmt *outer)
{
    IfStmt *inner = flattenableInner(*outer);
    auto combined = std::make_unique<BinaryExpr>(
        lang::BinaryOp::LogicalAnd, std::move(outer->cond),
        std::move(inner->cond));
    combined->loc = outer->loc;
    StmtPtr body = std::move(inner->thenStmt);
    outer->cond = std::move(combined);
    outer->thenStmt = std::move(body);
    ensureBlock(outer->thenStmt);
}

/** k => (k - d) + d (0 => d - d): value-identical, so safe in any
 * position including divisors and shift amounts. */
void
applyConstantReexpr(ExprPtr *slot, Rng &rng)
{
    uint64_t value = static_cast<IntLit *>(slot->get())->value;
    SourceLoc loc = (*slot)->loc;
    ExprPtr replacement;
    if (value == 0) {
        uint64_t d = 1 + rng.below(7);
        replacement = std::make_unique<BinaryExpr>(
            lang::BinaryOp::Sub, std::make_unique<IntLit>(d),
            std::make_unique<IntLit>(d));
    } else {
        uint64_t d = 1 + rng.below(std::min<uint64_t>(value, 7));
        replacement = std::make_unique<BinaryExpr>(
            lang::BinaryOp::Add, std::make_unique<IntLit>(value - d),
            std::make_unique<IntLit>(d));
    }
    replacement->loc = loc;
    *slot = std::move(replacement);
}

} // namespace

bool
applyTransform(TranslationUnit &unit, TransformKind kind, Rng &rng)
{
    Sites sites = collectSites(unit);
    switch (kind) {
    case TransformKind::LoopRotate:
        if (sites.whiles.empty())
            return false;
        applyLoopRotate(rng.pick(sites.whiles));
        return true;
    case TransformKind::Reassociate: {
        // One site pool: rotations first, then commutations, so the
        // draw is uniform over every reassociation opportunity.
        size_t total =
            sites.rotations.size() + sites.commutations.size();
        if (total == 0)
            return false;
        size_t choice = rng.below(total);
        if (choice < sites.rotations.size()) {
            applyRotation(sites.rotations[choice]);
        } else {
            BinaryExpr *bin =
                sites.commutations[choice - sites.rotations.size()];
            std::swap(bin->lhs, bin->rhs);
        }
        return true;
    }
    case TransformKind::BranchSwap:
        if (sites.swappable.empty())
            return false;
        applyBranchSwap(rng.pick(sites.swappable));
        return true;
    case TransformKind::BranchFlatten:
        if (sites.flattenable.empty())
            return false;
        applyBranchFlatten(rng.pick(sites.flattenable));
        return true;
    case TransformKind::ConstantReexpr:
        if (sites.literals.empty())
            return false;
        applyConstantReexpr(rng.pick(sites.literals), rng);
        return true;
    case TransformKind::StmtCommute: {
        if (sites.commutes.empty())
            return false;
        auto [block, index] = rng.pick(sites.commutes);
        std::swap(block->stmts[index], block->stmts[index + 1]);
        return true;
    }
    }
    return false;
}

namespace {

/** Decorrelate the variant stream from the generator's and the
 * mutator's (all splitmix64 over campaign-derived seeds). */
constexpr uint64_t kEquivStream = 0x6571756976786672ULL; // "equivxfr"

} // namespace

std::unique_ptr<TranslationUnit>
deriveVariant(const TranslationUnit &stripped_base, uint64_t seed,
              unsigned max_chain, std::vector<TransformKind> *chain)
{
    Rng rng(seed ^ kEquivStream);
    // Round-trip the base first: transforms rely on sema annotations
    // (types, resolved decls), and the clone a caller may hand us
    // carries stale cross-references by AST contract.
    std::string text = lang::printUnit(stripped_base);
    DiagnosticEngine diags;
    std::unique_ptr<TranslationUnit> unit =
        lang::parseAndCheck(text, diags);
    if (!unit)
        return nullptr;

    unsigned edits = 1 + static_cast<unsigned>(
                             rng.below(std::max(1u, max_chain)));
    std::vector<TransformKind> applied;
    for (unsigned edit = 0; edit < edits; ++edit) {
        TransformKind kind = rng.pick(allTransforms());
        if (!applyTransform(*unit, kind, rng))
            continue; // no site for this kind; try another draw
        std::string candidate = lang::printUnit(*unit);
        DiagnosticEngine reparse_diags;
        std::unique_ptr<TranslationUnit> reparsed =
            lang::parseAndCheck(candidate, reparse_diags);
        if (!reparsed) {
            // The edit broke sema (e.g. a commute surfaced an
            // ordering constraint): revert to the last good state and
            // stop the chain there.
            DiagnosticEngine revert_diags;
            unit = lang::parseAndCheck(text, revert_diags);
            break;
        }
        text = std::move(candidate);
        unit = std::move(reparsed);
        applied.push_back(kind);
    }
    if (applied.empty())
        return nullptr;
    if (chain)
        *chain = std::move(applied);
    return unit;
}

} // namespace dce::equiv
