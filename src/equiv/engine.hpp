/**
 * @file
 * The metamorphic-testing engine (DESIGN.md §16): derive semantics-
 * preserving variants of every corpus-store program, prove each
 * equivalent by execution, and hold every campaign build to the
 * regression contract the transforms imply —
 *
 *   a truly dead marker the build eliminated in the base program must
 *   stay eliminated in every equivalent variant.
 *
 * Marker indices do not correspond across re-instrumentation (a
 * transform can add or remove marker sites), so the oracle is
 * count-based: a build that misses strictly more truly-dead markers on
 * the variant than on the base has regressed, and the witness marker is
 * chosen from a marker-site kind whose missed count grew. A companion
 * instruction-count oracle flags variants whose optimized size blows
 * past the base's by a configured ratio.
 *
 * Variants that fail the equivalence check — the interpreter disagrees
 * on outputs, traps, or termination — are counted per reason and
 * discarded; they are never findings. Everything here is a pure
 * function of (store contents, options), computed per record slot and
 * merged in slot order, so summaries, events, and metrics are
 * byte-identical across thread counts and after kill + resume.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/triage.hpp"
#include "corpus/store.hpp"
#include "equiv/transforms.hpp"
#include "opt/pass.hpp"
#include "support/events.hpp"
#include "support/metrics.hpp"

namespace dce::equiv {

/** Knobs for runEquivAnalysis. */
struct EquivOptions {
    /** Variants derived per corpus program (K). */
    unsigned variantsPerProgram = 4;
    /** Maximum transforms chained into one variant. */
    unsigned maxChainLength = 3;
    /** Worker threads; 1 = serial, 0 = one per hardware thread.
     * Never affects the result. */
    unsigned threads = 1;
    /** Stream seed for variant derivation (mixed with slot + index). */
    uint64_t seed = 1;
    /** Cap on emitted findings, applied in slot order. */
    unsigned maxFindings = 64;
    /** Instruction-count outlier: a variant whose optimized module has
     * at least numerator/denominator times the base's instructions
     * (and the base has at least minInstrs) is flagged. */
    unsigned outlierNumerator = 5;
    unsigned outlierDenominator = 4;
    uint64_t outlierMinInstrs = 16;
    /** Registry for the equiv.* counters; null = the process global. */
    support::MetricsRegistry *metrics = nullptr;
    /** Sink for kPhaseEquiv events; null = no events. */
    support::EventSink *events = nullptr;
};

/** One metamorphic regression: a build misses more truly-dead markers
 * on an equivalent variant than on the base program it derives from. */
struct EquivFinding {
    uint64_t slot = 0; ///< record slot in the campaign plan
    uint64_t seed = 0; ///< the record's generator seed
    std::string baseHash;    ///< canonical hash of the base program
    std::string variantHash; ///< canonical hash of the variant
    unsigned variantIndex = 0;           ///< k in [0, K)
    std::vector<TransformKind> chain;    ///< transforms applied
    core::BuildSpec spec;                ///< the regressing build
    std::string build;                   ///< spec.name()
    size_t buildIndex = 0;               ///< index in the plan's builds
    unsigned marker = 0;      ///< witness marker (variant numbering)
    unsigned missedBase = 0;  ///< |missed truly-dead| on the base
    unsigned missedVariant = 0; ///< |missed truly-dead| on the variant
    std::string variantText;  ///< canonical instrumented variant source
    // Filled by applyTriage:
    std::string signature;
    bool confirmed = false;
    bool duplicate = false;
    bool fixed = false;
    unsigned reductionTests = 0;
};

/** A variant whose optimized size blew past the base's. */
struct EquivOutlier {
    uint64_t slot = 0;
    std::string baseHash;
    std::string variantHash;
    unsigned variantIndex = 0;
    std::vector<TransformKind> chain;
    std::string build;
    uint64_t baseInstrs = 0;
    uint64_t variantInstrs = 0;
};

/** Everything one metamorphic analysis produced. */
struct EquivSummary {
    unsigned variantsPerProgram = 0;
    uint64_t seed = 0;
    uint64_t programs = 0; ///< records analysed
    uint64_t variants = 0; ///< variants proven equivalent
    /** Discarded variants per reason: no-edit, stale, trap-timeout,
     * not-equivalent, base-invalid, missing-program. */
    std::map<std::string, uint64_t> rejects;
    std::vector<EquivFinding> findings;
    std::vector<EquivOutlier> outliers;

    uint64_t rejected() const;
};

/**
 * Run the metamorphic analysis over every record of @p store's
 * checkpointed campaign (builds come from the checkpoint plan).
 * Deterministic: byte-identical summary, events, and equiv.* counters
 * for every thread count. Nullopt when the store has no readable
 * checkpoint.
 */
std::optional<EquivSummary>
runEquivAnalysis(corpus::CorpusStore &store,
                 const EquivOptions &options = {});

/** Outcome of one base/variant probe under one pass configuration. */
struct PairOutcome {
    bool valid = false;       ///< both sides parsed + executed cleanly
    bool equivalent = false;  ///< observably equal behaviour
    std::set<unsigned> missedBase;    ///< truly-dead-but-alive, base
    std::set<unsigned> missedVariant; ///< truly-dead-but-alive, variant
    /** Witness when |missedVariant| > |missedBase|. */
    std::optional<unsigned> findingMarker;
};

/**
 * The oracle on one explicit (base, variant) source pair under an
 * explicit @p config — the positive-control hook: a deliberately
 * handicapped configuration (say jumpThreading = false) must turn a
 * crafted pair into a finding while the stock configuration yields
 * none. Sources are un-instrumented; both sides are instrumented,
 * executed for ground truth, and compiled with @p config at @p level.
 */
PairOutcome checkEquivPair(const std::string &base_source,
                           const std::string &variant_source,
                           const opt::PassConfig &config,
                           compiler::OptLevel level);

/** Instructions across every block of every function with a body —
 * the size measure behind the outlier oracle. */
uint64_t countInstructions(const ir::Module &module);

//===-- persistence ----------------------------------------------------===//

/** One CRC-sealed JSON line holding @p summary (equiv.json). */
std::string serializeEquivSummary(const EquivSummary &summary);

/** Verify + parse a serialized summary; nullopt on damage. */
std::optional<EquivSummary> readEquivSummary(std::string_view line);

/** Deterministic text block for campaign summaries (longrun, tests):
 * covered by the same byte-identity contract as summaryText. */
std::string equivSummaryText(const EquivSummary &summary);

//===-- triage bridge --------------------------------------------------===//

/** The core::Finding view of @p summary's findings, in order. An
 * equiv finding sets reference = missedBy: the feasibility evidence is
 * the base program, not a second build, so the reference-eliminates
 * probe is vacuous and triage skips it. */
std::vector<core::Finding> toTriageFindings(const EquivSummary &summary);

/**
 * Reduce + signature + classify @p summary's findings through
 * core::triageFindings — variant sources flow in via
 * TriageOptions::sourceFor (the findings' seeds regenerate the *base*,
 * never the variant) — and write the verdicts back into the findings
 * (signature/confirmed/duplicate/fixed/reductionTests).
 * @p options fields generator/sourceFor are overwritten.
 */
core::TriageSummary triageEquivFindings(EquivSummary &summary,
                                        core::TriageOptions options);

} // namespace dce::equiv
