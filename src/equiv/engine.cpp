#include "equiv/engine.hpp"

#include <algorithm>
#include <array>

#include "core/analysis.hpp"
#include "corpus/checkpoint.hpp"
#include "gen/canon.hpp"
#include "instrument/instrument.hpp"
#include "interp/interpreter.hpp"
#include "ir/clone.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "support/hash.hpp"
#include "support/thread_pool.hpp"

namespace dce::equiv {

uint64_t
EquivSummary::rejected() const
{
    uint64_t total = 0;
    for (const auto &[reason, count] : rejects)
        total += count;
    return total;
}

uint64_t
countInstructions(const ir::Module &module)
{
    uint64_t total = 0;
    for (const auto &fn : module.functions()) {
        for (const auto &block : fn->blocks())
            total += block->size();
    }
    return total;
}

namespace {

/** Reject-reason labels (equiv.rejects{<reason>} metric keys). */
constexpr const char *kRejectMissingProgram = "missing-program";
constexpr const char *kRejectBaseInvalid = "base-invalid";
constexpr const char *kRejectNoEdit = "no-edit";
constexpr const char *kRejectStale = "stale";
constexpr const char *kRejectTrapTimeout = "trap-timeout";
constexpr const char *kRejectNotEquivalent = "not-equivalent";

/** splitmix64 finalizer — the per-variant seed must decorrelate
 * (options.seed, slot, k) without any shared-stream state. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

uint64_t
variantSeed(uint64_t stream, uint64_t slot, uint64_t index)
{
    return mix64(stream ^ mix64(slot ^ mix64(index)));
}

std::string
chainNames(const std::vector<TransformKind> &chain)
{
    std::string out;
    for (TransformKind kind : chain) {
        if (!out.empty())
            out += '+';
        out += transformKindName(kind);
    }
    return out;
}

/** Missed-marker count per marker-site kind — the shape the witness
 * rule compares across re-instrumentation (marker *indices* do not
 * correspond between base and variant; site kinds do). */
std::array<uint64_t, 8>
siteHistogram(const std::vector<instrument::MarkerInfo> &markers,
              const std::set<unsigned> &missed)
{
    std::array<uint64_t, 8> hist{};
    for (const instrument::MarkerInfo &info : markers) {
        if (missed.count(info.index))
            ++hist[static_cast<size_t>(info.site)];
    }
    return hist;
}

/**
 * The finding's witness marker: the smallest missed variant marker
 * from a site kind whose missed count grew over the base's — the kind
 * the regression actually touched. Falls back to the smallest missed
 * variant marker when no single kind grew (pure reshuffle).
 * @pre missed_variant is non-empty.
 */
unsigned
witnessMarker(const std::vector<instrument::MarkerInfo> &base_markers,
              const std::set<unsigned> &missed_base,
              const std::vector<instrument::MarkerInfo> &variant_markers,
              const std::set<unsigned> &missed_variant)
{
    std::array<uint64_t, 8> base_hist =
        siteHistogram(base_markers, missed_base);
    std::array<uint64_t, 8> variant_hist =
        siteHistogram(variant_markers, missed_variant);
    unsigned best = ~0u;
    for (size_t site = 0; site < variant_hist.size(); ++site) {
        if (variant_hist[site] <= base_hist[site])
            continue;
        for (const instrument::MarkerInfo &info : variant_markers) {
            if (static_cast<size_t>(info.site) == site &&
                missed_variant.count(info.index))
                best = std::min(best, info.index);
        }
    }
    return best != ~0u ? best : *missed_variant.begin();
}

/** Everything one record slot contributed, merged serially in slot
 * order afterwards. */
struct SlotOutcome {
    bool processed = false; ///< base parsed + executed cleanly
    uint64_t variants = 0;  ///< variants proven equivalent
    std::map<std::string, uint64_t> rejects;
    std::vector<EquivFinding> findings;
    std::vector<EquivOutlier> outliers;
};

/** One build's view of one (instrumented, lowered) program. */
struct BuildView {
    std::set<unsigned> missed; ///< truly dead but surviving
    uint64_t instrs = 0;
};

BuildView
buildView(const compiler::Compiler &comp, const ir::Module &lowered,
          const core::GroundTruth &truth)
{
    compiler::Compilation compiled = comp.compileLowered(lowered);
    BuildView view;
    view.missed =
        core::setIntersect(compiled.survivingMarkers(), truth.deadMarkers);
    view.instrs = countInstructions(compiled.module());
    return view;
}

void
analyzeRecord(const corpus::StoredRecord &stored,
              const std::string &base_text,
              const std::vector<core::BuildSpec> &builds,
              const std::vector<compiler::Compiler> &compilers,
              const EquivOptions &options, SlotOutcome &out)
{
    // The store holds canonical instrumented text; strip it back to
    // the program the transforms operate on, then re-canonicalize so
    // the base goes through byte-for-byte the same instrument + print
    // path every variant will.
    std::unique_ptr<lang::TranslationUnit> stripped =
        gen::parseStripped(base_text);
    if (!stripped) {
        ++out.rejects[kRejectBaseInvalid];
        return;
    }
    gen::Canonical base = gen::canonicalize(*stripped);

    std::unique_ptr<ir::Module> stripped_lowered =
        ir::lowerToIr(*stripped);
    interp::ExecResult base_behavior = interp::execute(*stripped_lowered);
    if (!base_behavior.ok()) {
        ++out.rejects[kRejectBaseInvalid];
        return;
    }
    std::unique_ptr<ir::Module> base_lowered =
        ir::lowerToIr(*base.program.unit);
    core::GroundTruth base_truth = core::groundTruthFor(
        *base_lowered, base.program.markerCount());
    if (!base_truth.valid) {
        ++out.rejects[kRejectBaseInvalid];
        return;
    }
    out.processed = true;

    std::vector<BuildView> base_views;
    base_views.reserve(compilers.size());
    for (const compiler::Compiler &comp : compilers)
        base_views.push_back(buildView(comp, *base_lowered, base_truth));

    // First regressing/outlying variant wins per (record, build):
    // one witness per contract violation, not one per derivation.
    std::vector<bool> found(compilers.size(), false);
    std::vector<bool> outlying(compilers.size(), false);

    for (unsigned k = 0; k < options.variantsPerProgram; ++k) {
        uint64_t vseed = variantSeed(options.seed, stored.slot, k);
        std::vector<TransformKind> chain;
        std::unique_ptr<lang::TranslationUnit> variant = deriveVariant(
            *stripped, vseed, options.maxChainLength, &chain);
        if (!variant) {
            ++out.rejects[kRejectNoEdit];
            continue;
        }
        gen::Canonical canon = gen::canonicalize(*variant);
        if (canon.hash == base.hash) {
            ++out.rejects[kRejectStale];
            continue;
        }

        // The equivalence check is the oracle's soundness: a transform
        // bug must surface here as a counted reject, never downstream
        // as a finding.
        std::unique_ptr<ir::Module> variant_stripped_lowered =
            ir::lowerToIr(*variant);
        interp::ExecResult variant_behavior =
            interp::execute(*variant_stripped_lowered);
        if (variant_behavior.status == interp::ExecStatus::Timeout ||
            variant_behavior.status == interp::ExecStatus::Trap) {
            ++out.rejects[kRejectTrapTimeout];
            continue;
        }
        if (!interp::observablyEqual(base_behavior, variant_behavior)) {
            ++out.rejects[kRejectNotEquivalent];
            continue;
        }

        std::unique_ptr<ir::Module> variant_lowered =
            ir::lowerToIr(*canon.program.unit);
        core::GroundTruth variant_truth = core::groundTruthFor(
            *variant_lowered, canon.program.markerCount());
        if (!variant_truth.valid) {
            ++out.rejects[kRejectTrapTimeout];
            continue;
        }
        ++out.variants;

        for (size_t b = 0; b < compilers.size(); ++b) {
            BuildView view =
                buildView(compilers[b], *variant_lowered, variant_truth);
            if (!found[b] &&
                view.missed.size() > base_views[b].missed.size()) {
                found[b] = true;
                EquivFinding finding;
                finding.slot = stored.slot;
                finding.seed = stored.record.seed;
                finding.baseHash = base.hash;
                finding.variantHash = canon.hash;
                finding.variantIndex = k;
                finding.chain = chain;
                finding.spec = builds[b];
                finding.build = builds[b].name();
                finding.buildIndex = b;
                finding.marker = witnessMarker(
                    base.program.markers, base_views[b].missed,
                    canon.program.markers, view.missed);
                finding.missedBase =
                    static_cast<unsigned>(base_views[b].missed.size());
                finding.missedVariant =
                    static_cast<unsigned>(view.missed.size());
                finding.variantText = canon.text;
                out.findings.push_back(std::move(finding));
            }
            if (!outlying[b] &&
                base_views[b].instrs >= options.outlierMinInstrs &&
                view.instrs * options.outlierDenominator >=
                    base_views[b].instrs * options.outlierNumerator) {
                outlying[b] = true;
                EquivOutlier outlier;
                outlier.slot = stored.slot;
                outlier.baseHash = base.hash;
                outlier.variantHash = canon.hash;
                outlier.variantIndex = k;
                outlier.chain = chain;
                outlier.build = builds[b].name();
                outlier.baseInstrs = base_views[b].instrs;
                outlier.variantInstrs = view.instrs;
                out.outliers.push_back(std::move(outlier));
            }
        }
    }
}

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

std::optional<EquivSummary>
runEquivAnalysis(corpus::CorpusStore &store, const EquivOptions &options)
{
    std::optional<corpus::CheckpointState> state =
        corpus::readCheckpointState(store);
    if (!state)
        return std::nullopt;

    std::vector<corpus::StoredRecord> records = store.loadRecords();
    std::vector<compiler::Compiler> compilers;
    compilers.reserve(state->plan.builds.size());
    for (const core::BuildSpec &spec : state->plan.builds)
        compilers.push_back(spec.make());

    support::emitEvent(
        options.events,
        support::Event("equiv_started", {support::kPhaseEquiv, 0, 0})
            .num("records", records.size())
            .num("variants_per_program", options.variantsPerProgram)
            .num("seed", options.seed));

    // Fan out per record slot; every slot is a pure function of
    // (record, plan, options), so the merge below sees the same slot
    // contents for every thread count.
    std::vector<SlotOutcome> slots(records.size());
    support::ThreadPool pool(resolveThreads(options.threads));
    pool.forChunks(records.size(), 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            const corpus::StoredRecord &stored = records[i];
            if (!stored.record.valid) {
                ++slots[i].rejects[kRejectBaseInvalid];
                continue;
            }
            std::optional<std::string> text =
                store.getProgram(stored.programHash);
            if (!text) {
                ++slots[i].rejects[kRejectMissingProgram];
                continue;
            }
            analyzeRecord(stored, *text, state->plan.builds, compilers,
                          options, slots[i]);
        }
    });

    // Serial merge in slot order: counters, cap, events.
    EquivSummary summary;
    summary.variantsPerProgram = options.variantsPerProgram;
    summary.seed = options.seed;
    const size_t nbuilds = std::max<size_t>(1, compilers.size());
    for (size_t i = 0; i < slots.size(); ++i) {
        SlotOutcome &slot = slots[i];
        summary.programs += slot.processed ? 1 : 0;
        summary.variants += slot.variants;
        for (const auto &[reason, count] : slot.rejects)
            summary.rejects[reason] += count;
        for (EquivFinding &finding : slot.findings) {
            if (summary.findings.size() >= options.maxFindings)
                break;
            support::emitEvent(
                options.events,
                support::Event(
                    "equiv_finding",
                    {support::kPhaseEquiv, finding.slot + 1,
                     (uint64_t(finding.variantIndex) * nbuilds +
                      finding.buildIndex) *
                         2})
                    .num("slot", finding.slot)
                    .num("seed", finding.seed)
                    .str("build", finding.build)
                    .num("marker", finding.marker)
                    .num("missed_base", finding.missedBase)
                    .num("missed_variant", finding.missedVariant)
                    .str("base", finding.baseHash)
                    .str("variant", finding.variantHash)
                    .str("chain", chainNames(finding.chain)));
            summary.findings.push_back(std::move(finding));
        }
        for (EquivOutlier &outlier : slot.outliers) {
            support::emitEvent(
                options.events,
                support::Event(
                    "equiv_outlier",
                    {support::kPhaseEquiv, outlier.slot + 1,
                     (uint64_t(outlier.variantIndex) * nbuilds) * 2 + 1})
                    .num("slot", outlier.slot)
                    .str("build", outlier.build)
                    .num("base_instrs", outlier.baseInstrs)
                    .num("variant_instrs", outlier.variantInstrs)
                    .str("chain", chainNames(outlier.chain)));
            summary.outliers.push_back(std::move(outlier));
        }
    }

    support::MetricsRegistry &registry =
        options.metrics ? *options.metrics
                        : support::MetricsRegistry::global();
    registry.counter("equiv.programs").add(summary.programs);
    registry.counter("equiv.variants").add(summary.variants);
    for (const auto &[reason, count] : summary.rejects)
        registry.counter("equiv.rejects", reason).add(count);
    registry.counter("equiv.findings").add(summary.findings.size());
    registry.counter("equiv.outliers").add(summary.outliers.size());

    support::emitEvent(
        options.events,
        support::Event("equiv_finished",
                       {support::kPhaseEquiv, ~uint64_t{0}, 0})
            .num("programs", summary.programs)
            .num("variants", summary.variants)
            .num("rejects", summary.rejected())
            .num("findings", summary.findings.size())
            .num("outliers", summary.outliers.size()));
    return summary;
}

//===------------------------------------------------------------------===//
// checkEquivPair — the positive-control hook
//===------------------------------------------------------------------===//

namespace {

/** Per-side state of a pair probe. */
struct PairSide {
    bool valid = false;
    instrument::Instrumented program;
    std::unique_ptr<ir::Module> plainLowered; ///< un-instrumented
    std::unique_ptr<ir::Module> lowered;      ///< instrumented
    interp::ExecResult behavior;              ///< of the plain lowering
    core::GroundTruth truth;
};

PairSide
probeSide(const std::string &source)
{
    PairSide side;
    DiagnosticEngine diags;
    std::unique_ptr<lang::TranslationUnit> unit =
        lang::parseAndCheck(source, diags);
    if (!unit)
        return side;
    side.plainLowered = ir::lowerToIr(*unit);
    side.behavior = interp::execute(*side.plainLowered);
    if (!side.behavior.ok())
        return side;
    side.program = instrument::instrumentUnit(*unit);
    side.lowered = ir::lowerToIr(*side.program.unit);
    side.truth = core::groundTruthFor(*side.lowered,
                                      side.program.markerCount());
    side.valid = side.truth.valid;
    return side;
}

std::pair<std::set<unsigned>, uint64_t>
optimizeWith(const ir::Module &lowered, const opt::PassConfig &config,
             compiler::OptLevel level, const core::GroundTruth &truth)
{
    std::unique_ptr<ir::Module> module = ir::cloneModule(lowered);
    opt::PassManager pm(compiler::adjustForLevel(config, level));
    compiler::buildPipeline(pm, level);
    pm.run(*module);
    return {core::setIntersect(compiler::survivingMarkersInIr(*module),
                               truth.deadMarkers),
            countInstructions(*module)};
}

} // namespace

PairOutcome
checkEquivPair(const std::string &base_source,
               const std::string &variant_source,
               const opt::PassConfig &config, compiler::OptLevel level)
{
    PairOutcome outcome;
    PairSide base = probeSide(base_source);
    PairSide variant = probeSide(variant_source);
    if (!base.valid || !variant.valid)
        return outcome;
    outcome.valid = true;
    outcome.equivalent =
        interp::observablyEqual(base.behavior, variant.behavior);
    if (!outcome.equivalent)
        return outcome;
    outcome.missedBase =
        optimizeWith(*base.lowered, config, level, base.truth).first;
    outcome.missedVariant =
        optimizeWith(*variant.lowered, config, level, variant.truth)
            .first;
    if (outcome.missedVariant.size() > outcome.missedBase.size()) {
        outcome.findingMarker = witnessMarker(
            base.program.markers, outcome.missedBase,
            variant.program.markers, outcome.missedVariant);
    }
    return outcome;
}

//===------------------------------------------------------------------===//
// Persistence
//===------------------------------------------------------------------===//

namespace {

void
writeChain(corpus::JsonWriter &json,
           const std::vector<TransformKind> &chain)
{
    json.beginArray();
    for (TransformKind kind : chain)
        json.value(transformKindName(kind));
    json.endArray();
}

std::vector<TransformKind>
readChain(const corpus::JsonValue *value)
{
    std::vector<TransformKind> chain;
    if (!value || !value->isArray())
        return chain;
    for (const corpus::JsonValue &item : value->items) {
        if (std::optional<TransformKind> kind =
                transformKindFromName(item.text))
            chain.push_back(*kind);
    }
    return chain;
}

} // namespace

std::string
serializeEquivSummary(const EquivSummary &summary)
{
    corpus::JsonWriter json;
    json.beginObject();
    json.field("version", uint64_t{1});
    json.field("k", summary.variantsPerProgram);
    json.field("seed", summary.seed);
    json.field("programs", summary.programs);
    json.field("variants", summary.variants);
    json.key("rejects");
    json.beginObject();
    for (const auto &[reason, count] : summary.rejects)
        json.field(reason, count);
    json.endObject();
    json.key("findings");
    json.beginArray();
    for (const EquivFinding &finding : summary.findings) {
        json.beginObject();
        json.field("slot", finding.slot);
        json.field("seed", finding.seed);
        json.field("base", finding.baseHash);
        json.field("variant", finding.variantHash);
        json.field("index", finding.variantIndex);
        json.key("chain");
        writeChain(json, finding.chain);
        json.field("build", finding.build);
        json.field("build_index", uint64_t{finding.buildIndex});
        json.field("compiler",
                   uint64_t(static_cast<int>(finding.spec.id)));
        json.field("level",
                   uint64_t(static_cast<int>(finding.spec.level)));
        json.field("commit", uint64_t{finding.spec.commit});
        json.field("marker", finding.marker);
        json.field("missed_base", finding.missedBase);
        json.field("missed_variant", finding.missedVariant);
        json.field("text", finding.variantText);
        json.field("signature", finding.signature);
        json.field("confirmed", finding.confirmed);
        json.field("duplicate", finding.duplicate);
        json.field("fixed", finding.fixed);
        json.field("tests", finding.reductionTests);
        json.endObject();
    }
    json.endArray();
    json.key("outliers");
    json.beginArray();
    for (const EquivOutlier &outlier : summary.outliers) {
        json.beginObject();
        json.field("slot", outlier.slot);
        json.field("base", outlier.baseHash);
        json.field("variant", outlier.variantHash);
        json.field("index", outlier.variantIndex);
        json.key("chain");
        writeChain(json, outlier.chain);
        json.field("build", outlier.build);
        json.field("base_instrs", outlier.baseInstrs);
        json.field("variant_instrs", outlier.variantInstrs);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return corpus::sealJsonLine(json.take());
}

std::optional<EquivSummary>
readEquivSummary(std::string_view line)
{
    std::optional<corpus::JsonValue> value =
        corpus::unsealJsonLine(line);
    if (!value || !value->isObject() || value->getU64("version") != 1)
        return std::nullopt;
    EquivSummary summary;
    summary.variantsPerProgram =
        static_cast<unsigned>(value->getU64("k"));
    summary.seed = value->getU64("seed");
    summary.programs = value->getU64("programs");
    summary.variants = value->getU64("variants");
    if (const corpus::JsonValue *rejects = value->get("rejects")) {
        for (const auto &[reason, count] : rejects->members)
            summary.rejects[reason] = count.asU64();
    }
    if (const corpus::JsonValue *findings = value->get("findings")) {
        for (const corpus::JsonValue &item : findings->items) {
            EquivFinding finding;
            finding.slot = item.getU64("slot");
            finding.seed = item.getU64("seed");
            finding.baseHash = item.getString("base");
            finding.variantHash = item.getString("variant");
            finding.variantIndex =
                static_cast<unsigned>(item.getU64("index"));
            finding.chain = readChain(item.get("chain"));
            finding.build = item.getString("build");
            finding.buildIndex =
                static_cast<size_t>(item.getU64("build_index"));
            finding.spec.id = static_cast<compiler::CompilerId>(
                item.getU64("compiler"));
            finding.spec.level = static_cast<compiler::OptLevel>(
                item.getU64("level"));
            finding.spec.commit =
                static_cast<size_t>(item.getU64("commit"));
            finding.marker =
                static_cast<unsigned>(item.getU64("marker"));
            finding.missedBase =
                static_cast<unsigned>(item.getU64("missed_base"));
            finding.missedVariant =
                static_cast<unsigned>(item.getU64("missed_variant"));
            finding.variantText = item.getString("text");
            finding.signature = item.getString("signature");
            finding.confirmed = item.getBool("confirmed");
            finding.duplicate = item.getBool("duplicate");
            finding.fixed = item.getBool("fixed");
            finding.reductionTests =
                static_cast<unsigned>(item.getU64("tests"));
            summary.findings.push_back(std::move(finding));
        }
    }
    if (const corpus::JsonValue *outliers = value->get("outliers")) {
        for (const corpus::JsonValue &item : outliers->items) {
            EquivOutlier outlier;
            outlier.slot = item.getU64("slot");
            outlier.baseHash = item.getString("base");
            outlier.variantHash = item.getString("variant");
            outlier.variantIndex =
                static_cast<unsigned>(item.getU64("index"));
            outlier.chain = readChain(item.get("chain"));
            outlier.build = item.getString("build");
            outlier.baseInstrs = item.getU64("base_instrs");
            outlier.variantInstrs = item.getU64("variant_instrs");
            summary.outliers.push_back(std::move(outlier));
        }
    }
    return summary;
}

std::string
equivSummaryText(const EquivSummary &summary)
{
    std::string out = "== metamorphic ==\n";
    out += "programs analysed: " + std::to_string(summary.programs) +
           "\n";
    out += "variants (K=" +
           std::to_string(summary.variantsPerProgram) +
           ", seed=" + std::to_string(summary.seed) +
           "): " + std::to_string(summary.variants) + " equivalent, " +
           std::to_string(summary.rejected()) + " rejected\n";
    for (const auto &[reason, count] : summary.rejects) {
        out += "  reject " + std::string(reason) + ": " +
               std::to_string(count) + "\n";
    }
    out += "equiv findings: " + std::to_string(summary.findings.size()) +
           "\n";
    for (const EquivFinding &finding : summary.findings) {
        out += "  slot " + std::to_string(finding.slot) + " build " +
               finding.build + " marker " +
               std::to_string(finding.marker) + ": missed " +
               std::to_string(finding.missedBase) + " -> " +
               std::to_string(finding.missedVariant) + " (chain " +
               chainNames(finding.chain) + ")";
        if (!finding.signature.empty())
            out += " [" + finding.signature + "]";
        out += "\n";
    }
    out += "instruction outliers: " +
           std::to_string(summary.outliers.size()) + "\n";
    for (const EquivOutlier &outlier : summary.outliers) {
        out += "  slot " + std::to_string(outlier.slot) + " build " +
               outlier.build + " instrs " +
               std::to_string(outlier.baseInstrs) + " -> " +
               std::to_string(outlier.variantInstrs) + " (chain " +
               chainNames(outlier.chain) + ")\n";
    }
    return out;
}

//===------------------------------------------------------------------===//
// Triage bridge
//===------------------------------------------------------------------===//

std::vector<core::Finding>
toTriageFindings(const EquivSummary &summary)
{
    std::vector<core::Finding> findings;
    findings.reserve(summary.findings.size());
    for (const EquivFinding &finding : summary.findings) {
        // reference == missedBy: feasibility evidence is the base
        // program, so the reference-eliminates probe is skipped.
        findings.push_back(core::Finding{finding.seed, finding.marker,
                                         finding.spec, finding.spec});
    }
    return findings;
}

core::TriageSummary
triageEquivFindings(EquivSummary &summary, core::TriageOptions options)
{
    options.sourceFor = [&summary](const core::Finding &,
                                   size_t index) {
        return summary.findings[index].variantText;
    };
    std::vector<core::Finding> findings = toTriageFindings(summary);
    core::TriageSummary triaged =
        core::triageFindings(findings, options);

    // Reports come back in findings order (duplicates beyond the
    // allowance dropped); match them up sequentially.
    size_t next = 0;
    for (const core::Report &report : triaged.reports) {
        while (next < summary.findings.size() &&
               !(summary.findings[next].seed == report.finding.seed &&
                 summary.findings[next].marker ==
                     report.finding.marker &&
                 summary.findings[next].spec == report.finding.missedBy))
            ++next;
        if (next == summary.findings.size())
            break;
        EquivFinding &finding = summary.findings[next];
        finding.signature = report.signature;
        finding.confirmed = report.confirmed;
        finding.duplicate = report.duplicate;
        finding.fixed = report.fixed;
        finding.reductionTests = report.reductionTests;
        ++next;
    }
    return triaged;
}

} // namespace dce::equiv
