/**
 * @file
 * Textual IR dumping, for tests, debugging, and the Figure-1 pipeline
 * walkthrough bench.
 */
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace dce::ir {

std::string printModule(const Module &module);
std::string printFunction(const Function &fn);
std::string printInstr(const Instr &instr);
/** Operand rendering: "%5", "42:i32", "@g", "param a". */
std::string printValueRef(const Value *value);

} // namespace dce::ir
