#include "ir/verifier.hpp"

#include <algorithm>
#include <unordered_map>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"
#include "ir/printer.hpp"

namespace dce::ir {

std::string
VerifyResult::str() const
{
    std::string out;
    for (const std::string &error : errors) {
        out += error;
        out += "\n";
    }
    return out;
}

namespace {

class FunctionVerifier {
  public:
    FunctionVerifier(const Function &fn, VerifyResult &result)
        : fn_(fn), result_(result)
    {
    }

    void
    run()
    {
        if (fn_.isDeclaration())
            return;
        checkBlocks();
        if (!result_.ok())
            return; // structural breakage makes SSA checks unsafe
        checkPhis();
        checkUses();
        checkDominance();
    }

  private:
    void
    error(const std::string &message)
    {
        result_.errors.push_back("@" + fn_.name() + ": " + message);
    }

    void
    checkBlocks()
    {
        for (const auto &block : fn_.blocks()) {
            if (block->empty()) {
                error("block " + block->name() + " is empty");
                continue;
            }
            Instr *term = block->terminator();
            if (!term) {
                error("block " + block->name() + " lacks a terminator");
                continue;
            }
            bool seen_non_phi = false;
            for (const auto &instr : block->instrs()) {
                if (instr->parent() != block.get())
                    error("instruction with wrong parent in " +
                          block->name());
                if (instr->isTerminator() && instr.get() != term)
                    error("terminator in the middle of " + block->name());
                if (instr->opcode() == Opcode::Phi) {
                    if (seen_non_phi)
                        error("phi after non-phi in " + block->name());
                } else {
                    seen_non_phi = true;
                }
                checkInstrTypes(*instr);
            }
            for (BasicBlock *succ : block->successors()) {
                if (fn_.indexOfBlock(succ) >= fn_.numBlocks())
                    error("successor not in function from " +
                          block->name());
            }
        }
    }

    void
    checkInstrTypes(const Instr &instr)
    {
        auto expectInt = [&](const Value *value, const char *what) {
            if (!value->type().isInt())
                error(std::string(what) + " must be an integer in: " +
                      printInstr(instr));
        };
        auto expectPtr = [&](const Value *value, const char *what) {
            if (!value->type().isPtr())
                error(std::string(what) + " must be a pointer in: " +
                      printInstr(instr));
        };
        switch (instr.opcode()) {
          case Opcode::Load:
            expectPtr(instr.operand(0), "load address");
            if (instr.type().isVoid())
                error("load of void");
            break;
          case Opcode::Store:
            expectPtr(instr.operand(1), "store address");
            if (instr.operand(0)->type().isVoid())
                error("store of void value");
            break;
          case Opcode::Bin:
            expectInt(instr.operand(0), "bin lhs");
            expectInt(instr.operand(1), "bin rhs");
            if (!(instr.operand(0)->type() == instr.type()))
                error("bin result type != lhs type in: " +
                      printInstr(instr));
            if (!(instr.operand(0)->type() ==
                  instr.operand(1)->type()))
                error("bin operand types differ in: " +
                      printInstr(instr));
            break;
          case Opcode::Cmp: {
            IrType lhs = instr.operand(0)->type();
            IrType rhs = instr.operand(1)->type();
            if (!(lhs == rhs))
                error("cmp operand types differ in: " +
                      printInstr(instr));
            if (!(instr.type() == IrType::i32()))
                error("cmp result must be i32");
            break;
          }
          case Opcode::Cast: {
            IrType from = instr.operand(0)->type();
            IrType to = instr.type();
            if (!from.isInt() || !to.isInt()) {
                error("cast requires integer operand and result");
                break;
            }
            switch (instr.castOp) {
              case CastOp::Trunc:
                if (from.bits <= to.bits)
                    error("trunc must narrow: " + printInstr(instr));
                break;
              case CastOp::Sext:
              case CastOp::Zext:
                if (from.bits >= to.bits)
                    error("ext must widen: " + printInstr(instr));
                break;
              case CastOp::Bitcast:
                if (from.bits != to.bits)
                    error("bitcast must keep width: " +
                          printInstr(instr));
                break;
            }
            break;
          }
          case Opcode::Gep:
            expectPtr(instr.operand(0), "gep base");
            expectInt(instr.operand(1), "gep index");
            break;
          case Opcode::Freeze:
            if (!(instr.operand(0)->type() == instr.type()))
                error("freeze must preserve its operand type");
            break;
          case Opcode::Select:
            expectInt(instr.operand(0), "select condition");
            if (!(instr.operand(1)->type() == instr.operand(2)->type()))
                error("select arm types differ");
            break;
          case Opcode::Call: {
            if (!instr.callee) {
                error("call without callee");
                break;
            }
            if (!(instr.type() == instr.callee->returnType()))
                error("call result type mismatch for @" +
                      instr.callee->name());
            if (instr.numOperands() != instr.callee->params().size()) {
                error("call arity mismatch for @" +
                      instr.callee->name());
                break;
            }
            for (size_t i = 0; i < instr.numOperands(); ++i) {
                if (!(instr.operand(i)->type() ==
                      instr.callee->params()[i]->type()))
                    error("call argument type mismatch for @" +
                          instr.callee->name());
            }
            break;
          }
          case Opcode::Ret: {
            bool has_value = instr.numOperands() == 1;
            if (fn_.returnType().isVoid() == has_value)
                error("ret value does not match function return type");
            if (has_value &&
                !(instr.operand(0)->type() == fn_.returnType()))
                error("ret operand type mismatch");
            break;
          }
          case Opcode::CondBr:
            expectInt(instr.operand(0), "condbr condition");
            break;
          case Opcode::Switch:
            expectInt(instr.operand(0), "switch value");
            if (instr.caseValues.size() + 1 !=
                instr.blockOperands().size())
                error("switch case/target count mismatch");
            break;
          default:
            break;
        }
    }

    void
    checkPhis()
    {
        auto preds = predecessorMap(fn_);
        for (const auto &block : fn_.blocks()) {
            // Multi-edges (same pred twice) require one entry per edge;
            // we compare sorted lists.
            std::vector<const BasicBlock *> pred_list(
                preds.at(block.get()).begin(),
                preds.at(block.get()).end());
            std::sort(pred_list.begin(), pred_list.end());
            for (Instr *phi : block->phis()) {
                std::vector<const BasicBlock *> incoming(
                    phi->blockOperands().begin(),
                    phi->blockOperands().end());
                std::sort(incoming.begin(), incoming.end());
                if (incoming != pred_list) {
                    error("phi incoming blocks do not match predecessors"
                          " in " + block->name() + ": " +
                          printInstr(*phi));
                }
                for (size_t i = 0; i < phi->numOperands(); ++i) {
                    if (!(phi->operand(i)->type() == phi->type()))
                        error("phi incoming type mismatch: " +
                              printInstr(*phi));
                }
            }
        }
    }

    void
    checkUses()
    {
        // Every operand's use-list must mention the user exactly as
        // many times as it appears in the operand list. Constants are
        // exempt: they intentionally track no users (see Value::users).
        for (const auto &block : fn_.blocks()) {
            for (const auto &instr : block->instrs()) {
                for (Value *operand : instr->operands()) {
                    if (operand->isConstant())
                        continue;
                    size_t in_operands = static_cast<size_t>(
                        std::count(instr->operands().begin(),
                                   instr->operands().end(), operand));
                    size_t in_users = static_cast<size_t>(std::count(
                        operand->users().begin(), operand->users().end(),
                        instr.get()));
                    if (in_operands != in_users) {
                        error("use-list out of sync for operand of: " +
                              printInstr(*instr));
                    }
                }
            }
        }
    }

    void
    checkDominance()
    {
        DominatorTree domtree(fn_);
        for (const auto &block : fn_.blocks()) {
            if (!domtree.isReachable(block.get()))
                continue;
            for (const auto &instr : block->instrs()) {
                for (Value *operand : instr->operands()) {
                    if (!operand->isInstruction())
                        continue;
                    const auto *def = static_cast<const Instr *>(operand);
                    if (!domtree.valueDominatesUse(def, instr.get())) {
                        error("def does not dominate use: " +
                              printInstr(*instr) + " uses " +
                              printInstr(*def));
                    }
                }
            }
        }
    }

    const Function &fn_;
    VerifyResult &result_;
};

} // namespace

VerifyResult
verifyFunction(const Function &fn)
{
    VerifyResult result;
    FunctionVerifier(fn, result).run();
    return result;
}

VerifyResult
verifyModule(const Module &module)
{
    VerifyResult result;
    for (const auto &fn : module.functions()) {
        FunctionVerifier(*fn, result).run();
    }
    return result;
}

} // namespace dce::ir
