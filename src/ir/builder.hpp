/**
 * @file
 * Convenience builder for constructing IR instruction-by-instruction.
 * Appends to a current insertion block; used by the AST lowering, the
 * inliner, and tests that hand-build IR fragments.
 */
#pragma once

#include <memory>
#include <string>

#include "ir/ir.hpp"

namespace dce::ir {

class IrBuilder {
  public:
    explicit IrBuilder(Module &module) : module_(module) {}

    Module &module() { return module_; }
    BasicBlock *insertionBlock() const { return block_; }
    void setInsertionBlock(BasicBlock *block) { block_ = block; }

    /** True if the current block already has a terminator (subsequent
     * straight-line code would be trivially dead — don't emit it). */
    bool
    terminated() const
    {
        return block_ == nullptr || block_->terminator() != nullptr;
    }

    Constant *constInt(IrType type, int64_t value)
    {
        return module_.constant(type, value);
    }

    Instr *
    alloca_(IrType element_type, uint64_t count, bool is_array)
    {
        auto instr = module_.newInstr(Opcode::Alloca, IrType::ptrTy());
        instr->allocatedType = element_type;
        instr->allocatedCount = count;
        instr->allocaIsArray = is_array;
        return insert(std::move(instr));
    }

    Instr *
    load(IrType type, Value *pointer)
    {
        auto instr = module_.newInstr(Opcode::Load, type);
        instr->addOperand(pointer);
        return insert(std::move(instr));
    }

    Instr *
    store(Value *value, Value *pointer)
    {
        auto instr = module_.newInstr(Opcode::Store, IrType::voidTy());
        instr->addOperand(value);
        instr->addOperand(pointer);
        return insert(std::move(instr));
    }

    Instr *
    bin(BinOp op, Value *lhs, Value *rhs)
    {
        auto instr = module_.newInstr(Opcode::Bin, lhs->type());
        instr->binOp = op;
        instr->addOperand(lhs);
        instr->addOperand(rhs);
        return insert(std::move(instr));
    }

    Instr *
    cmp(CmpPred pred, Value *lhs, Value *rhs)
    {
        auto instr = module_.newInstr(Opcode::Cmp, IrType::i32());
        instr->cmpPred = pred;
        instr->addOperand(lhs);
        instr->addOperand(rhs);
        return insert(std::move(instr));
    }

    Instr *
    cast(CastOp op, Value *value, IrType to)
    {
        auto instr = module_.newInstr(Opcode::Cast, to);
        instr->castOp = op;
        instr->addOperand(value);
        return insert(std::move(instr));
    }

    Instr *
    gep(Value *base, Value *index, uint64_t elem_size)
    {
        auto instr = module_.newInstr(Opcode::Gep, IrType::ptrTy());
        instr->addOperand(base);
        instr->addOperand(index);
        instr->gepElemSize = elem_size;
        return insert(std::move(instr));
    }

    Instr *
    freeze(Value *value)
    {
        auto instr = module_.newInstr(Opcode::Freeze, value->type());
        instr->addOperand(value);
        return insert(std::move(instr));
    }

    Instr *
    select(Value *cond, Value *if_true, Value *if_false)
    {
        auto instr = module_.newInstr(Opcode::Select, if_true->type());
        instr->addOperand(cond);
        instr->addOperand(if_true);
        instr->addOperand(if_false);
        return insert(std::move(instr));
    }

    Instr *
    call(Function *callee, const std::vector<Value *> &args)
    {
        auto instr = module_.newInstr(Opcode::Call, callee->returnType());
        instr->callee = callee;
        for (Value *arg : args)
            instr->addOperand(arg);
        return insert(std::move(instr));
    }

    Instr *
    phi(IrType type)
    {
        auto instr = module_.newInstr(Opcode::Phi, type);
        instr->setId(module_.nextValueId());
        // Phis go before any non-phi instruction.
        size_t index = 0;
        while (index < block_->size() &&
               block_->instrs()[index]->opcode() == Opcode::Phi) {
            ++index;
        }
        return block_->insertBefore(index, std::move(instr));
    }

    Instr *
    retVoid()
    {
        auto instr = module_.newInstr(Opcode::Ret, IrType::voidTy());
        return insert(std::move(instr));
    }

    Instr *
    ret(Value *value)
    {
        auto instr = module_.newInstr(Opcode::Ret, IrType::voidTy());
        instr->addOperand(value);
        return insert(std::move(instr));
    }

    Instr *
    br(BasicBlock *target)
    {
        auto instr = module_.newInstr(Opcode::Br, IrType::voidTy());
        instr->addBlockOperand(target);
        return insert(std::move(instr));
    }

    Instr *
    condBr(Value *cond, BasicBlock *if_true, BasicBlock *if_false)
    {
        auto instr = module_.newInstr(Opcode::CondBr, IrType::voidTy());
        instr->addOperand(cond);
        instr->addBlockOperand(if_true);
        instr->addBlockOperand(if_false);
        return insert(std::move(instr));
    }

    Instr *
    switch_(Value *value, BasicBlock *default_block)
    {
        auto instr = module_.newInstr(Opcode::Switch, IrType::voidTy());
        instr->addOperand(value);
        instr->addBlockOperand(default_block);
        return insert(std::move(instr));
    }

    Instr *
    unreachable()
    {
        auto instr = module_.newInstr(Opcode::Unreachable, IrType::voidTy());
        return insert(std::move(instr));
    }

  private:
    Instr *
    insert(InstrPtr instr)
    {
        assert(block_ && "no insertion block");
        if (!instr->type().isVoid())
            instr->setId(module_.nextValueId());
        return block_->append(std::move(instr));
    }

    Module &module_;
    BasicBlock *block_ = nullptr;
};

} // namespace dce::ir
