/**
 * @file
 * Bump-pointer arena backing one ir::Module's instructions and basic
 * blocks (DESIGN.md §13). The campaign hot loop clones and optimizes a
 * module per seed × build; with node-at-a-time `new`/`delete` that is
 * thousands of allocator round trips per seed. The arena turns them
 * into pointer bumps within a few large chunks that are released
 * wholesale when the module dies.
 *
 * Ownership protocol: nodes are still held by `std::unique_ptr`, but
 * with an ArenaDelete deleter that runs only the destructor — the
 * memory itself belongs to the arena and is reclaimed when the arena
 * (i.e. the owning Module) is destroyed. That keeps every existing
 * erase/detach call site working unchanged: "deleting" an instruction
 * still runs its destructor (unlinking operand/user edges) at exactly
 * the same point as before; only the raw memory lingers until module
 * teardown, which is fine because modules are short-lived per-seed
 * objects.
 *
 * The arena is single-threaded by design, like the Module it backs:
 * campaign workers each build/clone their own modules and never share
 * them across threads.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace dce::ir {

/** A chunked bump allocator. Not thread-safe; one per Module. */
class Arena {
  public:
    Arena() = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena()
    {
        for (Chunk &c : chunks_)
            ::operator delete(c.base, std::align_val_t{kAlign});
    }

    /** Raw aligned storage for one object of @p bytes size. */
    void *
    allocate(size_t bytes)
    {
        bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
        if (cursor_ + bytes > limit_)
            addChunk(bytes);
        void *p = cursor_;
        cursor_ += bytes;
        return p;
    }

    /** Construct a T inside the arena. The caller owns the object's
     * lifetime (destructor), the arena owns the memory. */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        return ::new (allocate(sizeof(T))) T(std::forward<Args>(args)...);
    }

    /** Bytes currently reserved across all chunks (for metrics). */
    size_t
    bytesReserved() const
    {
        size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.size;
        return total;
    }

  private:
    // Alignment covers every IR node type placed in the arena.
    static constexpr size_t kAlign = alignof(std::max_align_t);
    static constexpr size_t kFirstChunk = 16 * 1024;
    static constexpr size_t kMaxChunk = 256 * 1024;

    struct Chunk {
        char *base;
        size_t size;
    };

    void
    addChunk(size_t min_bytes)
    {
        size_t size = chunks_.empty() ? kFirstChunk : nextSize_;
        if (size < min_bytes)
            size = min_bytes;
        nextSize_ = size * 2 > kMaxChunk ? kMaxChunk : size * 2;
        char *base = static_cast<char *>(
            ::operator new(size, std::align_val_t{kAlign}));
        chunks_.push_back({base, size});
        cursor_ = base;
        limit_ = base + size;
    }

    std::vector<Chunk> chunks_;
    char *cursor_ = nullptr;
    char *limit_ = nullptr;
    size_t nextSize_ = kFirstChunk;
};

/**
 * unique_ptr deleter for arena-backed nodes: run the destructor, leave
 * the memory to the arena. Also accepts null like any deleter.
 */
struct ArenaDelete {
    template <typename T>
    void
    operator()(T *p) const
    {
        if (p)
            p->~T();
    }
};

/** Owning handle to an arena-backed node of type T. */
template <typename T>
using ArenaPtr = std::unique_ptr<T, ArenaDelete>;

} // namespace dce::ir
