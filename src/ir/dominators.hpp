/**
 * @file
 * Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.
 * Used by the SSA verifier, GVN's scoped hash table, loop detection,
 * jump threading, and the primary-missed-block analysis.
 *
 * The snapshot keys all per-block state by BasicBlock::indexInFn()
 * into flat vectors; queries are array loads, not hash lookups. Like
 * every CFG snapshot it is invalidated by CFG mutation.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ir.hpp"

namespace dce::ir {

/** Immutable dominator-tree snapshot of one function. */
class DominatorTree {
  public:
    explicit DominatorTree(const Function &fn);

    /** Immediate dominator; null for entry and unreachable blocks. */
    const BasicBlock *
    idom(const BasicBlock *block) const
    {
        return idomOf_[block->indexInFn()];
    }

    /** True if @p a dominates @p b (reflexive). Unreachable blocks are
     * dominated by nothing and dominate nothing (except themselves). */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

    /** True if instruction @p def is available at (dominates) the use
     * site (@p user, operand position irrelevant except for phis). */
    bool valueDominatesUse(const Instr *def, const Instr *user) const;

    bool isReachable(const BasicBlock *block) const
    {
        return rpoIndexOf_[block->indexInFn()] != kUnreachable;
    }

    /** Reverse postorder of reachable blocks (entry first). */
    const std::vector<BasicBlock *> &rpo() const { return rpo_; }

  private:
    static constexpr uint32_t kUnreachable = ~uint32_t{0};

    /** Immediate dominator per block index (null = entry/unreachable). */
    std::vector<const BasicBlock *> idomOf_;
    /** RPO position per block index; kUnreachable when not in rpo_. */
    std::vector<uint32_t> rpoIndexOf_;
    std::vector<BasicBlock *> rpo_;
};

} // namespace dce::ir
