/**
 * @file
 * Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.
 * Used by the SSA verifier, GVN's scoped hash table, loop detection,
 * jump threading, and the primary-missed-block analysis.
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/ir.hpp"

namespace dce::ir {

/** Immutable dominator-tree snapshot of one function. */
class DominatorTree {
  public:
    explicit DominatorTree(const Function &fn);

    /** Immediate dominator; null for entry and unreachable blocks. */
    const BasicBlock *idom(const BasicBlock *block) const;

    /** True if @p a dominates @p b (reflexive). Unreachable blocks are
     * dominated by nothing and dominate nothing (except themselves). */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

    /** True if instruction @p def is available at (dominates) the use
     * site (@p user, operand position irrelevant except for phis). */
    bool valueDominatesUse(const Instr *def, const Instr *user) const;

    bool isReachable(const BasicBlock *block) const
    {
        return rpoIndex_.count(block) != 0;
    }

    /** Reverse postorder of reachable blocks (entry first). */
    const std::vector<BasicBlock *> &rpo() const { return rpo_; }

  private:
    std::unordered_map<const BasicBlock *, const BasicBlock *> idom_;
    std::unordered_map<const BasicBlock *, size_t> rpoIndex_;
    std::vector<BasicBlock *> rpo_;
};

} // namespace dce::ir
