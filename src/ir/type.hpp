/**
 * @file
 * IR-level types. The IR is deliberately lower-level than the MiniC
 * type system: pointers are opaque (element addressing is carried by
 * the Gep instruction itself, LLVM-16 style), arrays exist only as
 * memory-object shapes on globals and allocas, and integers carry width
 * plus signedness (signedness drives the semantics of div/rem/shift/
 * compare, matching the MiniC "no UB" rules in support/ints.hpp).
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace dce::ir {

enum class IrTypeKind : uint8_t {
    Void,
    Int,
    Ptr,
};

/** A small value type; compare with ==. */
struct IrType {
    IrTypeKind kind = IrTypeKind::Void;
    uint8_t bits = 0;     ///< integer width; 0 for void/ptr
    bool isSigned = true; ///< meaningful for Int only

    constexpr bool isVoid() const { return kind == IrTypeKind::Void; }
    constexpr bool isInt() const { return kind == IrTypeKind::Int; }
    constexpr bool isPtr() const { return kind == IrTypeKind::Ptr; }

    constexpr bool
    operator==(const IrType &other) const
    {
        if (kind != other.kind)
            return false;
        if (kind != IrTypeKind::Int)
            return true;
        return bits == other.bits && isSigned == other.isSigned;
    }

    std::string
    str() const
    {
        switch (kind) {
          case IrTypeKind::Void:
            return "void";
          case IrTypeKind::Ptr:
            return "ptr";
          case IrTypeKind::Int:
            return (isSigned ? "i" : "u") + std::to_string(bits);
        }
        return "?";
    }

    /** Size in bytes when stored in memory. @pre not void. */
    uint64_t
    sizeInBytes() const
    {
        assert(!isVoid());
        return isPtr() ? 8 : bits / 8;
    }

    static constexpr IrType voidTy() { return {IrTypeKind::Void, 0, true}; }
    static constexpr IrType ptrTy() { return {IrTypeKind::Ptr, 0, true}; }
    static constexpr IrType
    intTy(unsigned bits, bool is_signed)
    {
        return {IrTypeKind::Int, static_cast<uint8_t>(bits), is_signed};
    }
    static constexpr IrType i32() { return intTy(32, true); }
    static constexpr IrType i64() { return intTy(64, true); }
};

} // namespace dce::ir
