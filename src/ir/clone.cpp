#include "ir/clone.hpp"

namespace dce::ir {

std::unique_ptr<Instr>
cloneInstr(const Instr &instr, Module &module)
{
    auto copy = std::make_unique<Instr>(instr.opcode(), instr.type());
    for (Value *operand : instr.operands())
        copy->addOperand(operand);
    copy->blockOperands() = instr.blockOperands();
    copy->binOp = instr.binOp;
    copy->cmpPred = instr.cmpPred;
    copy->castOp = instr.castOp;
    copy->callee = instr.callee;
    copy->allocatedType = instr.allocatedType;
    copy->allocatedCount = instr.allocatedCount;
    copy->allocaIsArray = instr.allocaIsArray;
    copy->gepElemSize = instr.gepElemSize;
    copy->caseValues = instr.caseValues;
    if (!copy->type().isVoid())
        copy->setId(module.nextValueId());
    return copy;
}

void
remapInstr(Instr &instr, const CloneMap &map)
{
    for (size_t i = 0; i < instr.numOperands(); ++i) {
        Value *mapped = map.get(instr.operand(i));
        if (mapped != instr.operand(i))
            instr.setOperand(i, mapped);
    }
    for (BasicBlock *&block : instr.blockOperands())
        block = map.get(block);
}

std::unique_ptr<Module>
cloneModule(const Module &module)
{
    auto clone = std::make_unique<Module>();
    CloneMap map;
    std::unordered_map<const Function *, Function *> fn_map;

    // Globals: create all objects first, then copy initializers (they
    // may hold the address of any other global).
    for (const auto &global : module.globals()) {
        GlobalVar *copy =
            clone->addGlobal(global->name(), global->elementType(),
                             global->count(), global->isInternal());
        copy->setIsArray(global->isArray());
        map.values[global.get()] = copy;
    }
    for (const auto &global : module.globals()) {
        auto *copy =
            static_cast<GlobalVar *>(map.values.at(global.get()));
        copy->init.reserve(global->init.size());
        for (const GlobalInit &init : global->init) {
            if (init.isAddress()) {
                auto *base =
                    static_cast<const GlobalVar *>(map.values.at(
                        static_cast<const Value *>(init.base)));
                copy->init.push_back(
                    GlobalInit::addressOf(base, init.value));
            } else {
                copy->init.push_back(init);
            }
        }
    }

    // Function shells + params before bodies, so calls and block
    // layouts can remap in one final pass.
    for (const auto &fn : module.functions()) {
        Function *copy = clone->addFunction(
            fn->name(), fn->returnType(), fn->isInternal());
        copy->setNoDce(fn->noDce());
        for (const auto &param : fn->params()) {
            map.values[param.get()] =
                copy->addParam(param->type(), param->name());
        }
        fn_map[fn.get()] = copy;
        for (const auto &block : fn->blocks())
            map.blocks[block.get()] = copy->addBlock(block->name());
    }

    // Clone instructions (operands still point into the source module).
    for (const auto &fn : module.functions()) {
        for (const auto &block : fn->blocks()) {
            BasicBlock *dest = map.blocks.at(block.get());
            for (const auto &instr : block->instrs()) {
                Instr *copied =
                    dest->append(cloneInstr(*instr, *clone));
                map.values[instr.get()] = copied;
            }
        }
    }

    // Remap every reference into the clone. Constants are interned
    // lazily in the clone's pool; everything else was mapped above.
    for (const auto &fn : module.functions()) {
        for (const auto &block : fn->blocks()) {
            for (const auto &instr :
                 map.blocks.at(block.get())->instrs()) {
                for (size_t i = 0; i < instr->numOperands(); ++i) {
                    Value *operand = instr->operand(i);
                    auto it = map.values.find(operand);
                    if (it != map.values.end()) {
                        instr->setOperand(i, it->second);
                    } else if (operand->isConstant()) {
                        auto *c = static_cast<Constant *>(operand);
                        Constant *interned =
                            clone->constant(c->type(), c->value());
                        map.values[operand] = interned;
                        instr->setOperand(i, interned);
                    }
                    // else: unreachable — every non-constant value
                    // lives in the source module and was mapped.
                }
                for (BasicBlock *&target : instr->blockOperands())
                    target = map.blocks.at(target);
                if (instr->callee)
                    instr->callee = fn_map.at(instr->callee);
            }
        }
    }
    return clone;
}

CloneMap
cloneRegion(const std::vector<BasicBlock *> &blocks, Function &dest,
            Module &module, CloneMap seed, const std::string &suffix)
{
    CloneMap map = std::move(seed);
    // First create all blocks so terminators can be remapped.
    for (const BasicBlock *block : blocks)
        map.blocks[block] = dest.addBlock(block->name() + suffix);
    // Clone instructions.
    for (const BasicBlock *block : blocks) {
        BasicBlock *clone = map.blocks.at(block);
        for (const auto &instr : block->instrs()) {
            Instr *copied = clone->append(cloneInstr(*instr, module));
            map.values[instr.get()] = copied;
        }
    }
    // Remap references within the clones.
    for (const BasicBlock *block : blocks) {
        BasicBlock *clone = map.blocks.at(block);
        for (const auto &instr : clone->instrs())
            remapInstr(*instr, map);
    }
    return map;
}

} // namespace dce::ir
