#include "ir/clone.hpp"

#include <cassert>

#include "support/trace.hpp"

namespace dce::ir {

InstrPtr
cloneInstr(const Instr &instr, Module &module)
{
    InstrPtr copy = module.newInstr(instr.opcode(), instr.type());
    for (Value *operand : instr.operands())
        copy->addOperand(operand);
    copy->blockOperands() = instr.blockOperands();
    copy->binOp = instr.binOp;
    copy->cmpPred = instr.cmpPred;
    copy->castOp = instr.castOp;
    copy->callee = instr.callee;
    copy->allocatedType = instr.allocatedType;
    copy->allocatedCount = instr.allocatedCount;
    copy->allocaIsArray = instr.allocaIsArray;
    copy->gepElemSize = instr.gepElemSize;
    copy->caseValues = instr.caseValues;
    if (!copy->type().isVoid())
        copy->setId(module.nextValueId());
    return copy;
}

void
remapInstr(Instr &instr, const CloneMap &map)
{
    for (size_t i = 0; i < instr.numOperands(); ++i) {
        Value *mapped = map.get(instr.operand(i));
        if (mapped != instr.operand(i))
            instr.setOperand(i, mapped);
    }
    for (BasicBlock *&block : instr.blockOperands())
        block = map.get(block);
}

std::unique_ptr<Module>
cloneModule(const Module &module)
{
    support::TraceSpan span("clone", "compile");
    auto clone = std::make_unique<Module>();
    // Flat maps: globals, instructions, and constants resolve through
    // their dense value id; blocks positionally via indexInFn; params
    // (no ids) positionally via their owning function. Only the
    // function map stays hashed, and it is tiny.
    std::vector<Value *> value_map(module.valueIdBound(), nullptr);
    std::unordered_map<const Function *, Function *> fn_map;

    // Globals: create all objects first, then copy initializers (they
    // may hold the address of any other global).
    for (const auto &global : module.globals()) {
        GlobalVar *copy =
            clone->addGlobal(global->name(), global->elementType(),
                             global->count(), global->isInternal());
        copy->setIsArray(global->isArray());
        value_map[global->id()] = copy;
    }
    for (const auto &global : module.globals()) {
        auto *copy =
            static_cast<GlobalVar *>(value_map[global->id()]);
        copy->init.reserve(global->init.size());
        for (const GlobalInit &init : global->init) {
            if (init.isAddress()) {
                auto *base = static_cast<const GlobalVar *>(
                    value_map[init.base->id()]);
                copy->init.push_back(
                    GlobalInit::addressOf(base, init.value));
            } else {
                copy->init.push_back(init);
            }
        }
    }

    // Function shells + params before bodies, so calls and block
    // layouts can remap in one final pass.
    for (const auto &fn : module.functions()) {
        Function *copy = clone->addFunction(
            fn->name(), fn->returnType(), fn->isInternal());
        copy->setNoDce(fn->noDce());
        for (const auto &param : fn->params())
            copy->addParam(param->type(), param->name());
        fn_map[fn.get()] = copy;
        for (const auto &block : fn->blocks())
            copy->addBlock(block->name());
    }

    // Clone instructions (operands still point into the source module).
    // Void instructions are never operands, so only value-producing
    // ones (which all carry unique ids) enter the map.
    for (const auto &fn : module.functions()) {
        Function *dest_fn = fn_map.at(fn.get());
        for (size_t b = 0; b < fn->blocks().size(); ++b) {
            BasicBlock *dest = dest_fn->blocks()[b].get();
            for (const auto &instr : fn->blocks()[b]->instrs()) {
                Instr *copied =
                    dest->append(cloneInstr(*instr, *clone));
                if (!instr->type().isVoid())
                    value_map[instr->id()] = copied;
            }
        }
    }

    // Remap every reference into the clone. Constants are interned
    // lazily in the clone's pool; everything else was mapped above.
    for (const auto &fn : module.functions()) {
        Function *dest_fn = fn_map.at(fn.get());
        for (const auto &dest_block : dest_fn->blocks()) {
            for (const auto &instr : dest_block->instrs()) {
                for (size_t i = 0; i < instr->numOperands(); ++i) {
                    Value *operand = instr->operand(i);
                    Value *mapped;
                    switch (operand->valueKind()) {
                      case ValueKind::Param:
                        mapped = dest_fn
                                     ->params()[static_cast<Param *>(
                                                    operand)
                                                    ->index()]
                                     .get();
                        break;
                      case ValueKind::Constant: {
                        auto *c = static_cast<Constant *>(operand);
                        mapped = value_map[c->id()];
                        if (!mapped) {
                            mapped =
                                clone->constant(c->type(), c->value());
                            value_map[c->id()] = mapped;
                        }
                        break;
                      }
                      default:
                        mapped = value_map[operand->id()];
                        break;
                    }
                    assert(mapped && "unmapped operand in clone");
                    instr->setOperand(i, mapped);
                }
                for (BasicBlock *&target : instr->blockOperands()) {
                    target =
                        dest_fn->blocks()[target->indexInFn()].get();
                }
                if (instr->callee)
                    instr->callee = fn_map.at(instr->callee);
            }
        }
    }
    return clone;
}

CloneMap
cloneRegion(const std::vector<BasicBlock *> &blocks, Function &dest,
            Module &module, CloneMap seed, const std::string &suffix)
{
    CloneMap map = std::move(seed);
    // First create all blocks so terminators can be remapped.
    for (const BasicBlock *block : blocks)
        map.blocks[block] = dest.addBlock(block->name() + suffix);
    // Clone instructions.
    for (const BasicBlock *block : blocks) {
        BasicBlock *clone = map.blocks.at(block);
        for (const auto &instr : block->instrs()) {
            Instr *copied = clone->append(cloneInstr(*instr, module));
            map.values[instr.get()] = copied;
        }
    }
    // Remap references within the clones.
    for (const BasicBlock *block : blocks) {
        BasicBlock *clone = map.blocks.at(block);
        for (const auto &instr : clone->instrs())
            remapInstr(*instr, map);
    }
    return map;
}

} // namespace dce::ir
