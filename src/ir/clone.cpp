#include "ir/clone.hpp"

namespace dce::ir {

std::unique_ptr<Instr>
cloneInstr(const Instr &instr, Module &module)
{
    auto copy = std::make_unique<Instr>(instr.opcode(), instr.type());
    for (Value *operand : instr.operands())
        copy->addOperand(operand);
    copy->blockOperands() = instr.blockOperands();
    copy->binOp = instr.binOp;
    copy->cmpPred = instr.cmpPred;
    copy->castOp = instr.castOp;
    copy->callee = instr.callee;
    copy->allocatedType = instr.allocatedType;
    copy->allocatedCount = instr.allocatedCount;
    copy->allocaIsArray = instr.allocaIsArray;
    copy->gepElemSize = instr.gepElemSize;
    copy->caseValues = instr.caseValues;
    if (!copy->type().isVoid())
        copy->setId(module.nextValueId());
    return copy;
}

void
remapInstr(Instr &instr, const CloneMap &map)
{
    for (size_t i = 0; i < instr.numOperands(); ++i) {
        Value *mapped = map.get(instr.operand(i));
        if (mapped != instr.operand(i))
            instr.setOperand(i, mapped);
    }
    for (BasicBlock *&block : instr.blockOperands())
        block = map.get(block);
}

CloneMap
cloneRegion(const std::vector<BasicBlock *> &blocks, Function &dest,
            Module &module, CloneMap seed, const std::string &suffix)
{
    CloneMap map = std::move(seed);
    // First create all blocks so terminators can be remapped.
    for (const BasicBlock *block : blocks)
        map.blocks[block] = dest.addBlock(block->name() + suffix);
    // Clone instructions.
    for (const BasicBlock *block : blocks) {
        BasicBlock *clone = map.blocks.at(block);
        for (const auto &instr : block->instrs()) {
            Instr *copied = clone->append(cloneInstr(*instr, module));
            map.values[instr.get()] = copied;
        }
    }
    // Remap references within the clones.
    for (const BasicBlock *block : blocks) {
        BasicBlock *clone = map.blocks.at(block);
        for (const auto &instr : clone->instrs())
            remapInstr(*instr, map);
    }
    return map;
}

} // namespace dce::ir
