/**
 * @file
 * AST-to-IR lowering. Produces clang -O0-style IR: every variable
 * lives in an alloca or global and is accessed by load/store; mem2reg
 * (an optimization pass) later promotes scalars to SSA registers.
 *
 * Like production front ends, lowering performs one *basic* form of
 * dead-code elision: a branch whose condition is a constant expression
 * is lowered to an unconditional edge. This models the paper's
 * observation that "front ends already perform a basic form of DCE and
 * even at -O0, GCC eliminates 14.79% and LLVM 16.18% of the dead
 * blocks".
 *
 * MiniC semantic choices encoded here (all deterministic, no UB):
 *  - allocas are zero-initialized;
 *  - falling off the end of a non-void function returns 0;
 *  - code after a return lowers into an unreachable block (it is still
 *    emitted, as clang does at -O0; optimization levels remove it).
 */
#pragma once

#include <memory>

#include "ir/ir.hpp"
#include "lang/ast.hpp"

namespace dce::ir {

/**
 * Lower a sema-checked translation unit to a fresh IR module.
 * @pre @p unit passed Sema with no errors.
 */
std::unique_ptr<Module> lowerToIr(const lang::TranslationUnit &unit);

/** Map a MiniC scalar type to its IR type. @pre not array. */
IrType lowerType(const lang::Type *type);

} // namespace dce::ir
