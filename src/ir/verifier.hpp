/**
 * @file
 * Structural and SSA well-formedness checking. Run after lowering and
 * after every optimization pass in checked builds/tests, keeping 20+
 * passes honest: type agreement, terminator discipline, phi/predecessor
 * consistency, use-list integrity, and defs dominating uses.
 */
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace dce::ir {

/** Result of verification; empty errors = valid. */
struct VerifyResult {
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
    std::string str() const;
};

VerifyResult verifyModule(const Module &module);
VerifyResult verifyFunction(const Function &fn);

} // namespace dce::ir
