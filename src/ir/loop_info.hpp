/**
 * @file
 * Natural-loop detection from back edges. Consumed by the loop
 * optimizations (rotation, unswitching, unrolling, the vectorizer-like
 * rewrite) and by the generator's termination reasoning in tests.
 */
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"
#include "ir/ir.hpp"

namespace dce::ir {

/** One natural loop: header plus the set of blocks that reach the back
 * edge without leaving the header's dominance region. */
struct Loop {
    BasicBlock *header = nullptr;
    /** Blocks in the loop, header included. */
    std::unordered_set<BasicBlock *> blocks;
    /** Back-edge sources (latches). */
    std::vector<BasicBlock *> latches;
    /** Enclosing loop, or null for top-level loops. */
    Loop *parent = nullptr;
    std::vector<Loop *> subloops;

    bool contains(const BasicBlock *block) const
    {
        return blocks.count(const_cast<BasicBlock *>(block)) != 0;
    }

    /** Blocks outside the loop that loop blocks branch to. */
    std::vector<BasicBlock *> exitBlocks() const;

    /** The unique pre-header predecessor (outside block whose only
     * successor is the header), or null. */
    BasicBlock *preheader(const PredecessorMap &preds) const;

    /** Loop nest depth; top-level = 1. */
    unsigned depth() const;
};

/** All natural loops of a function, outermost first. */
class LoopInfo {
  public:
    LoopInfo(const Function &fn, const DominatorTree &domtree);

    const std::vector<std::unique_ptr<Loop>> &loops() const
    {
        return loops_;
    }

    /** Innermost loop containing @p block, or null. */
    Loop *loopFor(const BasicBlock *block) const;

  private:
    std::vector<std::unique_ptr<Loop>> loops_;
    std::unordered_map<const BasicBlock *, Loop *> innermost_;
};

} // namespace dce::ir
