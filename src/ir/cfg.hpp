/**
 * @file
 * CFG utilities computed on demand: predecessor maps, reverse
 * postorder, reachability. These are throwaway snapshots — passes that
 * mutate the CFG must recompute them.
 *
 * All of them key per-block state by BasicBlock::indexInFn() into flat
 * vectors; building one is two linear walks with no hashing, which
 * matters because the cleanup passes rebuild these snapshots at every
 * fixpoint round.
 */
#pragma once

#include <unordered_set>
#include <vector>

#include "ir/ir.hpp"
#include "support/small_vector.hpp"

namespace dce::ir {

/**
 * Predecessor lists for every block in one function, indexed by
 * BasicBlock::indexInFn(). A block appears once per incoming edge (a
 * CondBr with both edges to B contributes B twice). Invalidated by any
 * CFG mutation.
 */
class PredecessorMap {
  public:
    explicit PredecessorMap(const Function &fn);

    const support::SmallVector<BasicBlock *, 4> &
    at(const BasicBlock *block) const
    {
        return lists_[block->indexInFn()];
    }
    const support::SmallVector<BasicBlock *, 4> &
    operator[](const BasicBlock *block) const
    {
        return at(block);
    }

  private:
    std::vector<support::SmallVector<BasicBlock *, 4>> lists_;
};

/** Predecessor lists for every block in @p fn. */
inline PredecessorMap
predecessorMap(const Function &fn)
{
    return PredecessorMap(fn);
}

/** Blocks reachable from entry. */
std::unordered_set<const BasicBlock *> reachableBlocks(const Function &fn);

/** Per-block reachable-from-entry flags, indexed by indexInFn(). */
std::vector<unsigned char> reachableBlockFlags(const Function &fn);

/** Reverse postorder over reachable blocks, starting at entry. */
std::vector<BasicBlock *> reversePostorder(const Function &fn);

/**
 * Remove blocks unreachable from entry (updating phis in survivors).
 * This is the *mechanical* part of unreachable-code elimination that
 * every pipeline is allowed to use; making blocks unreachable in the
 * first place is what the optimizations under test compete on.
 * @return number of blocks removed.
 */
unsigned removeUnreachableBlocks(Function &fn);

} // namespace dce::ir
