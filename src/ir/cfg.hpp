/**
 * @file
 * CFG utilities computed on demand: predecessor maps, reverse
 * postorder, reachability. These are throwaway snapshots — passes that
 * mutate the CFG must recompute them.
 */
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/ir.hpp"

namespace dce::ir {

/** Predecessor lists for every block in @p fn. A block appears once
 * per incoming edge (a CondBr with both edges to B contributes B's
 * predecessor twice). */
std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
predecessorMap(const Function &fn);

/** Blocks reachable from entry. */
std::unordered_set<const BasicBlock *> reachableBlocks(const Function &fn);

/** Reverse postorder over reachable blocks, starting at entry. */
std::vector<BasicBlock *> reversePostorder(const Function &fn);

/**
 * Remove blocks unreachable from entry (updating phis in survivors).
 * This is the *mechanical* part of unreachable-code elimination that
 * every pipeline is allowed to use; making blocks unreachable in the
 * first place is what the optimizations under test compete on.
 * @return number of blocks removed.
 */
unsigned removeUnreachableBlocks(Function &fn);

} // namespace dce::ir
