#include "ir/loop_info.hpp"

#include <algorithm>

#include "ir/cfg.hpp"
#include "support/trace.hpp"

namespace dce::ir {

std::vector<BasicBlock *>
Loop::exitBlocks() const
{
    std::vector<BasicBlock *> exits;
    for (BasicBlock *block : blocks) {
        for (BasicBlock *succ : block->successors()) {
            if (!contains(succ) &&
                std::find(exits.begin(), exits.end(), succ) == exits.end()) {
                exits.push_back(succ);
            }
        }
    }
    return exits;
}

BasicBlock *
Loop::preheader(const PredecessorMap &preds) const
{
    BasicBlock *candidate = nullptr;
    for (BasicBlock *pred : preds.at(header)) {
        if (contains(pred))
            continue;
        if (candidate && candidate != pred)
            return nullptr; // multiple outside predecessors
        candidate = pred;
    }
    if (!candidate)
        return nullptr;
    if (candidate->successors().size() != 1)
        return nullptr;
    return candidate;
}

unsigned
Loop::depth() const
{
    unsigned d = 1;
    for (const Loop *p = parent; p; p = p->parent)
        ++d;
    return d;
}

LoopInfo::LoopInfo(const Function &fn, const DominatorTree &domtree)
{
    support::TraceSpan span("loopinfo", "analysis");
    if (fn.isDeclaration())
        return;
    auto preds = predecessorMap(fn);

    // Find back edges: latch -> header where header dominates latch.
    // Group by header (a header can have several latches).
    std::unordered_map<BasicBlock *, std::vector<BasicBlock *>> backEdges;
    for (BasicBlock *block : domtree.rpo()) {
        for (BasicBlock *succ : block->successors()) {
            if (domtree.dominates(succ, block))
                backEdges[succ].push_back(block);
        }
    }

    // Build each loop body by walking predecessors from the latches.
    for (auto &[header, latches] : backEdges) {
        auto loop = std::make_unique<Loop>();
        loop->header = header;
        loop->latches = latches;
        loop->blocks.insert(header);
        std::vector<BasicBlock *> worklist(latches.begin(), latches.end());
        while (!worklist.empty()) {
            BasicBlock *block = worklist.back();
            worklist.pop_back();
            if (!loop->blocks.insert(block).second)
                continue;
            for (BasicBlock *pred : preds.at(block)) {
                if (!domtree.isReachable(pred))
                    continue;
                if (!loop->blocks.count(pred))
                    worklist.push_back(pred);
            }
        }
        loops_.push_back(std::move(loop));
    }

    // Sort outermost (largest) first so nesting links are easy to set.
    std::sort(loops_.begin(), loops_.end(),
              [](const auto &a, const auto &b) {
                  return a->blocks.size() > b->blocks.size();
              });

    // Nesting: the innermost loop containing a header (other than the
    // loop itself) is the parent.
    for (size_t i = 0; i < loops_.size(); ++i) {
        for (size_t j = i + 1; j < loops_.size(); ++j) {
            if (loops_[i]->contains(loops_[j]->header) &&
                loops_[i].get() != loops_[j].get()) {
                // loops_ sorted by size descending, so j is nested in i;
                // keep the innermost parent (latest i that contains j).
                loops_[j]->parent = loops_[i].get();
            }
        }
    }
    for (auto &loop : loops_) {
        if (loop->parent)
            loop->parent->subloops.push_back(loop.get());
    }

    // innermost_ map: smaller loops overwrite larger ones.
    for (auto &loop : loops_) {
        for (BasicBlock *block : loop->blocks)
            innermost_[block] = loop.get();
    }
}

Loop *
LoopInfo::loopFor(const BasicBlock *block) const
{
    auto it = innermost_.find(block);
    return it == innermost_.end() ? nullptr : it->second;
}

} // namespace dce::ir
