#include "ir/lowering.hpp"

#include <cassert>
#include <unordered_map>

#include "ir/builder.hpp"
#include "ir/cfg.hpp"
#include "lang/sema.hpp"
#include "support/ints.hpp"
#include "support/trace.hpp"

namespace dce::ir {

using lang::AssignOp;
using lang::BinaryOp;
using lang::Expr;
using lang::ExprKind;
using lang::Stmt;
using lang::StmtKind;
using lang::Storage;
using lang::UnaryOp;

IrType
lowerType(const lang::Type *type)
{
    if (type->isVoid())
        return IrType::voidTy();
    if (type->isPtr())
        return IrType::ptrTy();
    assert(type->isInt() && "arrays have no scalar IR type");
    return IrType::intTy(type->bits(), type->isSigned());
}

namespace {

/** Whole-unit lowering state. */
class Lowering {
  public:
    explicit Lowering(const lang::TranslationUnit &unit)
        : unit_(unit), module_(std::make_unique<Module>()),
          builder_(*module_)
    {
    }

    std::unique_ptr<Module>
    run()
    {
        declareGlobals();
        declareFunctions();
        for (const auto &fn : unit_.functions) {
            if (fn->isDefinition())
                lowerFunctionBody(*fn);
        }
        return std::move(module_);
    }

  private:
    //===--------------------------------------------------------------===//
    // Declarations
    //===--------------------------------------------------------------===//

    /** Peel implicit casts (sema's conversions) off an initializer. */
    static const Expr *
    stripImplicitCasts(const Expr *expr)
    {
        while (expr->kind() == ExprKind::Cast) {
            const auto &cast = static_cast<const lang::CastExpr &>(*expr);
            if (!cast.implicit)
                break;
            expr = cast.sub.get();
        }
        return expr;
    }

    /** Lower a pointer global's constant initializer: &g, &g[k], array
     * decay of g, or the null constant. */
    GlobalInit
    lowerAddressInit(const Expr &raw)
    {
        const Expr *expr = stripImplicitCasts(&raw);
        if (auto value = lang::evalConstInt(*expr)) {
            assert(*value == 0 && "non-null integer pointer initializer");
            return GlobalInit::intValue(0);
        }
        if (expr->kind() == ExprKind::VarRef) {
            // Array decay: `int *p = arr;`
            const auto &ref = static_cast<const lang::VarRef &>(*expr);
            GlobalVar *base = module_->getGlobal(ref.decl->name);
            assert(base && "decayed initializer references non-global");
            return GlobalInit::addressOf(base, 0);
        }
        assert(expr->kind() == ExprKind::Unary);
        const auto &unary = static_cast<const lang::UnaryExpr &>(*expr);
        assert(unary.op == UnaryOp::AddrOf);
        const Expr *target = stripImplicitCasts(unary.sub.get());
        if (target->kind() == ExprKind::VarRef) {
            const auto &ref = static_cast<const lang::VarRef &>(*target);
            GlobalVar *base = module_->getGlobal(ref.decl->name);
            assert(base && "address-of initializer references non-global");
            return GlobalInit::addressOf(base, 0);
        }
        assert(target->kind() == ExprKind::Index);
        const auto &index = static_cast<const lang::IndexExpr &>(*target);
        const Expr *base_expr = stripImplicitCasts(index.base.get());
        assert(base_expr->kind() == ExprKind::VarRef);
        const auto &ref = static_cast<const lang::VarRef &>(*base_expr);
        GlobalVar *base = module_->getGlobal(ref.decl->name);
        auto offset = lang::evalConstInt(*index.index);
        assert(base && offset && "non-constant global address init");
        return GlobalInit::addressOf(base, *offset);
    }

    void
    declareGlobals()
    {
        for (const auto &decl : unit_.globals) {
            const lang::Type *type = decl->type;
            bool is_array = type->isArray();
            const lang::Type *element = is_array ? type->element() : type;
            GlobalVar *global = module_->addGlobal(
                decl->name, lowerType(element),
                is_array ? type->arraySize() : 1,
                decl->storage == Storage::StaticGlobal);
            global->setIsArray(is_array);
            globalMap_[decl.get()] = global;
        }
        // Initializers may reference other globals (&b[1]), so fill them
        // in a second pass once every global exists.
        for (const auto &decl : unit_.globals) {
            GlobalVar *global = globalMap_.at(decl.get());
            const lang::Type *element_type =
                decl->type->isArray() ? decl->type->element() : decl->type;
            if (decl->init) {
                if (element_type->isPtr()) {
                    global->init.push_back(lowerAddressInit(*decl->init));
                } else {
                    auto value = lang::evalConstInt(*decl->init);
                    assert(value && "non-constant global initializer");
                    global->init.push_back(GlobalInit::intValue(*value));
                }
            }
            for (const auto &element : decl->initList) {
                if (element_type->isPtr()) {
                    global->init.push_back(lowerAddressInit(*element));
                } else {
                    auto value = lang::evalConstInt(*element);
                    assert(value && "non-constant array initializer");
                    global->init.push_back(GlobalInit::intValue(*value));
                }
            }
        }
    }

    void
    declareFunctions()
    {
        for (const auto &fn : unit_.functions) {
            if (functionMap_.count(fn->name))
                continue; // re-declaration
            Function *lowered = module_->addFunction(
                fn->name, lowerType(fn->returnType), fn->isStatic);
            for (const auto &param : fn->params)
                lowered->addParam(lowerType(param->type), param->name);
            functionMap_[fn->name] = lowered;
        }
    }

    //===--------------------------------------------------------------===//
    // Function bodies
    //===--------------------------------------------------------------===//

    void
    lowerFunctionBody(const lang::FunctionDecl &fn)
    {
        current_ = functionMap_.at(fn.name);
        varMap_.clear();
        breakTargets_.clear();
        continueTargets_.clear();

        BasicBlock *entry = current_->addBlock("entry");
        builder_.setInsertionBlock(entry);

        // Parameters are stored into allocas (clang -O0 style) so that
        // the body can treat all variables uniformly.
        for (size_t i = 0; i < fn.params.size(); ++i) {
            const lang::VarDecl *param = fn.params[i].get();
            Instr *slot = builder_.alloca_(lowerType(param->type), 1,
                                           /*is_array=*/false);
            builder_.store(current_->params()[i].get(), slot);
            varMap_[param] = slot;
        }

        lowerStmt(*fn.body);

        // Implicit return at fall-off.
        if (!builder_.terminated()) {
            if (current_->returnType().isVoid()) {
                builder_.retVoid();
            } else {
                builder_.ret(builder_.constInt(current_->returnType(), 0));
            }
        }
        // Front-end DCE (see file comment): drop blocks that became
        // unreachable through constant branch folding or trailing code
        // after return. Production front ends do the same at -O0.
        removeUnreachableBlocks(*current_);
        current_ = nullptr;
    }

    /** Allocate storage for a local in the entry block. */
    Instr *
    allocaForLocal(const lang::VarDecl &decl)
    {
        bool is_array = decl.type->isArray();
        const lang::Type *element =
            is_array ? decl.type->element() : decl.type;
        auto instr = module_->newInstr(Opcode::Alloca,
                                             IrType::ptrTy());
        instr->allocatedType = lowerType(element);
        instr->allocatedCount = is_array ? decl.type->arraySize() : 1;
        instr->allocaIsArray = is_array;
        instr->setId(module_->nextValueId());
        BasicBlock *entry = current_->entry();
        // Keep allocas clustered at the top of entry, before any code.
        size_t index = 0;
        while (index < entry->size() &&
               entry->instrs()[index]->opcode() == Opcode::Alloca) {
            ++index;
        }
        return entry->insertBefore(index, std::move(instr));
    }

    //===--------------------------------------------------------------===//
    // Statements
    //===--------------------------------------------------------------===//

    BasicBlock *
    freshBlock(const char *name)
    {
        return current_->addBlock(name);
    }

    /** Continue emission in @p block; used for code following a
     * terminator (trailing statements become unreachable IR). */
    void
    moveTo(BasicBlock *block)
    {
        builder_.setInsertionBlock(block);
    }

    /** If the current block is already terminated (return/break/...),
     * park subsequent statements in a fresh unreachable block. */
    void
    ensureInsertable()
    {
        if (builder_.terminated())
            moveTo(freshBlock("dead"));
    }

    void
    lowerStmt(const Stmt &stmt)
    {
        switch (stmt.kind()) {
          case StmtKind::Block: {
            const auto &block = static_cast<const lang::BlockStmt &>(stmt);
            for (const auto &child : block.stmts)
                lowerStmt(*child);
            break;
          }
          case StmtKind::ExprStmt:
            ensureInsertable();
            lowerExprForEffect(
                *static_cast<const lang::ExprStmt &>(stmt).expr);
            break;
          case StmtKind::DeclStmt: {
            ensureInsertable();
            const auto &decl =
                *static_cast<const lang::DeclStmt &>(stmt).decl;
            Instr *slot = allocaForLocal(decl);
            varMap_[&decl] = slot;
            if (decl.init) {
                Value *value = lowerRValue(*decl.init);
                builder_.store(value, slot);
            }
            for (size_t i = 0; i < decl.initList.size(); ++i) {
                Value *value = lowerRValue(*decl.initList[i]);
                Instr *addr = builder_.gep(
                    slot, builder_.constInt(IrType::i64(),
                                            static_cast<int64_t>(i)),
                    slot->allocatedType.sizeInBytes());
                builder_.store(value, addr);
            }
            break;
          }
          case StmtKind::If:
            ensureInsertable();
            lowerIf(static_cast<const lang::IfStmt &>(stmt));
            break;
          case StmtKind::While:
            ensureInsertable();
            lowerWhile(static_cast<const lang::WhileStmt &>(stmt));
            break;
          case StmtKind::DoWhile:
            ensureInsertable();
            lowerDoWhile(static_cast<const lang::DoWhileStmt &>(stmt));
            break;
          case StmtKind::For:
            ensureInsertable();
            lowerFor(static_cast<const lang::ForStmt &>(stmt));
            break;
          case StmtKind::Switch:
            ensureInsertable();
            lowerSwitch(static_cast<const lang::SwitchStmt &>(stmt));
            break;
          case StmtKind::Return: {
            ensureInsertable();
            const auto &ret = static_cast<const lang::ReturnStmt &>(stmt);
            if (ret.value)
                builder_.ret(lowerRValue(*ret.value));
            else
                builder_.retVoid();
            break;
          }
          case StmtKind::Break:
            ensureInsertable();
            assert(!breakTargets_.empty());
            builder_.br(breakTargets_.back());
            break;
          case StmtKind::Continue:
            ensureInsertable();
            assert(!continueTargets_.empty());
            builder_.br(continueTargets_.back());
            break;
          case StmtKind::Empty:
            break;
        }
    }

    /** Lower a branch condition to "condbr" unless it is a constant
     * expression, in which case emit an unconditional edge (front-end
     * DCE; see file comment). */
    void
    lowerBranch(const Expr &cond, BasicBlock *if_true,
                BasicBlock *if_false)
    {
        if (auto constant = lang::evalConstInt(cond)) {
            builder_.br(*constant != 0 ? if_true : if_false);
            return;
        }
        Value *value = lowerCondition(cond);
        builder_.condBr(value, if_true, if_false);
    }

    void
    lowerIf(const lang::IfStmt &stmt)
    {
        BasicBlock *then_block = freshBlock("if.then");
        BasicBlock *join = freshBlock("if.end");
        BasicBlock *else_block =
            stmt.elseStmt ? freshBlock("if.else") : join;

        lowerBranch(*stmt.cond, then_block, else_block);

        moveTo(then_block);
        lowerStmt(*stmt.thenStmt);
        if (!builder_.terminated())
            builder_.br(join);

        if (stmt.elseStmt) {
            moveTo(else_block);
            lowerStmt(*stmt.elseStmt);
            if (!builder_.terminated())
                builder_.br(join);
        }
        moveTo(join);
    }

    void
    lowerWhile(const lang::WhileStmt &stmt)
    {
        BasicBlock *header = freshBlock("while.cond");
        BasicBlock *body = freshBlock("while.body");
        BasicBlock *exit = freshBlock("while.end");

        builder_.br(header);
        moveTo(header);
        lowerBranch(*stmt.cond, body, exit);

        breakTargets_.push_back(exit);
        continueTargets_.push_back(header);
        moveTo(body);
        lowerStmt(*stmt.body);
        if (!builder_.terminated())
            builder_.br(header);
        breakTargets_.pop_back();
        continueTargets_.pop_back();

        moveTo(exit);
    }

    void
    lowerDoWhile(const lang::DoWhileStmt &stmt)
    {
        BasicBlock *body = freshBlock("do.body");
        BasicBlock *latch = freshBlock("do.cond");
        BasicBlock *exit = freshBlock("do.end");

        builder_.br(body);
        breakTargets_.push_back(exit);
        continueTargets_.push_back(latch);
        moveTo(body);
        lowerStmt(*stmt.body);
        if (!builder_.terminated())
            builder_.br(latch);
        breakTargets_.pop_back();
        continueTargets_.pop_back();

        moveTo(latch);
        lowerBranch(*stmt.cond, body, exit);
        moveTo(exit);
    }

    void
    lowerFor(const lang::ForStmt &stmt)
    {
        if (stmt.init)
            lowerStmt(*stmt.init);

        BasicBlock *header = freshBlock("for.cond");
        BasicBlock *body = freshBlock("for.body");
        BasicBlock *latch = freshBlock("for.inc");
        BasicBlock *exit = freshBlock("for.end");

        builder_.br(header);
        moveTo(header);
        if (stmt.cond)
            lowerBranch(*stmt.cond, body, exit);
        else
            builder_.br(body);

        breakTargets_.push_back(exit);
        continueTargets_.push_back(latch);
        moveTo(body);
        lowerStmt(*stmt.body);
        if (!builder_.terminated())
            builder_.br(latch);
        breakTargets_.pop_back();
        continueTargets_.pop_back();

        moveTo(latch);
        if (stmt.step)
            lowerExprForEffect(*stmt.step);
        builder_.br(header);

        moveTo(exit);
    }

    void
    lowerSwitch(const lang::SwitchStmt &stmt)
    {
        Value *value = lowerRValue(*stmt.cond);
        BasicBlock *exit = freshBlock("switch.end");

        // Create case blocks first; the default arm targets its block,
        // otherwise default goes straight to exit.
        BasicBlock *default_block = exit;
        std::vector<std::pair<const lang::SwitchCase *, BasicBlock *>>
            arms;
        for (const auto &arm : stmt.cases) {
            BasicBlock *block = freshBlock(
                arm.value ? "switch.case" : "switch.default");
            arms.emplace_back(&arm, block);
            if (!arm.value)
                default_block = block;
        }

        Instr *switch_instr = builder_.switch_(value, default_block);
        IrType value_type = value->type();
        for (const auto &[arm, block] : arms) {
            if (!arm->value)
                continue;
            switch_instr->caseValues.push_back(
                wrapInt(*arm->value, value_type.bits,
                        value_type.isSigned));
            switch_instr->addBlockOperand(block);
        }

        breakTargets_.push_back(exit);
        for (const auto &[arm, block] : arms) {
            moveTo(block);
            lowerStmt(*arm->body);
            if (!builder_.terminated())
                builder_.br(exit); // MiniC arms do not fall through
        }
        breakTargets_.pop_back();
        moveTo(exit);
    }

    //===--------------------------------------------------------------===//
    // Expressions
    //===--------------------------------------------------------------===//

    /** Usual-arithmetic-conversion result at the IR level (mirrors
     * Sema::commonType; needed again for compound assignment). */
    static IrType
    usualType(IrType a, IrType b)
    {
        auto promote = [](IrType t) {
            return t.bits < 32 ? IrType::i32() : t;
        };
        a = promote(a);
        b = promote(b);
        if (a == b)
            return a;
        if (a.isSigned == b.isSigned)
            return a.bits >= b.bits ? a : b;
        IrType unsigned_type = a.isSigned ? b : a;
        IrType signed_type = a.isSigned ? a : b;
        return unsigned_type.bits >= signed_type.bits ? unsigned_type
                                                      : signed_type;
    }

    /** Emit a conversion of @p value to integer type @p to. */
    Value *
    convert(Value *value, IrType to)
    {
        IrType from = value->type();
        if (from == to)
            return value;
        assert(from.isInt() && to.isInt());
        // Constants fold immediately (also keeps -O0 IR tidy).
        if (value->isConstant()) {
            int64_t v = static_cast<Constant *>(value)->value();
            return builder_.constInt(
                to, convertInt(v, from.bits, from.isSigned, to.bits,
                               to.isSigned));
        }
        if (from.bits > to.bits)
            return builder_.cast(CastOp::Trunc, value, to);
        if (from.bits < to.bits) {
            // C converts by *value*: the source's own signedness decides
            // the extension.
            return builder_.cast(
                from.isSigned ? CastOp::Sext : CastOp::Zext, value, to);
        }
        return builder_.cast(CastOp::Bitcast, value, to);
    }

    /** Lower an expression whose value is discarded. */
    void
    lowerExprForEffect(const Expr &expr)
    {
        lowerExprImpl(expr, /*need_value=*/false);
    }

    Value *
    lowerRValue(const Expr &expr)
    {
        Value *value = lowerExprImpl(expr, /*need_value=*/true);
        assert(value && "rvalue lowering produced no value");
        return value;
    }

    /** Lower a condition to an i32-comparable value. */
    Value *
    lowerCondition(const Expr &expr)
    {
        Value *value = lowerRValue(expr);
        if (value->type().isPtr()) {
            // condbr wants an integer: compare against null.
            return builder_.cmp(CmpPred::Ne, value,
                                builder_.constInt(IrType::ptrTy(), 0));
        }
        return value;
    }

    /** Address of an lvalue expression. */
    Value *
    lowerLValue(const Expr &expr)
    {
        switch (expr.kind()) {
          case ExprKind::VarRef: {
            const auto &ref = static_cast<const lang::VarRef &>(expr);
            return storageOf(*ref.decl);
          }
          case ExprKind::Unary: {
            const auto &unary =
                static_cast<const lang::UnaryExpr &>(expr);
            assert(unary.op == UnaryOp::Deref);
            return lowerRValue(*unary.sub);
          }
          case ExprKind::Index: {
            const auto &index =
                static_cast<const lang::IndexExpr &>(expr);
            Value *base = lowerArrayBase(*index.base);
            Value *idx = lowerRValue(*index.index);
            return builder_.gep(base, idx, expr.type->sizeInBytes());
          }
          default:
            assert(false && "not an lvalue");
            return nullptr;
        }
    }

    /** Pointer to element 0 for a subscript base (array lvalue or
     * pointer rvalue). */
    Value *
    lowerArrayBase(const Expr &expr)
    {
        if (expr.type->isArray())
            return lowerLValue(expr);
        return lowerRValue(expr);
    }

    Value *
    storageOf(const lang::VarDecl &decl)
    {
        if (decl.isFileScope())
            return globalMap_.at(&decl);
        return varMap_.at(&decl);
    }

    Value *
    lowerExprImpl(const Expr &expr, bool need_value)
    {
        switch (expr.kind()) {
          case ExprKind::IntLit: {
            const auto &lit = static_cast<const lang::IntLit &>(expr);
            IrType type = lowerType(expr.type);
            return builder_.constInt(
                type, wrapInt(static_cast<int64_t>(lit.value), type.bits,
                              type.isSigned));
          }
          case ExprKind::VarRef: {
            if (!need_value)
                return nullptr;
            assert(!expr.type->isArray() &&
                   "array rvalue must decay via cast");
            Value *addr = lowerLValue(expr);
            return builder_.load(lowerType(expr.type), addr);
          }
          case ExprKind::Cast:
            return lowerCast(static_cast<const lang::CastExpr &>(expr),
                             need_value);
          case ExprKind::Unary:
            return lowerUnary(static_cast<const lang::UnaryExpr &>(expr),
                              need_value);
          case ExprKind::Binary:
            return lowerBinary(
                static_cast<const lang::BinaryExpr &>(expr), need_value);
          case ExprKind::Assign:
            return lowerAssign(
                static_cast<const lang::AssignExpr &>(expr), need_value);
          case ExprKind::Index: {
            if (!need_value)
                return nullptr;
            Value *addr = lowerLValue(expr);
            return builder_.load(lowerType(expr.type), addr);
          }
          case ExprKind::Call: {
            const auto &call = static_cast<const lang::CallExpr &>(expr);
            std::vector<Value *> args;
            args.reserve(call.args.size());
            for (const auto &arg : call.args)
                args.push_back(lowerRValue(*arg));
            Function *callee = functionMap_.at(call.callee);
            Instr *result = builder_.call(callee, args);
            return result->type().isVoid() ? nullptr : result;
          }
          case ExprKind::Conditional:
            return lowerConditional(
                static_cast<const lang::ConditionalExpr &>(expr),
                need_value);
        }
        return nullptr;
    }

    Value *
    lowerCast(const lang::CastExpr &cast, bool need_value)
    {
        // Array decay: produce the array's address.
        if (cast.sub->type && cast.sub->type->isArray() &&
            cast.target->isPtr()) {
            return lowerLValue(*cast.sub);
        }
        // Null-pointer constant.
        if (cast.target->isPtr() && cast.sub->type->isInt()) {
            if (!need_value) {
                lowerExprForEffect(*cast.sub);
                return nullptr;
            }
            return builder_.constInt(IrType::ptrTy(), 0);
        }
        if (cast.target->isPtr()) {
            // ptr -> same ptr: identity.
            return lowerExprImpl(*cast.sub, need_value);
        }
        if (!need_value) {
            lowerExprForEffect(*cast.sub);
            return nullptr;
        }
        Value *value = lowerRValue(*cast.sub);
        return convert(value, lowerType(cast.target));
    }

    Value *
    lowerUnary(const lang::UnaryExpr &unary, bool need_value)
    {
        switch (unary.op) {
          case UnaryOp::Neg: {
            Value *sub = lowerRValue(*unary.sub);
            if (!need_value)
                return nullptr;
            return builder_.bin(BinOp::Sub,
                                builder_.constInt(sub->type(), 0), sub);
          }
          case UnaryOp::BitNot: {
            Value *sub = lowerRValue(*unary.sub);
            if (!need_value)
                return nullptr;
            return builder_.bin(BinOp::Xor, sub,
                                builder_.constInt(sub->type(), -1));
          }
          case UnaryOp::LogicalNot: {
            Value *sub = lowerRValue(*unary.sub);
            if (!need_value)
                return nullptr;
            Value *zero = sub->type().isPtr()
                              ? builder_.constInt(IrType::ptrTy(), 0)
                              : builder_.constInt(sub->type(), 0);
            return builder_.cmp(CmpPred::Eq, sub, zero);
          }
          case UnaryOp::AddrOf:
            return lowerLValue(*unary.sub);
          case UnaryOp::Deref: {
            Value *addr = lowerRValue(*unary.sub);
            if (!need_value)
                return nullptr;
            return builder_.load(lowerType(unary.type), addr);
          }
          case UnaryOp::PreInc:
          case UnaryOp::PreDec:
          case UnaryOp::PostInc:
          case UnaryOp::PostDec: {
            Value *addr = lowerLValue(*unary.sub);
            IrType type = lowerType(unary.sub->type);
            Value *old_value = builder_.load(type, addr);
            bool increment = unary.op == UnaryOp::PreInc ||
                             unary.op == UnaryOp::PostInc;
            Value *new_value = builder_.bin(
                increment ? BinOp::Add : BinOp::Sub, old_value,
                builder_.constInt(type, 1));
            builder_.store(new_value, addr);
            if (!need_value)
                return nullptr;
            bool post = unary.op == UnaryOp::PostInc ||
                        unary.op == UnaryOp::PostDec;
            return post ? old_value : new_value;
          }
        }
        return nullptr;
    }

    Value *
    lowerBinary(const lang::BinaryExpr &binary, bool need_value)
    {
        if (binary.op == BinaryOp::LogicalAnd ||
            binary.op == BinaryOp::LogicalOr) {
            return lowerShortCircuit(binary, need_value);
        }

        Value *lhs = lowerRValue(*binary.lhs);
        Value *rhs = lowerRValue(*binary.rhs);
        if (!need_value)
            return nullptr;

        switch (binary.op) {
          case BinaryOp::Eq:
          case BinaryOp::Ne:
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge: {
            bool is_signed =
                lhs->type().isInt() ? lhs->type().isSigned : false;
            CmpPred pred;
            switch (binary.op) {
              case BinaryOp::Eq: pred = CmpPred::Eq; break;
              case BinaryOp::Ne: pred = CmpPred::Ne; break;
              case BinaryOp::Lt:
                pred = is_signed ? CmpPred::Slt : CmpPred::Ult;
                break;
              case BinaryOp::Le:
                pred = is_signed ? CmpPred::Sle : CmpPred::Ule;
                break;
              case BinaryOp::Gt:
                pred = is_signed ? CmpPred::Sgt : CmpPred::Ugt;
                break;
              default:
                pred = is_signed ? CmpPred::Sge : CmpPred::Uge;
                break;
            }
            return builder_.cmp(pred, lhs, rhs);
          }
          case BinaryOp::Shl:
          case BinaryOp::Shr:
            // Sema promoted both sides independently; Bin needs equal
            // types, so coerce the amount to the value's type.
            rhs = convert(rhs, lhs->type());
            return builder_.bin(binary.op == BinaryOp::Shl ? BinOp::Shl
                                                           : BinOp::Shr,
                                lhs, rhs);
          default: {
            BinOp op;
            switch (binary.op) {
              case BinaryOp::Add: op = BinOp::Add; break;
              case BinaryOp::Sub: op = BinOp::Sub; break;
              case BinaryOp::Mul: op = BinOp::Mul; break;
              case BinaryOp::Div: op = BinOp::Div; break;
              case BinaryOp::Rem: op = BinOp::Rem; break;
              case BinaryOp::BitAnd: op = BinOp::And; break;
              case BinaryOp::BitOr: op = BinOp::Or; break;
              case BinaryOp::BitXor: op = BinOp::Xor; break;
              default:
                assert(false && "unhandled binary op");
                op = BinOp::Add;
                break;
            }
            return builder_.bin(op, lhs, rhs);
          }
        }
    }

    Value *
    lowerShortCircuit(const lang::BinaryExpr &binary, bool need_value)
    {
        bool is_and = binary.op == BinaryOp::LogicalAnd;
        BasicBlock *rhs_block = freshBlock(is_and ? "and.rhs" : "or.rhs");
        BasicBlock *join = freshBlock(is_and ? "and.end" : "or.end");

        Value *lhs = lowerCondition(*binary.lhs);
        // Normalize lhs to 0/1 so the phi value is correct.
        Value *lhs_bool = builder_.cmp(
            CmpPred::Ne, lhs, builder_.constInt(lhs->type(), 0));
        BasicBlock *lhs_end = builder_.insertionBlock();
        if (is_and)
            builder_.condBr(lhs_bool, rhs_block, join);
        else
            builder_.condBr(lhs_bool, join, rhs_block);

        moveTo(rhs_block);
        Value *rhs = lowerCondition(*binary.rhs);
        Value *rhs_bool = builder_.cmp(
            CmpPred::Ne, rhs, builder_.constInt(rhs->type(), 0));
        BasicBlock *rhs_end = builder_.insertionBlock();
        builder_.br(join);

        moveTo(join);
        if (!need_value)
            return nullptr;
        Instr *phi = builder_.phi(IrType::i32());
        phi->setId(module_->nextValueId());
        phi->addIncoming(builder_.constInt(IrType::i32(), is_and ? 0 : 1),
                         lhs_end);
        phi->addIncoming(rhs_bool, rhs_end);
        return phi;
    }

    Value *
    lowerAssign(const lang::AssignExpr &assign, bool need_value)
    {
        Value *addr = lowerLValue(*assign.lhs);
        IrType lhs_type = lowerType(assign.lhs->type);
        Value *result;
        if (assign.op == AssignOp::Assign) {
            result = lowerRValue(*assign.rhs);
        } else {
            Value *current = builder_.load(lhs_type, addr);
            Value *rhs = lowerRValue(*assign.rhs);
            lang::BinaryOp binary_op = lang::assignOpBinary(assign.op);
            Value *operation_result;
            if (binary_op == BinaryOp::Shl || binary_op == BinaryOp::Shr) {
                IrType op_type =
                    lhs_type.bits < 32 ? IrType::i32() : lhs_type;
                if (!lhs_type.isSigned && lhs_type.bits >= 32)
                    op_type = lhs_type;
                Value *lhs_promoted = convert(current, op_type);
                Value *amount = convert(rhs, op_type);
                operation_result = builder_.bin(
                    binary_op == BinaryOp::Shl ? BinOp::Shl : BinOp::Shr,
                    lhs_promoted, amount);
            } else {
                IrType op_type = usualType(lhs_type, rhs->type());
                Value *lhs_conv = convert(current, op_type);
                Value *rhs_conv = convert(rhs, op_type);
                BinOp op;
                switch (binary_op) {
                  case BinaryOp::Add: op = BinOp::Add; break;
                  case BinaryOp::Sub: op = BinOp::Sub; break;
                  case BinaryOp::Mul: op = BinOp::Mul; break;
                  case BinaryOp::Div: op = BinOp::Div; break;
                  case BinaryOp::Rem: op = BinOp::Rem; break;
                  case BinaryOp::BitAnd: op = BinOp::And; break;
                  case BinaryOp::BitOr: op = BinOp::Or; break;
                  case BinaryOp::BitXor: op = BinOp::Xor; break;
                  default:
                    assert(false);
                    op = BinOp::Add;
                    break;
                }
                operation_result = builder_.bin(op, lhs_conv, rhs_conv);
            }
            result = convert(operation_result, lhs_type);
        }
        builder_.store(result, addr);
        return need_value ? result : nullptr;
    }

    Value *
    lowerConditional(const lang::ConditionalExpr &cond, bool need_value)
    {
        BasicBlock *then_block = freshBlock("cond.then");
        BasicBlock *else_block = freshBlock("cond.else");
        BasicBlock *join = freshBlock("cond.end");

        lowerBranch(*cond.cond, then_block, else_block);

        moveTo(then_block);
        Value *then_value = need_value ? lowerRValue(*cond.thenExpr)
                                       : (lowerExprForEffect(*cond.thenExpr),
                                          nullptr);
        BasicBlock *then_end = builder_.insertionBlock();
        builder_.br(join);

        moveTo(else_block);
        Value *else_value = need_value ? lowerRValue(*cond.elseExpr)
                                       : (lowerExprForEffect(*cond.elseExpr),
                                          nullptr);
        BasicBlock *else_end = builder_.insertionBlock();
        builder_.br(join);

        moveTo(join);
        if (!need_value)
            return nullptr;
        Instr *phi = builder_.phi(then_value->type());
        phi->setId(module_->nextValueId());
        phi->addIncoming(then_value, then_end);
        phi->addIncoming(else_value, else_end);
        return phi;
    }

    const lang::TranslationUnit &unit_;
    std::unique_ptr<Module> module_;
    IrBuilder builder_;
    Function *current_ = nullptr;
    std::unordered_map<const lang::VarDecl *, GlobalVar *> globalMap_;
    std::unordered_map<std::string, Function *> functionMap_;
    std::unordered_map<const lang::VarDecl *, Value *> varMap_;
    std::vector<BasicBlock *> breakTargets_;
    std::vector<BasicBlock *> continueTargets_;
};

} // namespace

std::unique_ptr<Module>
lowerToIr(const lang::TranslationUnit &unit)
{
    support::TraceSpan span("lower", "compile");
    return Lowering(unit).run();
}

} // namespace dce::ir
