#include "ir/cfg.hpp"

#include <algorithm>

namespace dce::ir {

std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
predecessorMap(const Function &fn)
{
    std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> preds;
    for (const auto &block : fn.blocks())
        preds[block.get()]; // ensure every block has an entry
    for (const auto &block : fn.blocks()) {
        for (BasicBlock *succ : block->successors())
            preds[succ].push_back(block.get());
    }
    return preds;
}

std::unordered_set<const BasicBlock *>
reachableBlocks(const Function &fn)
{
    std::unordered_set<const BasicBlock *> reachable;
    if (fn.isDeclaration())
        return reachable;
    std::vector<const BasicBlock *> worklist = {fn.entry()};
    reachable.insert(fn.entry());
    while (!worklist.empty()) {
        const BasicBlock *block = worklist.back();
        worklist.pop_back();
        for (BasicBlock *succ : block->successors()) {
            if (reachable.insert(succ).second)
                worklist.push_back(succ);
        }
    }
    return reachable;
}

namespace {

void
postorderVisit(BasicBlock *block,
               std::unordered_set<const BasicBlock *> &visited,
               std::vector<BasicBlock *> &order)
{
    // Iterative DFS to avoid stack overflow on long CFG chains.
    struct Frame {
        BasicBlock *block;
        std::vector<BasicBlock *> succs;
        size_t next = 0;
    };
    std::vector<Frame> stack;
    visited.insert(block);
    stack.push_back({block, block->successors(), 0});
    while (!stack.empty()) {
        Frame &frame = stack.back();
        if (frame.next < frame.succs.size()) {
            BasicBlock *succ = frame.succs[frame.next++];
            if (visited.insert(succ).second)
                stack.push_back({succ, succ->successors(), 0});
        } else {
            order.push_back(frame.block);
            stack.pop_back();
        }
    }
}

} // namespace

std::vector<BasicBlock *>
reversePostorder(const Function &fn)
{
    std::vector<BasicBlock *> order;
    if (fn.isDeclaration())
        return order;
    std::unordered_set<const BasicBlock *> visited;
    postorderVisit(fn.entry(), visited, order);
    std::reverse(order.begin(), order.end());
    return order;
}

unsigned
removeUnreachableBlocks(Function &fn)
{
    if (fn.isDeclaration())
        return 0;
    std::unordered_set<const BasicBlock *> reachable = reachableBlocks(fn);

    // Collect doomed blocks first; then fix phis in survivors; then
    // erase (eraseBlock drops operand uses, so cross-references among
    // doomed blocks are fine in any order).
    std::vector<BasicBlock *> doomed;
    for (const auto &block : fn.blocks()) {
        if (!reachable.count(block.get()))
            doomed.push_back(block.get());
    }
    if (doomed.empty())
        return 0;

    for (const auto &block : fn.blocks()) {
        if (!reachable.count(block.get()))
            continue;
        for (BasicBlock *dead : doomed)
            block->removePhiIncomingFor(dead);
    }

    // Values defined in doomed blocks may still be referenced by
    // instructions of *other* doomed blocks. Sever every doomed
    // instruction's operand links first, so that no dropOperands call
    // during block destruction touches an already-destroyed value.
    for (BasicBlock *dead : doomed) {
        for (const auto &instr : dead->instrs())
            instr->dropOperands();
    }
    for (BasicBlock *dead : doomed)
        fn.eraseBlock(dead);
    return static_cast<unsigned>(doomed.size());
}

} // namespace dce::ir
