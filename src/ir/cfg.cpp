#include "ir/cfg.hpp"

#include <algorithm>

namespace dce::ir {

PredecessorMap::PredecessorMap(const Function &fn)
{
    lists_.resize(fn.numBlocks());
    for (const auto &block : fn.blocks()) {
        for (BasicBlock *succ : block->successors())
            lists_[succ->indexInFn()].push_back(block.get());
    }
}

std::vector<unsigned char>
reachableBlockFlags(const Function &fn)
{
    std::vector<unsigned char> reachable(fn.numBlocks(), 0);
    if (fn.isDeclaration())
        return reachable;
    std::vector<const BasicBlock *> worklist = {fn.entry()};
    reachable[fn.entry()->indexInFn()] = 1;
    while (!worklist.empty()) {
        const BasicBlock *block = worklist.back();
        worklist.pop_back();
        for (BasicBlock *succ : block->successors()) {
            unsigned char &seen = reachable[succ->indexInFn()];
            if (!seen) {
                seen = 1;
                worklist.push_back(succ);
            }
        }
    }
    return reachable;
}

std::unordered_set<const BasicBlock *>
reachableBlocks(const Function &fn)
{
    std::vector<unsigned char> flags = reachableBlockFlags(fn);
    std::unordered_set<const BasicBlock *> reachable;
    for (const auto &block : fn.blocks()) {
        if (flags[block->indexInFn()])
            reachable.insert(block.get());
    }
    return reachable;
}

std::vector<BasicBlock *>
reversePostorder(const Function &fn)
{
    std::vector<BasicBlock *> order;
    if (fn.isDeclaration())
        return order;

    // Iterative DFS to avoid stack overflow on long CFG chains. Each
    // frame walks the block's successor list in place — terminators
    // are not mutated during the walk.
    struct Frame {
        BasicBlock *block;
        const support::SmallVector<BasicBlock *, 2> *succs;
        size_t next = 0;
    };
    std::vector<unsigned char> visited(fn.numBlocks(), 0);
    std::vector<Frame> stack;
    visited[fn.entry()->indexInFn()] = 1;
    stack.push_back({fn.entry(), &fn.entry()->successors(), 0});
    while (!stack.empty()) {
        Frame &frame = stack.back();
        if (frame.next < frame.succs->size()) {
            BasicBlock *succ = (*frame.succs)[frame.next++];
            unsigned char &seen = visited[succ->indexInFn()];
            if (!seen) {
                seen = 1;
                stack.push_back({succ, &succ->successors(), 0});
            }
        } else {
            order.push_back(frame.block);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

unsigned
removeUnreachableBlocks(Function &fn)
{
    if (fn.isDeclaration())
        return 0;
    std::vector<unsigned char> reachable = reachableBlockFlags(fn);

    // Collect doomed blocks first; then fix phis in survivors; then
    // erase (eraseBlock drops operand uses, so cross-references among
    // doomed blocks are fine in any order).
    std::vector<BasicBlock *> doomed;
    for (const auto &block : fn.blocks()) {
        if (!reachable[block->indexInFn()])
            doomed.push_back(block.get());
    }
    if (doomed.empty())
        return 0;

    for (const auto &block : fn.blocks()) {
        if (!reachable[block->indexInFn()])
            continue;
        for (BasicBlock *dead : doomed)
            block->removePhiIncomingFor(dead);
    }

    // Values defined in doomed blocks may still be referenced by
    // instructions of *other* doomed blocks. Sever every doomed
    // instruction's operand links first, so that no dropOperands call
    // during block destruction touches an already-destroyed value.
    for (BasicBlock *dead : doomed) {
        for (const auto &instr : dead->instrs())
            instr->dropOperands();
    }
    for (BasicBlock *dead : doomed)
        fn.eraseBlock(dead);
    return static_cast<unsigned>(doomed.size());
}

} // namespace dce::ir
