/**
 * @file
 * IR cloning utilities: deep-copy a function body into another (or the
 * same) function with a value/block remapping. Used by the inliner and
 * by loop transformations that duplicate bodies (unswitching,
 * unrolling).
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/ir.hpp"

namespace dce::ir {

/** Remapping tables filled by the clone helpers. */
struct CloneMap {
    std::unordered_map<const Value *, Value *> values;
    std::unordered_map<const BasicBlock *, BasicBlock *> blocks;

    /** Mapped value, or the original when unmapped (constants, globals,
     * values defined outside the cloned region). */
    Value *
    get(Value *value) const
    {
        auto it = values.find(value);
        return it == values.end() ? value : it->second;
    }

    BasicBlock *
    get(BasicBlock *block) const
    {
        auto it = blocks.find(block);
        return it == blocks.end() ? block : it->second;
    }
};

/**
 * Clone one instruction (operands still referencing originals —
 * remap afterwards with remapInstr). The clone gets a fresh id.
 */
InstrPtr cloneInstr(const Instr &instr, Module &module);

/** Rewrite @p instr's operands and block operands through @p map. */
void remapInstr(Instr &instr, const CloneMap &map);

/**
 * Clone @p blocks (a region: e.g. a whole function body or a loop)
 * into @p dest. Creates one new block per input block, clones all
 * instructions, and remaps intra-region references. References to
 * values/blocks outside the region are preserved. Phi incoming blocks
 * pointing outside the region are preserved too (callers fix up edges).
 * @return the map used (extended from @p seed, which may pre-map
 * params to argument values for inlining).
 */
CloneMap cloneRegion(const std::vector<BasicBlock *> &blocks,
                     Function &dest, Module &module, CloneMap seed,
                     const std::string &suffix);

/**
 * Deep-copy a whole module: globals (initializers included), function
 * declarations and bodies, with every cross-reference — operands,
 * branch targets, callees, address-of-global initializers — remapped
 * into the copy. Constants are re-interned in the clone's pool.
 *
 * The copy is semantically identical and structurally isomorphic to
 * the input (same iteration order everywhere), so running a pass
 * pipeline over the clone gives the same result as lowering the source
 * again and optimizing that. This is the campaign engine's lowering
 * cache: one AST-to-IR lowering per program, one cheap clone per
 * compiler build. Value ids are re-assigned (printer handles only).
 */
std::unique_ptr<Module> cloneModule(const Module &module);

} // namespace dce::ir
