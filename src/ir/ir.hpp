/**
 * @file
 * Core IR data structures: Value, Constant, GlobalVar, Param, Instr,
 * BasicBlock, Function, Module.
 *
 * The IR is an SSA, explicit-CFG, load/store IR in the LLVM tradition:
 *  - Scalars promoted to SSA registers carry values between Instrs.
 *  - Globals, arrays, and address-taken locals live in memory objects
 *    accessed by Load/Store through opaque pointers; Gep does *element*
 *    addressing (base pointer + element index).
 *  - Every BasicBlock ends in exactly one terminator (Ret / Br /
 *    CondBr / Switch / Unreachable).
 *  - Def-use chains are maintained: every Value knows its users, so
 *    passes can replaceAllUsesWith in O(uses).
 *
 * Ownership: Module owns GlobalVars, Functions and the constant pool;
 * Function owns Params and BasicBlocks; BasicBlock owns Instrs.
 * Mid-life deletion must go through BasicBlock::erase / Function::
 * eraseBlock so def-use bookkeeping stays consistent; destruction of a
 * whole Module performs no bookkeeping.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace dce::ir {

class Instr;
class BasicBlock;
class Function;
class Module;
class GlobalVar;

//===------------------------------------------------------------------===//
// Value
//===------------------------------------------------------------------===//

enum class ValueKind : uint8_t {
    Constant,
    Global,
    Param,
    Instruction,
};

/** Anything an instruction operand can reference. */
class Value {
  public:
    virtual ~Value() = default;
    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;

    ValueKind valueKind() const { return valueKind_; }
    IrType type() const { return type_; }
    void setType(IrType type) { type_ = type; }

    bool isConstant() const { return valueKind_ == ValueKind::Constant; }
    bool isInstruction() const
    {
        return valueKind_ == ValueKind::Instruction;
    }

    /** Users (instructions whose operand lists mention this value).
     * May contain duplicates when one instruction uses a value twice. */
    const std::vector<Instr *> &users() const { return users_; }
    bool hasUsers() const { return !users_.empty(); }

    /** Rewrite every use of this value to @p replacement. */
    void replaceAllUsesWith(Value *replacement);

    /** Printer handle, unique within a module ("%5", "@g", ...). */
    unsigned id() const { return id_; }
    void setId(unsigned id) { id_ = id; }

  protected:
    Value(ValueKind kind, IrType type) : valueKind_(kind), type_(type) {}

  private:
    friend class Instr;
    void addUser(Instr *user) { users_.push_back(user); }
    void removeUser(Instr *user);

    ValueKind valueKind_;
    IrType type_;
    unsigned id_ = 0;
    std::vector<Instr *> users_;
};

/** An integer constant, interned per (type, value) in the Module. */
class Constant : public Value {
  public:
    Constant(IrType type, int64_t value)
        : Value(ValueKind::Constant, type), value_(value)
    {
    }

    /** Canonical value (wrapped/extended per type, see support/ints). */
    int64_t value() const { return value_; }
    bool isZero() const { return value_ == 0; }

  private:
    int64_t value_;
};

/** One element of a global initializer: either an integer or the
 * address of (an element of) another global. */
struct GlobalInit {
    const GlobalVar *base = nullptr; ///< non-null => address constant
    int64_t value = 0;               ///< int value, or element offset

    static GlobalInit
    intValue(int64_t value)
    {
        return {nullptr, value};
    }
    static GlobalInit
    addressOf(const GlobalVar *base, int64_t element)
    {
        return {base, element};
    }
    bool isAddress() const { return base != nullptr; }
};

/** A global memory object: scalar or one-dimensional array. The Value
 * itself has pointer type (the object's address). */
class GlobalVar : public Value {
  public:
    GlobalVar(std::string name, IrType element_type, uint64_t count,
              bool internal)
        : Value(ValueKind::Global, IrType::ptrTy()), name_(std::move(name)),
          elementType_(element_type), count_(count), internal_(internal)
    {
    }

    const std::string &name() const { return name_; }
    /** Type of each element slot (an Int type or Ptr). */
    IrType elementType() const { return elementType_; }
    /** Number of element slots (1 for scalars). */
    uint64_t count() const { return count_; }
    bool isArray() const { return isArray_; }
    void setIsArray(bool is_array) { isArray_ = is_array; }
    /** Internal linkage (C "static"): no access outside this module. */
    bool isInternal() const { return internal_; }

    /** Initializers, one per slot; missing entries are zero. */
    std::vector<GlobalInit> init;

  private:
    std::string name_;
    IrType elementType_;
    uint64_t count_;
    bool internal_;
    bool isArray_ = false;
};

/** A formal parameter of a Function; an SSA value from entry. */
class Param : public Value {
  public:
    Param(IrType type, unsigned index, std::string name)
        : Value(ValueKind::Param, type), index_(index),
          name_(std::move(name))
    {
    }

    unsigned index() const { return index_; }
    const std::string &name() const { return name_; }

  private:
    unsigned index_;
    std::string name_;
};

//===------------------------------------------------------------------===//
// Instructions
//===------------------------------------------------------------------===//

enum class Opcode : uint8_t {
    Alloca,
    Load,
    Store,
    Bin,
    Cmp,
    Cast,
    Gep,
    Select,
    /** Value laundering barrier (LLVM's freeze): semantically the
     * identity on its operand, but most folds refuse to look through
     * it. Inserted by aggressive loop unswitching and the loop
     * vectorizer rewrite — the mechanism behind several of the paper's
     * catalogued regressions (Listings 7, 8a, 9e). */
    Freeze,
    Call,
    Phi,
    // Terminators:
    Ret,
    Br,
    CondBr,
    Switch,
    Unreachable,
};

enum class BinOp : uint8_t {
    Add, Sub, Mul, Div, Rem, Shl, Shr, And, Or, Xor,
};

/** Comparison predicates. Signedness is explicit (operands may be
 * either); result is i32 0/1. */
enum class CmpPred : uint8_t {
    Eq, Ne, Slt, Sle, Sgt, Sge, Ult, Ule, Ugt, Uge,
};

enum class CastOp : uint8_t {
    Trunc, ///< to a narrower integer
    Sext,  ///< sign-extend to a wider integer
    Zext,  ///< zero-extend to a wider integer
    /** Same width, signedness reinterpretation only. */
    Bitcast,
};

const char *opcodeName(Opcode op);
const char *binOpName(BinOp op);
const char *cmpPredName(CmpPred pred);
const char *castOpName(CastOp op);

/** True if the predicate's semantics depend on operand sign. */
bool cmpPredIsSigned(CmpPred pred);
/** Swap operand order: Slt -> Sgt etc. */
CmpPred cmpPredSwapped(CmpPred pred);
/** Logical negation: Eq -> Ne, Slt -> Sge etc. */
CmpPred cmpPredInverse(CmpPred pred);

/**
 * A single IR instruction. One concrete class for all opcodes with a
 * small set of per-opcode extras; passes dispatch on opcode().
 */
class Instr : public Value {
  public:
    Instr(Opcode op, IrType type) : Value(ValueKind::Instruction, type),
                                    opcode_(op)
    {
    }
    ~Instr() override;

    Opcode opcode() const { return opcode_; }
    BasicBlock *parent() const { return parent_; }

    size_t numOperands() const { return operands_.size(); }
    Value *operand(size_t index) const { return operands_[index]; }
    void setOperand(size_t index, Value *value);
    void addOperand(Value *value);
    void removeOperand(size_t index);
    const std::vector<Value *> &operands() const { return operands_; }

    /** Detach this instruction from all of its operands' use lists. */
    void dropOperands();

    bool
    isTerminator() const
    {
        switch (opcode_) {
          case Opcode::Ret:
          case Opcode::Br:
          case Opcode::CondBr:
          case Opcode::Switch:
          case Opcode::Unreachable:
            return true;
          default:
            return false;
        }
    }

    /** True if removing the instruction (when unused) changes program
     * behaviour: stores, calls, terminators. */
    bool hasSideEffects() const;

    // --- CFG edges (terminators) and phi incoming blocks ------------
    const std::vector<BasicBlock *> &blockOperands() const
    {
        return blockOperands_;
    }
    std::vector<BasicBlock *> &blockOperands() { return blockOperands_; }
    BasicBlock *blockOperand(size_t index) const
    {
        return blockOperands_[index];
    }
    void setBlockOperand(size_t index, BasicBlock *block)
    {
        blockOperands_[index] = block;
    }
    void addBlockOperand(BasicBlock *block)
    {
        blockOperands_.push_back(block);
    }
    /** Replace every successor edge @p from with @p to. */
    void replaceSuccessor(BasicBlock *from, BasicBlock *to);

    // --- Per-opcode extras -------------------------------------------
    BinOp binOp = BinOp::Add;          ///< Bin
    CmpPred cmpPred = CmpPred::Eq;     ///< Cmp
    CastOp castOp = CastOp::Trunc;     ///< Cast
    Function *callee = nullptr;        ///< Call
    IrType allocatedType;              ///< Alloca element type
    uint64_t allocatedCount = 1;       ///< Alloca element count
    bool allocaIsArray = false;        ///< Alloca models a source array
    uint64_t gepElemSize = 1;          ///< Gep element size in bytes
    std::vector<int64_t> caseValues;   ///< Switch case constants

    // --- Phi helpers --------------------------------------------------
    /** @pre opcode() == Phi. Incoming pairs are (operand(i),
     * blockOperand(i)). */
    void addIncoming(Value *value, BasicBlock *pred);
    void removeIncoming(size_t index);
    /** Value flowing in from @p pred, or null if absent. */
    Value *incomingValueFor(const BasicBlock *pred) const;

  private:
    friend class BasicBlock;
    Opcode opcode_;
    BasicBlock *parent_ = nullptr;
    std::vector<Value *> operands_;
    std::vector<BasicBlock *> blockOperands_;
};

//===------------------------------------------------------------------===//
// BasicBlock
//===------------------------------------------------------------------===//

/** A straight-line instruction sequence ending in one terminator. */
class BasicBlock {
  public:
    explicit BasicBlock(std::string name) : name_(std::move(name)) {}
    BasicBlock(const BasicBlock &) = delete;
    BasicBlock &operator=(const BasicBlock &) = delete;

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    Function *parent() const { return parent_; }

    const std::vector<std::unique_ptr<Instr>> &instrs() const
    {
        return instrs_;
    }
    bool empty() const { return instrs_.empty(); }
    size_t size() const { return instrs_.size(); }
    Instr *front() const { return instrs_.front().get(); }

    /** The terminator, or null while the block is under construction. */
    Instr *
    terminator() const
    {
        if (instrs_.empty() || !instrs_.back()->isTerminator())
            return nullptr;
        return instrs_.back().get();
    }

    /** Successor blocks (empty for Ret/Unreachable). */
    std::vector<BasicBlock *>
    successors() const
    {
        Instr *term = terminator();
        return term ? term->blockOperands()
                    : std::vector<BasicBlock *>{};
    }

    Instr *append(std::unique_ptr<Instr> instr);
    Instr *insertBefore(size_t index, std::unique_ptr<Instr> instr);
    /** Position of @p instr in this block. */
    size_t indexOf(const Instr *instr) const;

    /** Remove and destroy @p instr. Drops its operand uses.
     * @pre instr has no users. */
    void erase(Instr *instr);
    /** Detach @p instr without destroying it (for moves). Operand uses
     * are kept. */
    std::unique_ptr<Instr> detach(Instr *instr);
    /** Re-attach a detached instruction at the end. */
    Instr *reattach(std::unique_ptr<Instr> instr)
    {
        return append(std::move(instr));
    }

    /** All phis sit at the top of a block. */
    std::vector<Instr *> phis() const;
    /** Update phi bookkeeping when predecessor @p from becomes @p to. */
    void replacePhiIncomingBlock(BasicBlock *from, BasicBlock *to);
    /** Remove incoming entries for a predecessor that no longer
     * branches here. */
    void removePhiIncomingFor(BasicBlock *pred);

  private:
    friend class Function;
    std::string name_;
    Function *parent_ = nullptr;
    std::vector<std::unique_ptr<Instr>> instrs_;
};

//===------------------------------------------------------------------===//
// Function
//===------------------------------------------------------------------===//

class Function {
  public:
    Function(std::string name, IrType return_type, bool internal)
        : name_(std::move(name)), returnType_(return_type),
          internal_(internal)
    {
    }
    Function(const Function &) = delete;
    Function &operator=(const Function &) = delete;

    const std::string &name() const { return name_; }
    IrType returnType() const { return returnType_; }
    bool isInternal() const { return internal_; }
    Module *parent() const { return parent_; }

    /** Declarations have no blocks; they are opaque to every analysis
     * and optimization — optimization markers are exactly this. */
    bool isDeclaration() const { return blocks_.empty(); }

    /** When set, global DCE must keep this function even if it has no
     * callers. The inliner sets it under the `keepInlinedHusks`
     * regression knob, modelling GCC's uncleaned IPA-SRA clones
     * (Listing 9b / PR100034). */
    bool noDce() const { return noDce_; }
    void setNoDce(bool keep) { noDce_ = keep; }

    Param *addParam(IrType type, std::string name);
    const std::vector<std::unique_ptr<Param>> &params() const
    {
        return params_;
    }

    BasicBlock *entry() const { return blocks_.front().get(); }
    const std::vector<std::unique_ptr<BasicBlock>> &blocks() const
    {
        return blocks_;
    }
    size_t numBlocks() const { return blocks_.size(); }

    BasicBlock *addBlock(std::string name);
    /** Insert an existing (detached) block; used by the inliner. */
    BasicBlock *adoptBlock(std::unique_ptr<BasicBlock> block);
    /**
     * Remove and destroy @p block: drops all its instructions' operand
     * uses first, so mutually-referencing dead blocks can be erased in
     * any order. @pre no live instruction outside @p block uses its
     * instructions, and no terminator outside branches to it.
     */
    void eraseBlock(BasicBlock *block);
    /** Move @p block to position @p index (printer/codegen ordering). */
    void moveBlockTo(size_t index, BasicBlock *block);
    size_t indexOfBlock(const BasicBlock *block) const;

  private:
    friend class Module;
    std::string name_;
    IrType returnType_;
    bool internal_;
    bool noDce_ = false;
    Module *parent_ = nullptr;
    std::vector<std::unique_ptr<Param>> params_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    unsigned nextBlockId_ = 0;
};

//===------------------------------------------------------------------===//
// Module
//===------------------------------------------------------------------===//

class Module {
  public:
    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    GlobalVar *addGlobal(std::string name, IrType element_type,
                         uint64_t count, bool internal);
    Function *addFunction(std::string name, IrType return_type,
                          bool internal);

    GlobalVar *getGlobal(const std::string &name) const;
    Function *getFunction(const std::string &name) const;

    /** Remove an unreferenced function (no remaining call sites).
     * Used by global DCE. */
    void eraseFunction(Function *fn);
    /** Remove an unreferenced global (no users, no initializer refs). */
    void eraseGlobal(GlobalVar *global);

    const std::vector<std::unique_ptr<GlobalVar>> &globals() const
    {
        return globals_;
    }
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }

    /** Interned integer constant of the given type. */
    Constant *constant(IrType type, int64_t value);
    Constant *i32Const(int64_t value)
    {
        return constant(IrType::i32(), value);
    }

    /** Fresh printer id. */
    unsigned nextValueId() { return nextValueId_++; }

  private:
    std::vector<std::unique_ptr<GlobalVar>> globals_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::vector<std::unique_ptr<Constant>> constants_;
    unsigned nextValueId_ = 1;
};

} // namespace dce::ir
