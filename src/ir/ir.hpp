/**
 * @file
 * Core IR data structures: Value, Constant, GlobalVar, Param, Instr,
 * BasicBlock, Function, Module.
 *
 * The IR is an SSA, explicit-CFG, load/store IR in the LLVM tradition:
 *  - Scalars promoted to SSA registers carry values between Instrs.
 *  - Globals, arrays, and address-taken locals live in memory objects
 *    accessed by Load/Store through opaque pointers; Gep does *element*
 *    addressing (base pointer + element index).
 *  - Every BasicBlock ends in exactly one terminator (Ret / Br /
 *    CondBr / Switch / Unreachable).
 *  - Def-use chains are maintained: every Value knows its users, so
 *    passes can replaceAllUsesWith in O(uses).
 *
 * Ownership: Module owns GlobalVars, Functions and the constant pool;
 * Function owns Params and BasicBlocks; BasicBlock owns Instrs.
 * Instructions and blocks are allocated from the Module's bump arena
 * (ir/arena.hpp): creation goes through Module::newInstr /
 * Function::addBlock, the owning handles are ArenaPtrs whose deleter
 * runs only the destructor, and the memory is reclaimed wholesale when
 * the Module dies. Mid-life deletion must go through
 * BasicBlock::erase / Function::eraseBlock so def-use bookkeeping stays
 * consistent; destruction of a whole Module performs no bookkeeping.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/arena.hpp"
#include "ir/type.hpp"
#include "support/small_vector.hpp"

namespace dce::ir {

class Instr;
class BasicBlock;
class Function;
class Module;
class GlobalVar;

/** Owning handle to an arena-backed instruction. */
using InstrPtr = ArenaPtr<Instr>;
/** Owning handle to an arena-backed basic block. */
using BlockPtr = ArenaPtr<BasicBlock>;

//===------------------------------------------------------------------===//
// Value
//===------------------------------------------------------------------===//

enum class ValueKind : uint8_t {
    Constant,
    Global,
    Param,
    Instruction,
};

/** Anything an instruction operand can reference. */
class Value {
  public:
    virtual ~Value() = default;
    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;

    ValueKind valueKind() const { return valueKind_; }
    IrType type() const { return type_; }
    void setType(IrType type) { type_ = type; }

    bool isConstant() const { return valueKind_ == ValueKind::Constant; }
    bool isInstruction() const
    {
        return valueKind_ == ValueKind::Instruction;
    }

    /** Users (instructions whose operand lists mention this value).
     * May contain duplicates when one instruction uses a value twice.
     * Constants track no users: they are interned module-wide (one
     * node for every use of `0`), so a use-list would grow with the
     * whole module and make each operand drop a linear scan of it —
     * and nothing ever needs it (constants are never replaced or
     * erased while the module lives). */
    const support::SmallVector<Instr *, 4> &users() const { return users_; }
    bool hasUsers() const { return !users_.empty(); }

    /** Rewrite every use of this value to @p replacement. */
    void replaceAllUsesWith(Value *replacement);

    /** Printer handle, unique within a module ("%5", "@g", ...). */
    unsigned id() const { return id_; }
    void setId(unsigned id) { id_ = id; }

  protected:
    Value(ValueKind kind, IrType type) : valueKind_(kind), type_(type) {}

  private:
    friend class Instr;
    void
    addUser(Instr *user)
    {
        if (valueKind_ != ValueKind::Constant)
            users_.push_back(user);
    }
    void removeUser(Instr *user);

    ValueKind valueKind_;
    IrType type_;
    unsigned id_ = 0;
    support::SmallVector<Instr *, 4> users_;
};

/** An integer constant, interned per (type, value) in the Module. */
class Constant : public Value {
  public:
    Constant(IrType type, int64_t value)
        : Value(ValueKind::Constant, type), value_(value)
    {
    }

    /** Canonical value (wrapped/extended per type, see support/ints). */
    int64_t value() const { return value_; }
    bool isZero() const { return value_ == 0; }

  private:
    int64_t value_;
};

/** One element of a global initializer: either an integer or the
 * address of (an element of) another global. */
struct GlobalInit {
    const GlobalVar *base = nullptr; ///< non-null => address constant
    int64_t value = 0;               ///< int value, or element offset

    static GlobalInit
    intValue(int64_t value)
    {
        return {nullptr, value};
    }
    static GlobalInit
    addressOf(const GlobalVar *base, int64_t element)
    {
        return {base, element};
    }
    bool isAddress() const { return base != nullptr; }
};

/** A global memory object: scalar or one-dimensional array. The Value
 * itself has pointer type (the object's address). */
class GlobalVar : public Value {
  public:
    GlobalVar(std::string name, IrType element_type, uint64_t count,
              bool internal)
        : Value(ValueKind::Global, IrType::ptrTy()), name_(std::move(name)),
          elementType_(element_type), count_(count), internal_(internal)
    {
    }

    const std::string &name() const { return name_; }
    /** Type of each element slot (an Int type or Ptr). */
    IrType elementType() const { return elementType_; }
    /** Number of element slots (1 for scalars). */
    uint64_t count() const { return count_; }
    bool isArray() const { return isArray_; }
    void setIsArray(bool is_array) { isArray_ = is_array; }
    /** Internal linkage (C "static"): no access outside this module. */
    bool isInternal() const { return internal_; }

    /** Initializers, one per slot; missing entries are zero. */
    std::vector<GlobalInit> init;

  private:
    std::string name_;
    IrType elementType_;
    uint64_t count_;
    bool internal_;
    bool isArray_ = false;
};

/** A formal parameter of a Function; an SSA value from entry. */
class Param : public Value {
  public:
    Param(IrType type, unsigned index, std::string name)
        : Value(ValueKind::Param, type), index_(index),
          name_(std::move(name))
    {
    }

    unsigned index() const { return index_; }
    const std::string &name() const { return name_; }

  private:
    unsigned index_;
    std::string name_;
};

//===------------------------------------------------------------------===//
// Instructions
//===------------------------------------------------------------------===//

enum class Opcode : uint8_t {
    Alloca,
    Load,
    Store,
    Bin,
    Cmp,
    Cast,
    Gep,
    Select,
    /** Value laundering barrier (LLVM's freeze): semantically the
     * identity on its operand, but most folds refuse to look through
     * it. Inserted by aggressive loop unswitching and the loop
     * vectorizer rewrite — the mechanism behind several of the paper's
     * catalogued regressions (Listings 7, 8a, 9e). */
    Freeze,
    Call,
    Phi,
    // Terminators:
    Ret,
    Br,
    CondBr,
    Switch,
    Unreachable,
};

enum class BinOp : uint8_t {
    Add, Sub, Mul, Div, Rem, Shl, Shr, And, Or, Xor,
};

/** Comparison predicates. Signedness is explicit (operands may be
 * either); result is i32 0/1. */
enum class CmpPred : uint8_t {
    Eq, Ne, Slt, Sle, Sgt, Sge, Ult, Ule, Ugt, Uge,
};

enum class CastOp : uint8_t {
    Trunc, ///< to a narrower integer
    Sext,  ///< sign-extend to a wider integer
    Zext,  ///< zero-extend to a wider integer
    /** Same width, signedness reinterpretation only. */
    Bitcast,
};

const char *opcodeName(Opcode op);
const char *binOpName(BinOp op);
const char *cmpPredName(CmpPred pred);
const char *castOpName(CastOp op);

/** True if the predicate's semantics depend on operand sign. */
bool cmpPredIsSigned(CmpPred pred);
/** Swap operand order: Slt -> Sgt etc. */
CmpPred cmpPredSwapped(CmpPred pred);
/** Logical negation: Eq -> Ne, Slt -> Sge etc. */
CmpPred cmpPredInverse(CmpPred pred);

/**
 * A single IR instruction. One concrete class for all opcodes with a
 * small set of per-opcode extras; passes dispatch on opcode().
 * Create through Module::newInstr (arena-backed).
 */
class Instr : public Value {
  public:
    Instr(Opcode op, IrType type) : Value(ValueKind::Instruction, type),
                                    opcode_(op)
    {
    }
    ~Instr() override;

    Opcode opcode() const { return opcode_; }
    BasicBlock *parent() const { return parent_; }

    size_t numOperands() const { return operands_.size(); }
    Value *operand(size_t index) const { return operands_[index]; }
    void setOperand(size_t index, Value *value);
    void addOperand(Value *value);
    void removeOperand(size_t index);
    const support::SmallVector<Value *, 4> &operands() const
    {
        return operands_;
    }

    /** Detach this instruction from all of its operands' use lists. */
    void dropOperands();

    bool
    isTerminator() const
    {
        switch (opcode_) {
          case Opcode::Ret:
          case Opcode::Br:
          case Opcode::CondBr:
          case Opcode::Switch:
          case Opcode::Unreachable:
            return true;
          default:
            return false;
        }
    }

    /** True if removing the instruction (when unused) changes program
     * behaviour: stores, calls, terminators. */
    bool hasSideEffects() const;

    // --- CFG edges (terminators) and phi incoming blocks ------------
    const support::SmallVector<BasicBlock *, 2> &blockOperands() const
    {
        return blockOperands_;
    }
    support::SmallVector<BasicBlock *, 2> &blockOperands()
    {
        return blockOperands_;
    }
    BasicBlock *blockOperand(size_t index) const
    {
        return blockOperands_[index];
    }
    void setBlockOperand(size_t index, BasicBlock *block)
    {
        blockOperands_[index] = block;
    }
    void addBlockOperand(BasicBlock *block)
    {
        blockOperands_.push_back(block);
    }
    /** Replace every successor edge @p from with @p to. */
    void replaceSuccessor(BasicBlock *from, BasicBlock *to);

    // --- Per-opcode extras -------------------------------------------
    BinOp binOp = BinOp::Add;          ///< Bin
    CmpPred cmpPred = CmpPred::Eq;     ///< Cmp
    CastOp castOp = CastOp::Trunc;     ///< Cast
    Function *callee = nullptr;        ///< Call
    IrType allocatedType;              ///< Alloca element type
    uint64_t allocatedCount = 1;       ///< Alloca element count
    bool allocaIsArray = false;        ///< Alloca models a source array
    uint64_t gepElemSize = 1;          ///< Gep element size in bytes
    std::vector<int64_t> caseValues;   ///< Switch case constants

    // --- Phi helpers --------------------------------------------------
    /** @pre opcode() == Phi. Incoming pairs are (operand(i),
     * blockOperand(i)). */
    void addIncoming(Value *value, BasicBlock *pred);
    void removeIncoming(size_t index);
    /** Value flowing in from @p pred, or null if absent. */
    Value *incomingValueFor(const BasicBlock *pred) const;

  private:
    friend class BasicBlock;
    Opcode opcode_;
    BasicBlock *parent_ = nullptr;
    support::SmallVector<Value *, 4> operands_;
    support::SmallVector<BasicBlock *, 2> blockOperands_;
};

//===------------------------------------------------------------------===//
// BasicBlock
//===------------------------------------------------------------------===//

/** A straight-line instruction sequence ending in one terminator.
 * Create through Function::addBlock (arena-backed). */
class BasicBlock {
  public:
    explicit BasicBlock(std::string name) : name_(std::move(name)) {}
    BasicBlock(const BasicBlock &) = delete;
    BasicBlock &operator=(const BasicBlock &) = delete;

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    Function *parent() const { return parent_; }

    /** Position in the parent function's block list, kept current by
     * every Function block mutation. CFG analyses use it to key flat
     * per-block arrays instead of hash maps. */
    uint32_t indexInFn() const { return indexInFn_; }

    const std::vector<InstrPtr> &instrs() const { return instrs_; }
    bool empty() const { return instrs_.empty(); }
    size_t size() const { return instrs_.size(); }
    Instr *front() const { return instrs_.front().get(); }

    /** The terminator, or null while the block is under construction. */
    Instr *
    terminator() const
    {
        if (instrs_.empty() || !instrs_.back()->isTerminator())
            return nullptr;
        return instrs_.back().get();
    }

    /** Successor blocks (empty for Ret/Unreachable). A view of the
     * terminator's block operands — invalidated by terminator edits. */
    const support::SmallVector<BasicBlock *, 2> &
    successors() const
    {
        static const support::SmallVector<BasicBlock *, 2> kNone{};
        Instr *term = terminator();
        if (!term)
            return kNone;
        return term->blockOperands();
    }

    Instr *append(InstrPtr instr);
    Instr *insertBefore(size_t index, InstrPtr instr);
    /** Position of @p instr in this block. */
    size_t indexOf(const Instr *instr) const;

    /** Remove and destroy @p instr. Drops its operand uses.
     * @pre instr has no users. */
    void erase(Instr *instr);
    /** Detach @p instr without destroying it (for moves). Operand uses
     * are kept. */
    InstrPtr detach(Instr *instr);
    /** Re-attach a detached instruction at the end. */
    Instr *reattach(InstrPtr instr)
    {
        return append(std::move(instr));
    }

    /** All phis sit at the top of a block. */
    std::vector<Instr *> phis() const;
    /** Update phi bookkeeping when predecessor @p from becomes @p to. */
    void replacePhiIncomingBlock(BasicBlock *from, BasicBlock *to);
    /** Remove incoming entries for a predecessor that no longer
     * branches here. */
    void removePhiIncomingFor(BasicBlock *pred);

  private:
    friend class Function;
    std::string name_;
    Function *parent_ = nullptr;
    uint32_t indexInFn_ = 0;
    std::vector<InstrPtr> instrs_;
};

//===------------------------------------------------------------------===//
// Function
//===------------------------------------------------------------------===//

class Function {
  public:
    Function(std::string name, IrType return_type, bool internal)
        : name_(std::move(name)), returnType_(return_type),
          internal_(internal)
    {
    }
    Function(const Function &) = delete;
    Function &operator=(const Function &) = delete;

    const std::string &name() const { return name_; }
    IrType returnType() const { return returnType_; }
    bool isInternal() const { return internal_; }
    Module *parent() const { return parent_; }

    /** Declarations have no blocks; they are opaque to every analysis
     * and optimization — optimization markers are exactly this. */
    bool isDeclaration() const { return blocks_.empty(); }

    /** When set, global DCE must keep this function even if it has no
     * callers. The inliner sets it under the `keepInlinedHusks`
     * regression knob, modelling GCC's uncleaned IPA-SRA clones
     * (Listing 9b / PR100034). */
    bool noDce() const { return noDce_; }
    void setNoDce(bool keep) { noDce_ = keep; }

    Param *addParam(IrType type, std::string name);
    const std::vector<std::unique_ptr<Param>> &params() const
    {
        return params_;
    }

    BasicBlock *entry() const { return blocks_.front().get(); }
    const std::vector<BlockPtr> &blocks() const { return blocks_; }
    size_t numBlocks() const { return blocks_.size(); }

    /** Append a fresh arena-backed block. @pre the function belongs to
     * a Module (its arena provides the storage). */
    BasicBlock *addBlock(std::string name);
    /** Insert an existing (detached) block; used by the inliner.
     * @pre the block came from this function's module's arena. */
    BasicBlock *adoptBlock(BlockPtr block);
    /** Detach @p block without destroying it (intra-module moves). */
    BlockPtr detachBlock(BasicBlock *block);
    /**
     * Remove and destroy @p block: drops all its instructions' operand
     * uses first, so mutually-referencing dead blocks can be erased in
     * any order. @pre no live instruction outside @p block uses its
     * instructions, and no terminator outside branches to it.
     */
    void eraseBlock(BasicBlock *block);
    /** Move @p block to position @p index (printer/codegen ordering). */
    void moveBlockTo(size_t index, BasicBlock *block);
    size_t indexOfBlock(const BasicBlock *block) const;

  private:
    friend class Module;
    /** Restore indexInFn() for every block at or after @p start. */
    void renumberBlocksFrom(size_t start);

    std::string name_;
    IrType returnType_;
    bool internal_;
    bool noDce_ = false;
    Module *parent_ = nullptr;
    std::vector<std::unique_ptr<Param>> params_;
    std::vector<BlockPtr> blocks_;
    unsigned nextBlockId_ = 0;
};

//===------------------------------------------------------------------===//
// Module
//===------------------------------------------------------------------===//

class Module {
  public:
    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** The bump arena backing this module's instructions and blocks.
     * Single-threaded, like the module itself. */
    Arena &arena() { return arena_; }

    /** Allocate a fresh instruction from the module arena. Per-opcode
     * extras (binOp, callee, ...) are set by the caller afterwards,
     * exactly as with the old heap allocation. */
    InstrPtr
    newInstr(Opcode op, IrType type)
    {
        return InstrPtr(arena_.create<Instr>(op, type));
    }

    GlobalVar *addGlobal(std::string name, IrType element_type,
                         uint64_t count, bool internal);
    Function *addFunction(std::string name, IrType return_type,
                          bool internal);

    GlobalVar *getGlobal(const std::string &name) const;
    Function *getFunction(const std::string &name) const;

    /** Remove an unreferenced function (no remaining call sites).
     * Used by global DCE. */
    void eraseFunction(Function *fn);
    /** Remove an unreferenced global (no users, no initializer refs). */
    void eraseGlobal(GlobalVar *global);

    const std::vector<std::unique_ptr<GlobalVar>> &globals() const
    {
        return globals_;
    }
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }

    /** Interned integer constant of the given type (hash lookup). */
    Constant *constant(IrType type, int64_t value);
    Constant *i32Const(int64_t value)
    {
        return constant(IrType::i32(), value);
    }

    /** Fresh printer id. */
    unsigned nextValueId() { return nextValueId_++; }

    /** One past the largest value id handed out so far — the size a
     * flat id-indexed side table needs. */
    unsigned valueIdBound() const { return nextValueId_; }

  private:
    /** Interning key for the constant pool. */
    struct ConstantKey {
        uint32_t type; ///< packed {kind, bits, isSigned}
        int64_t value;
        bool operator==(const ConstantKey &o) const
        {
            return type == o.type && value == o.value;
        }
    };
    struct ConstantKeyHash {
        size_t
        operator()(const ConstantKey &k) const
        {
            uint64_t h = static_cast<uint64_t>(k.value) * 0x9E3779B97F4A7C15ULL;
            return static_cast<size_t>(h ^ (h >> 32) ^ k.type);
        }
    };

    // Declared first so it is destroyed last: every arena-backed node's
    // destructor (reached through functions_) must run before the
    // backing memory is released.
    Arena arena_;
    std::vector<std::unique_ptr<GlobalVar>> globals_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::vector<std::unique_ptr<Constant>> constants_;
    std::unordered_map<ConstantKey, Constant *, ConstantKeyHash>
        constantIndex_;
    unsigned nextValueId_ = 1;
};

} // namespace dce::ir
