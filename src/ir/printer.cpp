#include "ir/printer.hpp"

namespace dce::ir {

std::string
printValueRef(const Value *value)
{
    if (!value)
        return "<null>";
    switch (value->valueKind()) {
      case ValueKind::Constant: {
        const auto *c = static_cast<const Constant *>(value);
        if (c->type().isPtr())
            return "null";
        return std::to_string(c->value()) + ":" + c->type().str();
      }
      case ValueKind::Global:
        return "@" + static_cast<const GlobalVar *>(value)->name();
      case ValueKind::Param:
        return "%" + static_cast<const Param *>(value)->name();
      case ValueKind::Instruction:
        return "%" + std::to_string(value->id());
    }
    return "?";
}

std::string
printInstr(const Instr &instr)
{
    std::string out;
    if (!instr.type().isVoid())
        out += "%" + std::to_string(instr.id()) + " = ";

    switch (instr.opcode()) {
      case Opcode::Alloca:
        out += "alloca " + instr.allocatedType.str();
        if (instr.allocatedCount != 1)
            out += " x " + std::to_string(instr.allocatedCount);
        break;
      case Opcode::Load:
        out += "load " + instr.type().str() + ", " +
               printValueRef(instr.operand(0));
        break;
      case Opcode::Store:
        out += "store " + printValueRef(instr.operand(0)) + ", " +
               printValueRef(instr.operand(1));
        break;
      case Opcode::Bin:
        out += std::string(binOpName(instr.binOp)) + " " +
               instr.type().str() + " " + printValueRef(instr.operand(0)) +
               ", " + printValueRef(instr.operand(1));
        break;
      case Opcode::Cmp:
        out += std::string("cmp ") + cmpPredName(instr.cmpPred) + " " +
               printValueRef(instr.operand(0)) + ", " +
               printValueRef(instr.operand(1));
        break;
      case Opcode::Cast:
        out += std::string(castOpName(instr.castOp)) + " " +
               printValueRef(instr.operand(0)) + " to " +
               instr.type().str();
        break;
      case Opcode::Gep:
        out += "gep " + printValueRef(instr.operand(0)) + ", " +
               printValueRef(instr.operand(1)) + " (x" +
               std::to_string(instr.gepElemSize) + ")";
        break;
      case Opcode::Select:
        out += "select " + printValueRef(instr.operand(0)) + ", " +
               printValueRef(instr.operand(1)) + ", " +
               printValueRef(instr.operand(2));
        break;
      case Opcode::Freeze:
        out += "freeze " + printValueRef(instr.operand(0));
        break;
      case Opcode::Call: {
        out += "call " + instr.type().str() + " @" +
               (instr.callee ? instr.callee->name() : "<null>") + "(";
        for (size_t i = 0; i < instr.numOperands(); ++i) {
            if (i > 0)
                out += ", ";
            out += printValueRef(instr.operand(i));
        }
        out += ")";
        break;
      }
      case Opcode::Phi: {
        out += "phi " + instr.type().str() + " ";
        for (size_t i = 0; i < instr.numOperands(); ++i) {
            if (i > 0)
                out += ", ";
            out += "[" + printValueRef(instr.operand(i)) + ", " +
                   instr.blockOperands()[i]->name() + "]";
        }
        break;
      }
      case Opcode::Ret:
        out += "ret";
        if (instr.numOperands() == 1)
            out += " " + printValueRef(instr.operand(0));
        break;
      case Opcode::Br:
        out += "br " + instr.blockOperands()[0]->name();
        break;
      case Opcode::CondBr:
        out += "condbr " + printValueRef(instr.operand(0)) + ", " +
               instr.blockOperands()[0]->name() + ", " +
               instr.blockOperands()[1]->name();
        break;
      case Opcode::Switch: {
        out += "switch " + printValueRef(instr.operand(0)) +
               ", default " + instr.blockOperands()[0]->name();
        for (size_t i = 0; i < instr.caseValues.size(); ++i) {
            out += ", [" + std::to_string(instr.caseValues[i]) + " -> " +
                   instr.blockOperands()[i + 1]->name() + "]";
        }
        break;
      }
      case Opcode::Unreachable:
        out += "unreachable";
        break;
    }
    return out;
}

std::string
printFunction(const Function &fn)
{
    std::string out;
    out += fn.isInternal() ? "internal " : "";
    out += "func " + fn.returnType().str() + " @" + fn.name() + "(";
    for (size_t i = 0; i < fn.params().size(); ++i) {
        if (i > 0)
            out += ", ";
        out += fn.params()[i]->type().str() + " %" +
               fn.params()[i]->name();
    }
    out += ")";
    if (fn.isDeclaration()) {
        out += ";\n";
        return out;
    }
    out += " {\n";
    for (const auto &block : fn.blocks()) {
        out += block->name() + ":\n";
        for (const auto &instr : block->instrs()) {
            out += "  " + printInstr(*instr) + "\n";
        }
    }
    out += "}\n";
    return out;
}

std::string
printModule(const Module &module)
{
    std::string out;
    for (const auto &global : module.globals()) {
        out += global->isInternal() ? "internal " : "";
        out += "global @" + global->name() + " : " +
               global->elementType().str();
        if (global->isArray())
            out += " x " + std::to_string(global->count());
        if (!global->init.empty()) {
            out += " = {";
            for (size_t i = 0; i < global->init.size(); ++i) {
                if (i > 0)
                    out += ", ";
                const GlobalInit &init = global->init[i];
                if (init.isAddress()) {
                    out += "&" + init.base->name() + "[" +
                           std::to_string(init.value) + "]";
                } else {
                    out += std::to_string(init.value);
                }
            }
            out += "}";
        }
        out += "\n";
    }
    for (const auto &fn : module.functions())
        out += printFunction(*fn);
    return out;
}

} // namespace dce::ir
