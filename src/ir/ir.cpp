#include "ir/ir.hpp"

#include <algorithm>

#include "support/ints.hpp"

namespace dce::ir {

//===------------------------------------------------------------------===//
// Opcode / operator names
//===------------------------------------------------------------------===//

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Alloca: return "alloca";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Bin: return "bin";
      case Opcode::Cmp: return "cmp";
      case Opcode::Cast: return "cast";
      case Opcode::Gep: return "gep";
      case Opcode::Select: return "select";
      case Opcode::Freeze: return "freeze";
      case Opcode::Call: return "call";
      case Opcode::Phi: return "phi";
      case Opcode::Ret: return "ret";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Switch: return "switch";
      case Opcode::Unreachable: return "unreachable";
    }
    return "?";
}

const char *
binOpName(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "add";
      case BinOp::Sub: return "sub";
      case BinOp::Mul: return "mul";
      case BinOp::Div: return "div";
      case BinOp::Rem: return "rem";
      case BinOp::Shl: return "shl";
      case BinOp::Shr: return "shr";
      case BinOp::And: return "and";
      case BinOp::Or: return "or";
      case BinOp::Xor: return "xor";
    }
    return "?";
}

const char *
cmpPredName(CmpPred pred)
{
    switch (pred) {
      case CmpPred::Eq: return "eq";
      case CmpPred::Ne: return "ne";
      case CmpPred::Slt: return "slt";
      case CmpPred::Sle: return "sle";
      case CmpPred::Sgt: return "sgt";
      case CmpPred::Sge: return "sge";
      case CmpPred::Ult: return "ult";
      case CmpPred::Ule: return "ule";
      case CmpPred::Ugt: return "ugt";
      case CmpPred::Uge: return "uge";
    }
    return "?";
}

const char *
castOpName(CastOp op)
{
    switch (op) {
      case CastOp::Trunc: return "trunc";
      case CastOp::Sext: return "sext";
      case CastOp::Zext: return "zext";
      case CastOp::Bitcast: return "bitcast";
    }
    return "?";
}

bool
cmpPredIsSigned(CmpPred pred)
{
    switch (pred) {
      case CmpPred::Slt:
      case CmpPred::Sle:
      case CmpPred::Sgt:
      case CmpPred::Sge:
        return true;
      default:
        return false;
    }
}

CmpPred
cmpPredSwapped(CmpPred pred)
{
    switch (pred) {
      case CmpPred::Eq: return CmpPred::Eq;
      case CmpPred::Ne: return CmpPred::Ne;
      case CmpPred::Slt: return CmpPred::Sgt;
      case CmpPred::Sle: return CmpPred::Sge;
      case CmpPred::Sgt: return CmpPred::Slt;
      case CmpPred::Sge: return CmpPred::Sle;
      case CmpPred::Ult: return CmpPred::Ugt;
      case CmpPred::Ule: return CmpPred::Uge;
      case CmpPred::Ugt: return CmpPred::Ult;
      case CmpPred::Uge: return CmpPred::Ule;
    }
    return pred;
}

CmpPred
cmpPredInverse(CmpPred pred)
{
    switch (pred) {
      case CmpPred::Eq: return CmpPred::Ne;
      case CmpPred::Ne: return CmpPred::Eq;
      case CmpPred::Slt: return CmpPred::Sge;
      case CmpPred::Sle: return CmpPred::Sgt;
      case CmpPred::Sgt: return CmpPred::Sle;
      case CmpPred::Sge: return CmpPred::Slt;
      case CmpPred::Ult: return CmpPred::Uge;
      case CmpPred::Ule: return CmpPred::Ugt;
      case CmpPred::Ugt: return CmpPred::Ule;
      case CmpPred::Uge: return CmpPred::Ult;
    }
    return pred;
}

//===------------------------------------------------------------------===//
// Value
//===------------------------------------------------------------------===//

void
Value::removeUser(Instr *user)
{
    if (valueKind_ == ValueKind::Constant)
        return; // constants track no users; see users()
    auto it = std::find(users_.begin(), users_.end(), user);
#ifndef NDEBUG
    if (it == users_.end()) {
        fprintf(stderr, "removeUser: value id=%u kind=%d; user opcode=%d id=%u\n",
                id_, (int)valueKind_, (int)user->opcode(), user->id());
    }
#endif
    assert(it != users_.end() && "removing a non-existent user");
    users_.erase(it);
}

void
Value::replaceAllUsesWith(Value *replacement)
{
    assert(replacement != this && "self-replacement");
    // Users mutate as we rewrite, so drain from the back.
    while (!users_.empty()) {
        Instr *user = users_.back();
        for (size_t i = 0; i < user->numOperands(); ++i) {
            if (user->operand(i) == this) {
                user->setOperand(i, replacement);
                break; // one use removed; re-check users_
            }
        }
    }
}

//===------------------------------------------------------------------===//
// Instr
//===------------------------------------------------------------------===//

Instr::~Instr()
{
    // No bookkeeping: whole-module teardown destroys values in
    // arbitrary order. Mid-life deletion goes through
    // BasicBlock::erase which calls dropOperands() first.
}

void
Instr::setOperand(size_t index, Value *value)
{
    assert(index < operands_.size());
    if (operands_[index])
        operands_[index]->removeUser(this);
    operands_[index] = value;
    if (value)
        value->addUser(this);
}

void
Instr::addOperand(Value *value)
{
    operands_.push_back(value);
    if (value)
        value->addUser(this);
}

void
Instr::removeOperand(size_t index)
{
    assert(index < operands_.size());
    if (operands_[index])
        operands_[index]->removeUser(this);
    operands_.erase(operands_.begin() + static_cast<ptrdiff_t>(index));
}

void
Instr::dropOperands()
{
    for (Value *operand : operands_) {
        if (operand)
            operand->removeUser(this);
    }
    operands_.clear();
    blockOperands_.clear();
}

bool
Instr::hasSideEffects() const
{
    switch (opcode_) {
      case Opcode::Store:
      case Opcode::Call:
        return true;
      default:
        return isTerminator();
    }
}

void
Instr::replaceSuccessor(BasicBlock *from, BasicBlock *to)
{
    assert(isTerminator());
    for (BasicBlock *&succ : blockOperands_) {
        if (succ == from)
            succ = to;
    }
}

void
Instr::addIncoming(Value *value, BasicBlock *pred)
{
    assert(opcode_ == Opcode::Phi);
    addOperand(value);
    blockOperands_.push_back(pred);
}

void
Instr::removeIncoming(size_t index)
{
    assert(opcode_ == Opcode::Phi);
    removeOperand(index);
    blockOperands_.erase(blockOperands_.begin() +
                         static_cast<ptrdiff_t>(index));
}

Value *
Instr::incomingValueFor(const BasicBlock *pred) const
{
    assert(opcode_ == Opcode::Phi);
    for (size_t i = 0; i < blockOperands_.size(); ++i) {
        if (blockOperands_[i] == pred)
            return operands_[i];
    }
    return nullptr;
}

//===------------------------------------------------------------------===//
// BasicBlock
//===------------------------------------------------------------------===//

Instr *
BasicBlock::append(InstrPtr instr)
{
    instr->parent_ = this;
    instrs_.push_back(std::move(instr));
    return instrs_.back().get();
}

Instr *
BasicBlock::insertBefore(size_t index, InstrPtr instr)
{
    assert(index <= instrs_.size());
    instr->parent_ = this;
    Instr *raw = instr.get();
    instrs_.insert(instrs_.begin() + static_cast<ptrdiff_t>(index),
                   std::move(instr));
    return raw;
}

size_t
BasicBlock::indexOf(const Instr *instr) const
{
    for (size_t i = 0; i < instrs_.size(); ++i) {
        if (instrs_[i].get() == instr)
            return i;
    }
    assert(false && "instruction not in block");
    return instrs_.size();
}

void
BasicBlock::erase(Instr *instr)
{
    assert(!instr->hasUsers() && "erasing an instruction with users");
    instr->dropOperands();
    size_t index = indexOf(instr);
    instrs_.erase(instrs_.begin() + static_cast<ptrdiff_t>(index));
}

InstrPtr
BasicBlock::detach(Instr *instr)
{
    size_t index = indexOf(instr);
    InstrPtr owned = std::move(instrs_[index]);
    instrs_.erase(instrs_.begin() + static_cast<ptrdiff_t>(index));
    owned->parent_ = nullptr;
    return owned;
}

std::vector<Instr *>
BasicBlock::phis() const
{
    std::vector<Instr *> result;
    for (const auto &instr : instrs_) {
        if (instr->opcode() != Opcode::Phi)
            break;
        result.push_back(instr.get());
    }
    return result;
}

void
BasicBlock::replacePhiIncomingBlock(BasicBlock *from, BasicBlock *to)
{
    for (Instr *phi : phis()) {
        for (BasicBlock *&incoming : phi->blockOperands()) {
            if (incoming == from)
                incoming = to;
        }
    }
}

void
BasicBlock::removePhiIncomingFor(BasicBlock *pred)
{
    for (Instr *phi : phis()) {
        for (size_t i = phi->blockOperands().size(); i-- > 0;) {
            if (phi->blockOperands()[i] == pred)
                phi->removeIncoming(i);
        }
    }
}

//===------------------------------------------------------------------===//
// Function
//===------------------------------------------------------------------===//

Param *
Function::addParam(IrType type, std::string name)
{
    params_.push_back(std::make_unique<Param>(
        type, static_cast<unsigned>(params_.size()), std::move(name)));
    return params_.back().get();
}

void
Function::renumberBlocksFrom(size_t start)
{
    for (size_t i = start; i < blocks_.size(); ++i)
        blocks_[i]->indexInFn_ = static_cast<uint32_t>(i);
}

BasicBlock *
Function::addBlock(std::string name)
{
    assert(parent_ && "addBlock requires a module-owned function");
    if (name.empty())
        name = "bb" + std::to_string(nextBlockId_);
    ++nextBlockId_;
    blocks_.push_back(
        BlockPtr(parent_->arena().create<BasicBlock>(std::move(name))));
    blocks_.back()->parent_ = this;
    blocks_.back()->indexInFn_ =
        static_cast<uint32_t>(blocks_.size() - 1);
    return blocks_.back().get();
}

BasicBlock *
Function::adoptBlock(BlockPtr block)
{
    block->parent_ = this;
    block->indexInFn_ = static_cast<uint32_t>(blocks_.size());
    blocks_.push_back(std::move(block));
    return blocks_.back().get();
}

BlockPtr
Function::detachBlock(BasicBlock *block)
{
    size_t index = indexOfBlock(block);
    BlockPtr owned = std::move(blocks_[index]);
    blocks_.erase(blocks_.begin() + static_cast<ptrdiff_t>(index));
    renumberBlocksFrom(index);
    owned->parent_ = nullptr;
    return owned;
}

void
Function::eraseBlock(BasicBlock *block)
{
    // Drop all operand references first so instructions in this block
    // may reference each other (or be referenced by instructions in
    // other dead blocks being erased by the caller) in any order.
    for (auto &instr : block->instrs_)
        instr->dropOperands();
    size_t index = indexOfBlock(block);
    blocks_.erase(blocks_.begin() + static_cast<ptrdiff_t>(index));
    renumberBlocksFrom(index);
}

void
Function::moveBlockTo(size_t index, BasicBlock *block)
{
    size_t from = indexOfBlock(block);
    BlockPtr owned = std::move(blocks_[from]);
    blocks_.erase(blocks_.begin() + static_cast<ptrdiff_t>(from));
    if (index > from)
        --index;
    blocks_.insert(blocks_.begin() + static_cast<ptrdiff_t>(index),
                   std::move(owned));
    renumberBlocksFrom(std::min(index, from));
}

size_t
Function::indexOfBlock(const BasicBlock *block) const
{
    size_t index = block->indexInFn_;
    assert(index < blocks_.size() && blocks_[index].get() == block &&
           "stale block index");
    return index;
}

//===------------------------------------------------------------------===//
// Module
//===------------------------------------------------------------------===//

GlobalVar *
Module::addGlobal(std::string name, IrType element_type, uint64_t count,
                  bool internal)
{
    globals_.push_back(std::make_unique<GlobalVar>(
        std::move(name), element_type, count, internal));
    globals_.back()->setId(nextValueId());
    return globals_.back().get();
}

Function *
Module::addFunction(std::string name, IrType return_type, bool internal)
{
    functions_.push_back(std::make_unique<Function>(
        std::move(name), return_type, internal));
    functions_.back()->parent_ = this;
    return functions_.back().get();
}

GlobalVar *
Module::getGlobal(const std::string &name) const
{
    for (const auto &global : globals_) {
        if (global->name() == name)
            return global.get();
    }
    return nullptr;
}

Function *
Module::getFunction(const std::string &name) const
{
    for (const auto &fn : functions_) {
        if (fn->name() == name)
            return fn.get();
    }
    return nullptr;
}

void
Module::eraseFunction(Function *fn)
{
    // Drop operand bookkeeping for the whole body first.
    for (const auto &block : fn->blocks()) {
        for (const auto &instr : block->instrs())
            instr->dropOperands();
    }
    for (size_t i = 0; i < functions_.size(); ++i) {
        if (functions_[i].get() == fn) {
            functions_.erase(functions_.begin() +
                             static_cast<ptrdiff_t>(i));
            return;
        }
    }
    assert(false && "function not in module");
}

void
Module::eraseGlobal(GlobalVar *global)
{
    assert(!global->hasUsers() && "erasing a referenced global");
    for (size_t i = 0; i < globals_.size(); ++i) {
        if (globals_[i].get() == global) {
            globals_.erase(globals_.begin() +
                           static_cast<ptrdiff_t>(i));
            return;
        }
    }
    assert(false && "global not in module");
}

Constant *
Module::constant(IrType type, int64_t value)
{
    assert(type.isInt() || (type.isPtr() && value == 0));
    if (type.isInt())
        value = wrapInt(value, type.bits, type.isSigned);
    ConstantKey key{static_cast<uint32_t>(
                        (static_cast<uint32_t>(type.kind) << 16) |
                        (static_cast<uint32_t>(type.bits) << 8) |
                        (type.isSigned ? 1u : 0u)),
                    value};
    auto [it, inserted] = constantIndex_.try_emplace(key, nullptr);
    if (!inserted)
        return it->second;
    constants_.push_back(std::make_unique<Constant>(type, value));
    constants_.back()->setId(nextValueId());
    it->second = constants_.back().get();
    return it->second;
}

} // namespace dce::ir
