#include "ir/dominators.hpp"

#include <cassert>

#include "ir/cfg.hpp"

namespace dce::ir {

DominatorTree::DominatorTree(const Function &fn)
{
    if (fn.isDeclaration())
        return;
    rpo_ = reversePostorder(fn);
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = i;

    auto preds = predecessorMap(fn);

    // Cooper-Harvey-Kennedy: iterate to a fixed point over RPO.
    const BasicBlock *entry = fn.entry();
    idom_[entry] = entry; // temporarily self, fixed up at the end

    auto intersect = [this](const BasicBlock *a,
                            const BasicBlock *b) -> const BasicBlock * {
        while (a != b) {
            while (rpoIndex_.at(a) > rpoIndex_.at(b))
                a = idom_.at(a);
            while (rpoIndex_.at(b) > rpoIndex_.at(a))
                b = idom_.at(b);
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BasicBlock *block : rpo_) {
            if (block == entry)
                continue;
            const BasicBlock *new_idom = nullptr;
            for (BasicBlock *pred : preds.at(block)) {
                if (!rpoIndex_.count(pred) || !idom_.count(pred))
                    continue; // unreachable or not yet processed
                if (!new_idom)
                    new_idom = pred;
                else
                    new_idom = intersect(new_idom, pred);
            }
            assert(new_idom && "reachable block without processed pred");
            auto it = idom_.find(block);
            if (it == idom_.end() || it->second != new_idom) {
                idom_[block] = new_idom;
                changed = true;
            }
        }
    }
    idom_[entry] = nullptr;
}

const BasicBlock *
DominatorTree::idom(const BasicBlock *block) const
{
    auto it = idom_.find(block);
    return it == idom_.end() ? nullptr : it->second;
}

bool
DominatorTree::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    if (!isReachable(a) || !isReachable(b))
        return a == b;
    size_t a_index = rpoIndex_.at(a);
    const BasicBlock *runner = b;
    // Walk up the tree; idom RPO indexes strictly decrease.
    while (runner) {
        if (runner == a)
            return true;
        if (rpoIndex_.at(runner) < a_index)
            return false;
        runner = idom(runner);
    }
    return false;
}

bool
DominatorTree::valueDominatesUse(const Instr *def, const Instr *user) const
{
    const BasicBlock *def_block = def->parent();
    const BasicBlock *use_block = user->parent();

    if (user->opcode() == Opcode::Phi) {
        // A phi use must dominate the end of the matching incoming
        // edge's predecessor.
        for (size_t i = 0; i < user->numOperands(); ++i) {
            if (user->operand(i) != def)
                continue;
            const BasicBlock *pred = user->blockOperands()[i];
            if (def_block == pred)
                continue; // defined in pred, fine
            if (!dominates(def_block, pred))
                return false;
        }
        return true;
    }

    if (def_block != use_block)
        return dominates(def_block, use_block);
    // Same block: def must come first.
    return def_block->indexOf(def) < use_block->indexOf(user);
}

} // namespace dce::ir
