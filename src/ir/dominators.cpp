#include "ir/dominators.hpp"

#include <cassert>

#include "ir/cfg.hpp"
#include "support/trace.hpp"

namespace dce::ir {

DominatorTree::DominatorTree(const Function &fn)
{
    support::TraceSpan span("domtree", "analysis");
    idomOf_.assign(fn.numBlocks(), nullptr);
    rpoIndexOf_.assign(fn.numBlocks(), kUnreachable);
    if (fn.isDeclaration())
        return;
    rpo_ = reversePostorder(fn);
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpoIndexOf_[rpo_[i]->indexInFn()] = static_cast<uint32_t>(i);

    PredecessorMap preds(fn);

    // Cooper-Harvey-Kennedy: iterate to a fixed point over RPO.
    const BasicBlock *entry = fn.entry();
    idomOf_[entry->indexInFn()] = entry; // self until the final fix-up

    auto rpo_index = [this](const BasicBlock *block) {
        return rpoIndexOf_[block->indexInFn()];
    };
    auto intersect = [&](const BasicBlock *a,
                         const BasicBlock *b) -> const BasicBlock * {
        while (a != b) {
            while (rpo_index(a) > rpo_index(b))
                a = idomOf_[a->indexInFn()];
            while (rpo_index(b) > rpo_index(a))
                b = idomOf_[b->indexInFn()];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BasicBlock *block : rpo_) {
            if (block == entry)
                continue;
            const BasicBlock *new_idom = nullptr;
            for (BasicBlock *pred : preds.at(block)) {
                if (rpo_index(pred) == kUnreachable ||
                    !idomOf_[pred->indexInFn()])
                    continue; // unreachable or not yet processed
                if (!new_idom)
                    new_idom = pred;
                else
                    new_idom = intersect(new_idom, pred);
            }
            assert(new_idom && "reachable block without processed pred");
            const BasicBlock *&slot = idomOf_[block->indexInFn()];
            if (slot != new_idom) {
                slot = new_idom;
                changed = true;
            }
        }
    }
    idomOf_[entry->indexInFn()] = nullptr;
}

bool
DominatorTree::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    if (!isReachable(a) || !isReachable(b))
        return a == b;
    uint32_t a_index = rpoIndexOf_[a->indexInFn()];
    const BasicBlock *runner = b;
    // Walk up the tree; idom RPO indexes strictly decrease.
    while (runner) {
        if (runner == a)
            return true;
        if (rpoIndexOf_[runner->indexInFn()] < a_index)
            return false;
        runner = idom(runner);
    }
    return false;
}

bool
DominatorTree::valueDominatesUse(const Instr *def, const Instr *user) const
{
    const BasicBlock *def_block = def->parent();
    const BasicBlock *use_block = user->parent();

    if (user->opcode() == Opcode::Phi) {
        // A phi use must dominate the end of the matching incoming
        // edge's predecessor.
        for (size_t i = 0; i < user->numOperands(); ++i) {
            if (user->operand(i) != def)
                continue;
            const BasicBlock *pred = user->blockOperands()[i];
            if (def_block == pred)
                continue; // defined in pred, fine
            if (!dominates(def_block, pred))
                return false;
        }
        return true;
    }

    if (def_block != use_block)
        return dominates(def_block, use_block);
    // Same block: def must come first.
    return def_block->indexOf(def) < use_block->indexOf(user);
}

} // namespace dce::ir
