/**
 * @file
 * The paper's core machinery (§3): marker liveness per compiler build,
 * execution-derived ground truth, missed-marker differentials, and the
 * primary-missed-block analysis (§3.2).
 *
 * Terminology matches the paper:
 *  - Comp(M) = alive  <=>  `call DCEMarkerM` appears in Comp's assembly;
 *  - a marker is *truly dead* iff it never executes (the programs are
 *    deterministic and input-free, so one run decides);
 *  - Comp *misses* M iff Comp(M) = alive but M is truly dead;
 *  - a missed M is *primary* iff no CFG-predecessor block of M's block
 *    is itself missed-dead (Definition, §3.2).
 */
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "compiler/compiler.hpp"
#include "instrument/instrument.hpp"
#include "interp/interpreter.hpp"

namespace dce::core {

/** Markers whose calls survive in @p assembly. */
std::set<unsigned> aliveMarkersInAsm(const std::string &assembly);

/**
 * Where a build's alive-marker set is read from. The two sources are
 * byte-identical by construction (the backend emits every call of
 * every function with a body — see compiler::survivingMarkersInIr);
 * Ir is the hot path, Assembly the paper's original black-box recipe,
 * kept selectable so the equivalence stays a tested invariant rather
 * than an assumption.
 */
enum class SurvivalSource {
    Ir,       ///< walk the optimized IR (no codegen — the fast path)
    Assembly, ///< emit assembly and grep it (the paper's method)
};

/**
 * Compile the instrumented unit with @p comp and return the alive
 * marker set Comp(M) — step (2)+(3) of Figure 1 for one build.
 */
std::set<unsigned> aliveMarkers(const lang::TranslationUnit &unit,
                                const compiler::Compiler &comp);

/**
 * Same, but from an already-lowered O0 module (not modified): the
 * build's pipeline runs over an ir::cloneModule copy. Lower once with
 * ir::lowerToIr, then call this once per build — the campaign engine's
 * lowering cache in miniature.
 *
 * @param observers optional remark/metric sinks for the build's
 *        pipeline run (DESIGN.md §9).
 * @param source    read survival from IR (default) or assembly.
 */
std::set<unsigned>
aliveMarkers(const ir::Module &lowered, const compiler::Compiler &comp,
             compiler::BuildObservers observers = {},
             SurvivalSource source = SurvivalSource::Ir);

/** Ground truth from execution. */
struct GroundTruth {
    bool valid = false; ///< program executed to completion
    /** Why execution failed when !valid (Ok when valid). */
    interp::ExecStatus status = interp::ExecStatus::Ok;
    std::set<unsigned> aliveMarkers; ///< executed at least once
    std::set<unsigned> deadMarkers;  ///< never executed
};

GroundTruth groundTruth(const instrument::Instrumented &prog);

/** Ground truth from an already-lowered O0 module of a program with
 * @p marker_count markers. */
GroundTruth groundTruthFor(const ir::Module &lowered,
                           unsigned marker_count);

/** Set helpers over markers. */
inline std::set<unsigned>
setMinus(const std::set<unsigned> &a, const std::set<unsigned> &b)
{
    std::set<unsigned> out;
    for (unsigned m : a) {
        if (!b.count(m))
            out.insert(m);
    }
    return out;
}

inline std::set<unsigned>
setIntersect(const std::set<unsigned> &a, const std::set<unsigned> &b)
{
    std::set<unsigned> out;
    for (unsigned m : a) {
        if (b.count(m))
            out.insert(m);
    }
    return out;
}

/** Markers a build failed to eliminate although they are truly dead. */
inline std::set<unsigned>
missedMarkers(const std::set<unsigned> &alive_in_asm,
              const GroundTruth &truth)
{
    return setIntersect(alive_in_asm, truth.deadMarkers);
}

/**
 * §3.2's primary-missed-block analysis, factored so its per-program
 * setup — the interprocedural CFG over the O0 lowering plus one
 * block-recording execution — is built once and then queried per
 * build. A missed marker is secondary when a backwards walk from its
 * block, through dead detected-or-markerless blocks, reaches another
 * missed marker's block.
 *
 * Holds pointers into @p lowered; keep the module alive while using.
 */
class PrimaryAnalysis {
  public:
    explicit PrimaryAnalysis(const ir::Module &lowered);

    /** Block-level ground truth executed cleanly; when false,
     * primary() degrades to the identity (be safe, report all). */
    bool valid() const { return valid_; }

    /** The primary subset of @p missed (a build's dead-but-alive-in-
     * assembly markers). */
    std::set<unsigned> primary(const std::set<unsigned> &missed) const;

  private:
    bool valid_ = false;
    std::unordered_map<const ir::BasicBlock *,
                       std::vector<const ir::BasicBlock *>>
        preds_;
    std::unordered_map<unsigned, const ir::BasicBlock *> markerBlock_;
    std::unordered_map<const ir::BasicBlock *, std::vector<unsigned>>
        blockMarkers_;
    std::unordered_set<const ir::BasicBlock *> executedBlocks_;
};

/**
 * §3.2 one-shot convenience: lower @p prog at O0 and run the analysis.
 * Prefer PrimaryAnalysis (or the lowered-module overload) when
 * filtering several builds of the same program.
 *
 * @param prog     the instrumented program
 * @param missed   the build's missed (dead but alive-in-asm) markers
 * @param truth    execution ground truth (must be valid)
 */
std::set<unsigned> primaryMissedMarkers(
    const instrument::Instrumented &prog,
    const std::set<unsigned> &missed, const GroundTruth &truth);

/** Same over an existing O0 lowering of the instrumented program. */
std::set<unsigned> primaryMissedMarkers(
    const ir::Module &lowered, const std::set<unsigned> &missed,
    const GroundTruth &truth);

} // namespace dce::core
