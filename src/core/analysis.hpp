/**
 * @file
 * The paper's core machinery (§3): marker liveness per compiler build,
 * execution-derived ground truth, missed-marker differentials, and the
 * primary-missed-block analysis (§3.2).
 *
 * Terminology matches the paper:
 *  - Comp(M) = alive  <=>  `call DCEMarkerM` appears in Comp's assembly;
 *  - a marker is *truly dead* iff it never executes (the programs are
 *    deterministic and input-free, so one run decides);
 *  - Comp *misses* M iff Comp(M) = alive but M is truly dead;
 *  - a missed M is *primary* iff no CFG-predecessor block of M's block
 *    is itself missed-dead (Definition, §3.2).
 */
#pragma once

#include <set>
#include <string>

#include "compiler/compiler.hpp"
#include "instrument/instrument.hpp"
#include "interp/interpreter.hpp"

namespace dce::core {

/** Markers whose calls survive in @p assembly. */
std::set<unsigned> aliveMarkersInAsm(const std::string &assembly);

/**
 * Compile the instrumented unit with @p comp and return the alive
 * marker set Comp(M) — step (2)+(3) of Figure 1 for one build.
 */
std::set<unsigned> aliveMarkers(const lang::TranslationUnit &unit,
                                const compiler::Compiler &comp);

/** Ground truth from execution. */
struct GroundTruth {
    bool valid = false; ///< program executed to completion
    std::set<unsigned> aliveMarkers; ///< executed at least once
    std::set<unsigned> deadMarkers;  ///< never executed
};

GroundTruth groundTruth(const instrument::Instrumented &prog);

/** Set helpers over markers. */
inline std::set<unsigned>
setMinus(const std::set<unsigned> &a, const std::set<unsigned> &b)
{
    std::set<unsigned> out;
    for (unsigned m : a) {
        if (!b.count(m))
            out.insert(m);
    }
    return out;
}

inline std::set<unsigned>
setIntersect(const std::set<unsigned> &a, const std::set<unsigned> &b)
{
    std::set<unsigned> out;
    for (unsigned m : a) {
        if (b.count(m))
            out.insert(m);
    }
    return out;
}

/** Markers a build failed to eliminate although they are truly dead. */
inline std::set<unsigned>
missedMarkers(const std::set<unsigned> &alive_in_asm,
              const GroundTruth &truth)
{
    return setIntersect(alive_in_asm, truth.deadMarkers);
}

/**
 * §3.2: reduce a missed set to its *primary* subset. Works on the
 * interprocedural CFG of the O0 lowering of the instrumented unit:
 * a missed marker is secondary when a backwards walk from its block —
 * through dead, detected-or-markerless blocks — reaches another missed
 * marker's block.
 *
 * @param prog     the instrumented program
 * @param missed   the build's missed (dead but alive-in-asm) markers
 * @param truth    execution ground truth (must be valid)
 */
std::set<unsigned> primaryMissedMarkers(
    const instrument::Instrumented &prog,
    const std::set<unsigned> &missed, const GroundTruth &truth);

} // namespace dce::core
