/**
 * @file
 * Report triage — the measurable skeleton of §4.3 (Table 5). For each
 * differential finding we reduce the test case (C-Reduce stand-in),
 * derive a root-cause *signature* (which post-head fix commit makes
 * the reduced case optimize, or which capability difference explains
 * it), deduplicate by signature, and classify:
 *
 *  - reported:   findings submitted (after reduction);
 *  - confirmed:  unique root causes that reproduce on the reduced case;
 *  - duplicate:  signature already reported earlier;
 *  - fixed:      a fix commit past HEAD resolves the reduced case.
 *
 * The human parts of bug reporting (developer dialogue) are outside
 * the simulation; everything counted here is mechanically derived.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace dce::core {

/**
 * Per-build "killer pass" statistics, aggregated from the optimization
 * remarks a collectRemarks campaign attributed to each eliminated
 * marker (ProgramRecord::kills). Turns the paper's component
 * categorization from heuristic into measured: the histogram says
 * *which pass actually removed* each truly dead marker.
 */
struct KillerHistogram {
    /** Eliminations per killing pass ("simplifycfg", "globaldce",
     * "lowering" for front-end drops), sorted by pass name. */
    std::map<std::string, uint64_t> byPass;
    uint64_t totalEliminated = 0;

    bool empty() const { return byPass.empty(); }
};

/**
 * Aggregate the killer histogram for @p build over every valid record
 * of @p campaign. Only markers in trueDead ∖ missed contribute (each
 * exactly once). Empty unless the campaign ran with collectRemarks.
 */
KillerHistogram killerHistogram(const Campaign &campaign,
                                BuildId build);

/** One missed-optimization finding to report. */
struct Finding {
    uint64_t seed = 0;
    unsigned marker = 0;
    BuildSpec missedBy;   ///< the build that failed to eliminate
    BuildSpec reference;  ///< a build that succeeded (feasibility)
};

/** A triaged (reduced + classified) report. */
struct Report {
    Finding finding;
    std::string reducedSource;
    std::string signature;
    bool confirmed = false;
    bool duplicate = false;
    bool fixed = false;
    unsigned reductionTests = 0;
};

struct TriageSummary {
    std::vector<Report> reports;

    unsigned
    count(compiler::CompilerId id, bool Report::*flag) const
    {
        unsigned total = 0;
        for (const Report &report : reports) {
            if (report.finding.missedBy.id == id && report.*flag)
                ++total;
        }
        return total;
    }

    unsigned
    reported(compiler::CompilerId id) const
    {
        unsigned total = 0;
        for (const Report &report : reports)
            total += report.finding.missedBy.id == id ? 1 : 0;
        return total;
    }
};

/**
 * Extract findings from a finished campaign: for each program, each
 * *primary* missed marker of @p missed_by that @p reference
 * eliminated becomes one finding (capped at @p max_findings).
 * The campaign must have been run with computePrimary.
 */
std::vector<Finding> collectFindings(const Campaign &campaign,
                                     const BuildSpec &missed_by,
                                     const BuildSpec &reference,
                                     unsigned max_findings,
                                     const gen::GenConfig &config = {});

/**
 * Reduce, signature, deduplicate, and classify @p findings. Like the
 * paper's workflow, duplicates found during pre-report deduplication
 * are *dropped*; @p reported_duplicate_allowance models the imperfect
 * manual dedup (the paper reported 5 GCC duplicates, one of which a
 * developer had already filed) — that many same-signature findings per
 * compiler are still "reported" and end up marked duplicate.
 */
TriageSummary triageFindings(const std::vector<Finding> &findings,
                             const gen::GenConfig &config = {},
                             unsigned reported_duplicate_allowance = 1);

} // namespace dce::core
