/**
 * @file
 * Report triage — the measurable skeleton of §4.3 (Table 5). For each
 * differential finding we reduce the test case (C-Reduce stand-in),
 * derive a root-cause *signature* (which post-head fix commit makes
 * the reduced case optimize, or which capability difference explains
 * it), deduplicate by signature, and classify:
 *
 *  - reported:   findings submitted (after reduction);
 *  - confirmed:  unique root causes that reproduce on the reduced case;
 *  - duplicate:  signature already reported earlier;
 *  - fixed:      a fix commit past HEAD resolves the reduced case.
 *
 * The human parts of bug reporting (developer dialogue) are outside
 * the simulation; everything counted here is mechanically derived.
 */
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace dce::core {

/**
 * Per-build "killer pass" statistics, aggregated from the optimization
 * remarks a collectRemarks campaign attributed to each eliminated
 * marker (ProgramRecord::kills). Turns the paper's component
 * categorization from heuristic into measured: the histogram says
 * *which pass actually removed* each truly dead marker.
 */
struct KillerHistogram {
    /** Eliminations per killing pass ("simplifycfg", "globaldce",
     * "lowering" for front-end drops), sorted by pass name. */
    std::map<std::string, uint64_t> byPass;
    uint64_t totalEliminated = 0;

    bool empty() const { return byPass.empty(); }
};

/**
 * Aggregate the killer histogram for @p build over every valid record
 * of @p campaign. Only markers in trueDead ∖ missed contribute (each
 * exactly once). Empty unless the campaign ran with collectRemarks.
 */
KillerHistogram killerHistogram(const Campaign &campaign,
                                BuildId build);

/** One missed-optimization finding to report. */
struct Finding {
    uint64_t seed = 0;
    unsigned marker = 0;
    BuildSpec missedBy;   ///< the build that failed to eliminate
    BuildSpec reference;  ///< a build that succeeded (feasibility)
};

/**
 * Why a reduction candidate was rejected by the interestingness test,
 * in gate order. Distinguishing the interpreter failing (TrapTimeout)
 * from the marker genuinely executing (Executed) is what makes a
 * stuck reduction diagnosable: a reduction drowning in trap-timeouts
 * is shrinking programs into ones the interpreter cannot decide, not
 * into uninteresting ones.
 */
enum class RejectReason {
    ParseFail,       ///< candidate no longer parses / type-checks
    MarkerAbsent,    ///< the marker function is gone from the source
    TrapTimeout,     ///< ground-truth execution trapped or timed out
    Executed,        ///< the marker ran — it is not dead here
    NotDifferential, ///< builds agree (missed-by eliminates it, or
                     ///< the reference misses it too)
};

/** Stable label for @p reason (`reduce.reject{<reason>}` metric key). */
const char *rejectReasonName(RejectReason reason);

/**
 * The reduction predicate: the candidate parses, the marker is truly
 * dead, the reporting build misses it, and the reference build
 * eliminates it. When the finding's reference *is* the missed-by build
 * (metamorphic findings: the feasibility evidence is an equivalent
 * program, not a second build), the reference probe is vacuous and
 * skipped — the predicate degrades to "this build misses this truly
 * dead marker". One parse / lowering / execution per candidate; the
 * two differential builds run over clones of that single lowering via
 * Compiler::compileLowered — the campaign engine's lowering cache in
 * miniature. Every rejection is classified (RejectReason) and counted
 * under `reduce.reject{<reason>}`; each differential pipeline run
 * bumps `reduce.compiles`.
 *
 * Immutable after construction, so one instance is safe to call
 * concurrently from every speculation worker of a ParallelReducer.
 * Satisfies reduce::Predicate via operator().
 */
class InterestingnessTest {
  public:
    /** @param metrics registry for the reject/compile counters;
     * null = the process global. */
    InterestingnessTest(unsigned marker, const BuildSpec &missed_by,
                        const BuildSpec &reference,
                        support::MetricsRegistry *metrics = nullptr,
                        SurvivalSource source = SurvivalSource::Ir);

    /** Full check; when @p why is non-null it receives the reason on
     * rejection (untouched on acceptance). */
    bool test(const std::string &candidate,
              RejectReason *why = nullptr) const;

    bool
    operator()(const std::string &candidate) const
    {
        return test(candidate);
    }

  private:
    support::Counter &rejectCounter(RejectReason reason) const;

    unsigned marker_;
    std::string markerName_;
    BuildSpec missedBy_;
    BuildSpec reference_;
    bool sameBuild_ = false; ///< reference == missedBy (equiv findings)
    SurvivalSource source_;
    /** Reject counters in RejectReason order, plus the pipeline
     * counter — resolved once so the per-candidate path is lock-free. */
    std::vector<support::Counter *> rejects_;
    support::Counter *compiles_;
};

/**
 * Identity of a finding's root cause for pre-reduction deduplication:
 * the content hash of the canonical program text, the finding's marker
 * set, and the differential build pair. Two findings with equal keys
 * reduce to the same root cause by construction (same program, same
 * markers, same builds), so one verdict serves both — this is what
 * lets a long-running service never re-reduce a duplicate, within a
 * batch and across campaign runs alike (DESIGN.md §11).
 */
struct VerdictKey {
    /** support::fnv1a64Hex of the canonical (printed) program text. */
    std::string programHash;
    /** Sorted markers the finding covers (a singleton for
     * collectFindings output). */
    std::vector<unsigned> markers;
    std::string missedBy;  ///< BuildSpec::name() of the missing build
    std::string reference; ///< BuildSpec::name() of the eliminating one

    /** Stable textual form — the store's signature-index key. */
    std::string fingerprint() const;
};

/** A cached triage verdict: everything reduction + signaturing would
 * recompute for a finding with a known key. */
struct CachedVerdict {
    std::string reducedSource;
    std::string signature;
    bool fixed = false;
    /** testsRun of the original reduction; replayed into the report so
     * warm-cache summaries are byte-identical to cold ones. */
    unsigned reductionTests = 0;
};

/**
 * Verdict lookup/store interface consulted by triageFindings before
 * reducing each finding. Implementations must be thread-safe (stage 1
 * fans out over workers); corpus::CorpusStore provides the persistent
 * one, corpus::MemoryVerdictCache an in-process one.
 */
class VerdictCache {
  public:
    virtual ~VerdictCache() = default;
    virtual std::optional<CachedVerdict>
    lookup(const VerdictKey &key) = 0;
    virtual void store(const VerdictKey &key,
                       const CachedVerdict &verdict) = 0;
};

/** A triaged (reduced + classified) report. */
struct Report {
    Finding finding;
    std::string reducedSource;
    std::string signature;
    bool confirmed = false;
    bool duplicate = false;
    bool fixed = false;
    unsigned reductionTests = 0;
};

struct TriageSummary {
    std::vector<Report> reports;

    unsigned
    count(compiler::CompilerId id, bool Report::*flag) const
    {
        unsigned total = 0;
        for (const Report &report : reports) {
            if (report.finding.missedBy.id == id && report.*flag)
                ++total;
        }
        return total;
    }

    unsigned
    reported(compiler::CompilerId id) const
    {
        unsigned total = 0;
        for (const Report &report : reports)
            total += report.finding.missedBy.id == id ? 1 : 0;
        return total;
    }
};

/**
 * Extract findings from a finished campaign: for each program, each
 * *primary* missed marker of @p missed_by that @p reference
 * eliminated becomes one finding (capped at @p max_findings).
 * The campaign must have been run with computePrimary.
 */
std::vector<Finding> collectFindings(const Campaign &campaign,
                                     const BuildSpec &missed_by,
                                     const BuildSpec &reference,
                                     unsigned max_findings,
                                     const gen::GenConfig &config = {});

/**
 * The finding collectFindings would extract from one record (at most
 * one per program, like the paper), or nullopt. Exposed so the corpus
 * layer's checkpointing runner can extract findings chunk-by-chunk
 * with identical semantics.
 */
std::optional<Finding> findingForRecord(const ProgramRecord &record,
                                        BuildId by, BuildId ref,
                                        const BuildSpec &missed_by,
                                        const BuildSpec &reference);

/** Knobs for the reduce/triage pipeline. */
struct TriageOptions {
    gen::GenConfig generator;
    /** Alive-set source for every pipeline probe (interestingness,
     * fix-commit signaturing). Summaries are byte-identical across the
     * two — the campaign invariant, kept testable here too. */
    SurvivalSource survivalSource = SurvivalSource::Ir;
    /** Same-signature findings per compiler that still get "reported"
     * (and end up marked duplicate) — models the paper's imperfect
     * manual dedup; see triageFindings. */
    unsigned reportedDuplicateAllowance = 1;
    /** Findings reduced + signatured concurrently; 1 = serial, 0 =
     * one per hardware thread. The summary is identical for every
     * thread count (reductions are per-finding pure; deduplication
     * runs serially in findings order afterwards). */
    unsigned threads = 1;
    /** Speculation width inside each finding's reduction
     * (reduce::ReduceOptions::workers). */
    unsigned reduceWorkers = 1;
    /** Per-finding reduction budget (canonical candidate decisions). */
    unsigned maxTests = 800;
    /** Registry receiving the reduce.* metrics; null = the global. */
    support::MetricsRegistry *metrics = nullptr;
    /**
     * Source of each finding's program text. Default (unset): the
     * deterministic regeneration makeProgram(finding.seed, generator).
     * The metamorphic pipeline sets this — its findings live in
     * *derived variants* whose text no seed regenerates (src/equiv).
     * Must be pure: called once per finding, from the serial keying
     * stage or the parallel reduce stage.
     */
    std::function<std::string(const Finding &finding, size_t index)>
        sourceFor;
    /**
     * Optional verdict cache. When set, findings are keyed by
     * VerdictKey before stage 1: cache hits (and same-key duplicates
     * within the batch) skip reduction entirely and replay the cached
     * verdict — `reduce.tests` drops, the summary does not change, and
     * no finding disappears from it. Hits land in
     * `reduce.verdict_cache_hits`, within-batch reuse in
     * `reduce.findings_deduped`.
     */
    VerdictCache *verdictCache = nullptr;
    /**
     * Sink for the triage events (DESIGN.md §12): verdict_cached,
     * reduction_finished, finding_classified — one each per finding,
     * keyed by the finding's batch index, so the log is identical for
     * every thread count. Null = no events.
     */
    support::EventSink *events = nullptr;
};

/**
 * Reduce, signature, deduplicate, and classify @p findings. The
 * reduce + signature stage fans out over options.threads workers with
 * a per-finding "reduce"/"signature" TraceSpan each; classification
 * and deduplication stay serial in findings order, so the summary
 * never depends on scheduling. Like the paper's workflow, duplicates
 * found during pre-report deduplication are *dropped*;
 * options.reportedDuplicateAllowance models the imperfect manual
 * dedup (the paper reported 5 GCC duplicates, one of which a
 * developer had already filed) — that many same-signature findings
 * per compiler are still "reported" and end up marked duplicate.
 */
TriageSummary triageFindings(const std::vector<Finding> &findings,
                             const TriageOptions &options);

/** Serial convenience overload (threads = reduceWorkers = 1). */
TriageSummary triageFindings(const std::vector<Finding> &findings,
                             const gen::GenConfig &config = {},
                             unsigned reported_duplicate_allowance = 1);

} // namespace dce::core
