/**
 * @file
 * Campaign driver: runs the whole Figure-1 pipeline — generate,
 * instrument, execute for ground truth, compile under a set of
 * compiler builds, and collect alive/missed/primary marker sets — over
 * a seeded corpus. The benches build every table of the paper's §4
 * from the records this produces.
 *
 * The execution engine (CampaignRunner) shards the seed range across a
 * thread pool. Each seed is a pure function of (seed, builds, options)
 * and writes its ProgramRecord into a pre-sized slot, so results are
 * bit-identical to a serial run regardless of thread count or
 * scheduling (DESIGN.md §8). Per-build results are addressed by
 * BuildId handles — indices into the campaign's build list — instead
 * of compiler-name strings.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis.hpp"
#include "gen/generator.hpp"
#include "support/events.hpp"
#include "support/metrics.hpp"

namespace dce::gen {
class Mutator;
}

namespace dce::core {

/** One compiler build participating in a campaign. */
struct BuildSpec {
    compiler::CompilerId id;
    compiler::OptLevel level;
    size_t commit = SIZE_MAX; ///< SIZE_MAX = head

    compiler::Compiler
    make() const
    {
        return compiler::Compiler(id, level, commit);
    }
    /** The commit index with SIZE_MAX resolved to the head commit. */
    size_t resolvedCommit() const;
    /** e.g. "alpha-O3@a3f9c21"; computed from the spec tables without
     * constructing a Compiler. Equals make().describe(). */
    std::string name() const;

    friend bool
    operator==(const BuildSpec &a, const BuildSpec &b)
    {
        return a.id == b.id && a.level == b.level &&
               a.resolvedCommit() == b.resolvedCommit();
    }
};

/**
 * Handle to one build of a campaign: its index in the campaign's build
 * list. Obtained from Campaign::findBuild / Campaign::idOf or by
 * position in the vector passed to the runner; valid only against the
 * campaign (or runner) it came from.
 */
struct BuildId {
    size_t index = SIZE_MAX;

    bool valid() const { return index != SIZE_MAX; }
    friend bool operator==(BuildId, BuildId) = default;
};

/**
 * Why a seed's program was excluded from the corpus. Classified from
 * the ground-truth execution (plus an after-the-fact verifier check on
 * the failure path only, so the valid-seed hot path pays nothing).
 */
enum class InvalidReason {
    None,           ///< the program is valid
    Timeout,        ///< exceeded the interpreter step budget
    Trap,           ///< undefined behaviour during execution
    NoEntry,        ///< no runnable main (generator bug)
    VerifierReject, ///< the O0 lowering failed IR verification
};

/** Stable label for @p reason (metrics key / reports). */
const char *invalidReasonName(InvalidReason reason);

/**
 * One attributed marker elimination: which pass removed the last call
 * to the marker, and where in the pipeline it sat. `pass` is
 * "lowering" (passIndex 0) for markers the front end already dropped
 * at O0 — no optimization pass ever saw them.
 */
struct MarkerKill {
    unsigned marker = 0;
    std::string pass;
    unsigned passIndex = 0;

    friend bool
    operator==(const MarkerKill &, const MarkerKill &) = default;
};

/** Everything recorded about one corpus program. */
struct ProgramRecord {
    uint64_t seed = 0;
    unsigned markerCount = 0;
    bool valid = false; ///< executed cleanly; only valid records count
    /** Why the record is invalid; None when valid. */
    InvalidReason invalidReason = InvalidReason::None;
    std::set<unsigned> trueAlive;
    std::set<unsigned> trueDead;
    /** Alive-in-assembly sets, indexed by BuildId. */
    std::vector<std::set<unsigned>> alive;
    /** Missed dead markers per build, indexed by BuildId. */
    std::vector<std::set<unsigned>> missed;
    /** Primary missed subset per build; empty vector unless the
     * campaign ran with computePrimary. */
    std::vector<std::set<unsigned>> primary;
    /** Killer-pass attribution per build for every marker the build
     * eliminated (trueDead ∖ missed), sorted by marker; empty vector
     * unless the campaign ran with collectRemarks. */
    std::vector<std::vector<MarkerKill>> kills;

    const std::set<unsigned> &
    aliveFor(BuildId build) const
    {
        return alive[build.index];
    }
    const std::set<unsigned> &
    missedFor(BuildId build) const
    {
        return missed[build.index];
    }
    const std::set<unsigned> &
    primaryFor(BuildId build) const
    {
        return primary[build.index];
    }
    const std::vector<MarkerKill> &
    killsFor(BuildId build) const
    {
        return kills[build.index];
    }

    friend bool
    operator==(const ProgramRecord &, const ProgramRecord &) = default;
};

/**
 * Progress snapshot delivered to a campaign observer. Observers are
 * invoked under a lock, after each completed seed, from whichever
 * worker finished it; seedsDone increases by exactly one per call.
 */
struct CampaignProgress {
    uint64_t seedsDone = 0;  ///< completed so far (this call included)
    uint64_t seedsTotal = 0; ///< corpus size
    uint64_t invalidPrograms = 0; ///< failed ground-truth execution
    uint64_t cacheHits = 0;       ///< lowering-cache hits so far
    uint64_t cacheMisses = 0;     ///< lowering-cache misses so far
};

using CampaignObserver = std::function<void(const CampaignProgress &)>;

/**
 * Timing summary for one finished campaign. Everything else that used
 * to live here — invalid counts, cache accounting, per-stage wall time
 * — is recorded in the campaign's MetricsRegistry under the
 * `campaign.*` keys (DESIGN.md §9):
 *
 *   campaign.seeds                       seeds processed
 *   campaign.invalid{<reason>}           invalid seeds by InvalidReason
 *   campaign.cache_hits / cache_misses   lowering-cache accounting
 *   campaign.stage_us{<stage>}           histogram, per-seed stage µs
 *   campaign.markers_eliminated{<build>} trueDead ∖ missed per build
 */
struct CampaignMetrics {
    uint64_t seedsDone = 0;
    double wallSeconds = 0; ///< end-to-end, not summed across workers

    double
    seedsPerSecond() const
    {
        return wallSeconds > 0 ? double(seedsDone) / wallSeconds : 0;
    }
};

struct CampaignOptions {
    bool computePrimary = false;
    /** Where each build's alive-marker set is read from. Ir (default)
     * walks the optimized module; Assembly materializes the backend
     * emission and greps it, the paper's original recipe. Records are
     * identical either way (a tested invariant). */
    SurvivalSource survivalSource = SurvivalSource::Ir;
    /** Collect per-build killer-pass attribution (ProgramRecord::
     * kills) from optimization remarks. Off by default: the remark
     * census walks the module after every pass. */
    bool collectRemarks = false;
    gen::GenConfig generator;
    /** Mutation-based generation: when set, each seed's program is a
     * mutation of a corpus-store program (gen::Mutator::makeProgram)
     * instead of a from-scratch generation; `generator` then only
     * configures the mutator's fallback. The mutator must outlive the
     * campaign and its pool must be frozen before the run — its
     * determinism is what keeps the engine's record contract. */
    const gen::Mutator *mutator = nullptr;
    /** Worker threads; 1 = serial (fully inline), 0 = one per
     * hardware thread. Thread count never changes the records. */
    unsigned threads = 1;
    /** Seeds per scheduling chunk; 0 picks a size that gives each
     * worker several chunks for load balancing. */
    unsigned chunkSize = 0;
    /** Optional progress callback; see CampaignProgress. */
    CampaignObserver observer;
    /** Registry receiving the campaign.* metrics; null = the process
     * global. Tests that assert exact totals pass their own. */
    support::MetricsRegistry *metrics = nullptr;
    /** Sink for campaign_started / campaign_finished events
     * (DESIGN.md §12). Null = no events. Per-seed events are the
     * checkpointing runner's job — it owns chunk identity. */
    support::EventSink *events = nullptr;
};

/** A finished campaign over a corpus. */
struct Campaign {
    /** The builds, in the order given to the runner; BuildId indexes
     * this vector (and each record's per-build vectors). */
    std::vector<BuildSpec> builds;
    std::vector<ProgramRecord> programs;
    CampaignMetrics metrics;

    /** BuildSpec::name() of every build, in BuildId order. */
    std::vector<std::string> buildNames() const;
    /** Handle for the build named @p name, if present. */
    std::optional<BuildId> findBuild(std::string_view name) const;
    /** Handle for @p spec's build, if present. */
    std::optional<BuildId> findBuild(const BuildSpec &spec) const;
    /** findBuild or an invalid (never-matching) handle. */
    BuildId idOf(std::string_view name) const;

    uint64_t totalMarkers() const;
    uint64_t totalDead() const;
    uint64_t totalAlive() const;
    /** Sum of |missed| for one build across the corpus. */
    uint64_t totalMissed(BuildId build) const;
    uint64_t totalPrimaryMissed(BuildId build) const;
    /** Markers missed by @p by but eliminated by @p reference. */
    uint64_t totalMissedVersus(BuildId by, BuildId reference) const;
};

/** Regenerate + instrument the program for @p seed (deterministic). */
instrument::Instrumented makeProgram(
    uint64_t seed, const gen::GenConfig &config = {});

/** Per-seed cache/validity tallies returned by SeedProcessor::process
 * so callers can maintain progress snapshots; the campaign.* metric
 * instruments are updated internally. */
struct SeedCounters {
    uint64_t invalid = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

/**
 * The per-seed pipeline behind CampaignRunner, exposed so other
 * schedulers — the corpus layer's checkpointing runner in particular —
 * can drive it with their own chunking and metrics scoping. Resolves
 * its campaign.* instruments once against @p registry at construction,
 * so process() stays lock-free on the metrics path; a processor bound
 * to a chunk-local registry confines a chunk's metrics until the chunk
 * commits.
 *
 * process() is pure in (seed, builds, options) and thread-safe: one
 * processor may serve every worker, or each worker may build its own —
 * the records are identical either way. @p builds, @p options, and
 * @p registry must outlive the processor.
 */
class SeedProcessor {
  public:
    SeedProcessor(const std::vector<BuildSpec> &builds,
                  const CampaignOptions &options,
                  support::MetricsRegistry &registry);
    ~SeedProcessor();

    SeedProcessor(const SeedProcessor &) = delete;
    SeedProcessor &operator=(const SeedProcessor &) = delete;

    /**
     * Run the full pipeline for @p seed. Folds the seed's cache /
     * invalid tallies into @p counters (adds, never resets). When
     * @p canonical_text is non-null it receives the instrumented
     * program's canonical source text (lang::printUnit) — the corpus
     * store's content-address input.
     */
    ProgramRecord process(uint64_t seed, SeedCounters &counters,
                          std::string *canonical_text = nullptr) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * The campaign execution engine. Configure once with the build list
 * and options, then run over any seed range:
 *
 *   CampaignRunner runner(builds, {.threads = 0});
 *   Campaign campaign = runner.run(1000, 300);
 *
 * Determinism contract: for fixed (first_seed, count, builds,
 * generator, computePrimary), the builds and programs of the returned
 * Campaign are identical for every thread/chunk configuration; only
 * metrics (timings) and observer interleaving vary.
 */
class CampaignRunner {
  public:
    explicit CampaignRunner(std::vector<BuildSpec> builds,
                            CampaignOptions options = {});

    const std::vector<BuildSpec> &builds() const { return builds_; }
    const CampaignOptions &options() const { return options_; }

    Campaign run(uint64_t first_seed, unsigned count) const;

  private:
    std::vector<BuildSpec> builds_;
    CampaignOptions options_;
};

/**
 * Run the campaign: seeds [first_seed, first_seed + count) against
 * every build. Programs that fail ground-truth execution are recorded
 * with valid = false and excluded from the totals. Convenience wrapper
 * over CampaignRunner.
 */
Campaign runCampaign(uint64_t first_seed, unsigned count,
                     const std::vector<BuildSpec> &builds,
                     const CampaignOptions &options = {});

} // namespace dce::core
