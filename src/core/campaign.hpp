/**
 * @file
 * Campaign driver: runs the whole Figure-1 pipeline — generate,
 * instrument, execute for ground truth, compile under a set of
 * compiler builds, and collect alive/missed/primary marker sets — over
 * a seeded corpus. The benches build every table of the paper's §4
 * from the records this produces.
 */
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "gen/generator.hpp"

namespace dce::core {

/** One compiler build participating in a campaign. */
struct BuildSpec {
    compiler::CompilerId id;
    compiler::OptLevel level;
    size_t commit = SIZE_MAX; ///< SIZE_MAX = head

    compiler::Compiler
    make() const
    {
        return compiler::Compiler(id, level, commit);
    }
    std::string name() const { return make().describe(); }
};

/** Everything recorded about one corpus program. */
struct ProgramRecord {
    uint64_t seed = 0;
    unsigned markerCount = 0;
    bool valid = false; ///< executed cleanly; only valid records count
    std::set<unsigned> trueAlive;
    std::set<unsigned> trueDead;
    /** Alive-in-assembly sets, keyed by BuildSpec::name(). */
    std::map<std::string, std::set<unsigned>> alive;
    /** Missed dead markers per build. */
    std::map<std::string, std::set<unsigned>> missed;
    /** Primary missed subset per build (when requested). */
    std::map<std::string, std::set<unsigned>> primary;
};

struct CampaignOptions {
    bool computePrimary = false;
    gen::GenConfig generator;
};

/** A finished campaign over a corpus. */
struct Campaign {
    std::vector<ProgramRecord> programs;

    uint64_t totalMarkers() const;
    uint64_t totalDead() const;
    uint64_t totalAlive() const;
    /** Sum of |missed| for one build across the corpus. */
    uint64_t totalMissed(const std::string &build) const;
    uint64_t totalPrimaryMissed(const std::string &build) const;
    /** Markers missed by @p by but eliminated by @p reference. */
    uint64_t totalMissedVersus(const std::string &by,
                               const std::string &reference) const;
};

/** Regenerate + instrument the program for @p seed (deterministic). */
instrument::Instrumented makeProgram(
    uint64_t seed, const gen::GenConfig &config = {});

/**
 * Run the campaign: seeds [first_seed, first_seed + count) against
 * every build. Programs that fail ground-truth execution are recorded
 * with valid = false and excluded from the totals.
 */
Campaign runCampaign(uint64_t first_seed, unsigned count,
                     const std::vector<BuildSpec> &builds,
                     const CampaignOptions &options = {});

} // namespace dce::core
