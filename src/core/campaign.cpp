#include "core/campaign.hpp"

namespace dce::core {

uint64_t
Campaign::totalMarkers() const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.markerCount;
    }
    return total;
}

uint64_t
Campaign::totalDead() const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.trueDead.size();
    }
    return total;
}

uint64_t
Campaign::totalAlive() const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.trueAlive.size();
    }
    return total;
}

uint64_t
Campaign::totalMissed(const std::string &build) const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (!record.valid)
            continue;
        auto it = record.missed.find(build);
        if (it != record.missed.end())
            total += it->second.size();
    }
    return total;
}

uint64_t
Campaign::totalPrimaryMissed(const std::string &build) const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (!record.valid)
            continue;
        auto it = record.primary.find(build);
        if (it != record.primary.end())
            total += it->second.size();
    }
    return total;
}

uint64_t
Campaign::totalMissedVersus(const std::string &by,
                            const std::string &reference) const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (!record.valid)
            continue;
        auto by_it = record.missed.find(by);
        auto ref_it = record.missed.find(reference);
        if (by_it == record.missed.end() ||
            ref_it == record.missed.end()) {
            continue;
        }
        // Missed by `by`, eliminated by `reference`.
        total += setMinus(by_it->second, ref_it->second).size();
    }
    return total;
}

instrument::Instrumented
makeProgram(uint64_t seed, const gen::GenConfig &config)
{
    auto unit = gen::generateProgram(seed, config);
    return instrument::instrumentUnit(*unit);
}

Campaign
runCampaign(uint64_t first_seed, unsigned count,
            const std::vector<BuildSpec> &builds,
            const CampaignOptions &options)
{
    Campaign campaign;
    campaign.programs.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        uint64_t seed = first_seed + i;
        ProgramRecord record;
        record.seed = seed;

        instrument::Instrumented prog =
            makeProgram(seed, options.generator);
        record.markerCount = prog.markerCount();

        GroundTruth truth = groundTruth(prog);
        record.valid = truth.valid;
        if (record.valid) {
            record.trueAlive = truth.aliveMarkers;
            record.trueDead = truth.deadMarkers;
            for (const BuildSpec &spec : builds) {
                std::string name = spec.name();
                std::set<unsigned> alive =
                    aliveMarkers(*prog.unit, spec.make());
                record.missed[name] = missedMarkers(alive, truth);
                if (options.computePrimary) {
                    record.primary[name] = primaryMissedMarkers(
                        prog, record.missed[name], truth);
                }
                record.alive[name] = std::move(alive);
            }
        }
        campaign.programs.push_back(std::move(record));
    }
    return campaign;
}

} // namespace dce::core
