#include "core/campaign.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "gen/mutator.hpp"
#include "ir/lowering.hpp"
#include "ir/verifier.hpp"
#include "lang/printer.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dce::core {

//===------------------------------------------------------------------===//
// BuildSpec
//===------------------------------------------------------------------===//

size_t
BuildSpec::resolvedCommit() const
{
    return commit == SIZE_MAX ? compiler::spec(id).headIndex()
                              : commit;
}

std::string
BuildSpec::name() const
{
    // Same format as Compiler::describe(), straight from the spec
    // tables — no Compiler (and no pass pipeline) is constructed.
    const compiler::CompilerSpec &cspec = compiler::spec(id);
    return std::string(compiler::compilerName(id)) + "-" +
           compiler::optLevelName(level) + "@" +
           cspec.history()[resolvedCommit()].hash;
}

//===------------------------------------------------------------------===//
// Campaign: handles and totals
//===------------------------------------------------------------------===//

std::vector<std::string>
Campaign::buildNames() const
{
    std::vector<std::string> names;
    names.reserve(builds.size());
    for (const BuildSpec &spec : builds)
        names.push_back(spec.name());
    return names;
}

std::optional<BuildId>
Campaign::findBuild(std::string_view name) const
{
    for (size_t i = 0; i < builds.size(); ++i) {
        if (builds[i].name() == name)
            return BuildId{i};
    }
    return std::nullopt;
}

std::optional<BuildId>
Campaign::findBuild(const BuildSpec &spec) const
{
    for (size_t i = 0; i < builds.size(); ++i) {
        if (builds[i] == spec)
            return BuildId{i};
    }
    return std::nullopt;
}

BuildId
Campaign::idOf(std::string_view name) const
{
    return findBuild(name).value_or(BuildId{});
}

uint64_t
Campaign::totalMarkers() const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.markerCount;
    }
    return total;
}

uint64_t
Campaign::totalDead() const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.trueDead.size();
    }
    return total;
}

uint64_t
Campaign::totalAlive() const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.trueAlive.size();
    }
    return total;
}

uint64_t
Campaign::totalMissed(BuildId build) const
{
    if (!build.valid())
        return 0;
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.missedFor(build).size();
    }
    return total;
}

uint64_t
Campaign::totalPrimaryMissed(BuildId build) const
{
    if (!build.valid())
        return 0;
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid && !record.primary.empty())
            total += record.primaryFor(build).size();
    }
    return total;
}

uint64_t
Campaign::totalMissedVersus(BuildId by, BuildId reference) const
{
    if (!by.valid() || !reference.valid())
        return 0;
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (!record.valid)
            continue;
        // Missed by `by`, eliminated by `reference`.
        total += setMinus(record.missedFor(by),
                          record.missedFor(reference))
                     .size();
    }
    return total;
}

const char *
invalidReasonName(InvalidReason reason)
{
    switch (reason) {
    case InvalidReason::None:
        return "none";
    case InvalidReason::Timeout:
        return "timeout";
    case InvalidReason::Trap:
        return "trap";
    case InvalidReason::NoEntry:
        return "no-entry";
    case InvalidReason::VerifierReject:
        return "verifier-reject";
    }
    return "unknown";
}

//===------------------------------------------------------------------===//
// Execution engine
//===------------------------------------------------------------------===//

instrument::Instrumented
makeProgram(uint64_t seed, const gen::GenConfig &config)
{
    auto unit = gen::generateProgram(seed, config);
    return instrument::instrumentUnit(*unit);
}

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

uint64_t
usSince(Clock::time_point start)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - start)
            .count());
}

/**
 * Registry instruments resolved once per campaign run, so the per-seed
 * path does plain relaxed atomic adds — no key lookups, no registry
 * lock. Shared safely across workers.
 */
struct Instruments {
    explicit Instruments(support::MetricsRegistry &registry,
                         const std::vector<BuildSpec> &builds)
        : seeds(registry.counter("campaign.seeds")),
          cacheHits(registry.counter("campaign.cache_hits")),
          cacheMisses(registry.counter("campaign.cache_misses")),
          stageGenerate(
              registry.histogram("campaign.stage_us", "generate")),
          stageGroundTruth(
              registry.histogram("campaign.stage_us", "ground_truth")),
          stageCompile(
              registry.histogram("campaign.stage_us", "compile")),
          stagePrimary(
              registry.histogram("campaign.stage_us", "primary"))
    {
        for (const BuildSpec &build : builds) {
            markersEliminated.push_back(&registry.counter(
                "campaign.markers_eliminated",
                compiler::optLevelName(build.level)));
        }
    }

    support::Counter &
    invalidFor(support::MetricsRegistry &registry,
               InvalidReason reason)
    {
        return registry.counter("campaign.invalid",
                                invalidReasonName(reason));
    }

    support::Counter &seeds;
    support::Counter &cacheHits;
    support::Counter &cacheMisses;
    support::Histogram &stageGenerate;
    support::Histogram &stageGroundTruth;
    support::Histogram &stageCompile;
    support::Histogram &stagePrimary;
    /** Per BuildId; distinct builds at one opt level share a counter. */
    std::vector<support::Counter *> markersEliminated;
};

/** Classify why a seed failed ground truth (failure path only — the
 * verifier walk never runs for valid seeds). */
InvalidReason
classifyInvalid(const ir::Module &lowered, interp::ExecStatus status)
{
    if (!ir::verifyModule(lowered).ok())
        return InvalidReason::VerifierReject;
    switch (status) {
    case interp::ExecStatus::Timeout:
        return InvalidReason::Timeout;
    case interp::ExecStatus::Trap:
        return InvalidReason::Trap;
    case interp::ExecStatus::NoEntry:
        return InvalidReason::NoEntry;
    case interp::ExecStatus::Ok:
        break;
    }
    return InvalidReason::None;
}

/**
 * The per-seed pipeline, shared by the serial and parallel paths.
 * Pure: the returned record depends only on (seed, builds, options),
 * never on scheduling — the engine's determinism contract rests here.
 */
ProgramRecord
processSeed(uint64_t seed, const std::vector<BuildSpec> &builds,
            const CampaignOptions &options,
            support::MetricsRegistry &registry,
            Instruments &instruments, SeedCounters &counters,
            std::string *canonical_text)
{
    support::TraceSpan seed_span("seed", "campaign");
    seed_span.setArg("seed", seed);

    ProgramRecord record;
    record.seed = seed;
    std::unique_ptr<ir::Module> lowered;

    Clock::time_point t0 = Clock::now();
    instrument::Instrumented prog = [&] {
        support::TraceSpan span("generate", "campaign");
        if (options.mutator)
            return options.mutator->makeProgram(seed,
                                                options.generator);
        return makeProgram(seed, options.generator);
    }();
    record.markerCount = prog.markerCount();
    if (canonical_text)
        *canonical_text = lang::printUnit(*prog.unit);
    instruments.stageGenerate.observe(usSince(t0));

    // Per-seed tallies, folded into @p counters and the cache
    // instruments on every exit path.
    SeedCounters local;
    auto finish = [&] {
        counters.invalid += local.invalid;
        counters.cacheHits += local.cacheHits;
        counters.cacheMisses += local.cacheMisses;
        if (local.cacheHits)
            instruments.cacheHits.add(local.cacheHits);
        if (local.cacheMisses)
            instruments.cacheMisses.add(local.cacheMisses);
        instruments.seeds.add();
    };

    // The lowering cache: each seed's AST is lowered to O0 IR exactly
    // once (the miss); ground truth, every build's compile (via
    // ir::cloneModule), and the primary analysis all reuse it (hits).
    t0 = Clock::now();
    lowered = ir::lowerToIr(*prog.unit);
    ++local.cacheMisses;
    GroundTruth truth = groundTruthFor(*lowered, record.markerCount);
    ++local.cacheHits;
    instruments.stageGroundTruth.observe(usSince(t0));

    record.valid = truth.valid;
    if (!record.valid) {
        ++local.invalid;
        record.invalidReason = classifyInvalid(*lowered, truth.status);
        instruments.invalidFor(registry, record.invalidReason).add();
        finish();
        return record;
    }
    record.trueAlive = truth.aliveMarkers;
    record.trueDead = truth.deadMarkers;

    record.alive.resize(builds.size());
    record.missed.resize(builds.size());
    if (options.computePrimary)
        record.primary.resize(builds.size());
    if (options.collectRemarks)
        record.kills.resize(builds.size());

    // Built lazily on the first build with missed markers; the CFG and
    // block-recording execution then serve every remaining build.
    std::optional<PrimaryAnalysis> primary_analysis;

    for (size_t b = 0; b < builds.size(); ++b) {
        t0 = Clock::now();
        support::RemarkCollector remarks;
        std::set<unsigned> alive = aliveMarkers(
            *lowered, builds[b].make(),
            {options.collectRemarks ? &remarks : nullptr, nullptr},
            options.survivalSource);
        ++local.cacheHits;
        record.missed[b] = missedMarkers(alive, truth);
        record.alive[b] = std::move(alive);
        instruments.stageCompile.observe(usSince(t0));

        // missed ⊆ trueDead, so the difference is exactly the markers
        // this build eliminated.
        instruments.markersEliminated[b]->add(
            record.trueDead.size() - record.missed[b].size());

        if (options.collectRemarks) {
            // Attribute every eliminated marker. The PassManager
            // census guarantees at most one MarkerEliminated remark
            // per marker; markers with none were dropped by the O0
            // front end before the pipeline ran.
            for (unsigned marker : record.trueDead) {
                if (record.missed[b].count(marker))
                    continue;
                if (const support::Remark *killer =
                        remarks.killerOf(marker)) {
                    record.kills[b].push_back(
                        {marker, killer->pass, killer->passIndex});
                } else {
                    record.kills[b].push_back({marker, "lowering", 0});
                }
            }
        }

        if (options.computePrimary && !record.missed[b].empty()) {
            t0 = Clock::now();
            support::TraceSpan primary_span("primary", "campaign");
            if (!primary_analysis) {
                primary_analysis.emplace(*lowered);
                ++local.cacheHits;
            }
            record.primary[b] =
                primary_analysis->primary(record.missed[b]);
            instruments.stagePrimary.observe(usSince(t0));
        }
    }
    finish();
    return record;
}

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
resolveChunkSize(unsigned requested, unsigned count, unsigned threads)
{
    if (requested != 0)
        return requested;
    // Several chunks per worker so stragglers rebalance, but chunks
    // big enough that the shared-counter traffic stays negligible.
    unsigned chunk = count / (threads * 8);
    return chunk ? chunk : 1;
}

} // namespace

//===------------------------------------------------------------------===//
// SeedProcessor
//===------------------------------------------------------------------===//

struct SeedProcessor::Impl {
    Impl(const std::vector<BuildSpec> &builds,
         const CampaignOptions &options,
         support::MetricsRegistry &registry)
        : builds(builds), options(options), registry(registry),
          instruments(registry, builds)
    {
    }

    const std::vector<BuildSpec> &builds;
    const CampaignOptions &options;
    support::MetricsRegistry &registry;
    Instruments instruments;
};

SeedProcessor::SeedProcessor(const std::vector<BuildSpec> &builds,
                             const CampaignOptions &options,
                             support::MetricsRegistry &registry)
    : impl_(std::make_unique<Impl>(builds, options, registry))
{
}

SeedProcessor::~SeedProcessor() = default;

ProgramRecord
SeedProcessor::process(uint64_t seed, SeedCounters &counters,
                       std::string *canonical_text) const
{
    return processSeed(seed, impl_->builds, impl_->options,
                       impl_->registry, impl_->instruments, counters,
                       canonical_text);
}

CampaignRunner::CampaignRunner(std::vector<BuildSpec> builds,
                               CampaignOptions options)
    : builds_(std::move(builds)), options_(std::move(options))
{
}

Campaign
CampaignRunner::run(uint64_t first_seed, unsigned count) const
{
    support::TraceSpan campaign_span("campaign", "campaign");
    campaign_span.setArg("seeds", count);

    Campaign campaign;
    campaign.builds = builds_;
    campaign.programs.resize(count); // disjoint slots, one per seed
    campaign.metrics.seedsDone = count;

    {
        std::string names;
        for (const BuildSpec &spec : builds_) {
            if (!names.empty())
                names += ',';
            names += spec.name();
        }
        support::Event started(
            "campaign_started", {support::kPhaseCampaign, 0, 0});
        started.num("first_seed", first_seed)
            .num("seeds", count)
            .str("builds", names);
        support::emitEvent(options_.events, std::move(started));
    }

    support::MetricsRegistry &registry =
        options_.metrics ? *options_.metrics
                         : support::MetricsRegistry::global();
    SeedProcessor processor(builds_, options_, registry);

    unsigned threads = resolveThreads(options_.threads);
    unsigned chunk = resolveChunkSize(options_.chunkSize, count,
                                      threads);

    // Shared progress state. Records go straight into their slot; the
    // mutex only guards progress folding and observer invocation.
    std::mutex progress_mutex;
    CampaignProgress progress;
    progress.seedsTotal = count;

    Clock::time_point wall_start = Clock::now();
    support::ThreadPool pool(threads);
    // Folds one seed's counters into the shared progress (caller holds
    // no lock; this takes it). The metric instruments were already
    // updated inside SeedProcessor::process.
    auto fold = [&](SeedCounters &counters) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++progress.seedsDone;
        progress.invalidPrograms += counters.invalid;
        progress.cacheHits += counters.cacheHits;
        progress.cacheMisses += counters.cacheMisses;
        counters = SeedCounters{};
        if (options_.observer)
            options_.observer(progress);
    };

    pool.forChunks(count, chunk, [&](size_t begin, size_t end) {
        support::TraceSpan chunk_span("chunk", "campaign");
        chunk_span.setArg("seeds", end - begin);
        SeedCounters counters;
        for (size_t i = begin; i < end; ++i) {
            campaign.programs[i] =
                processor.process(first_seed + i, counters);
            fold(counters);
        }
    });

    campaign.metrics.wallSeconds = secondsSince(wall_start);

    {
        uint64_t invalid = 0;
        {
            std::lock_guard<std::mutex> lock(progress_mutex);
            invalid = progress.invalidPrograms;
        }
        support::Event finished(
            "campaign_finished", {support::kPhaseCampaignEnd, 0, 0});
        finished.num("seeds_done", count).num("invalid", invalid);
        support::emitEvent(options_.events, std::move(finished));
    }
    return campaign;
}

Campaign
runCampaign(uint64_t first_seed, unsigned count,
            const std::vector<BuildSpec> &builds,
            const CampaignOptions &options)
{
    return CampaignRunner(builds, options).run(first_seed, count);
}

} // namespace dce::core
