#include "core/campaign.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "ir/lowering.hpp"
#include "support/thread_pool.hpp"

namespace dce::core {

//===------------------------------------------------------------------===//
// BuildSpec
//===------------------------------------------------------------------===//

size_t
BuildSpec::resolvedCommit() const
{
    return commit == SIZE_MAX ? compiler::spec(id).headIndex()
                              : commit;
}

std::string
BuildSpec::name() const
{
    // Same format as Compiler::describe(), straight from the spec
    // tables — no Compiler (and no pass pipeline) is constructed.
    const compiler::CompilerSpec &cspec = compiler::spec(id);
    return std::string(compiler::compilerName(id)) + "-" +
           compiler::optLevelName(level) + "@" +
           cspec.history()[resolvedCommit()].hash;
}

//===------------------------------------------------------------------===//
// Campaign: handles and totals
//===------------------------------------------------------------------===//

std::vector<std::string>
Campaign::buildNames() const
{
    std::vector<std::string> names;
    names.reserve(builds.size());
    for (const BuildSpec &spec : builds)
        names.push_back(spec.name());
    return names;
}

std::optional<BuildId>
Campaign::findBuild(std::string_view name) const
{
    for (size_t i = 0; i < builds.size(); ++i) {
        if (builds[i].name() == name)
            return BuildId{i};
    }
    return std::nullopt;
}

std::optional<BuildId>
Campaign::findBuild(const BuildSpec &spec) const
{
    for (size_t i = 0; i < builds.size(); ++i) {
        if (builds[i] == spec)
            return BuildId{i};
    }
    return std::nullopt;
}

BuildId
Campaign::idOf(std::string_view name) const
{
    return findBuild(name).value_or(BuildId{});
}

uint64_t
Campaign::totalMarkers() const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.markerCount;
    }
    return total;
}

uint64_t
Campaign::totalDead() const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.trueDead.size();
    }
    return total;
}

uint64_t
Campaign::totalAlive() const
{
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.trueAlive.size();
    }
    return total;
}

uint64_t
Campaign::totalMissed(BuildId build) const
{
    if (!build.valid())
        return 0;
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid)
            total += record.missedFor(build).size();
    }
    return total;
}

uint64_t
Campaign::totalPrimaryMissed(BuildId build) const
{
    if (!build.valid())
        return 0;
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (record.valid && !record.primary.empty())
            total += record.primaryFor(build).size();
    }
    return total;
}

uint64_t
Campaign::totalMissedVersus(BuildId by, BuildId reference) const
{
    if (!by.valid() || !reference.valid())
        return 0;
    uint64_t total = 0;
    for (const ProgramRecord &record : programs) {
        if (!record.valid)
            continue;
        // Missed by `by`, eliminated by `reference`.
        total += setMinus(record.missedFor(by),
                          record.missedFor(reference))
                     .size();
    }
    return total;
}

uint64_t
Campaign::totalMissed(std::string_view build) const
{
    return totalMissed(idOf(build));
}

uint64_t
Campaign::totalPrimaryMissed(std::string_view build) const
{
    return totalPrimaryMissed(idOf(build));
}

uint64_t
Campaign::totalMissedVersus(std::string_view by,
                            std::string_view reference) const
{
    return totalMissedVersus(idOf(by), idOf(reference));
}

//===------------------------------------------------------------------===//
// Execution engine
//===------------------------------------------------------------------===//

instrument::Instrumented
makeProgram(uint64_t seed, const gen::GenConfig &config)
{
    auto unit = gen::generateProgram(seed, config);
    return instrument::instrumentUnit(*unit);
}

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Stage-time + cache accumulators local to one worker's chunk; folded
 * into the shared metrics once per chunk to keep contention low. */
struct LocalCounters {
    StageTimes stages;
    uint64_t invalid = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

/**
 * The per-seed pipeline, shared by the serial and parallel paths.
 * Pure: the returned record depends only on (seed, builds, options),
 * never on scheduling — the engine's determinism contract rests here.
 */
ProgramRecord
processSeed(uint64_t seed, const std::vector<BuildSpec> &builds,
            const CampaignOptions &options, LocalCounters &counters)
{
    ProgramRecord record;
    record.seed = seed;

    Clock::time_point t0 = Clock::now();
    instrument::Instrumented prog = makeProgram(seed, options.generator);
    record.markerCount = prog.markerCount();
    counters.stages.generate += secondsSince(t0);

    // The lowering cache: each seed's AST is lowered to O0 IR exactly
    // once (the miss); ground truth, every build's compile (via
    // ir::cloneModule), and the primary analysis all reuse it (hits).
    t0 = Clock::now();
    std::unique_ptr<ir::Module> lowered = ir::lowerToIr(*prog.unit);
    ++counters.cacheMisses;
    GroundTruth truth = groundTruthFor(*lowered, record.markerCount);
    ++counters.cacheHits;
    counters.stages.groundTruth += secondsSince(t0);

    record.valid = truth.valid;
    if (!record.valid) {
        ++counters.invalid;
        return record;
    }
    record.trueAlive = truth.aliveMarkers;
    record.trueDead = truth.deadMarkers;

    record.alive.resize(builds.size());
    record.missed.resize(builds.size());
    if (options.computePrimary)
        record.primary.resize(builds.size());

    // Built lazily on the first build with missed markers; the CFG and
    // block-recording execution then serve every remaining build.
    std::optional<PrimaryAnalysis> primary_analysis;

    for (size_t b = 0; b < builds.size(); ++b) {
        t0 = Clock::now();
        std::set<unsigned> alive =
            aliveMarkers(*lowered, builds[b].make());
        ++counters.cacheHits;
        record.missed[b] = missedMarkers(alive, truth);
        record.alive[b] = std::move(alive);
        counters.stages.compile += secondsSince(t0);

        if (options.computePrimary && !record.missed[b].empty()) {
            t0 = Clock::now();
            if (!primary_analysis) {
                primary_analysis.emplace(*lowered);
                ++counters.cacheHits;
            }
            record.primary[b] =
                primary_analysis->primary(record.missed[b]);
            counters.stages.primary += secondsSince(t0);
        }
    }
    return record;
}

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
resolveChunkSize(unsigned requested, unsigned count, unsigned threads)
{
    if (requested != 0)
        return requested;
    // Several chunks per worker so stragglers rebalance, but chunks
    // big enough that the shared-counter traffic stays negligible.
    unsigned chunk = count / (threads * 8);
    return chunk ? chunk : 1;
}

} // namespace

CampaignRunner::CampaignRunner(std::vector<BuildSpec> builds,
                               CampaignOptions options)
    : builds_(std::move(builds)), options_(std::move(options))
{
}

Campaign
CampaignRunner::run(uint64_t first_seed, unsigned count) const
{
    Campaign campaign;
    campaign.builds = builds_;
    campaign.programs.resize(count); // disjoint slots, one per seed
    campaign.metrics.seedsDone = count;

    unsigned threads = resolveThreads(options_.threads);
    unsigned chunk = resolveChunkSize(options_.chunkSize, count,
                                      threads);

    // Shared progress state. Records go straight into their slot; the
    // mutex only guards metrics folding and observer invocation.
    std::mutex progress_mutex;
    CampaignProgress progress;
    progress.seedsTotal = count;
    StageTimes stage_totals;

    Clock::time_point wall_start = Clock::now();
    support::ThreadPool pool(threads);
    // Folds one seed's counters into the shared progress (caller holds
    // no lock; this takes it).
    auto fold = [&](LocalCounters &counters) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++progress.seedsDone;
        progress.invalidPrograms += counters.invalid;
        progress.cacheHits += counters.cacheHits;
        progress.cacheMisses += counters.cacheMisses;
        stage_totals.generate += counters.stages.generate;
        stage_totals.groundTruth += counters.stages.groundTruth;
        stage_totals.compile += counters.stages.compile;
        stage_totals.primary += counters.stages.primary;
        counters = LocalCounters{};
        if (options_.observer)
            options_.observer(progress);
    };

    pool.forChunks(count, chunk, [&](size_t begin, size_t end) {
        LocalCounters counters;
        for (size_t i = begin; i < end; ++i) {
            campaign.programs[i] = processSeed(
                first_seed + i, builds_, options_, counters);
            fold(counters);
        }
    });

    campaign.metrics.wallSeconds = secondsSince(wall_start);
    campaign.metrics.invalidPrograms = progress.invalidPrograms;
    campaign.metrics.cacheHits = progress.cacheHits;
    campaign.metrics.cacheMisses = progress.cacheMisses;
    campaign.metrics.stages = stage_totals;
    return campaign;
}

Campaign
runCampaign(uint64_t first_seed, unsigned count,
            const std::vector<BuildSpec> &builds,
            const CampaignOptions &options)
{
    return CampaignRunner(builds, options).run(first_seed, count);
}

} // namespace dce::core
