#include "core/triage.hpp"

#include <set>

#include "instrument/instrument.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "reduce/reducer.hpp"

namespace dce::core {

KillerHistogram
killerHistogram(const Campaign &campaign, BuildId build)
{
    KillerHistogram histogram;
    if (!build.valid())
        return histogram;
    for (const ProgramRecord &record : campaign.programs) {
        if (!record.valid || record.kills.empty())
            continue;
        for (const MarkerKill &kill : record.killsFor(build)) {
            ++histogram.byPass[kill.pass];
            ++histogram.totalEliminated;
        }
    }
    return histogram;
}

namespace {

/** The full interestingness check used during reduction: the candidate
 * parses, the marker is truly dead, the reporting build misses it, and
 * the reference build eliminates it. */
bool
isInteresting(const std::string &source, unsigned marker,
              const BuildSpec &missed_by, const BuildSpec &reference)
{
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(source, diags);
    if (!unit)
        return false;
    // Ground truth: the marker must exist and never execute.
    std::string name = instrument::markerName(marker);
    if (!unit->findFunction(name))
        return false;
    auto module = ir::lowerToIr(*unit);
    interp::ExecResult run = interp::execute(*module);
    if (!run.ok() || run.calledExternals.count(name))
        return false;
    // Differential: missed by one build, eliminated by the other.
    std::set<unsigned> missed_alive =
        aliveMarkers(*unit, missed_by.make());
    if (!missed_alive.count(marker))
        return false;
    std::set<unsigned> reference_alive =
        aliveMarkers(*unit, reference.make());
    return reference_alive.count(marker) == 0;
}

/** Root-cause signature of a reduced case: the first post-HEAD fix
 * commit that resolves it, or a capability tag. */
std::string
signatureOf(const std::string &reduced_source, const Finding &finding,
            bool &fixed)
{
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(reduced_source, diags);
    if (!unit) {
        fixed = false;
        return "invalid";
    }
    const compiler::CompilerSpec &spec =
        compiler::spec(finding.missedBy.id);
    for (size_t commit = spec.headIndex() + 1;
         commit < spec.history().size(); ++commit) {
        compiler::Compiler fixed_build(finding.missedBy.id,
                                       finding.missedBy.level, commit);
        if (!aliveMarkers(*unit, fixed_build).count(finding.marker)) {
            fixed = true;
            return "fixedby:" + spec.history()[commit].hash;
        }
    }
    fixed = false;
    // No fix commit resolves it: classify by which levels of the same
    // compiler eliminate the marker — a capability fingerprint.
    std::string fingerprint = "capability:";
    for (compiler::OptLevel level : compiler::allOptLevels()) {
        compiler::Compiler probe(finding.missedBy.id, level);
        fingerprint +=
            aliveMarkers(*unit, probe).count(finding.marker) ? 'm'
                                                             : 'e';
    }
    return fingerprint;
}

} // namespace

std::vector<Finding>
collectFindings(const Campaign &campaign, const BuildSpec &missed_by,
                const BuildSpec &reference, unsigned max_findings,
                const gen::GenConfig &config)
{
    (void)config;
    std::vector<Finding> findings;
    std::optional<BuildId> by_id = campaign.findBuild(missed_by);
    std::optional<BuildId> ref_id = campaign.findBuild(reference);
    if (!by_id || !ref_id)
        return findings;
    for (const ProgramRecord &record : campaign.programs) {
        // Needs the primary sets, so skip campaigns (or invalid
        // records) that never computed them.
        if (!record.valid || record.primary.empty())
            continue;
        for (unsigned marker : setMinus(record.primaryFor(*by_id),
                                        record.missedFor(*ref_id))) {
            if (findings.size() >= max_findings)
                return findings;
            findings.push_back(
                {record.seed, marker, missed_by, reference});
            break; // at most one report per program (like the paper)
        }
    }
    return findings;
}

TriageSummary
triageFindings(const std::vector<Finding> &findings,
               const gen::GenConfig &config,
               unsigned reported_duplicate_allowance)
{
    TriageSummary summary;
    std::set<std::pair<int, std::string>> seen_signatures;
    std::map<int, unsigned> duplicate_budget;
    duplicate_budget[static_cast<int>(compiler::CompilerId::Alpha)] =
        reported_duplicate_allowance;
    duplicate_budget[static_cast<int>(compiler::CompilerId::Beta)] =
        reported_duplicate_allowance;

    for (const Finding &finding : findings) {
        Report report;
        report.finding = finding;

        instrument::Instrumented prog =
            makeProgram(finding.seed, config);
        std::string source = lang::printUnit(*prog.unit);

        reduce::ReduceResult reduced = reduce::reduceSource(
            source,
            [&](const std::string &candidate) {
                return isInteresting(candidate, finding.marker,
                                     finding.missedBy,
                                     finding.reference);
            },
            /*max_tests=*/800);
        report.reducedSource = reduced.source;
        report.reductionTests = reduced.testsRun;

        report.signature =
            signatureOf(reduced.source, finding, report.fixed);
        auto key = std::make_pair(
            static_cast<int>(finding.missedBy.id), report.signature);
        report.duplicate = !seen_signatures.insert(key).second;
        if (report.duplicate) {
            // Pre-report deduplication drops most same-root-cause
            // findings; a small allowance slips through and gets
            // marked duplicate by the "developers".
            unsigned &budget =
                duplicate_budget[static_cast<int>(finding.missedBy.id)];
            if (budget == 0)
                continue; // deduplicated away, never reported
            --budget;
            report.fixed = false; // counted once, on the original
        }
        report.confirmed = !report.duplicate &&
                           report.signature != "invalid";
        summary.reports.push_back(std::move(report));
    }
    return summary;
}

} // namespace dce::core
